"""Curve tests: exact integrals vs numeric quadrature, periodicity,
JSONL persistence, and strict format errors."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import integrate

from repro.grid.curves import (
    CURVE_FORMAT_VERSION,
    DAY_S,
    UNIT_PRICE,
    CurveFormatError,
    FlatCurve,
    PiecewiseCurve,
    SinusoidalCurve,
    TraceCurve,
    curve_digest,
    curve_from_jsonl,
    curve_to_jsonl,
    load_curve,
    save_curve,
)

# Time-of-use shape: off-peak / shoulder / peak / shoulder.
TOU = dict(
    times_s=[0.0, 7 * 3600.0, 16 * 3600.0, 21 * 3600.0],
    levels=[0.08, 0.12, 0.24, 0.12],
)


def quadrature(curve, t0, t1):
    """Adaptive quadrature of ``curve.value_at`` over ``[t0, t1]``,
    split at every step discontinuity so each piece is smooth."""
    breaks = sorted({t0, t1})
    if isinstance(curve, PiecewiseCurve):
        if curve.period_s is None:
            starts = list(curve.times_s)
        else:
            k0 = math.floor(t0 / curve.period_s) - 1
            k1 = math.floor(t1 / curve.period_s) + 1
            starts = [
                k * curve.period_s + s
                for k in range(int(k0), int(k1) + 1)
                for s in curve.times_s
            ]
        breaks = sorted({t0, t1} | {s for s in starts if t0 < s < t1})
    total = 0.0
    for a, b in zip(breaks, breaks[1:]):
        piece, _ = integrate.quad(
            curve.value_at, a, b, epsabs=1e-13, epsrel=1e-13, limit=200
        )
        total += piece
    return total


def assert_integral_matches(curve, t0, t1):
    exact = curve.integral(t0, t1)
    numeric = quadrature(curve, t0, t1)
    assert exact == pytest.approx(numeric, rel=1e-9, abs=1e-9)


window = st.tuples(
    st.floats(min_value=-2 * DAY_S, max_value=2 * DAY_S),
    st.floats(min_value=0.0, max_value=1.5 * DAY_S),
)


class TestIntegralVsQuadrature:
    @given(w=window, level=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_flat(self, w, level):
        t0, dt = w
        assert_integral_matches(FlatCurve(level), t0, t0 + dt)

    @given(w=window)
    @settings(max_examples=50, deadline=None)
    def test_piecewise_periodic(self, w):
        t0, dt = w
        curve = PiecewiseCurve(**TOU, period_s=DAY_S)
        assert_integral_matches(curve, t0, t0 + dt)

    @given(w=window)
    @settings(max_examples=50, deadline=None)
    def test_piecewise_aperiodic(self, w):
        t0, dt = w
        curve = PiecewiseCurve(**TOU)
        assert_integral_matches(curve, t0, t0 + dt)

    @given(
        w=window,
        base=st.floats(min_value=0.2, max_value=1.0),
        amplitude=st.floats(min_value=0.0, max_value=0.1),
        amplitude2=st.floats(min_value=0.0, max_value=0.1),
        peak_hour=st.floats(min_value=0.0, max_value=24.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_sinusoidal_double_peak(
        self, w, base, amplitude, amplitude2, peak_hour
    ):
        t0, dt = w
        curve = SinusoidalCurve(
            base=base,
            amplitude=amplitude,
            peak_s=peak_hour * 3600.0,
            amplitude2=amplitude2,
            peak2_s=8 * 3600.0,
        )
        assert_integral_matches(curve, t0, t0 + dt)


class TestCurveSemantics:
    @pytest.fixture(
        params=[
            FlatCurve(0.12),
            PiecewiseCurve(**TOU, period_s=DAY_S),
            SinusoidalCurve(0.12, 0.05, peak_s=18 * 3600.0, amplitude2=0.02),
        ],
        ids=["flat", "piecewise", "sinusoidal"],
    )
    def curve(self, request):
        return request.param

    def test_empty_interval_integrates_to_zero(self, curve):
        assert curve.integral(100.0, 100.0) == 0.0
        assert curve.integral(100.0, 50.0) == 0.0

    def test_empty_interval_mean_is_point_value(self, curve):
        assert curve.mean(5000.0, 5000.0) == curve.value_at(5000.0)
        assert curve.mean(5000.0, 4000.0) == curve.value_at(5000.0)

    def test_nonnegative_everywhere(self, curve):
        assert all(
            curve.value_at(h * 1800.0) >= 0.0 for h in range(-48, 96)
        )

    def test_periodicity(self, curve):
        if getattr(curve, "period_s", None) is None:
            pytest.skip("aperiodic")
        period = curve.period_s
        for t in (0.0, 3333.0, 50_000.0):
            assert curve.value_at(t + period) == pytest.approx(
                curve.value_at(t), abs=1e-12
            )
            assert curve.integral(t, t + period) == pytest.approx(
                curve.integral(0.0, period), rel=1e-12
            )

    def test_to_dict_is_json_safe(self, curve):
        import json

        assert json.dumps(curve.to_dict())

    def test_additivity_over_split(self, curve):
        whole = curve.integral(1000.0, 90_000.0)
        split = curve.integral(1000.0, 40_000.0) + curve.integral(
            40_000.0, 90_000.0
        )
        assert whole == pytest.approx(split, rel=1e-12)


class TestValidation:
    def test_flat_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            FlatCurve(-0.1)

    def test_flat_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            FlatCurve(float("nan"))

    def test_piecewise_first_segment_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            PiecewiseCurve([1.0, 2.0], [0.1, 0.2])

    def test_piecewise_starts_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PiecewiseCurve([0.0, 5.0, 5.0], [0.1, 0.2, 0.3])

    def test_piecewise_rejects_negative_level(self):
        with pytest.raises(ValueError, match=">= 0"):
            PiecewiseCurve([0.0], [-1.0])

    def test_piecewise_start_outside_period(self):
        with pytest.raises(ValueError, match="inside the period"):
            PiecewiseCurve([0.0, 30.0], [0.1, 0.2], period_s=20.0)

    def test_piecewise_needs_a_segment(self):
        with pytest.raises(ValueError, match="at least one segment"):
            PiecewiseCurve([], [])

    def test_sinusoidal_nonnegativity_guard(self):
        with pytest.raises(ValueError, match="nonnegative"):
            SinusoidalCurve(base=0.1, amplitude=0.08, amplitude2=0.05)

    def test_sinusoidal_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="period_s"):
            SinusoidalCurve(base=1.0, amplitude=0.1, period_s=0.0)


class TestJsonlPersistence:
    def make(self):
        return TraceCurve(
            times_s=[0.0, 3600.0, 7200.0],
            levels=[0.08, 0.24, 0.12],
            period_s=DAY_S,
            unit=UNIT_PRICE,
        )

    def test_round_trip(self, tmp_path):
        curve = self.make()
        path = tmp_path / "tariff.jsonl"
        save_curve(curve, path)
        loaded = load_curve(path)
        assert loaded.times_s == curve.times_s
        assert loaded.levels == curve.levels
        assert loaded.period_s == curve.period_s
        assert loaded.unit == curve.unit
        assert curve_digest(loaded) == curve_digest(curve)

    def test_canonical_text_is_stable(self):
        assert curve_to_jsonl(self.make()) == curve_to_jsonl(self.make())

    def test_digest_tracks_content(self):
        a = self.make()
        b = TraceCurve(
            times_s=[0.0, 3600.0, 7200.0],
            levels=[0.08, 0.24, 0.13],
            period_s=DAY_S,
            unit=UNIT_PRICE,
        )
        assert curve_digest(a) != curve_digest(b)

    def test_empty_file_rejected(self):
        with pytest.raises(CurveFormatError, match="empty"):
            curve_from_jsonl("")

    def test_bad_header_json_rejected(self):
        with pytest.raises(CurveFormatError, match="not valid JSON"):
            curve_from_jsonl("{nope\n")

    def test_wrong_format_marker_rejected(self):
        with pytest.raises(CurveFormatError, match="missing format header"):
            curve_from_jsonl('{"format": "other", "version": 1}\n')

    def test_version_skew_rejected(self):
        text = curve_to_jsonl(self.make()).replace(
            f'"version":{CURVE_FORMAT_VERSION}', '"version":99'
        )
        with pytest.raises(CurveFormatError, match="version"):
            curve_from_jsonl(text)

    def test_truncation_detected(self):
        lines = curve_to_jsonl(self.make()).splitlines()
        with pytest.raises(CurveFormatError, match="truncated"):
            curve_from_jsonl("\n".join(lines[:-1]))

    def test_bad_record_line_reported_with_number(self):
        lines = curve_to_jsonl(self.make()).splitlines()
        lines[2] = '{"t": "x"}'
        with pytest.raises(CurveFormatError, match="line 3"):
            curve_from_jsonl("\n".join(lines))

    def test_invalid_curve_content_rejected(self):
        curve = self.make()
        text = curve_to_jsonl(curve)
        # Swap the two step records so starts are not increasing.
        lines = text.splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        with pytest.raises(CurveFormatError, match="invalid curve"):
            curve_from_jsonl("\n".join(lines))

    def test_unreadable_path_rejected(self, tmp_path):
        with pytest.raises(CurveFormatError, match="cannot read"):
            load_curve(tmp_path / "missing.jsonl")

    def test_source_named_in_errors(self):
        with pytest.raises(CurveFormatError, match="grid.price"):
            curve_from_jsonl("", source="grid.price")
