"""Accountant tests: pricing energy breakdowns against curves."""

import pytest

from repro.core.single_app import SingleAppConfig, simulate_application
from repro.energy.model import EnergyBreakdown, PowerModel, energy_of
from repro.grid.accountant import account_energy, account_execution
from repro.grid.curves import DAY_S, J_PER_KWH, FlatCurve, PiecewiseCurve
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.units import years

HOUR_S = 3600.0

# 1 kWh of work, 0.5 of rework, 0.25 of checkpoint, 0.25 of restart.
BREAKDOWN = EnergyBreakdown(
    work_j=1.0 * J_PER_KWH,
    rework_j=0.5 * J_PER_KWH,
    checkpoint_j=0.25 * J_PER_KWH,
    restart_j=0.25 * J_PER_KWH,
)

# Flat 0.08 $/kWh off-peak, 0.24 at hours 12-18.
TOU = PiecewiseCurve(
    [0.0, 12 * HOUR_S, 18 * HOUR_S],
    [0.08, 0.24, 0.08],
    period_s=DAY_S,
)


class TestAccountEnergy:
    def test_flat_curves_exact_arithmetic(self):
        cost = account_energy(
            BREAKDOWN,
            t0=0.0,
            t1=HOUR_S,
            price=FlatCurve(0.10),
            carbon=FlatCurve(400.0),
        )
        assert cost.work_usd == pytest.approx(0.10)
        assert cost.rework_usd == pytest.approx(0.05)
        assert cost.checkpoint_usd == pytest.approx(0.025)
        assert cost.restart_usd == pytest.approx(0.025)
        assert cost.total_usd == pytest.approx(0.20)
        assert cost.work_g == pytest.approx(400.0)
        assert cost.total_g == pytest.approx(800.0)
        assert cost.energy_kwh == pytest.approx(2.0)

    def test_missing_curve_zeroes_that_dimension(self):
        price_only = account_energy(
            BREAKDOWN, 0.0, HOUR_S, price=FlatCurve(0.10)
        )
        assert price_only.total_usd > 0
        assert price_only.total_g == 0.0
        carbon_only = account_energy(
            BREAKDOWN, 0.0, HOUR_S, carbon=FlatCurve(400.0)
        )
        assert carbon_only.total_usd == 0.0
        assert carbon_only.total_g > 0
        # kWh is curve-independent.
        assert price_only.energy_kwh == carbon_only.energy_kwh == 2.0

    def test_charge_rate_is_window_mean(self):
        t0, t1 = 11 * HOUR_S, 13 * HOUR_S  # straddles the noon step
        cost = account_energy(BREAKDOWN, t0, t1, price=TOU)
        assert cost.total_usd == pytest.approx(
            (BREAKDOWN.total_j / J_PER_KWH) * TOU.mean(t0, t1)
        )
        assert TOU.mean(t0, t1) == pytest.approx(0.16)

    def test_peak_window_costs_more_than_off_peak(self):
        off = account_energy(BREAKDOWN, 0.0, 2 * HOUR_S, price=TOU)
        peak = account_energy(
            BREAKDOWN, 13 * HOUR_S, 15 * HOUR_S, price=TOU
        )
        assert peak.total_usd == pytest.approx(3 * off.total_usd)

    def test_zero_length_window_prices_at_the_instant(self):
        cost = account_energy(BREAKDOWN, 13 * HOUR_S, 13 * HOUR_S, price=TOU)
        assert cost.work_usd == pytest.approx(1.0 * 0.24)


class TestAccountExecution:
    @pytest.fixture
    def stats(self, small_system, small_app):
        config = SingleAppConfig(node_mtbf_s=years(0.2), seed=5)
        return simulate_application(
            small_app, CheckpointRestart(), small_system, config
        )

    def test_matches_account_energy_over_execution_window(self, stats):
        power = PowerModel()
        offset = 8 * HOUR_S
        direct = account_execution(
            stats, power, price=TOU, carbon=FlatCurve(400.0), offset_s=offset
        )
        expected = account_energy(
            energy_of(stats, power),
            t0=offset + stats.start_time,
            t1=offset + stats.end_time,
            price=TOU,
            carbon=FlatCurve(400.0),
        )
        assert direct == expected

    def test_start_offset_changes_the_bill_under_tou(self, stats):
        night = account_execution(stats, price=TOU, offset_s=0.0)
        noon = account_execution(stats, price=TOU, offset_s=12 * HOUR_S)
        assert noon.total_usd > night.total_usd

    def test_flat_curve_is_offset_invariant(self, stats):
        a = account_execution(stats, price=FlatCurve(0.10), offset_s=0.0)
        b = account_execution(
            stats, price=FlatCurve(0.10), offset_s=17 * HOUR_S
        )
        assert a.total_usd == pytest.approx(b.total_usd, rel=1e-12)
