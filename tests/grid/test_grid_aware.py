"""Grid-aware selection tests: quotes, objectives, and degeneracy to
the paper's efficiency-based Resilience Selection."""

import pytest

from repro.grid.curves import FlatCurve, SinusoidalCurve
from repro.resilience.grid_aware import (
    OBJECTIVES,
    GridAwareSelection,
    expected_energy,
    quote,
)
from repro.resilience.registry import get_technique, scaling_study_techniques
from repro.units import years
from repro.workload.synthetic import make_application

HOUR_S = 3600.0
PRICE = FlatCurve(0.12)
CARBON = FlatCurve(400.0)


@pytest.fixture
def app():
    return make_application("A32", nodes=120, time_steps=60)


class TestQuote:
    def test_quote_populates_all_dimensions(self, small_system, app):
        q = quote(
            get_technique("checkpoint_restart"),
            app,
            small_system,
            years(2.5),
            price=PRICE,
            carbon=CARBON,
        )
        assert q.technique == "checkpoint_restart"
        assert q.nodes >= app.nodes
        assert 0 < q.expected_efficiency <= 1.0
        assert q.expected_elapsed_s > 0
        assert q.energy.total_j > 0
        assert q.cost.total_usd > 0
        assert q.cost.total_g > 0
        assert q.cost.energy_kwh == pytest.approx(
            q.energy.total_j / 3.6e6
        )

    def test_objective_value_dispatch(self, small_system, app):
        q = quote(
            get_technique("checkpoint_restart"),
            app,
            small_system,
            years(2.5),
            price=PRICE,
            carbon=CARBON,
        )
        assert q.objective_value("cost") == q.cost.total_usd
        assert q.objective_value("carbon") == q.cost.total_g
        assert q.objective_value("efficiency") == -q.expected_efficiency
        with pytest.raises(ValueError, match="unknown objective"):
            q.objective_value("joules")

    def test_start_time_matters_under_peaked_price(self, small_system, app):
        curve = SinusoidalCurve(0.12, 0.05, peak_s=18 * HOUR_S)
        technique = get_technique("checkpoint_restart")
        off_peak = quote(
            technique, app, small_system, years(2.5),
            price=curve, start_s=2 * HOUR_S,
        )
        at_peak = quote(
            technique, app, small_system, years(2.5),
            price=curve, start_s=18 * HOUR_S,
        )
        assert at_peak.cost.total_usd > off_peak.cost.total_usd
        # The simulated physics is identical; only the bill moves.
        assert at_peak.expected_efficiency == off_peak.expected_efficiency
        assert at_peak.energy == off_peak.energy

    def test_redundancy_burns_more_energy_than_multilevel(
        self, small_system, app
    ):
        mtbf = years(2.5)
        ml = quote(get_technique("multilevel"), app, small_system, mtbf)
        r2 = quote(get_technique("redundancy_r2"), app, small_system, mtbf)
        # Twice the nodes burn roughly twice the failure-free joules.
        assert r2.energy.work_j > 1.8 * ml.energy.work_j

    def test_expected_energy_activities_nonnegative(self, small_system, app):
        plan = get_technique("multilevel").plan(app, small_system, years(2.5))
        breakdown = expected_energy(plan, years(2.5))
        assert breakdown.work_j > 0
        assert breakdown.rework_j >= 0
        assert breakdown.checkpoint_j >= 0
        assert breakdown.total_j >= breakdown.work_j


class TestGridAwareSelection:
    def test_validation(self):
        with pytest.raises(ValueError, match="node_mtbf_s"):
            GridAwareSelection(0.0, price=PRICE)
        with pytest.raises(ValueError, match="unknown objective"):
            GridAwareSelection(years(2.5), objective="joules", price=PRICE)
        with pytest.raises(ValueError, match="price curve"):
            GridAwareSelection(years(2.5), objective="cost")
        with pytest.raises(ValueError, match="carbon curve"):
            GridAwareSelection(years(2.5), objective="carbon", price=PRICE)
        with pytest.raises(ValueError, match="at least one candidate"):
            GridAwareSelection(years(2.5), price=PRICE, candidates=[])

    def test_objectives_tuple_is_the_public_contract(self):
        assert OBJECTIVES == ("efficiency", "cost", "carbon")

    def test_cost_selection_minimizes_the_quoted_bill(
        self, small_system, app
    ):
        selector = GridAwareSelection(
            years(2.5),
            objective="cost",
            price=PRICE,
            candidates=scaling_study_techniques(),
        )
        chosen = selector.select(app, small_system)
        quotes = selector.quotes(app, small_system)
        cheapest = min(quotes, key=lambda q: q.cost.total_usd)
        assert chosen.name == cheapest.technique
        assert selector.selection_counts == {chosen.name: 1}

    def test_efficiency_objective_degrades_to_paper_selection(
        self, small_system, app
    ):
        selector = GridAwareSelection(
            years(2.5),
            objective="efficiency",
            candidates=scaling_study_techniques(),
        )
        chosen = selector.select(app, small_system)
        quotes = selector.quotes(app, small_system)
        best = max(quotes, key=lambda q: q.expected_efficiency)
        assert chosen.name == best.technique

    def test_infeasible_candidates_are_filtered(self, small_system):
        # 700 of 1 200 nodes: r=2 redundancy cannot fit.
        big = make_application("A32", nodes=700, time_steps=60)
        selector = GridAwareSelection(
            years(2.5),
            objective="cost",
            price=PRICE,
            candidates=scaling_study_techniques(),
        )
        names = {q.technique for q in selector.quotes(big, small_system)}
        assert "redundancy_r2" not in names
        assert "checkpoint_restart" in names

    def test_no_feasible_candidate_raises(self, small_system):
        big = make_application("A32", nodes=700, time_steps=60)
        selector = GridAwareSelection(
            years(2.5),
            objective="cost",
            price=PRICE,
            candidates=[get_technique("redundancy_r2")],
        )
        with pytest.raises(ValueError, match="no candidate technique fits"):
            selector.select(big, small_system)

    def test_selector_name_carries_the_objective(self):
        assert (
            GridAwareSelection(years(2.5), price=PRICE).name == "grid_cost"
        )
