"""Shared fixtures.

Most tests run against a scaled-down machine (1 200 nodes) with the
paper's per-node/network parameters so simulations stay fast while the
model arithmetic is identical.
"""

from __future__ import annotations

import pytest

from repro.platform.presets import exascale_system
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.workload.synthetic import make_application


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Point the experiment result cache at a per-test directory so
    tests never read or write ``results/.cache/`` in the repo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> StreamFactory:
    return StreamFactory(12345)


@pytest.fixture
def rng(streams):
    return streams.stream("test")


@pytest.fixture
def small_system():
    """A 1 200-node machine with paper node/network parameters."""
    return exascale_system(total_nodes=1_200)


@pytest.fixture
def full_system():
    """The full 120 000-node exascale machine."""
    return exascale_system()


@pytest.fixture
def small_app():
    """A 1-hour A32 application on 120 nodes."""
    return make_application("A32", nodes=120, time_steps=60)


@pytest.fixture
def comm_app():
    """A 1-hour D64 application on 120 nodes."""
    return make_application("D64", nodes=120, time_steps=60)
