"""Documentation-coverage meta-tests.

Deliverable discipline: every public module, class, function, and
method in the ``repro`` package must carry a docstring.  This test
walks the package and fails on any undocumented public item, so
documentation debt cannot accrue silently.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        # Only report items defined in this package (not re-exports of
        # numpy/scipy/stdlib objects).
        defined_in = getattr(obj, "__module__", None)
        if defined_in is None or not defined_in.startswith("repro"):
            continue
        if defined_in != module.__name__:
            continue  # re-export; checked at its home module
        yield name, obj


class TestDocstrings:
    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in MODULES:
            for name, obj in _public_members(module):
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_documented(self):
        undocumented = []
        for module in MODULES:
            for cls_name, cls in _public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_"):
                        continue
                    func = None
                    if inspect.isfunction(member):
                        func = member
                    elif isinstance(member, property):
                        func = member.fget
                    elif isinstance(member, (classmethod, staticmethod)):
                        func = member.__func__
                    if func is None:
                        continue
                    if not (func.__doc__ and func.__doc__.strip()):
                        undocumented.append(f"{module.__name__}.{cls_name}.{name}")
        assert not undocumented, f"undocumented public methods: {undocumented}"
