"""Unit tests for the CLI."""

import pytest

from repro.cli import _ALL_ORDER, _EXPERIMENTS, build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig1", "--quick"])
        assert args.experiment == "fig1"
        assert args.quick

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_format_choices(self):
        args = build_parser().parse_args(["fig2", "--format", "csv"])
        assert args.format == "csv"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--format", "xml"])

    def test_all_order_subset_of_experiments(self):
        assert set(_ALL_ORDER) <= set(_EXPERIMENTS)

    def test_jobs_and_cache_flags(self):
        args = build_parser().parse_args(
            ["fig1", "--jobs", "4", "--no-cache", "--progress"]
        )
        assert args.jobs == 4
        assert args.no_cache
        assert args.progress

    def test_jobs_default_serial_cache_on(self):
        args = build_parser().parse_args(["fig1"])
        assert args.jobs == 1
        assert not args.no_cache

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_service_verbs_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2", "--db", ":memory:"]
        )
        assert args.experiment == "serve"
        assert args.port == 0
        args = build_parser().parse_args(
            ["submit", "fig1", "--quick", "--wait", "--url", "http://x:1"]
        )
        assert args.experiment == "submit"
        assert args.target == "fig1"
        assert args.wait
        args = build_parser().parse_args(["cache", "prune", "--max-mb", "64"])
        assert args.experiment == "cache"
        assert args.target == "prune"
        assert args.max_mb == 64.0
        args = build_parser().parse_args(
            ["watch", "abc12345", "--url", "http://x:1"]
        )
        assert args.experiment == "watch"
        assert args.target == "abc12345"


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "TABLE I" in captured.out
        # Timing chatter goes to stderr so stdout stays machine-readable.
        assert "completed in" in captured.err
        assert "completed in" not in captured.out

    def test_table2_with_fraction(self, capsys):
        assert main(["table2", "--fraction", "0.5"]) == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_fig_quick_runs(self, capsys):
        assert main(["fig2", "--quick", "--trials", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_fig_parallel_jobs_with_metrics(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig2", "--quick", "--trials", "2", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "Fig. 2" in captured.out
        # Executor metrics are reported on stderr.
        assert "cells" in captured.err and "hit rate" in captured.err
        # A second run is served entirely from the cache.
        assert main(["fig2", "--quick", "--trials", "2", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "100% hit rate" in captured.err

    def test_progress_flag_reports_cells(self, capsys):
        assert (
            main(
                [
                    "fig2",
                    "--quick",
                    "--trials",
                    "2",
                    "--no-cache",
                    "--progress",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "[1/" in err and "trials/s" in err

    def test_fig_csv_format(self, capsys):
        assert main(["fig1", "--quick", "--trials", "2", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "app_type,fraction,technique" in out

    def test_fig_barchart_format(self, capsys):
        assert main(["fig1", "--quick", "--trials", "2", "--format", "barchart"]) == 0
        assert "|#" in capsys.readouterr().out

    def test_regime_map(self, capsys):
        assert main(["regime-map"]) == 0
        out = capsys.readouterr().out
        assert "A32" in out and "crossover" in out

    def test_validate(self, capsys):
        assert main(
            ["validate", "--app-type", "A32", "--fraction", "0.06", "--trials", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "rel.err" in out

    def test_timeline(self, capsys):
        assert main(
            [
                "timeline",
                "--app-type",
                "A32",
                "--fraction",
                "0.06",
                "--mtbf-years",
                "10",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "=== checkpoint_restart ===" in out
        assert "work" in out

    def test_sweep_command(self, capsys):
        assert main(["sweep", "--sweep", "checkpoint_interval"]) == 0
        assert "interval" in capsys.readouterr().out.lower()


class TestFriendlyErrors:
    """Bad invocations exit non-zero with a one-line hint, never a
    traceback."""

    def test_submit_without_target_exits_2(self, capsys):
        assert main(["submit"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "experiment" in err

    def test_status_without_target_exits_2(self, capsys):
        assert main(["status"]) == 2
        assert "job id" in capsys.readouterr().err

    def test_watch_without_target_exits_2(self, capsys):
        assert main(["watch"]) == 2
        assert "a job or campaign id" in capsys.readouterr().err

    def test_watch_unreachable_service_exits_2(self, capsys):
        assert main(
            ["watch", "deadbeef", "--url", "http://127.0.0.1:9"]
        ) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_unreachable_service_exits_2(self, capsys):
        assert main(
            ["status", "deadbeef", "--url", "http://127.0.0.1:9"]
        ) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_cache_prune_needs_max_mb(self, capsys):
        assert main(["cache", "prune"]) == 2
        assert "--max-mb" in capsys.readouterr().err

    def test_cache_unknown_action_exits_2(self, capsys):
        assert main(["cache", "wipe"]) == 2
        assert "unknown cache action" in capsys.readouterr().err

    def test_invalid_trials_exits_2(self, capsys):
        assert main(["fig1", "--trials", "0"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "Traceback" not in err


class TestCacheCommand:
    def test_cache_stats(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "MiB" in out

    def test_cache_prune_to_zero(self, capsys):
        # Populate the (per-test) cache, then prune it away entirely.
        assert main(["fig2", "--quick", "--trials", "2"]) == 0
        capsys.readouterr()
        assert main(["cache", "prune", "--max-mb", "0"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert main(["cache", "stats"]) == 0
        assert "0 entries" in capsys.readouterr().out


class TestScenarioVerbs:
    def test_scenario_parses_with_action_and_name(self):
        args = build_parser().parse_args(
            ["scenario", "run", "fig1", "--quick", "--export", "out"]
        )
        assert args.experiment == "scenario"
        assert args.target == "run"
        assert args.extra == "fig1"
        assert args.export == "out"

    def test_list_names_bundled_scenarios(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "weibull-aging", "burst-storm", "trace-replay"):
            assert name in out

    def test_bare_scenario_defaults_to_list(self, capsys):
        assert main(["scenario"]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_show_prints_sha_and_lowering(self, capsys):
        assert main(["scenario", "show", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "sha256" in out
        assert "experiment 'fig1'" in out

    def test_validate_bundled_ok(self, capsys):
        assert main(["scenario", "validate", "heterogeneous-mtbf"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_bad_spec_exits_2_one_line(self, capsys, tmp_path):
        """Acceptance criterion: a schema violation is exit code 2 with
        one field-path-qualified line on stderr, never a traceback."""
        bad = tmp_path / "bad.toml"
        bad.write_text(
            "[scenario]\nname = 't'\n"
            "[failures]\nregime = 'weibull'\n"
            "[workload]\nstudy = 'scaling'\napp_type = 'A32'\n"
        )
        assert main(["scenario", "validate", str(bad)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = [line for line in captured.err.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("repro: error: ")
        assert "failures.shape" in lines[0]
        assert "Traceback" not in captured.err

    def test_validate_unknown_key_names_field_path(self, capsys, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text(
            "[scenario]\nname = 't'\n"
            "[platform]\nnodez = 3\n"
            "[workload]\nstudy = 'scaling'\napp_type = 'A32'\n"
        )
        assert main(["scenario", "validate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "platform.nodez" in err
        assert "Traceback" not in err

    def test_validate_trace_adaptive_exits_2_one_line(self, capsys, tmp_path):
        """Satellite: adaptive config on a trace-replay scenario is a
        one-line field-path-qualified rejection, exit code 2."""
        bad = tmp_path / "trace_adaptive.toml"
        bad.write_text(
            "[scenario]\nname = 't'\n"
            "[failures]\nregime = 'trace'\ntrace_file = 'x.jsonl'\n"
            "[workload]\nstudy = 'scaling'\napp_type = 'A32'\n"
            "fractions = [0.05]\n"
            "[adaptive]\nmax_trials = 40\n"
        )
        assert main(["scenario", "validate", str(bad)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = [line for line in captured.err.splitlines() if line]
        assert len(lines) == 1
        assert "adaptive.max_trials" in lines[0]
        assert "trace replay" in lines[0]
        assert "Traceback" not in captured.err

    def test_validate_unknown_name_exits_2(self, capsys):
        assert main(["scenario", "validate", "no-such-study"]) == 2
        assert "no-such-study" in capsys.readouterr().err

    def test_unknown_action_exits_2(self, capsys):
        assert main(["scenario", "frobnicate", "fig1"]) == 2
        assert "unknown scenario action" in capsys.readouterr().err

    def test_action_needing_name_exits_2(self, capsys):
        assert main(["scenario", "run"]) == 2
        assert "needs a bundled scenario name" in capsys.readouterr().err

    def test_run_with_export_writes_artifact_and_sidecar(
        self, capsys, tmp_path
    ):
        spec = tmp_path / "mini.toml"
        spec.write_text(
            "[scenario]\nname = 'mini'\n"
            "[failures]\nregime = 'poisson'\nmtbf_years = 5.0\n"
            "[workload]\nstudy = 'scaling'\napp_type = 'A32'\n"
            "fractions = [0.01]\n"
            "[techniques]\nnames = ['checkpoint_restart']\n"
            "[run]\ntrials = 2\nformat = 'csv'\n"
        )
        out_dir = tmp_path / "out"
        assert (
            main(["scenario", "run", str(spec), "--export", str(out_dir)])
            == 0
        )
        artifact = out_dir / "mini.csv"
        sidecar = out_dir / "mini.provenance.json"
        assert artifact.exists() and sidecar.exists()
        import json as _json

        stamp = _json.loads(sidecar.read_text())
        assert stamp["scenario"] == "mini"
        assert len(stamp["spec_sha256"]) == 64
        assert stamp["spec_sha256"] in artifact.read_text()

    def test_run_weibull_scenario_quick(self, capsys, tmp_path):
        spec = tmp_path / "w.toml"
        spec.write_text(
            "[scenario]\nname = 'w'\n"
            "[failures]\nregime = 'weibull'\nshape = 1.5\n"
            "[workload]\nstudy = 'scaling'\napp_type = 'A32'\n"
            "fractions = [0.01]\n"
            "[techniques]\nnames = ['checkpoint_restart']\n"
            "[run]\ntrials = 2\n"
        )
        assert main(["scenario", "run", str(spec)]) == 0
        captured = capsys.readouterr()
        assert "analytic model bypassed" in captured.out
        assert "weibull" in captured.out
