"""Unit tests for the CLI."""

import pytest

from repro.cli import _ALL_ORDER, _EXPERIMENTS, build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig1", "--quick"])
        assert args.experiment == "fig1"
        assert args.quick

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_format_choices(self):
        args = build_parser().parse_args(["fig2", "--format", "csv"])
        assert args.format == "csv"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--format", "xml"])

    def test_all_order_subset_of_experiments(self):
        assert set(_ALL_ORDER) <= set(_EXPERIMENTS)

    def test_jobs_and_cache_flags(self):
        args = build_parser().parse_args(
            ["fig1", "--jobs", "4", "--no-cache", "--progress"]
        )
        assert args.jobs == 4
        assert args.no_cache
        assert args.progress

    def test_jobs_default_serial_cache_on(self):
        args = build_parser().parse_args(["fig1"])
        assert args.jobs == 1
        assert not args.no_cache


class TestMain:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "completed in" in out

    def test_table2_with_fraction(self, capsys):
        assert main(["table2", "--fraction", "0.5"]) == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_fig_quick_runs(self, capsys):
        assert main(["fig2", "--quick", "--trials", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out

    def test_fig_parallel_jobs_with_metrics(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig2", "--quick", "--trials", "2", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "Fig. 2" in captured.out
        # Executor metrics are reported on stderr.
        assert "cells" in captured.err and "hit rate" in captured.err
        # A second run is served entirely from the cache.
        assert main(["fig2", "--quick", "--trials", "2", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        assert "100% hit rate" in captured.err

    def test_progress_flag_reports_cells(self, capsys):
        assert (
            main(
                [
                    "fig2",
                    "--quick",
                    "--trials",
                    "2",
                    "--no-cache",
                    "--progress",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "[1/" in err and "trials/s" in err

    def test_fig_csv_format(self, capsys):
        assert main(["fig1", "--quick", "--trials", "2", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "app_type,fraction,technique" in out

    def test_fig_barchart_format(self, capsys):
        assert main(["fig1", "--quick", "--trials", "2", "--format", "barchart"]) == 0
        assert "|#" in capsys.readouterr().out

    def test_regime_map(self, capsys):
        assert main(["regime-map"]) == 0
        out = capsys.readouterr().out
        assert "A32" in out and "crossover" in out

    def test_validate(self, capsys):
        assert main(
            ["validate", "--app-type", "A32", "--fraction", "0.06", "--trials", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "rel.err" in out

    def test_timeline(self, capsys):
        assert main(
            [
                "timeline",
                "--app-type",
                "A32",
                "--fraction",
                "0.06",
                "--mtbf-years",
                "10",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "=== checkpoint_restart ===" in out
        assert "work" in out
