"""CLI tests for the ``repro grid`` and ``repro energy`` verbs."""

import pytest

from repro.cli import build_parser, main


def stdout_of(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


class TestParser:
    def test_grid_verbs_parse(self):
        args = build_parser().parse_args(["grid", "show", "grid-peak-flip"])
        assert args.experiment == "grid"
        assert args.target == "show"
        assert args.extra == "grid-peak-flip"

    def test_energy_verb_parses(self):
        args = build_parser().parse_args(["energy", "report", "fig1"])
        assert args.experiment == "energy"
        assert args.target == "report"


class TestGridShow:
    def test_shows_curves_and_hourly_means(self, capsys):
        out = stdout_of(capsys, ["grid", "show", "grid-peak-flip"])
        assert "grid-peak-flip" in out
        assert "objective" in out and "cost" in out
        assert "price" in out and "sinusoidal" in out
        assert "carbon" in out and "flat" in out
        # The 3-hourly sweep covers one full day.
        assert "hour" in out and " 21" in out

    def test_trace_scenario_shows_digest(self, capsys):
        out = stdout_of(capsys, ["grid", "show", "grid-trace-tariff"])
        assert "trace" in out

    def test_unknown_action_exits_2(self, capsys):
        assert main(["grid", "frobnicate", "grid-peak-flip"]) == 2
        assert "unknown grid action" in capsys.readouterr().err

    def test_missing_scenario_argument_exits_2(self, capsys):
        assert main(["grid", "show"]) == 2
        assert "needs a bundled scenario name" in capsys.readouterr().err

    def test_gridless_scenario_exits_2(self, capsys):
        assert main(["grid", "show", "fig1"]) == 2
        assert "[grid]" in capsys.readouterr().err


class TestGridQuote:
    def test_quotes_every_cell(self, capsys):
        out = stdout_of(capsys, ["grid", "quote", "grid-peak-flip"])
        for technique in (
            "checkpoint_restart",
            "multilevel",
            "redundancy_r2",
        ):
            assert technique in out
        assert "best by efficiency" in out
        assert "best by cost" in out

    def test_datacenter_scenario_rejected(self, capsys):
        # fig4 is a datacenter study: quoting scaling cells is undefined.
        assert main(["grid", "quote", "fig4"]) == 2


class TestEnergyReport:
    def test_reports_kwh_by_activity(self, capsys):
        out = stdout_of(capsys, ["energy", "report", "grid-peak-flip"])
        assert "work" in out
        assert "overhead" in out
        assert "multilevel" in out

    def test_works_without_a_grid_block(self, capsys):
        # Energy is grid-independent: any analytic scaling scenario quotes.
        out = stdout_of(capsys, ["energy", "report", "fig1"])
        assert "kWh" in out or "kwh" in out.lower()

    def test_unknown_action_exits_2(self, capsys):
        assert main(["energy", "audit", "fig1"]) == 2
        assert "unknown energy action" in capsys.readouterr().err

    def test_datacenter_scenario_rejected(self, capsys):
        assert main(["energy", "report", "fig4"]) == 2
