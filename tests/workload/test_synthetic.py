"""Unit tests for the Table I synthetic suite."""

import pytest

from repro.workload.synthetic import (
    APP_TYPES,
    get_type,
    make_application,
    paper_time_step_range,
)


class TestTable1:
    def test_eight_types(self):
        assert len(APP_TYPES) == 8

    def test_names_match_table(self):
        assert set(APP_TYPES) == {
            "A32", "A64", "B32", "B64", "C32", "C64", "D32", "D64",
        }

    @pytest.mark.parametrize(
        "name,comm,mem",
        [
            ("A32", 0.0, 32.0),
            ("B64", 0.25, 64.0),
            ("C32", 0.5, 32.0),
            ("D64", 0.75, 64.0),
        ],
    )
    def test_type_attributes(self, name, comm, mem):
        t = APP_TYPES[name]
        assert t.comm_fraction == comm
        assert t.memory_per_node_gb == mem

    def test_high_memory_flag(self):
        assert APP_TYPES["A64"].high_memory
        assert not APP_TYPES["A32"].high_memory

    def test_high_communication_flag(self):
        # Sec. VII: high communication means T_C > 0.25.
        assert not APP_TYPES["B64"].high_communication
        assert APP_TYPES["C32"].high_communication
        assert APP_TYPES["D64"].high_communication


class TestLookup:
    def test_case_insensitive(self):
        assert get_type("d64") is APP_TYPES["D64"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_type("Z99")


class TestMakeApplication:
    def test_from_name(self):
        app = make_application("C64", nodes=100)
        assert app.comm_fraction == 0.5
        assert app.memory_per_node_gb == 64.0
        assert app.nodes == 100

    def test_from_type_object(self):
        app = make_application(APP_TYPES["A32"], nodes=10, time_steps=360)
        assert app.type_name == "A32"
        assert app.time_steps == 360

    def test_metadata_passed_through(self):
        app = make_application(
            "A32", nodes=10, app_id=7, arrival_time=100.0, deadline=1e9
        )
        assert app.app_id == 7
        assert app.arrival_time == 100.0
        assert app.deadline == 1e9

    def test_default_is_one_day(self):
        assert make_application("A32", nodes=10).time_steps == 1440


class TestPaperRange:
    def test_six_hours_to_two_days(self):
        low, high = paper_time_step_range()
        assert low == 360  # 6 h of one-minute steps
        assert high == 2880  # 48 h
