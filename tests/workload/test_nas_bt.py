"""Unit tests for the NAS BT communication-scaling model."""

import pytest

from repro.workload.nas_bt import (
    EXASCALE_CORES,
    BTParameterSet,
    bt_comm_fraction,
    bt_comm_ratio,
    ep_comm_fraction,
    nearest_table1_intensity,
    render_scaling_profile,
    scaling_profile,
    table1_type_for,
)


class TestCalibration:
    @pytest.mark.parametrize(
        "param_set,expected",
        [
            (BTParameterSet.SET_1, 0.22),
            (BTParameterSet.SET_2, 0.50),
            (BTParameterSet.SET_3, 0.80),
        ],
    )
    def test_exascale_anchors_match_reference(self, param_set, expected):
        """The model must hit [6]'s quoted 22/50/80% at exascale."""
        assert bt_comm_fraction(EXASCALE_CORES, param_set) == pytest.approx(expected)

    def test_fraction_grows_with_scale(self):
        small = bt_comm_fraction(1_000, BTParameterSet.SET_2)
        large = bt_comm_fraction(EXASCALE_CORES, BTParameterSet.SET_2)
        assert small < large

    def test_fraction_in_valid_range(self):
        for cores in (1, 1_000, 10**6, 10**9):
            for param_set in BTParameterSet:
                assert 0.0 < bt_comm_fraction(cores, param_set) < 1.0

    def test_harder_sets_more_communication(self):
        cores = 10**6
        values = [bt_comm_fraction(cores, s) for s in BTParameterSet]
        assert values == sorted(values)

    def test_ratio_fraction_consistency(self):
        cores = 12_000_000
        ratio = bt_comm_ratio(cores, BTParameterSet.SET_2)
        assert bt_comm_fraction(cores, BTParameterSet.SET_2) == pytest.approx(
            ratio / (1 + ratio)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            bt_comm_fraction(0, BTParameterSet.SET_1)


class TestEP:
    def test_always_zero(self):
        for cores in (1, 10**6, EXASCALE_CORES):
            assert ep_comm_fraction(cores) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ep_comm_fraction(-1)


class TestTable1Mapping:
    def test_snap_to_grid(self):
        assert nearest_table1_intensity(0.1) == 0.0
        assert nearest_table1_intensity(0.2) == 0.25
        assert nearest_table1_intensity(0.45) == 0.5
        assert nearest_table1_intensity(0.8) == 0.75

    def test_snap_validation(self):
        with pytest.raises(ValueError):
            nearest_table1_intensity(1.0)

    def test_exascale_types(self):
        """At exascale the three parameter sets land on B/C/D types —
        the communication diversity Table I encodes."""
        assert table1_type_for(EXASCALE_CORES, BTParameterSet.SET_1, 32.0) == "B32"
        assert table1_type_for(EXASCALE_CORES, BTParameterSet.SET_2, 64.0) == "C64"
        assert table1_type_for(EXASCALE_CORES, BTParameterSet.SET_3, 32.0) == "D32"

    def test_small_scale_collapses_to_low_comm(self):
        name = table1_type_for(1_000, BTParameterSet.SET_1, 32.0)
        assert name in ("A32", "B32")

    def test_memory_validation(self):
        with pytest.raises(ValueError):
            table1_type_for(1_000, BTParameterSet.SET_1, 48.0)


class TestProfiles:
    def test_scaling_profile_keys(self):
        profile = scaling_profile(BTParameterSet.SET_2, [10**3, 10**6])
        assert set(profile) == {10**3, 10**6}
        assert profile[10**3] < profile[10**6]

    def test_render(self):
        text = render_scaling_profile([10**3, 10**6, EXASCALE_CORES])
        assert "SET_1" in text and "SET_3" in text
        assert "123,000,000" in text
