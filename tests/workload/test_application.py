"""Unit tests for the application model (Sec. III-B)."""

import pytest

from repro.units import MINUTE, hours
from repro.workload.application import Application


def _app(**overrides):
    kwargs = dict(
        app_id=1,
        type_name="A32",
        time_steps=1440,
        comm_fraction=0.25,
        memory_per_node_gb=32.0,
        nodes=1200,
    )
    kwargs.update(overrides)
    return Application(**kwargs)


class TestDerivedQuantities:
    def test_baseline_is_time_steps_in_minutes(self):
        app = _app(time_steps=1440)
        assert app.baseline_time == pytest.approx(1440 * MINUTE)

    def test_baseline_independent_of_size(self):
        # Weak scaling: execution time depends only on time steps.
        assert _app(nodes=10).baseline_time == _app(nodes=100_000).baseline_time

    def test_work_fraction_complements_comm(self):
        app = _app(comm_fraction=0.75)
        assert app.work_fraction == pytest.approx(0.25)

    def test_total_memory(self):
        app = _app(nodes=100, memory_per_node_gb=64.0)
        assert app.total_memory_gb == pytest.approx(6400.0)

    def test_slack_without_deadline_is_none(self):
        assert _app().slack is None

    def test_slack_formula(self):
        app = _app(
            time_steps=60, arrival_time=hours(1), deadline=hours(1) + hours(1.5)
        )
        # baseline = 1h, so slack = 1.5h - 1h = 0.5h.
        assert app.slack == pytest.approx(hours(0.5))


class TestCopies:
    def test_scaled_to_changes_only_nodes(self):
        app = _app(nodes=100)
        scaled = app.scaled_to(5000)
        assert scaled.nodes == 5000
        assert scaled.time_steps == app.time_steps
        assert scaled.memory_per_node_gb == app.memory_per_node_gb

    def test_with_arrival(self):
        app = _app()
        moved = app.with_arrival(hours(2), deadline=hours(50))
        assert moved.arrival_time == hours(2)
        assert moved.deadline == hours(50)
        assert app.arrival_time == 0.0  # original untouched


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(time_steps=0),
            dict(comm_fraction=1.0),
            dict(comm_fraction=-0.1),
            dict(memory_per_node_gb=0.0),
            dict(nodes=0),
            dict(arrival_time=-1.0),
        ],
    )
    def test_invalid_fields_rejected(self, overrides):
        with pytest.raises(ValueError):
            _app(**overrides)

    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(ValueError):
            _app(arrival_time=100.0, deadline=50.0)
