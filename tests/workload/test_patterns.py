"""Unit tests for arrival-pattern generation (Sec. VI/VII)."""

import numpy as np
import pytest

from repro.constants import PATTERN_FRACTION_CHOICES
from repro.rng.streams import StreamFactory
from repro.units import hours
from repro.workload.arrivals import sample_arrival_times
from repro.workload.patterns import PatternBias, PatternGenerator
from repro.workload.synthetic import APP_TYPES

SYSTEM_NODES = 120_000


@pytest.fixture
def generator(streams):
    return PatternGenerator(streams, SYSTEM_NODES)


class TestArrivalTimes:
    def test_count(self, rng):
        assert sample_arrival_times(rng, count=100).size == 100

    def test_mean_interarrival(self, rng):
        times = sample_arrival_times(rng, count=20_000)
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert np.mean(gaps) == pytest.approx(hours(2), rel=0.05)

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            sample_arrival_times(rng, count=-1)
        with pytest.raises(ValueError):
            sample_arrival_times(rng, mean_interarrival_s=0.0)


class TestUnbiasedPattern:
    def test_structure(self, generator):
        pattern = generator.generate(0)
        assert pattern.total_arrivals == 100
        assert len(pattern.fill_apps) > 0
        assert pattern.index == 0
        assert pattern.bias is PatternBias.UNBIASED

    def test_fill_starts_at_time_zero(self, generator):
        pattern = generator.generate(0)
        assert all(a.arrival_time == 0.0 for a in pattern.fill_apps)

    def test_fill_nearly_saturates_machine(self, generator):
        pattern = generator.generate(0)
        used = sum(a.nodes for a in pattern.fill_apps)
        smallest = round(min(PATTERN_FRACTION_CHOICES) * SYSTEM_NODES)
        assert used <= SYSTEM_NODES
        assert SYSTEM_NODES - used < smallest

    def test_arrivals_sorted_and_positive(self, generator):
        pattern = generator.generate(0)
        times = [a.arrival_time for a in pattern.arriving_apps]
        assert all(t > 0 for t in times)
        assert times == sorted(times)

    def test_sizes_from_paper_choices(self, generator):
        pattern = generator.generate(0)
        allowed = {round(f * SYSTEM_NODES) for f in PATTERN_FRACTION_CHOICES}
        assert {a.nodes for a in pattern.arriving_apps} <= allowed

    def test_baselines_from_paper_choices(self, generator):
        pattern = generator.generate(0)
        allowed = {hours(6), hours(12), hours(24), hours(48)}
        assert {a.baseline_time for a in pattern.arriving_apps} <= allowed

    def test_every_arrival_has_eq1_deadline(self, generator):
        pattern = generator.generate(0)
        for app in pattern.arriving_apps:
            assert app.deadline is not None
            u = (app.deadline - app.arrival_time) / app.baseline_time
            assert 1.2 <= u <= 2.0

    def test_unique_ids(self, generator):
        pattern = generator.generate(0)
        ids = [a.app_id for a in pattern.all_apps]
        assert len(ids) == len(set(ids))

    def test_reproducible(self, streams):
        a = PatternGenerator(StreamFactory(99), SYSTEM_NODES).generate(3)
        b = PatternGenerator(StreamFactory(99), SYSTEM_NODES).generate(3)
        assert [x.app_id for x in a.all_apps] == [x.app_id for x in b.all_apps]
        assert [x.nodes for x in a.all_apps] == [x.nodes for x in b.all_apps]
        assert [x.arrival_time for x in a.arriving_apps] == [
            x.arrival_time for x in b.arriving_apps
        ]

    def test_patterns_differ_by_index(self, generator):
        a = generator.generate(0)
        b = generator.generate(1)
        assert [x.nodes for x in a.arriving_apps] != [x.nodes for x in b.arriving_apps]


class TestBiases:
    def test_high_memory_bias(self, generator):
        pattern = generator.generate(0, bias=PatternBias.HIGH_MEMORY)
        assert all(a.memory_per_node_gb == 64.0 for a in pattern.all_apps)

    def test_high_communication_bias(self, generator):
        pattern = generator.generate(0, bias=PatternBias.HIGH_COMMUNICATION)
        assert all(a.comm_fraction > 0.25 for a in pattern.all_apps)

    def test_large_bias(self, generator):
        pattern = generator.generate(0, bias=PatternBias.LARGE)
        min_large = round(0.12 * SYSTEM_NODES)
        assert all(a.nodes >= min_large for a in pattern.arriving_apps)

    def test_unbiased_uses_all_types_eventually(self, generator):
        seen = set()
        for i in range(5):
            pattern = generator.generate(i)
            seen |= {a.type_name for a in pattern.all_apps}
        assert seen == set(APP_TYPES)


class TestGenerateMany:
    def test_count_and_indices(self, generator):
        patterns = generator.generate_many(count=5)
        assert [p.index for p in patterns] == list(range(5))

    def test_validation(self, streams):
        with pytest.raises(ValueError):
            PatternGenerator(streams, 0)
