"""Unit tests for Eq. 1 deadline assignment."""

import numpy as np
import pytest

from repro.units import hours
from repro.workload.deadlines import sample_deadline, with_deadline
from repro.workload.synthetic import make_application


class TestEq1:
    def test_bounds(self, rng):
        arrival, baseline = hours(5), hours(24)
        for _ in range(500):
            d = sample_deadline(rng, arrival, baseline)
            assert arrival + 1.2 * baseline <= d <= arrival + 2.0 * baseline

    def test_mean_multiplier(self, rng):
        baseline = hours(10)
        draws = [sample_deadline(rng, 0.0, baseline) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(1.6 * baseline, rel=0.02)

    def test_custom_bounds(self, rng):
        d = sample_deadline(rng, 0.0, 100.0, low=3.0, high=3.0)
        assert d == pytest.approx(300.0)

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            sample_deadline(rng, -1.0, 10.0)
        with pytest.raises(ValueError):
            sample_deadline(rng, 0.0, 0.0)
        with pytest.raises(ValueError):
            sample_deadline(rng, 0.0, 10.0, low=2.0, high=1.0)


class TestWithDeadline:
    def test_attaches_valid_deadline(self, rng):
        app = make_application("A32", nodes=10, time_steps=360, arrival_time=hours(3))
        dated = with_deadline(rng, app)
        assert dated.deadline is not None
        assert dated.slack is not None and dated.slack > 0
        # Eq. 1 guarantees at least 20% headroom at arrival.
        assert dated.slack >= 0.2 * app.baseline_time - 1e-6

    def test_original_unchanged(self, rng):
        app = make_application("A32", nodes=10, time_steps=360)
        with_deadline(rng, app)
        assert app.deadline is None
