"""Tests for DatacenterResult observability helpers."""

import pytest

from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.selection import FixedSelector
from repro.platform.presets import exascale_system
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rm.fcfs import FCFS
from repro.rng.streams import StreamFactory
from repro.workload.patterns import PatternGenerator

NODES = 2400


@pytest.fixture(scope="module")
def result():
    pattern = PatternGenerator(StreamFactory(5), NODES).generate(0, arrivals=15)
    return run_datacenter(
        pattern,
        FCFS(),
        FixedSelector(ParallelRecovery()),
        exascale_system(NODES),
        DatacenterConfig(),
    )


class TestTechniqueCounts:
    def test_counts_cover_started_jobs(self, result):
        counts = result.technique_counts()
        started = sum(1 for r in result.records if r.start_time is not None)
        assert sum(counts.values()) == started
        assert set(counts) == {"parallel_recovery"}


class TestMeanWait:
    def test_nonnegative(self, result):
        assert result.mean_wait_s() >= 0.0

    def test_fill_jobs_have_zero_wait(self, result):
        fill_started = [
            r for r in result.records if r.is_fill and r.start_time is not None
        ]
        assert all(r.start_time == 0.0 for r in fill_started)


class TestUtilization:
    def test_bounded(self, result):
        u = result.utilization(NODES)
        assert 0.0 < u <= 1.0

    def test_oversubscribed_machine_is_busy(self, result):
        # The pattern saturates the machine at t = 0 and stays
        # oversubscribed, so utilization should be substantial.
        assert result.utilization(NODES) > 0.5

    def test_validation(self, result):
        with pytest.raises(ValueError):
            result.utilization(0)

    def test_failure_count_scales_with_busy_node_time(self):
        """Sanity link between utilization and the Eq. 2 failure rate:
        observed failures ~ busy-node-seconds / MTBF.  Uses a short
        MTBF so the expected count is far from Poisson noise."""
        from repro.units import years

        pattern = PatternGenerator(StreamFactory(5), NODES).generate(0, arrivals=15)
        result = run_datacenter(
            pattern,
            FCFS(),
            FixedSelector(ParallelRecovery()),
            exascale_system(NODES),
            DatacenterConfig(node_mtbf_s=years(0.1)),
        )
        busy_node_seconds = result.utilization(NODES) * NODES * result.end_time
        expected = busy_node_seconds / years(0.1)
        assert expected > 50
        assert result.failures_injected == pytest.approx(expected, rel=0.3)
