"""Unit tests for the semi-blocking checkpointing extension."""

import pytest

from repro.core.execution import ResilientExecution
from repro.core.single_app import SingleAppConfig, run_trials
from repro.failures.generator import Failure
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.resilience.checkpoint_restart import (
    CheckpointRestart,
    SemiBlockingCheckpointRestart,
)
from repro.units import years
from repro.workload.synthetic import make_application


def _plan(blocking_fraction=0.5, cost=10.0, period=100.0, time_steps=10):
    app = make_application("A32", nodes=4, time_steps=time_steps)
    level = CheckpointLevel(
        index=1,
        recovers_severity=3,
        cost_s=cost,
        restart_s=20.0,
        period_s=period,
        blocking_fraction=blocking_fraction,
    )
    return ExecutionPlan(
        app=app, technique="semi", work_rate=1.0, levels=(level,), nodes_required=4
    )


def _run(sim, plan, failures=()):
    engine = ResilientExecution(sim, plan)
    proc = sim.process(engine.run(), name="app")
    for time, severity in failures:
        sim.schedule_at(
            time,
            lambda _e, s=severity: proc.interrupt(
                Failure(time=sim.now, node_id=0, severity=s)
            )
            if proc.alive
            else None,
        )
    sim.run(until=1e9)
    return engine.stats


class TestSemiBlockingEngine:
    def test_only_blocking_part_stalls(self, sim):
        # 600 s work, 100 s periods, 10 s cost at 50% blocking:
        # 5 checkpoints x 5 s stall = 625 s total.
        stats = _run(sim, _plan(blocking_fraction=0.5))
        assert stats.completed
        assert stats.elapsed_s == pytest.approx(600.0 + 5 * 5.0)
        assert stats.checkpoint_time_s == pytest.approx(25.0)

    def test_commit_applies_after_full_cost(self, sim):
        # Checkpoint at work 100 blocks t=100..105, commits at t=110.
        # Failure at t=120 (after commit): rollback to 100.
        stats = _run(sim, _plan(blocking_fraction=0.5), failures=[(120.0, 1)])
        assert stats.completed
        # At t=120 the work position is 115 (resumed at 105).
        # Rollback to 100 => 15 s rework.
        assert stats.rework_time_s == pytest.approx(15.0)

    def test_failure_before_commit_voids_checkpoint(self, sim):
        # Failure at t=107: blocking part done (t=105) but the full
        # cost elapses only at t=110 — the checkpoint must be void and
        # the rollback goes to 0.
        stats = _run(sim, _plan(blocking_fraction=0.5), failures=[(107.0, 1)])
        assert stats.completed
        # Position at t=107 is 102 (work resumed at 105): rework 102 s.
        assert stats.rework_time_s == pytest.approx(102.0)
        assert stats.failed_checkpoints >= 1

    def test_fully_blocking_unchanged(self, sim):
        baseline = _run(sim, _plan(blocking_fraction=1.0))
        assert baseline.elapsed_s == pytest.approx(600.0 + 5 * 10.0)

    def test_checkpoint_counts_only_committed(self, sim):
        stats = _run(sim, _plan(blocking_fraction=0.5), failures=[(107.0, 1)])
        # The voided checkpoint must not appear in the committed count
        # for the window before the failure; later re-execution commits
        # its own checkpoints, so just check the void was recorded.
        assert stats.failed_checkpoints >= 1


class TestSemiBlockingTechnique:
    def test_validation(self):
        with pytest.raises(ValueError):
            SemiBlockingCheckpointRestart(0.0)
        with pytest.raises(ValueError):
            SemiBlockingCheckpointRestart(1.5)

    def test_plan_carries_fraction(self, small_system, small_app):
        plan = SemiBlockingCheckpointRestart(0.25).plan(
            small_app, small_system, years(10)
        )
        assert plan.levels[0].blocking_fraction == pytest.approx(0.25)

    def test_beats_blocking_cr_in_failure_light_runs(self, small_system):
        """With rare failures semi-blocking strictly reduces overhead."""
        app = make_application("A64", nodes=1200, time_steps=1440)
        config = SingleAppConfig(seed=3)
        blocking = run_trials(app, CheckpointRestart(), small_system, 6, config)
        semi = run_trials(
            app, SemiBlockingCheckpointRestart(0.25), small_system, 6, config
        )
        assert semi.mean_efficiency > blocking.mean_efficiency

    def test_level_blocking_fraction_validation(self):
        with pytest.raises(ValueError):
            CheckpointLevel(
                index=1,
                recovers_severity=3,
                cost_s=1.0,
                restart_s=1.0,
                period_s=10.0,
                blocking_fraction=0.0,
            )
