"""Tests for PFS contention (shared-resource checkpointing extension)."""

import pytest

from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.execution import ResilientExecution
from repro.core.selection import FixedSelector
from repro.platform.presets import exascale_system
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rm.fcfs import FCFS
from repro.rng.streams import StreamFactory
from repro.sim.resources import SlotPool
from repro.units import years
from repro.workload.patterns import PatternGenerator
from repro.workload.synthetic import make_application


def _pfs_plan(cost=10.0, period=100.0, time_steps=10):
    app = make_application("A32", nodes=4, time_steps=time_steps)
    level = CheckpointLevel(
        index=1,
        recovers_severity=3,
        cost_s=cost,
        restart_s=cost,
        period_s=period,
        shared_resource="pfs",
    )
    return ExecutionPlan(
        app=app, technique="t", work_rate=1.0, levels=(level,), nodes_required=4
    )


class TestEngineContention:
    def test_no_pool_means_no_waiting(self, sim):
        engine = ResilientExecution(sim, _pfs_plan())
        sim.process(engine.run())
        sim.run(until=1e8)
        assert engine.stats.completed
        assert engine.stats.resource_wait_s == 0.0
        assert engine.stats.elapsed_s == pytest.approx(600.0 + 5 * 10.0)

    def test_uncontended_pool_adds_nothing(self, sim):
        pool = SlotPool(sim, slots=4)
        engine = ResilientExecution(sim, _pfs_plan(), resources={"pfs": pool})
        sim.process(engine.run())
        sim.run(until=1e8)
        assert engine.stats.completed
        assert engine.stats.resource_wait_s == 0.0
        assert pool.free == 4  # everything released

    def test_two_apps_one_slot_serialize_checkpoints(self, sim):
        pool = SlotPool(sim, slots=1)
        engines = []
        for _ in range(2):
            engine = ResilientExecution(sim, _pfs_plan(), resources={"pfs": pool})
            engines.append(engine)
            sim.process(engine.run())
        sim.run(until=1e8)
        assert all(e.stats.completed for e in engines)
        # Both hit the first boundary simultaneously; the loser queues
        # for the full 10 s checkpoint.  That one delay de-synchronizes
        # the two schedules, so later boundaries no longer collide —
        # contention self-staggers, as on real parallel file systems.
        total_wait = sum(e.stats.resource_wait_s for e in engines)
        assert total_wait == pytest.approx(10.0)
        # Later boundaries produce zero-duration handoffs (request lands
        # at the same instant the holder releases), which count as
        # contended requests but add no wait.
        assert pool.contended_requests >= 1
        assert pool.free == 1
        # The delayed app finishes exactly one wait later.
        ends = sorted(e.stats.end_time for e in engines)
        assert ends[1] - ends[0] == pytest.approx(10.0)

    def test_untagged_levels_ignore_pool(self, sim):
        app = make_application("A32", nodes=4, time_steps=10)
        level = CheckpointLevel(
            index=1, recovers_severity=3, cost_s=10.0, restart_s=10.0,
            period_s=100.0,  # no shared_resource
        )
        plan = ExecutionPlan(
            app=app, technique="t", work_rate=1.0, levels=(level,), nodes_required=4
        )
        pool = SlotPool(sim, slots=1)
        engines = []
        for _ in range(2):
            engine = ResilientExecution(sim, plan, resources={"pfs": pool})
            engines.append(engine)
            sim.process(engine.run())
        sim.run(until=1e8)
        assert all(e.stats.resource_wait_s == 0.0 for e in engines)

    def test_wall_time_partition_includes_wait(self, sim):
        pool = SlotPool(sim, slots=1)
        engines = []
        for _ in range(3):
            engine = ResilientExecution(sim, _pfs_plan(), resources={"pfs": pool})
            engines.append(engine)
            sim.process(engine.run())
        sim.run(until=1e8)
        for engine in engines:
            s = engine.stats
            total = (
                s.work_time_s
                + s.rework_time_s
                + s.checkpoint_time_s
                + s.restart_time_s
                + s.resource_wait_s
            )
            assert total == pytest.approx(s.elapsed_s, abs=1e-6)


class TestPaperTechniquesTagging:
    def test_pfs_levels_tagged(self, small_system, small_app):
        mtbf = years(10)
        cr = CheckpointRestart().plan(small_app, small_system, mtbf)
        assert cr.levels[0].shared_resource == "pfs"
        ml = MultilevelCheckpoint().plan(small_app, small_system, mtbf)
        assert ml.levels[0].shared_resource is None
        assert ml.levels[1].shared_resource is None
        assert ml.levels[2].shared_resource == "pfs"
        pr = ParallelRecovery().plan(small_app, small_system, mtbf)
        assert pr.levels[0].shared_resource is None


class TestDatacenterContention:
    def _run(self, pfs_slots, technique):
        pattern = PatternGenerator(StreamFactory(3), 2400).generate(0, arrivals=12)
        return run_datacenter(
            pattern,
            FCFS(),
            FixedSelector(technique),
            exascale_system(2400),
            DatacenterConfig(node_mtbf_s=years(1), pfs_slots=pfs_slots),
        )

    def test_contention_delays_cr_jobs(self):
        free = self._run(None, CheckpointRestart())
        tight = self._run(1, CheckpointRestart())
        free_wait = sum(
            r.stats.resource_wait_s for r in free.records if r.stats is not None
        )
        tight_wait = sum(
            r.stats.resource_wait_s for r in tight.records if r.stats is not None
        )
        assert free_wait == 0.0
        assert tight_wait > 0.0
        assert tight.dropped_pct >= free.dropped_pct

    def test_parallel_recovery_immune(self):
        tight = self._run(1, ParallelRecovery())
        waits = [
            r.stats.resource_wait_s for r in tight.records if r.stats is not None
        ]
        assert all(w == 0.0 for w in waits)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DatacenterConfig(pfs_slots=0)
