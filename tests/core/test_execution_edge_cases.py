"""Edge-case tests for the execution engine."""

import pytest

from repro.core.execution import ResilientExecution
from repro.failures.generator import Failure
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.workload.synthetic import make_application


def _plan(time_steps=10, cost=10.0, restart=20.0, period=100.0, sigma=1.0):
    app = make_application("A32", nodes=4, time_steps=time_steps)
    level = CheckpointLevel(
        index=1, recovers_severity=3, cost_s=cost, restart_s=restart, period_s=period
    )
    return ExecutionPlan(
        app=app,
        technique="edge",
        work_rate=1.0,
        levels=(level,),
        nodes_required=4,
        recovery_speedup=sigma,
    )


def _run_with_failures(sim, plan, times, severity=1):
    engine = ResilientExecution(sim, plan)
    proc = sim.process(engine.run())
    for t in times:
        sim.schedule_at(
            t,
            lambda _e: proc.interrupt(
                Failure(time=sim.now, node_id=0, severity=severity)
            )
            if proc.alive
            else None,
        )
    sim.run(until=1e8)
    return engine.stats


class TestBoundaryEdgeCases:
    def test_zero_cost_checkpoints(self, sim):
        stats = _run_with_failures(sim, _plan(cost=0.0), [])
        assert stats.completed
        assert stats.elapsed_s == pytest.approx(600.0)
        assert stats.total_checkpoints == 5

    def test_zero_restart_cost(self, sim):
        stats = _run_with_failures(sim, _plan(restart=0.0), [250.0])
        assert stats.completed
        assert stats.restart_time_s == 0.0
        assert stats.rework_time_s > 0.0

    def test_period_longer_than_work_means_no_checkpoints(self, sim):
        stats = _run_with_failures(sim, _plan(period=10_000.0), [])
        assert stats.completed
        assert stats.total_checkpoints == 0
        assert stats.elapsed_s == pytest.approx(600.0)

    def test_failure_at_exact_boundary_instant(self, sim):
        """A failure delivered exactly when a work segment completes:
        the kernel's priority ordering delivers the failure first, the
        completed work stands, and the run still finishes correctly."""
        stats = _run_with_failures(sim, _plan(), [100.0])
        assert stats.completed
        assert stats.failures == 1

    def test_failure_in_final_partial_segment(self, sim):
        # 600 s work; failure at t=595 (position ~575 after 2 ckpts...).
        stats = _run_with_failures(sim, _plan(), [595.0])
        assert stats.completed
        assert stats.restarts == 1

    def test_many_rapid_failures_still_terminate(self, sim):
        times = [50.0 + 5.0 * i for i in range(40)]
        stats = _run_with_failures(sim, _plan(restart=1.0), times)
        assert stats.completed
        assert stats.failures == 40

    def test_failure_during_recovery_rolls_back_again(self, sim):
        # First failure at 250 (rework 200->230 zone); second at 280
        # lands during the recovery re-execution.
        stats = _run_with_failures(sim, _plan(sigma=1.0), [250.0, 280.0])
        assert stats.completed
        assert stats.restarts == 2

    def test_recovery_catches_up_then_normal_speed(self, sim):
        """With sigma > 1 the furthest point acts as the recovery/normal
        boundary: total elapsed must reflect fast rework then normal
        execution."""
        plan = _plan(sigma=4.0)
        stats = _run_with_failures(sim, plan, [250.0])
        assert stats.completed
        # Rework was 30 s of work at 4x speed = 7.5 s of wall.
        assert stats.rework_time_s == pytest.approx(30.0 / 4.0)
        assert stats.work_time_s == pytest.approx(600.0)


class TestSeverityEdgeCases:
    def test_worst_severity_with_single_level(self, sim):
        stats = _run_with_failures(sim, _plan(), [250.0], severity=3)
        assert stats.completed
        assert stats.restarts == 1

    def test_escalating_severity_during_restart(self, sim):
        """A severity-3 failure during the restart of a severity-1
        failure must re-resolve the restore point at the higher
        severity (covered for multilevel plans)."""
        app = make_application("A32", nodes=4, time_steps=10)
        levels = (
            CheckpointLevel(index=1, recovers_severity=1, cost_s=1.0,
                            restart_s=10.0, period_s=100.0),
            CheckpointLevel(index=2, recovers_severity=3, cost_s=5.0,
                            restart_s=30.0, period_s=300.0),
        )
        plan = ExecutionPlan(
            app=app, technique="t", work_rate=1.0, levels=levels, nodes_required=4
        )
        engine = ResilientExecution(sim, plan)
        proc = sim.process(engine.run())
        # Severity-1 failure at t=450; restart (10 s) runs 450..460;
        # severity-3 failure at t=455 escalates to the level-2 restart.
        sim.schedule_at(450.0, lambda _e: proc.interrupt(
            Failure(time=sim.now, node_id=0, severity=1)))
        sim.schedule_at(455.0, lambda _e: proc.interrupt(
            Failure(time=sim.now, node_id=0, severity=3)))
        sim.run(until=1e8)
        stats = engine.stats
        assert stats.completed
        assert stats.failures == 2
        # Restart cost: 5 s aborted level-1 + full 30 s level-2.
        assert stats.restart_time_s == pytest.approx(35.0)
