"""Unit and integration tests for the datacenter simulator (Sec. VI)."""

import pytest

from repro.core.datacenter import (
    DatacenterConfig,
    DatacenterSimulator,
    JobStatus,
    run_datacenter,
)
from repro.core.selection import FixedSelector, ResilienceSelection
from repro.platform.presets import exascale_system
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rm.fcfs import FCFS
from repro.rm.slack import SlackBased
from repro.rng.streams import StreamFactory
from repro.units import years
from repro.workload.patterns import PatternGenerator

NODES = 2400


def _pattern(index=0, arrivals=20, seed=11, **kwargs):
    return PatternGenerator(StreamFactory(seed), NODES).generate(
        index, arrivals=arrivals, **kwargs
    )


def _run(pattern=None, manager=None, selector=None, config=None):
    pattern = pattern or _pattern()
    return run_datacenter(
        pattern,
        manager or FCFS(),
        selector or FixedSelector(ParallelRecovery()),
        exascale_system(NODES),
        config or DatacenterConfig(),
    )


class TestLifecycle:
    def test_every_app_resolved(self):
        result = _run()
        assert all(
            r.status in (JobStatus.COMPLETED, JobStatus.DROPPED)
            for r in result.records
        )

    def test_fill_apps_start_at_zero(self):
        result = _run()
        fill = [r for r in result.records if r.is_fill]
        assert fill
        assert all(r.start_time == 0.0 for r in fill if r.start_time is not None)

    def test_completions_respect_baseline(self):
        result = _run()
        for r in result.records:
            if r.status is JobStatus.COMPLETED:
                assert r.end_time - r.start_time >= r.app.baseline_time - 1e-6

    def test_failures_injected(self):
        config = DatacenterConfig(node_mtbf_s=years(0.05))
        result = _run(config=config)
        assert result.failures_injected > 0

    def test_dropped_pct_counts_only_arrivals(self):
        result = _run()
        arriving = result.arriving_records()
        assert len(arriving) == 20
        expected = 100.0 * sum(r.dropped for r in arriving) / 20
        assert result.dropped_pct == pytest.approx(expected)

    def test_records_sorted_by_id(self):
        result = _run()
        ids = [r.app.app_id for r in result.records]
        assert ids == sorted(ids)

    def test_completed_after_deadline_counts_dropped(self):
        result = _run()
        for r in result.records:
            if (
                r.status is JobStatus.COMPLETED
                and r.app.deadline is not None
                and r.end_time > r.app.deadline
            ):
                assert r.dropped


class TestIdealBaseline:
    def test_no_failures_no_overhead(self):
        config = DatacenterConfig(ideal=True)
        result = _run(config=config)
        assert result.failures_injected == 0
        for r in result.records:
            if r.status is JobStatus.COMPLETED:
                assert r.end_time - r.start_time == pytest.approx(
                    r.app.baseline_time
                )

    def test_ideal_drops_at_most_as_many_on_average(self):
        """With the same pattern and FCFS, the ideal baseline should not
        drop (meaningfully) more than a failure-laden run."""
        pattern = _pattern(arrivals=30)
        real = _run(pattern=pattern, config=DatacenterConfig(node_mtbf_s=years(1)))
        ideal = _run(pattern=pattern, config=DatacenterConfig(ideal=True))
        assert ideal.dropped_pct <= real.dropped_pct + 15.0


class TestResilienceIntegration:
    def test_selection_runs(self):
        config = DatacenterConfig()
        selector = ResilienceSelection(config.node_mtbf_s)
        result = _run(selector=selector, config=config)
        assert result.selector_name == "selection"
        techs = {r.technique for r in result.records if r.technique}
        assert techs <= {"checkpoint_restart", "multilevel", "parallel_recovery"}

    def test_slack_manager_drops_proactively(self):
        result = _run(manager=SlackBased())
        assert result.rm_name == "slack"
        # Slack never lets an app run past its deadline knowingly:
        # dropped pending apps have no start time.
        for r in result.records:
            if r.status is JobStatus.DROPPED and r.start_time is None:
                assert r.end_time is not None

    def test_reruns_are_deterministic(self):
        pattern = _pattern()
        a = _run(pattern=pattern)
        b = _run(pattern=pattern)
        assert a.dropped_pct == b.dropped_pct
        assert a.failures_injected == b.failures_injected

    def test_system_left_clean(self):
        system = exascale_system(NODES)
        simulator = DatacenterSimulator(
            _pattern(), FCFS(), FixedSelector(ParallelRecovery()), system
        )
        simulator.run()
        assert system.active_nodes == 0
        system.check_invariants()

    def test_horizon_drops_unresolved(self):
        """With an absurdly short horizon, unfinished jobs count as
        dropped rather than hanging the simulation."""
        config = DatacenterConfig(horizon_after_last_arrival_s=1.0)
        result = _run(config=config)
        assert all(
            r.status in (JobStatus.COMPLETED, JobStatus.DROPPED)
            for r in result.records
        )
        assert result.dropped_pct > 50.0
