"""Unit tests for the Sec. V single-application simulator."""

import pytest

from repro.core.single_app import SingleAppConfig, run_trials, simulate_application
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.resilience.redundancy import Redundancy
from repro.units import years
from repro.workload.synthetic import make_application


class TestConfig:
    def test_defaults(self):
        config = SingleAppConfig()
        assert config.node_mtbf_s == pytest.approx(years(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            SingleAppConfig(node_mtbf_s=0.0)
        with pytest.raises(ValueError):
            SingleAppConfig(max_time_factor=1.0)

    def test_custom_severity(self):
        config = SingleAppConfig(severity_pmf=(0.5, 0.3, 0.2))
        assert config.severity_model().probability(3) == pytest.approx(0.2)


class TestSimulateApplication:
    def test_completes_and_reports(self, small_system, small_app):
        stats = simulate_application(
            small_app, CheckpointRestart(), small_system, trial=0
        )
        assert stats.completed
        assert 0 < stats.efficiency() <= 1.0
        assert stats.elapsed_s >= small_app.baseline_time

    def test_reproducible_per_trial(self, small_system, small_app):
        a = simulate_application(small_app, CheckpointRestart(), small_system, trial=3)
        b = simulate_application(small_app, CheckpointRestart(), small_system, trial=3)
        assert a.elapsed_s == b.elapsed_s
        assert a.failures == b.failures

    def test_trials_differ(self, small_system):
        # Use an unreliable environment so failures are common.
        app = make_application("A32", nodes=1200, time_steps=600)
        config = SingleAppConfig(node_mtbf_s=years(0.5))
        a = simulate_application(app, CheckpointRestart(), small_system, config, 0)
        b = simulate_application(app, CheckpointRestart(), small_system, config, 1)
        assert a.elapsed_s != b.elapsed_s

    def test_failures_actually_occur(self, small_system):
        app = make_application("A32", nodes=1200, time_steps=1440)
        config = SingleAppConfig(node_mtbf_s=years(0.25))
        stats = simulate_application(app, CheckpointRestart(), small_system, config, 0)
        assert stats.failures > 0
        assert stats.restarts > 0

    def test_walltime_cap_enforced(self, small_system):
        """In a pathological environment the run is cut at the cap and
        efficiency collapses (Fig. 3 Checkpoint Restart behaviour)."""
        app = make_application("A64", nodes=1200, time_steps=1440)
        config = SingleAppConfig(node_mtbf_s=3600.0, max_time_factor=3.0)
        stats = simulate_application(app, CheckpointRestart(), small_system, config, 0)
        assert not stats.completed
        assert stats.efficiency() <= 1.0 / 3.0 + 0.01

    def test_all_techniques_run(self, small_system, comm_app):
        for technique in (
            CheckpointRestart(),
            MultilevelCheckpoint(),
            ParallelRecovery(),
            Redundancy.partial(),
            Redundancy.full(),
        ):
            stats = simulate_application(comm_app, technique, small_system, trial=0)
            assert stats.completed, technique.name


class TestRunTrials:
    def test_collects_requested_trials(self, small_system, small_app):
        result = run_trials(small_app, CheckpointRestart(), small_system, trials=5)
        assert len(result.efficiencies) == 5
        assert not result.infeasible
        assert 0 < result.mean_efficiency <= 1.0

    def test_infeasible_redundancy_zero_efficiency(self, small_system):
        app = make_application("A32", nodes=900)  # r=1.5 needs 1350 > 1200
        result = run_trials(app, Redundancy.partial(), small_system, trials=5)
        assert result.infeasible
        assert result.mean_efficiency == 0.0
        assert result.std_efficiency == 0.0
        assert result.efficiencies == []

    def test_keep_stats(self, small_system, small_app):
        result = run_trials(
            small_app, CheckpointRestart(), small_system, trials=3, keep_stats=True
        )
        assert len(result.stats) == 3

    def test_invalid_trials(self, small_system, small_app):
        with pytest.raises(ValueError):
            run_trials(small_app, CheckpointRestart(), small_system, trials=0)

    def test_std_zero_for_single_trial(self, small_system, small_app):
        result = run_trials(small_app, CheckpointRestart(), small_system, trials=1)
        assert result.std_efficiency == 0.0
