"""Equivalence tests for the failure-horizon fast path.

The fast path (closed-form event skipping between failures) must be
invisible: every statistic bit-identical to the stepped event-by-event
path, engaging only when nothing observes the run.  See
docs/PERFORMANCE.md for the exactness argument these tests enforce.
"""

import math

import pytest

import repro.core.execution as execution
from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.execution import ResilientExecution
from repro.core.selection import FixedSelector
from repro.core.single_app import (
    FailureDriver,
    SingleAppConfig,
    simulate_application,
)
from repro.failures.generator import AppFailureGenerator, Failure
from repro.obs.sinks import MetricsSink
from repro.platform.presets import exascale_system
from repro.resilience import get_technique, scaling_study_techniques
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.rm.fcfs import FCFS
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.sim.resources import SlotPool
from repro.units import years
from repro.workload.patterns import PatternGenerator
from repro.workload.synthetic import make_application

HOUR = 3600.0


def _stats_tuple(stats):
    """Every observable field, for exact (bitwise) comparison."""
    return (
        stats.start_time,
        stats.end_time,
        stats.completed,
        stats.failures,
        stats.restarts,
        stats.replica_failures_absorbed,
        dict(stats.checkpoints_taken),
        stats.failed_checkpoints,
        stats.work_time_s,
        stats.rework_time_s,
        stats.checkpoint_time_s,
        stats.restart_time_s,
        stats.resource_wait_s,
    )


def _assert_same_stats(a, b):
    ta, tb = _stats_tuple(a), _stats_tuple(b)
    # NaN-aware exact compare (end_time is NaN for uncompleted runs
    # until the cap is stamped on).
    for va, vb in zip(ta, tb):
        if isinstance(va, float) and math.isnan(va):
            assert isinstance(vb, float) and math.isnan(vb)
        else:
            assert va == vb, (ta, tb)


def _wired_run(
    technique,
    fast,
    monkeypatch,
    *,
    system_nodes=1_200,
    app_nodes=120,
    time_steps=60,
    app_type="A32",
    mtbf=200 * HOUR,
    trial=0,
    seed=99,
    sinks=None,
    record_timeline=False,
    resources=None,
    horizon=True,
):
    """One single-app trial with direct access to sim and engine."""
    monkeypatch.setattr(execution, "FAST_PATH_ENABLED", fast)
    system = exascale_system(total_nodes=system_nodes)
    app = make_application(app_type, nodes=app_nodes, time_steps=time_steps)
    cfg = SingleAppConfig(node_mtbf_s=mtbf, seed=seed)
    plan = technique.plan(
        app, system, cfg.node_mtbf_s, severity=cfg.severity_model()
    )
    sim = Simulator()
    if sinks:
        for sink in sinks:
            sink.attach(sim.bus)
    cap = cfg.max_time_factor * plan.effective_work_s
    engine = ResilientExecution(
        sim,
        plan,
        until=cap,
        record_timeline=record_timeline,
        resources=resources,
    )
    proc = sim.process(engine.run(), name="app")
    generator = AppFailureGenerator(
        StreamFactory(cfg.seed).spawn_indexed(trial).stream("failures"),
        nodes=plan.nodes_required,
        node_mtbf_s=cfg.node_mtbf_s,
        severity=cfg.severity_model(),
    )
    driver = FailureDriver(sim, proc, generator)
    if horizon:
        engine.set_failure_horizon(driver.next_fire_time)
    sim.run(until=cap)
    if not engine.stats.completed:
        engine.stats.end_time = cap
    return sim, engine


class TestSingleAppBitIdentity:
    @pytest.mark.parametrize(
        "name", [t.name for t in scaling_study_techniques()]
    )
    def test_identical_across_techniques_and_trials(self, name, monkeypatch):
        technique = get_technique(name)
        engaged = 0
        for trial in range(5):
            _, slow = _wired_run(technique, False, monkeypatch, trial=trial)
            _, fast = _wired_run(technique, True, monkeypatch, trial=trial)
            assert slow.fast_jumps == 0
            engaged += fast.fast_jumps
            _assert_same_stats(slow.stats, fast.stats)
        assert engaged > 0  # the fast path actually ran

    def test_identical_under_heavy_failures(self, monkeypatch):
        technique = get_technique("multilevel")
        for trial in range(3):
            _, slow = _wired_run(
                technique, False, monkeypatch, mtbf=20 * HOUR, trial=trial
            )
            _, fast = _wired_run(
                technique, True, monkeypatch, mtbf=20 * HOUR, trial=trial
            )
            assert fast.stats.failures > 0
            _assert_same_stats(slow.stats, fast.stats)

    def test_public_api_identical(self, monkeypatch):
        system = exascale_system(total_nodes=1_200)
        app = make_application("A32", nodes=120, time_steps=60)
        cfg = SingleAppConfig(node_mtbf_s=100 * HOUR, seed=7)
        technique = get_technique("checkpoint_restart")
        monkeypatch.setattr(execution, "FAST_PATH_ENABLED", False)
        slow = simulate_application(app, technique, system, cfg, trial=1)
        monkeypatch.setattr(execution, "FAST_PATH_ENABLED", True)
        fast = simulate_application(app, technique, system, cfg, trial=1)
        _assert_same_stats(slow, fast)


class TestEventCountReduction:
    def test_fig1_style_c32_cell(self, monkeypatch):
        """Acceptance cell: C32 at a 2.5-year node MTBF must run on at
        least 5x fewer kernel events with bit-identical stats."""
        technique = get_technique("multilevel")
        kwargs = dict(
            system_nodes=120_000,
            app_nodes=30_000,
            time_steps=1440,
            app_type="C32",
            mtbf=years(2.5),
        )
        slow_sim, slow = _wired_run(technique, False, monkeypatch, **kwargs)
        fast_sim, fast = _wired_run(technique, True, monkeypatch, **kwargs)
        _assert_same_stats(slow.stats, fast.stats)
        assert fast.fast_jumps > 0
        assert slow_sim.event_count >= 5 * fast_sim.event_count


def _toy_plan(time_steps=10, levels=None, recovery_speedup=1.0):
    app = make_application("A32", nodes=4, time_steps=time_steps)
    if levels is None:
        levels = (
            CheckpointLevel(
                index=1,
                recovers_severity=3,
                cost_s=10.0,
                restart_s=20.0,
                period_s=100.0,
            ),
        )
    return ExecutionPlan(
        app=app,
        technique="test",
        work_rate=1.0,
        levels=levels,
        nodes_required=4,
        recovery_speedup=recovery_speedup,
    )


def _deterministic_run(sim, plan, failures, *, horizon=None):
    """Run *plan* injecting failures at fixed instants; a *horizon*
    callable turns the fast path on (use a lying one to force replay)."""
    engine = ResilientExecution(sim, plan, failure_horizon=horizon, until=1e9)
    proc = sim.process(engine.run(), name="app")
    for time, severity in failures:
        sim.schedule_at(
            time,
            lambda _e, s=severity: proc.interrupt(
                Failure(time=sim.now, node_id=0, severity=s)
            )
            if proc.alive
            else None,
        )
    sim.run(until=1e9)
    return engine


class TestReplayOnInterrupt:
    """A stale horizon means interrupts can land mid-jump; the engine
    must restore its pre-jump snapshot and replay to the interrupt
    instant exactly.  A provider that always claims "no failure ever"
    makes every injected failure land mid-jump."""

    LIAR = staticmethod(lambda: None)

    # Iterations end at 110, 220, ... (100 s work + 10 s checkpoint).
    @pytest.mark.parametrize(
        "fail_at",
        [
            50.0,  # mid work segment
            100.0,  # exactly at a work-segment end (wake instant)
            105.0,  # mid checkpoint
            110.0,  # exactly at a checkpoint end (wake instant)
            330.0,  # exactly at a later iteration boundary
            424.5,  # late, mid segment
        ],
    )
    def test_single_failure_matches_stepped(self, fail_at, monkeypatch):
        monkeypatch.setattr(execution, "FAST_PATH_ENABLED", True)
        failures = [(fail_at, 1)]
        stepped = _deterministic_run(Simulator(), _toy_plan(), failures)
        fast = _deterministic_run(
            Simulator(), _toy_plan(), failures, horizon=self.LIAR
        )
        assert stepped.fast_jumps == 0
        assert fast.fast_jumps > 0
        _assert_same_stats(stepped.stats, fast.stats)

    def test_repeated_failures_match_stepped(self, monkeypatch):
        monkeypatch.setattr(execution, "FAST_PATH_ENABLED", True)
        failures = [(90.0, 1), (130.0, 1), (220.0, 2), (500.0, 1)]
        stepped = _deterministic_run(
            Simulator(), _toy_plan(time_steps=20), failures
        )
        fast = _deterministic_run(
            Simulator(), _toy_plan(time_steps=20), failures, horizon=self.LIAR
        )
        assert fast.stats.failures == 4
        _assert_same_stats(stepped.stats, fast.stats)

    def test_recovery_speedup_replay(self, monkeypatch):
        monkeypatch.setattr(execution, "FAST_PATH_ENABLED", True)
        # A failure during parallel recovery's sped-up rework.
        failures = [(150.0, 1), (175.0, 1)]
        stepped = _deterministic_run(
            Simulator(), _toy_plan(recovery_speedup=2.0), failures
        )
        fast = _deterministic_run(
            Simulator(),
            _toy_plan(recovery_speedup=2.0),
            failures,
            horizon=self.LIAR,
        )
        assert fast.stats.rework_time_s > 0
        _assert_same_stats(stepped.stats, fast.stats)


class TestFallbacks:
    def test_flag_off_forces_stepped(self, monkeypatch):
        technique = get_technique("multilevel")
        _, engine = _wired_run(technique, False, monkeypatch)
        assert engine.fast_jumps == 0

    def test_no_horizon_forces_stepped(self, monkeypatch):
        technique = get_technique("multilevel")
        _, engine = _wired_run(technique, True, monkeypatch, horizon=False)
        assert engine.fast_jumps == 0

    def test_bus_observer_forces_stepped(self, monkeypatch):
        technique = get_technique("multilevel")
        sink = MetricsSink()
        _, engine = _wired_run(technique, True, monkeypatch, sinks=[sink])
        assert engine.fast_jumps == 0
        # And the observed run still matches the unobserved one.
        _, plain = _wired_run(technique, True, monkeypatch)
        _assert_same_stats(engine.stats, plain.stats)

    def test_record_timeline_forces_stepped(self, monkeypatch):
        technique = get_technique("multilevel")
        _, fast = _wired_run(
            technique, True, monkeypatch, record_timeline=True
        )
        _, slow = _wired_run(
            technique, False, monkeypatch, record_timeline=True
        )
        assert fast.fast_jumps == 0
        assert fast.timeline == slow.timeline
        assert fast.timeline  # non-trivial

    def test_contended_pool_forces_stepped(self, monkeypatch):
        # multilevel's top level checkpoints through the shared PFS;
        # handing the engine a pool makes slot waits possible, so the
        # fast path must stay off.
        technique = get_technique("multilevel")
        monkeypatch.setattr(execution, "FAST_PATH_ENABLED", True)
        sim = Simulator()
        system = exascale_system(total_nodes=1_200)
        app = make_application("A32", nodes=120, time_steps=60)
        plan = technique.plan(app, system, 200 * HOUR)
        pool = SlotPool(sim, 1, name="pfs")
        engine = ResilientExecution(
            sim,
            plan,
            resources={"pfs": pool},
            failure_horizon=lambda: None,
            until=1e9,
        )
        sim.process(engine.run(), name="app")
        sim.run(until=1e9)
        assert engine._contended
        assert engine.fast_jumps == 0
        assert engine.stats.completed


class TestDatacenterBitIdentity:
    NODES = 2_400

    def _run(self, fast, monkeypatch, mtbf):
        monkeypatch.setattr(execution, "FAST_PATH_ENABLED", fast)
        pattern = PatternGenerator(StreamFactory(11), self.NODES).generate(
            0, arrivals=20
        )
        return run_datacenter(
            pattern,
            FCFS(),
            FixedSelector(get_technique("multilevel")),
            exascale_system(self.NODES),
            DatacenterConfig(node_mtbf_s=mtbf),
        )

    def _digest(self, result):
        return (
            result.end_time,
            result.failures_injected,
            result.dropped_pct,
            [
                (
                    r.app.app_id,
                    str(r.status),
                    r.start_time,
                    r.end_time,
                    None if r.stats is None else _stats_tuple(r.stats),
                )
                for r in result.records
            ],
        )

    def test_identical_runs(self, monkeypatch):
        mtbf = years(0.05)  # heavy failure traffic: replay exercised
        slow = self._digest(self._run(False, monkeypatch, mtbf))
        fast = self._digest(self._run(True, monkeypatch, mtbf))
        assert slow[1] > 0  # failures actually injected
        assert slow == fast
