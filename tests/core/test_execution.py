"""Unit tests for the generic resilient-execution engine.

Failures are injected deterministically at chosen instants so every
branch of the engine (work, checkpoint, restart, recovery, replicas,
multi-level rollback) is exercised with known expected arithmetic.
"""

import pytest

from repro.core.execution import ResilientExecution
from repro.failures.generator import Failure
from repro.resilience.base import CheckpointLevel, ExecutionPlan, ReplicaPlan
from repro.workload.synthetic import make_application


def _plan(
    time_steps=10,  # 600 s baseline
    levels=None,
    work_rate=1.0,
    recovery_speedup=1.0,
    replicas=None,
    nodes=4,
):
    app = make_application("A32", nodes=nodes, time_steps=time_steps)
    if levels is None:
        levels = (
            CheckpointLevel(
                index=1, recovers_severity=3, cost_s=10.0, restart_s=20.0,
                period_s=100.0,
            ),
        )
    return ExecutionPlan(
        app=app,
        technique="test",
        work_rate=work_rate,
        levels=levels,
        nodes_required=replicas.physical_nodes if replicas else nodes,
        recovery_speedup=recovery_speedup,
        replicas=replicas,
    )


def _run(sim, plan, failures=()):
    """Run a plan injecting failures at given (time, severity) pairs."""
    engine = ResilientExecution(sim, plan)
    proc = sim.process(engine.run(), name="app")
    for spec in failures:
        time, severity = spec[0], spec[1]
        node = spec[2] if len(spec) > 2 else 0
        sim.schedule_at(
            time,
            lambda _e, s=severity, n=node: proc.interrupt(
                Failure(time=sim.now, node_id=n, severity=s)
            )
            if proc.alive
            else None,
        )
    sim.run(until=1e9)
    return engine.stats


class TestFailureFreeExecution:
    def test_elapsed_is_work_plus_checkpoints(self, sim):
        # 600 s of work, checkpoints every 100 s of work: boundaries at
        # 100..500 get checkpoints (10 s each); 600 ends the run.
        stats = _run(sim, _plan())
        assert stats.completed
        assert stats.elapsed_s == pytest.approx(600.0 + 5 * 10.0)
        assert stats.total_checkpoints == 5
        assert stats.failures == 0

    def test_final_boundary_skips_checkpoint(self, sim):
        # Work = exactly 6 periods: only 5 checkpoints (the last
        # boundary completes the app).
        stats = _run(sim, _plan(time_steps=10))
        assert stats.checkpoints_taken == {1: 5}

    def test_partial_final_segment(self, sim):
        # 250 s of work with 100 s periods: ckpts at 100, 200; 50 tail.
        app = make_application("A32", nodes=4, time_steps=5)  # 300 s
        level = CheckpointLevel(
            index=1, recovers_severity=3, cost_s=10.0, restart_s=20.0, period_s=120.0
        )
        plan = ExecutionPlan(
            app=app, technique="t", work_rate=1.0, levels=(level,), nodes_required=4
        )
        stats = _run(sim, plan)
        assert stats.total_checkpoints == 2  # at 120 and 240; 300 finishes
        assert stats.elapsed_s == pytest.approx(300.0 + 2 * 10.0)

    def test_work_rate_inflates_elapsed(self, sim):
        plan = _plan(work_rate=1.075, levels=(
            CheckpointLevel(index=1, recovers_severity=3, cost_s=0.0,
                            restart_s=0.0, period_s=1e9),
        ))
        stats = _run(sim, plan)
        assert stats.elapsed_s == pytest.approx(600.0 * 1.075)

    def test_efficiency_uses_uninflated_baseline(self, sim):
        plan = _plan(work_rate=2.0, levels=(
            CheckpointLevel(index=1, recovers_severity=3, cost_s=0.0,
                            restart_s=0.0, period_s=1e9),
        ))
        stats = _run(sim, plan)
        assert stats.efficiency() == pytest.approx(0.5)


class TestSingleFailure:
    def test_rollback_to_last_checkpoint(self, sim):
        # Failure at t=250: work done 250-10(ckpt at 100+10... timeline:
        # work 0-100 (t=0..100), ckpt (100..110), work (110..210 =
        # position 200), ckpt (210..220), work 220.. position at t=250
        # is 230. Restart 20 s, redo 200..600 with ckpts.
        stats = _run(sim, _plan(), failures=[(250.0, 1)])
        assert stats.completed
        assert stats.failures == 1
        assert stats.restarts == 1
        assert stats.restart_time_s == pytest.approx(20.0)
        # Lost work: position 230 back to 200 => 30 s rework.
        assert stats.rework_time_s == pytest.approx(30.0)
        # Total: failure-free 650 + restart 20 + rework 30 + the extra
        # checkpoints re-taken? Boundaries after rollback to 200 are
        # 300,400,500 — same count as an uninterrupted run, so elapsed:
        assert stats.elapsed_s == pytest.approx(650.0 + 20.0 + 30.0)

    def test_failure_with_no_checkpoint_restarts_from_zero(self, sim):
        stats = _run(sim, _plan(), failures=[(50.0, 1)])
        assert stats.completed
        # Rollback to 0; rework 50 s.
        assert stats.rework_time_s == pytest.approx(50.0)

    def test_failure_during_checkpoint_discards_it(self, sim):
        # Checkpoint runs t=100..110; fail at 105.
        stats = _run(sim, _plan(), failures=[(105.0, 1)])
        assert stats.completed
        assert stats.failed_checkpoints == 1
        # Rolled back to 0 (no committed checkpoint yet): rework 100 s.
        assert stats.rework_time_s == pytest.approx(100.0)

    def test_failure_during_restart_restarts_restart(self, sim):
        # First failure at 250 triggers a 20 s restart (250..270);
        # second failure at 260 interrupts it; restart runs again.
        stats = _run(sim, _plan(), failures=[(250.0, 1), (260.0, 1)])
        assert stats.completed
        assert stats.failures == 2
        # restart time: 10 s (aborted) + 20 s (full).
        assert stats.restart_time_s == pytest.approx(30.0)

    def test_recovery_speedup_shrinks_rework_time(self, sim):
        slow = _run(sim, _plan(), failures=[(250.0, 1)])
        sim2 = type(sim)()
        fast = _run(sim2, _plan(recovery_speedup=4.0), failures=[(250.0, 1)])
        assert slow.rework_time_s == pytest.approx(30.0)
        assert fast.rework_time_s == pytest.approx(30.0 / 4.0)
        assert fast.elapsed_s < slow.elapsed_s


class TestMultilevelRollback:
    def _ml_plan(self):
        levels = (
            CheckpointLevel(index=1, recovers_severity=1, cost_s=1.0,
                            restart_s=1.0, period_s=100.0),
            CheckpointLevel(index=2, recovers_severity=2, cost_s=5.0,
                            restart_s=5.0, period_s=200.0),
            CheckpointLevel(index=3, recovers_severity=3, cost_s=50.0,
                            restart_s=50.0, period_s=600.0),
        )
        return _plan(time_steps=20, levels=levels)  # 1200 s work

    def test_boundary_levels_follow_schedule(self, sim):
        stats = _run(sim, self._ml_plan())
        assert stats.completed
        # Boundaries 1..11 (12th = 1200 finishes the app):
        # L3 at 6; L2 at 2,4,8,10; L1 at 1,3,5,7,9,11.
        assert stats.checkpoints_taken == {1: 6, 2: 4, 3: 1}

    def test_severity1_uses_newest_checkpoint(self, sim):
        # Fail at t=510 with severity 1.  Timeline: ckpts at work
        # 100(L1,c1),200(L2,c5),300(L1),400(L2),500(L1)...
        # elapsed ckpt costs by work 500: 1+5+1+5 = 12 at work 500,
        # then L1 at t=512... fail at 510 => during L1@500? t(work500)=
        # 500+12=512. So at t=510 work position is 498.
        stats = _run(sim, self._ml_plan(), failures=[(510.0, 1)])
        assert stats.completed
        # newest usable = L2@400 (L1@300 older). rework = 98 s.
        assert stats.rework_time_s == pytest.approx(98.0)
        assert stats.restart_time_s == pytest.approx(5.0)

    def test_severity2_ignores_level1_checkpoints(self, sim):
        # Fail at t=540: work position ~ between 500 and 600 with the
        # L1@500 checkpoint committed (t=512..513). At t=540 work=527.
        stats = _run(sim, self._ml_plan(), failures=[(540.0, 2)])
        assert stats.completed
        # Severity 2 cannot use L1@500; newest L2 is at 400.
        assert stats.rework_time_s == pytest.approx(127.0)
        assert stats.restart_time_s == pytest.approx(5.0)

    def test_severity3_falls_back_to_level3(self, sim):
        stats = _run(sim, self._ml_plan(), failures=[(540.0, 3)])
        assert stats.completed
        # No L3 checkpoint yet (first at work 600): restart from zero.
        assert stats.rework_time_s == pytest.approx(527.0)
        assert stats.restart_time_s == pytest.approx(50.0)


class TestReplicas:
    def _red_plan(self, virtual=4, replicated=2):
        replicas = ReplicaPlan(
            degree=1.0 + replicated / virtual,
            virtual_nodes=virtual,
            replicated=replicated,
        )
        levels = (
            CheckpointLevel(index=1, recovers_severity=3, cost_s=10.0,
                            restart_s=20.0, period_s=100.0),
        )
        return _plan(levels=levels, replicas=replicas, nodes=virtual)

    def test_replicated_failure_absorbed(self, sim):
        # Physical node 0 backs replicated virtual 0 (peer is node 1).
        stats = _run(sim, self._red_plan(), failures=[(50.0, 1, 0)])
        assert stats.completed
        assert stats.failures == 1
        assert stats.restarts == 0
        assert stats.replica_failures_absorbed == 1
        assert stats.elapsed_s == pytest.approx(650.0)  # no delay at all

    def test_singleton_failure_restarts(self, sim):
        # Physical node 4 is the first singleton (virtual 2).
        stats = _run(sim, self._red_plan(), failures=[(50.0, 1, 4)])
        assert stats.restarts == 1
        assert stats.rework_time_s == pytest.approx(50.0)

    def test_both_replicas_dead_restarts(self, sim):
        # Nodes 0 and 1 back virtual 0; kill both within one interval.
        stats = _run(
            sim, self._red_plan(), failures=[(30.0, 1, 0), (60.0, 1, 1)]
        )
        assert stats.replica_failures_absorbed == 1
        assert stats.restarts == 1

    def test_checkpoint_repairs_replicas(self, sim):
        # Kill node 0 at t=50; checkpoint at t=100..110 repairs; then
        # killing node 1 at t=150 is absorbed again.
        stats = _run(
            sim, self._red_plan(), failures=[(50.0, 1, 0), (150.0, 1, 1)]
        )
        assert stats.restarts == 0
        assert stats.replica_failures_absorbed == 2
        assert stats.completed

    def test_same_replica_twice_absorbed_twice(self, sim):
        """A second failure on the *same already-dead* physical node
        pair member must trigger a restart (virtual node exhausted)."""
        stats = _run(
            sim, self._red_plan(), failures=[(30.0, 1, 1), (60.0, 1, 0)]
        )
        assert stats.restarts == 1


class TestProgressObservability:
    def test_progress_monotone_without_failures(self, sim):
        plan = _plan()
        engine = ResilientExecution(sim, plan)
        sim.process(engine.run())
        last = 0.0
        for _ in range(20):
            sim.run(until=sim.now + 50.0)
            assert engine.progress >= last - 1e-12
            last = engine.progress
        assert engine.progress == pytest.approx(1.0)

    def test_work_position_rolls_back_on_failure(self, sim):
        plan = _plan()
        engine = ResilientExecution(sim, plan)
        proc = sim.process(engine.run())
        # At t=250 the engine is mid-segment past work position 200
        # (checkpointed); wall position is 230.
        sim.run(until=250.0)
        proc.interrupt(Failure(time=sim.now, node_id=0, severity=1))
        sim.run(until=sim.now + 25.0)  # restart finishes (20 s)
        # Rolled back to the last checkpoint, not the furthest point.
        assert engine.work_position == pytest.approx(200.0)
        sim.run(until=1e9)
        assert engine.stats.completed
        assert engine.stats.rework_time_s == pytest.approx(30.0)
