"""Unit tests for the high-level comparison API."""

from repro.core.comparison import compare_techniques
from repro.core.single_app import SingleAppConfig
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.parallel_recovery import ParallelRecovery


class TestCompareTechniques:
    def test_all_five_by_default(self, small_system):
        result = compare_techniques(
            "A32", fraction=0.1, trials=2, system=small_system
        )
        assert len(result.summaries) == 5
        assert result.nodes == 120

    def test_custom_technique_list(self, small_system):
        result = compare_techniques(
            "A32",
            fraction=0.1,
            trials=2,
            system=small_system,
            techniques=[CheckpointRestart(), ParallelRecovery()],
        )
        assert [s.technique for s in result.summaries] == [
            "checkpoint_restart",
            "parallel_recovery",
        ]

    def test_best_excludes_infeasible(self, small_system):
        result = compare_techniques(
            "A32", fraction=0.9, trials=2, system=small_system
        )
        infeasible = {s.technique for s in result.summaries if s.infeasible}
        assert "redundancy_r2" in infeasible
        assert result.best.technique not in infeasible

    def test_summary_text(self, small_system):
        result = compare_techniques(
            "A32", fraction=0.1, trials=2, system=small_system
        )
        text = result.summary()
        assert "A32" in text
        assert "best:" in text
        for s in result.summaries:
            assert s.technique in text

    def test_infeasible_rendering(self, small_system):
        result = compare_techniques(
            "A32", fraction=0.9, trials=2, system=small_system
        )
        assert "infeasible" in result.summary()

    def test_respects_config(self, small_system):
        config = SingleAppConfig(seed=7)
        a = compare_techniques(
            "A32", fraction=0.1, trials=2, system=small_system, config=config
        )
        b = compare_techniques(
            "A32", fraction=0.1, trials=2, system=small_system, config=config
        )
        assert [s.mean_efficiency for s in a.summaries] == [
            s.mean_efficiency for s in b.summaries
        ]

    def test_custom_baseline(self, small_system):
        result = compare_techniques(
            "A32",
            fraction=0.1,
            trials=1,
            system=small_system,
            baseline_s=3600.0,
        )
        assert result.summaries  # runs with a one-hour app
