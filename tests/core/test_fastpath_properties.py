"""Property-style tests for the greedy datacenter fast path.

Seed-loop randomization over datacenter configurations, deterministic
gate-flip (allocation-change / slot-contention) schedules, and exact
wake-instant failure ties.  The properties under test:

- a greedy jump never lets the engine cross a pending failure or a
  slot wait unobserved — every randomized cell is bit-identical to the
  stepped path, including the pool's contention counters;
- aborted jumps (the gate flipping closed mid-sleep, however the flips
  are scheduled) are invisible: abort + replay reproduces the stepped
  trajectory exactly, including ties at the abort instant;
- failures landing exactly on a folded wake instant take the stepped
  path's branch (failure preempts wake) during replay.
"""

import numpy as np
import pytest

import repro.core.execution as execution
from repro.core.datacenter import DatacenterConfig, DatacenterSimulator
from repro.core.execution import PoolContentionGate, ResilientExecution
from repro.core.selection import FixedSelector
from repro.failures.generator import Failure
from repro.platform.presets import exascale_system
from repro.resilience import get_technique
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.rm.registry import make_manager
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.sim.resources import SlotPool
from repro.units import years
from repro.workload.patterns import PatternBias, PatternGenerator
from repro.workload.synthetic import make_application


def _stats_tuple(stats):
    return (
        stats.start_time,
        stats.end_time,
        stats.completed,
        stats.failures,
        stats.restarts,
        stats.replica_failures_absorbed,
        dict(stats.checkpoints_taken),
        stats.failed_checkpoints,
        stats.work_time_s,
        stats.rework_time_s,
        stats.checkpoint_time_s,
        stats.restart_time_s,
        stats.resource_wait_s,
    )


class TestSeedLoopRandomCells:
    """Randomized (seeded) datacenter cells: fast == stepped, always."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_cell_identical(self, seed, monkeypatch):
        rng = np.random.default_rng(seed)
        nodes = int(rng.choice([1_200, 2_400, 3_600]))
        arrivals = int(rng.integers(10, 25))
        rm_name = str(rng.choice(["fcfs", "easy", "random", "slack"]))
        pfs = rng.choice([0, 1, 2, 4])
        pfs = None if pfs == 0 else int(pfs)
        mtbf = years(float(rng.choice([0.05, 0.5, 2.0, 10.0])))
        bias = PatternBias(
            str(rng.choice([b.value for b in PatternBias]))
        )
        technique = str(
            rng.choice(["multilevel", "checkpoint_restart", "parallel_recovery"])
        )

        def run(fast):
            monkeypatch.setattr(execution, "FAST_PATH_ENABLED", fast)
            pattern = PatternGenerator(StreamFactory(seed), nodes).generate(
                0, bias=bias, arrivals=arrivals
            )
            simulator = DatacenterSimulator(
                pattern,
                make_manager(rm_name, StreamFactory(seed).fresh(f"rm-{rm_name}")),
                FixedSelector(get_technique(technique)),
                exascale_system(nodes),
                DatacenterConfig(node_mtbf_s=mtbf, seed=seed, pfs_slots=pfs),
            )
            result = simulator.run()
            digest = [
                (
                    record.app.app_id,
                    str(record.status),
                    record.start_time,
                    record.end_time,
                    record.dropped,
                    None
                    if record.stats is None
                    else _stats_tuple(record.stats),
                )
                for record in result.records
            ]
            pool = simulator._resources.get("pfs")
            # Slot waits must be identical too: a jump that crossed a
            # wait would change the pool's contention counters.
            counters = (
                None if pool is None else (pool.contended_requests, pool.queued)
            )
            return result.end_time, result.failures_injected, digest, counters

        assert run(False) == run(True)


def _pool_plan(time_steps=40, cost_s=10.0, period_s=100.0):
    """A toy plan whose only checkpoint level writes through "pfs"."""
    app = make_application("A32", nodes=4, time_steps=time_steps)
    level = CheckpointLevel(
        index=1,
        recovers_severity=3,
        cost_s=cost_s,
        restart_s=2 * cost_s,
        period_s=period_s,
        shared_resource="pfs",
    )
    return ExecutionPlan(
        app=app,
        technique="test",
        work_rate=1.0,
        levels=(level,),
        nodes_required=4,
        recovery_speedup=1.0,
    )


def _run_gated(flips, failures=(), *, fast, slots=1):
    """Run the pool plan under a scripted gate-flip schedule.

    *flips* is a sequence of ``(time, delta)`` with delta +1 (a
    pool-using job "starts": users += 1, possibly closing the gate) or
    -1 (one "finishes").  The pool itself stays uncontended, so the
    stepped path is unaffected by the schedule — which is exactly the
    property: aborts triggered at arbitrary instants must be invisible.
    """
    execution.FAST_PATH_ENABLED = fast
    sim = Simulator()
    pool = SlotPool(sim, slots, name="pfs")
    gate = PoolContentionGate(pool)
    gate.job_started()  # the engine under test is itself a pool user
    engine = ResilientExecution(
        sim,
        _pool_plan(),
        resources={"pfs": pool},
        gate=gate if fast else None,
        greedy=fast,
        until=1e9,
    )
    proc = sim.process(engine.run(), name="app")
    engine.bind_process(proc)
    for time, delta in flips:
        sim.schedule_at(
            time,
            lambda _e, d=delta: gate.job_started()
            if d > 0
            else gate.job_finished(),
        )
    for time, severity in failures:
        sim.schedule_at(
            time,
            lambda _e, s=severity: proc.interrupt(
                Failure(time=sim.now, node_id=0, severity=s)
            )
            if proc.alive
            else None,
        )
    sim.run(until=1e9)
    execution.FAST_PATH_ENABLED = True
    return engine


class TestGateFlipSchedules:
    """Randomized abort schedules never change observable results."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_flip_schedule_identical(self, seed):
        rng = np.random.default_rng(100 + seed)
        # Random alternating start/finish schedule over the run's span
        # (iterations end every 110 s; ~40 iterations), never dropping
        # below zero extra users.
        events = []
        users = 0
        for time in sorted(rng.uniform(1.0, 4_000.0, size=rng.integers(2, 12))):
            if users == 0 or rng.random() < 0.6:
                events.append((float(time), +1))
                users += 1
            else:
                events.append((float(time), -1))
                users -= 1
        failures = (
            [(float(rng.uniform(100.0, 3_000.0)), 1)]
            if rng.random() < 0.5
            else []
        )
        stepped = _run_gated(events, failures, fast=False)
        fast = _run_gated(events, failures, fast=True)
        assert _stats_tuple(stepped.stats) == _stats_tuple(fast.stats)

    def test_flip_at_exact_wake_instant(self):
        # Iterations end at 110, 220, ...; closing the gate exactly at
        # a folded wake instant is the tie the abort-resume protocol
        # must replay without double-running the boundary checkpoint.
        for flip_at in (110.0, 220.0, 330.0):
            stepped = _run_gated([(flip_at, +1)], fast=False)
            fast = _run_gated([(flip_at, +1)], fast=True)
            assert _stats_tuple(stepped.stats) == _stats_tuple(fast.stats)

    def test_flip_mid_checkpoint_replays_exactly(self):
        # 100 s work + 10 s checkpoint per iteration: 105.0 lands mid
        # checkpoint, 102.5 mid... work of the next? no — mid-ckpt of
        # iteration 1; both must finish the in-flight span for real.
        for flip_at in (102.5, 105.0, 109.9):
            stepped = _run_gated([(flip_at, +1)], fast=False)
            fast = _run_gated([(flip_at, +1)], fast=True)
            assert _stats_tuple(stepped.stats) == _stats_tuple(fast.stats)

    def test_abort_then_failure_then_reopen(self):
        schedule = [(150.0, +1), (400.0, -1), (600.0, +1), (601.0, -1)]
        failures = [(250.0, 1), (600.5, 1)]
        stepped = _run_gated(schedule, failures, fast=False)
        fast = _run_gated(schedule, failures, fast=True)
        assert fast.stats.failures == 2
        assert _stats_tuple(stepped.stats) == _stats_tuple(fast.stats)


def _greedy_single(failures, *, fast):
    """A greedy engine with no gate: every failure lands mid-jump."""
    execution.FAST_PATH_ENABLED = fast
    sim = Simulator()
    app = make_application("A32", nodes=4, time_steps=20)
    plan = ExecutionPlan(
        app=app,
        technique="test",
        work_rate=1.0,
        levels=(
            CheckpointLevel(
                index=1,
                recovers_severity=3,
                cost_s=10.0,
                restart_s=20.0,
                period_s=100.0,
            ),
        ),
        nodes_required=4,
        recovery_speedup=1.0,
    )
    engine = ResilientExecution(sim, plan, greedy=fast, until=1e9)
    proc = sim.process(engine.run(), name="app")
    engine.bind_process(proc)
    for time, severity in failures:
        sim.schedule_at(
            time,
            lambda _e, s=severity: proc.interrupt(
                Failure(time=sim.now, node_id=0, severity=s)
            )
            if proc.alive
            else None,
        )
    sim.run(until=1e9)
    execution.FAST_PATH_ENABLED = True
    return engine


class TestGreedyWakeInstantTies:
    """Greedy mode is one long lying-horizon jump: failures at exact
    folded wake instants must take the stepped path's tie branch
    (failure preempts wake) during replay."""

    @pytest.mark.parametrize(
        "fail_at",
        [
            50.0,  # mid work segment
            100.0,  # exactly at a work-segment end
            105.0,  # mid checkpoint
            110.0,  # exactly at a checkpoint end (iteration boundary)
            330.0,  # a later exact boundary
            424.5,  # late, mid segment
        ],
    )
    def test_single_failure_tie(self, fail_at):
        stepped = _greedy_single([(fail_at, 1)], fast=False)
        fast = _greedy_single([(fail_at, 1)], fast=True)
        assert stepped.fast_jumps == 0
        assert fast.fast_jumps > 0
        assert _stats_tuple(stepped.stats) == _stats_tuple(fast.stats)

    def test_failure_storm_random_instants(self):
        rng = np.random.default_rng(7)
        failures = [(float(t), int(rng.integers(1, 4)))
                    for t in sorted(rng.uniform(10.0, 2_500.0, size=12))]
        stepped = _greedy_single(failures, fast=False)
        fast = _greedy_single(failures, fast=True)
        assert fast.stats.failures == stepped.stats.failures > 0
        assert _stats_tuple(stepped.stats) == _stats_tuple(fast.stats)

    def test_back_to_back_failures_same_instant_region(self):
        # Two failures one epsilon apart straddling a boundary: the
        # second must interrupt the restart/rework, not a stale jump.
        failures = [(110.0, 1), (110.5, 1), (111.0, 2)]
        stepped = _greedy_single(failures, fast=False)
        fast = _greedy_single(failures, fast=True)
        assert _stats_tuple(stepped.stats) == _stats_tuple(fast.stats)
