"""Unit tests for the ASCII timeline renderer."""

import pytest

from repro.core.execution import ResilientExecution
from repro.core.timeline import activity_totals, render_timeline
from repro.failures.generator import Failure
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.workload.synthetic import make_application


def _recorded_run(sim, failures=()):
    app = make_application("A32", nodes=4, time_steps=10)
    level = CheckpointLevel(
        index=1, recovers_severity=3, cost_s=10.0, restart_s=20.0, period_s=100.0
    )
    plan = ExecutionPlan(
        app=app, technique="t", work_rate=1.0, levels=(level,), nodes_required=4
    )
    engine = ResilientExecution(sim, plan, record_timeline=True)
    proc = sim.process(engine.run())
    for time in failures:
        sim.schedule_at(
            time,
            lambda _e: proc.interrupt(Failure(time=sim.now, node_id=0, severity=1))
            if proc.alive
            else None,
        )
    sim.run(until=1e9)
    return engine


class TestActivityTotals:
    def test_totals_match_stats(self, sim):
        engine = _recorded_run(sim, failures=[250.0])
        totals = activity_totals(engine.timeline)
        assert totals["work"] == pytest.approx(engine.stats.work_time_s)
        assert totals["recovery"] == pytest.approx(engine.stats.rework_time_s)
        assert totals["checkpoint"] == pytest.approx(engine.stats.checkpoint_time_s)
        assert totals["restart"] == pytest.approx(engine.stats.restart_time_s)

    def test_unknown_activity_rejected(self):
        with pytest.raises(ValueError):
            activity_totals([(0.0, 1.0, "coffee")])

    def test_inverted_span_rejected(self):
        with pytest.raises(ValueError):
            activity_totals([(2.0, 1.0, "work")])


class TestRenderTimeline:
    def test_rows_for_all_activities(self, sim):
        engine = _recorded_run(sim, failures=[250.0])
        text = render_timeline(engine.timeline)
        for activity in ("work", "recovery", "checkpoint", "restart"):
            assert activity in text

    def test_percentages_sum_to_about_100(self, sim):
        engine = _recorded_run(sim, failures=[250.0])
        text = render_timeline(engine.timeline)
        shares = [
            float(line.rsplit("|", 1)[1].rstrip("%"))
            for line in text.splitlines()[1:]
        ]
        assert sum(shares) == pytest.approx(100.0, abs=0.5)

    def test_empty_timeline(self):
        assert "empty" in render_timeline([])

    def test_width_validation(self, sim):
        engine = _recorded_run(sim)
        with pytest.raises(ValueError):
            render_timeline(engine.timeline, width=5)

    def test_recording_off_by_default(self, sim):
        app = make_application("A32", nodes=4, time_steps=2)
        level = CheckpointLevel(
            index=1, recovers_severity=3, cost_s=1.0, restart_s=1.0, period_s=100.0
        )
        plan = ExecutionPlan(
            app=app, technique="t", work_rate=1.0, levels=(level,), nodes_required=4
        )
        engine = ResilientExecution(sim, plan)
        sim.process(engine.run())
        sim.run(until=1e9)
        assert engine.timeline == []
