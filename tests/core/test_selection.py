"""Unit tests for Resilience Selection (Sec. VII)."""

import pytest

from repro.core.selection import FixedSelector, ResilienceSelection
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.resilience.redundancy import Redundancy
from repro.units import years
from repro.workload.synthetic import make_application

MTBF = years(10)


class TestFixedSelector:
    def test_always_returns_technique(self, small_system, small_app):
        technique = CheckpointRestart()
        selector = FixedSelector(technique)
        assert selector.select(small_app, small_system) is technique
        assert selector.name == "checkpoint_restart"


class TestResilienceSelection:
    def test_defaults_to_datacenter_trio(self):
        selector = ResilienceSelection(MTBF)
        names = [t.name for t in selector.candidates]
        assert names == ["checkpoint_restart", "multilevel", "parallel_recovery"]

    def test_low_comm_small_app_prefers_cheap_checkpoints(self, full_system):
        """For A32 the paper's Sec. V result: Parallel Recovery wins
        (no mu penalty, negligible checkpoint cost)."""
        selector = ResilienceSelection(MTBF)
        app = make_application("A32", nodes=full_system.fraction_to_nodes(0.12))
        assert selector.select(app, full_system).name == "parallel_recovery"

    def test_high_comm_small_app_prefers_multilevel(self, full_system):
        """Fig. 2: below the ~25% crossover, Multilevel wins for D64."""
        selector = ResilienceSelection(MTBF)
        app = make_application("D64", nodes=full_system.fraction_to_nodes(0.03))
        assert selector.select(app, full_system).name == "multilevel"

    def test_high_comm_large_app_prefers_parallel_recovery(self, full_system):
        """Fig. 2: above the crossover, Parallel Recovery wins."""
        selector = ResilienceSelection(MTBF)
        app = make_application("D64", nodes=full_system.fraction_to_nodes(1.0))
        assert selector.select(app, full_system).name == "parallel_recovery"

    def test_selection_counts_tracked(self, full_system):
        selector = ResilienceSelection(MTBF)
        for fraction in (0.01, 0.5):
            app = make_application("D64", nodes=full_system.fraction_to_nodes(fraction))
            selector.select(app, full_system)
        assert sum(selector.selection_counts.values()) == 2

    def test_skips_infeasible_candidates(self, small_system):
        selector = ResilienceSelection(
            MTBF, candidates=[Redundancy.full(), ParallelRecovery()]
        )
        app = make_application("A32", nodes=900)  # r=2 needs 1800 > 1200
        assert selector.select(app, small_system).name == "parallel_recovery"

    def test_raises_when_nothing_fits(self, small_system):
        selector = ResilienceSelection(MTBF, candidates=[Redundancy.full()])
        app = make_application("A32", nodes=900)
        with pytest.raises(ValueError):
            selector.select(app, small_system)

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceSelection(0.0)
        with pytest.raises(ValueError):
            ResilienceSelection(MTBF, candidates=[])

    def test_agrees_with_simulation_best(self, full_system):
        """The analytic selector must agree with the simulated winner
        on clear-cut configurations (the Sec. V headline cells)."""
        from repro.core.comparison import compare_techniques
        from repro.resilience.registry import datacenter_techniques

        selector = ResilienceSelection(MTBF)
        for app_type, fraction in (("A32", 0.12), ("D64", 0.03), ("D64", 1.0)):
            app = make_application(
                app_type, nodes=full_system.fraction_to_nodes(fraction)
            )
            chosen = selector.select(app, full_system).name
            simulated = compare_techniques(
                app_type,
                fraction,
                trials=6,
                system=full_system,
                techniques=datacenter_techniques(),
            )
            assert chosen == simulated.best.technique, (app_type, fraction)
