"""Unit tests for paired (common-random-numbers) comparison."""

import pytest

from repro.core.paired import paired_compare, simulate_with_trace
from repro.core.single_app import SingleAppConfig
from repro.failures.trace import record_trace
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rng.streams import StreamFactory
from repro.units import years
from repro.workload.synthetic import make_application

CONFIG = SingleAppConfig(seed=55)


class TestSimulateWithTrace:
    def test_deterministic_replay(self, full_system):
        app = make_application("C32", nodes=full_system.fraction_to_nodes(0.25))
        trace = record_trace(
            StreamFactory(1).fresh("t"),
            CONFIG.node_mtbf_s,
            CONFIG.max_time_factor * app.baseline_time * 2 * app.nodes,
        )
        a = simulate_with_trace(app, CheckpointRestart(), full_system, trace, CONFIG)
        b = simulate_with_trace(app, CheckpointRestart(), full_system, trace, CONFIG)
        assert a.elapsed_s == b.elapsed_s
        assert a.failures == b.failures

    def test_failures_actually_delivered(self, full_system):
        app = make_application("C32", nodes=full_system.fraction_to_nodes(0.25))
        config = SingleAppConfig(seed=55, node_mtbf_s=years(1))
        trace = record_trace(
            StreamFactory(1).fresh("t"),
            config.node_mtbf_s,
            config.max_time_factor * app.baseline_time * 2 * app.nodes,
        )
        stats = simulate_with_trace(
            app, CheckpointRestart(), full_system, trace, config
        )
        assert stats.failures > 0
        assert stats.completed


class TestPairedCompare:
    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.platform.presets import exascale_system

        system = exascale_system()
        app = make_application("C32", nodes=system.fraction_to_nodes(0.25))
        return paired_compare(
            app,
            [CheckpointRestart(), MultilevelCheckpoint(), ParallelRecovery()],
            system,
            trials=6,
            config=CONFIG,
        )

    def test_all_techniques_summarized(self, comparison):
        assert set(comparison.efficiencies) == {
            "checkpoint_restart",
            "multilevel",
            "parallel_recovery",
        }
        for stats in comparison.efficiencies.values():
            assert stats.n == 6
            assert 0 < stats.mean <= 1

    def test_difference_resolves_with_few_trials(self, comparison):
        """Common random numbers make the ML-vs-CR gap significant
        with only six trials — the point of pairing."""
        diff = comparison.difference("multilevel", "checkpoint_restart")
        assert diff.diff.mean > 0
        assert diff.significant

    def test_best_matches_unpaired_story(self, comparison):
        assert comparison.best() in {"multilevel", "parallel_recovery"}

    def test_validation(self, full_system):
        app = make_application("A32", nodes=100)
        with pytest.raises(ValueError):
            paired_compare(app, [CheckpointRestart()], full_system, trials=0)
