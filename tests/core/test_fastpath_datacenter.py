"""Differential harness for the datacenter fast path.

The greedy closed-form jumps in the datacenter mapping loop (plus the
PFS contention gate and abort-resume protocol) must be invisible: every
per-job completion time, drop decision, and statistic bit-identical to
the stepped event-by-event path, across resource-management policies,
technique selectors, contended-PFS configurations, and observed runs.
Mirrors ``tests/core/test_fastpath.py`` for the single-application
engine; see docs/PERFORMANCE.md for the exactness argument.
"""

import math

import pytest

import repro.core.datacenter as datacenter
import repro.core.execution as execution
from repro.core.datacenter import (
    DatacenterConfig,
    DatacenterSimulator,
    run_datacenter,
)
from repro.core.execution import JumpAborted, PoolContentionGate, ResilientExecution
from repro.core.selection import FixedSelector, ResilienceSelection
from repro.obs.sinks import JsonlExportSink, MetricsSink
from repro.platform.presets import exascale_system
from repro.resilience import get_technique
from repro.rm.registry import make_manager
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.sim.resources import SlotPool
from repro.units import years
from repro.workload.patterns import PatternBias, PatternGenerator

NODES = 2_400
HEAVY_MTBF = years(0.05)


def _stats_tuple(stats):
    """Every observable field, for exact (bitwise) comparison."""
    return (
        stats.start_time,
        stats.end_time,
        stats.completed,
        stats.failures,
        stats.restarts,
        stats.replica_failures_absorbed,
        dict(stats.checkpoints_taken),
        stats.failed_checkpoints,
        stats.work_time_s,
        stats.rework_time_s,
        stats.checkpoint_time_s,
        stats.restart_time_s,
        stats.resource_wait_s,
    )


def _nan_eq(a, b):
    if isinstance(a, float) and math.isnan(a):
        return isinstance(b, float) and math.isnan(b)
    return a == b


def _digest(result):
    """Everything Figs. 4-5 can observe about a datacenter run."""
    return (
        result.end_time,
        result.failures_injected,
        result.dropped_pct,
        [
            (
                record.app.app_id,
                record.is_fill,
                str(record.status),
                record.technique,
                record.start_time,
                record.end_time,
                record.dropped,
                record.met_deadline,
                None if record.stats is None else _stats_tuple(record.stats),
            )
            for record in result.records
        ],
    )


def _build_cell(
    *,
    seed=11,
    nodes=NODES,
    arrivals=20,
    rm="fcfs",
    selector=None,
    mtbf=years(2.0),
    pfs=None,
    bias=PatternBias.UNBIASED,
    ideal=False,
    sinks=None,
):
    pattern = PatternGenerator(StreamFactory(seed), nodes).generate(
        0, bias=bias, arrivals=arrivals
    )
    config = DatacenterConfig(
        node_mtbf_s=mtbf, seed=seed, pfs_slots=pfs, ideal=ideal
    )
    manager = make_manager(rm, StreamFactory(seed).fresh(f"rm-{rm}"))
    if selector is None:
        selector = FixedSelector(get_technique("multilevel"))
    return pattern, manager, selector, exascale_system(nodes), config, sinks


def _run_cell(fast, monkeypatch, **kwargs):
    monkeypatch.setattr(execution, "FAST_PATH_ENABLED", fast)
    pattern, manager, selector, system, config, sinks = _build_cell(**kwargs)
    return run_datacenter(pattern, manager, selector, system, config, sinks=sinks)


def _assert_identical(monkeypatch, **kwargs):
    slow = _digest(_run_cell(False, monkeypatch, **kwargs))
    fast = _digest(_run_cell(True, monkeypatch, **kwargs))
    for a, b in zip(slow[3], fast[3]):
        assert all(_nan_eq(x, y) for x, y in zip(a, b)), (a, b)
    assert slow == fast
    return slow


class TestGridBitIdentity:
    """All four RM policies, with and without a contended PFS."""

    @pytest.mark.parametrize("rm", ["fcfs", "easy", "random", "slack"])
    @pytest.mark.parametrize("pfs", [None, 2])
    def test_rm_policy_identical(self, rm, pfs, monkeypatch):
        digest = _assert_identical(monkeypatch, rm=rm, pfs=pfs)
        assert digest[1] > 0  # failures actually injected


class TestSelectorsAndRegimes:
    def test_checkpoint_restart_selector(self, monkeypatch):
        _assert_identical(
            monkeypatch,
            selector=FixedSelector(get_technique("checkpoint_restart")),
        )

    def test_parallel_recovery_selector(self, monkeypatch):
        _assert_identical(
            monkeypatch,
            selector=FixedSelector(get_technique("parallel_recovery")),
        )

    def test_selection_selector(self, monkeypatch):
        # Fig. 5's per-application argmax selection: selector state must
        # evolve identically on both paths.
        mtbf = years(2.0)
        _assert_identical(
            monkeypatch,
            selector=ResilienceSelection(node_mtbf_s=mtbf),
            mtbf=mtbf,
        )

    def test_heavy_failures(self, monkeypatch):
        digest = _assert_identical(monkeypatch, mtbf=HEAVY_MTBF, seed=13)
        assert digest[1] > 10  # replay-on-interrupt exercised hard

    def test_heavy_failures_contended_pfs1(self, monkeypatch):
        # One PFS slot + heavy failure traffic: gate flips, aborted
        # jumps, and real checkpoint queueing all in one cell.
        _assert_identical(monkeypatch, mtbf=HEAVY_MTBF, pfs=1, seed=13)

    def test_abort_cell_identical(self, monkeypatch):
        # The cell TestEngagementAndFallback proves travels the
        # abort-resume path must also be bit-identical.
        _assert_identical(monkeypatch, pfs=2, seed=13)

    def test_biased_pattern_high_memory(self, monkeypatch):
        _assert_identical(monkeypatch, bias=PatternBias.HIGH_MEMORY, pfs=2)

    def test_biased_pattern_large(self, monkeypatch):
        _assert_identical(monkeypatch, bias=PatternBias.LARGE)

    def test_ideal_mode(self, monkeypatch):
        # No failures at all: jobs complete in single uninterrupted
        # jumps on the fast path.
        digest = _assert_identical(monkeypatch, ideal=True)
        assert digest[1] == 0

    def test_dropped_jobs_identical(self, monkeypatch):
        # An overloaded small machine forces drops; the drop set and
        # deadline misses must agree exactly.
        digest = _assert_identical(
            monkeypatch, nodes=1_200, arrivals=40, mtbf=HEAVY_MTBF, seed=29
        )
        assert any(row[6] for row in digest[3])  # at least one drop


class _CountingEngine(ResilientExecution):
    """ResilientExecution that tallies jumps and aborts per class."""

    jumps = 0
    aborts = 0

    def _fast_forward(self, total, base):
        before = self.fast_jumps
        advanced = yield from super()._fast_forward(total, base)
        type(self).jumps += self.fast_jumps - before
        return advanced

    def _resume_after_abort(self, snaps, total, base):
        type(self).aborts += 1
        yield from super()._resume_after_abort(snaps, total, base)


@pytest.fixture
def counting_engine(monkeypatch):
    class Engine(_CountingEngine):
        jumps = 0
        aborts = 0

    monkeypatch.setattr(datacenter, "ResilientExecution", Engine)
    return Engine


class TestEngagementAndFallback:
    def test_fast_path_engages(self, counting_engine, monkeypatch):
        _run_cell(True, monkeypatch)
        assert counting_engine.jumps > 0

    def test_stepped_path_never_jumps(self, counting_engine, monkeypatch):
        _run_cell(False, monkeypatch)
        assert counting_engine.jumps == 0

    def test_aborts_exercised_and_identical(self, counting_engine, monkeypatch):
        # The contended cell must actually travel the abort-resume
        # path, not just produce matching output.
        _run_cell(True, monkeypatch, pfs=2, seed=13)
        assert counting_engine.aborts > 0

    def test_observed_run_falls_back_and_matches(self, monkeypatch):
        # Sinks make the bus observed, so engines step; the JSONL
        # export must be byte-identical whether the fast path is
        # enabled (and falling back) or globally disabled.
        slow_export = JsonlExportSink()
        slow = _run_cell(False, monkeypatch, sinks=[slow_export, MetricsSink()])
        fast_export = JsonlExportSink()
        fast = _run_cell(True, monkeypatch, sinks=[fast_export, MetricsSink()])
        assert tuple(slow_export.lines) == tuple(fast_export.lines)
        assert _digest(slow) == _digest(fast)

    def test_observed_vs_unobserved_digest_equal(self, monkeypatch):
        observed = _run_cell(True, monkeypatch, sinks=[MetricsSink()])
        plain = _run_cell(True, monkeypatch)
        assert _digest(observed) == _digest(plain)

    def test_event_reduction(self, monkeypatch):
        def events(fast):
            monkeypatch.setattr(execution, "FAST_PATH_ENABLED", fast)
            pattern, manager, selector, system, config, _ = _build_cell()
            simulator = DatacenterSimulator(
                pattern, manager, selector, system, config
            )
            simulator.run()
            return simulator.sim.event_count

        assert events(False) >= 3 * events(True)


class _FakeProc:
    def __init__(self, alive=True):
        self.alive = alive
        self.interrupts = []

    def interrupt(self, cause):
        self.interrupts.append(cause)


class TestPoolContentionGate:
    def _gate(self, slots=1):
        return PoolContentionGate(SlotPool(Simulator(), slots, name="pfs"))

    def test_open_while_users_within_slots(self):
        gate = self._gate(slots=2)
        assert gate.open
        gate.job_started()
        gate.job_started()
        assert gate.users == 2
        assert gate.open

    def test_closed_when_users_exceed_slots(self):
        gate = self._gate(slots=1)
        gate.job_started()
        gate.job_started()
        assert not gate.open

    def test_closed_while_queue_nonempty(self):
        sim = Simulator()
        pool = SlotPool(sim, 1, name="pfs")
        gate = PoolContentionGate(pool)
        held = pool.request()
        queued = pool.request()
        assert queued.state == "queued"
        assert not gate.open
        held.release()
        # The slot passes to the queued ticket and the queue drains, so
        # the gate observes open again (lazily, on its next check).
        assert queued.state == "granted"
        assert pool.queued == 0
        assert gate.open

    def test_flip_aborts_registered_jumpers(self):
        gate = self._gate(slots=1)
        proc = _FakeProc()
        engine = object()
        gate.begin_jump(engine, proc)
        gate.job_started()  # 1 user, still open: no abort
        assert proc.interrupts == []
        gate.job_started()  # flips closed
        assert len(proc.interrupts) == 1
        assert isinstance(proc.interrupts[0], JumpAborted)

    def test_flip_skips_dead_and_ended_jumpers(self):
        gate = self._gate(slots=1)
        dead = _FakeProc(alive=False)
        ended = _FakeProc()
        gate.begin_jump("a", dead)
        gate.begin_jump("b", ended)
        gate.end_jump("b")
        gate.job_started()
        gate.job_started()
        assert dead.interrupts == []
        assert ended.interrupts == []

    def test_job_finished_reopens(self):
        gate = self._gate(slots=1)
        gate.job_started()
        gate.job_started()
        assert not gate.open
        gate.job_finished()
        assert gate.open
        gate.job_finished()
        assert gate.users == 0

    def test_job_finished_underflow_asserts(self):
        gate = self._gate()
        with pytest.raises(AssertionError):
            gate.job_finished()


class TestPoolAccounting:
    def _finished_simulator(self, monkeypatch, fast, **kwargs):
        monkeypatch.setattr(execution, "FAST_PATH_ENABLED", fast)
        pattern, manager, selector, system, config, _ = _build_cell(
            pfs=1, mtbf=HEAVY_MTBF, seed=13, **kwargs
        )
        simulator = DatacenterSimulator(pattern, manager, selector, system, config)
        simulator.run()
        return simulator

    @pytest.mark.parametrize("fast", [False, True])
    def test_gate_and_pool_drained_after_run(self, fast, monkeypatch):
        simulator = self._finished_simulator(monkeypatch, fast)
        gate = simulator._gate
        pool = simulator._resources["pfs"]
        assert gate.users == 0
        assert simulator._pool_users == set()
        assert pool.queued == 0
        assert pool.in_use == 0
