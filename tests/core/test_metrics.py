"""Unit tests for metric helpers."""

import pytest

from repro.core.metrics import dropped_percentage, efficiency, mean


class TestEfficiency:
    def test_perfect(self):
        assert efficiency(100.0, 100.0) == pytest.approx(1.0)

    def test_half(self):
        assert efficiency(100.0, 200.0) == pytest.approx(0.5)

    def test_zero_actual_clamped(self):
        assert efficiency(100.0, 0.0) == 0.0

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            efficiency(0.0, 10.0)

    def test_actual_below_baseline_clamped_to_one(self):
        # A resilient run cannot beat the failure-free baseline; float
        # noise or a mis-measured baseline must not report > 1.
        assert efficiency(100.0, 99.0) == 1.0
        assert efficiency(100.0, 100.0 - 1e-12) == 1.0


class TestDroppedPercentage:
    def test_basic(self):
        assert dropped_percentage(25, 100) == pytest.approx(25.0)

    def test_bounds(self):
        assert dropped_percentage(0, 10) == 0.0
        assert dropped_percentage(10, 10) == 100.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            dropped_percentage(1, 0)
        with pytest.raises(ValueError):
            dropped_percentage(-1, 10)
        with pytest.raises(ValueError):
            dropped_percentage(11, 10)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
