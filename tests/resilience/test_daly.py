"""Unit tests for Eq. 4 and the Daly expected-runtime formulas."""

import math

import numpy as np
import pytest

from repro.resilience.daly import (
    expected_completion_time,
    expected_efficiency,
    expected_segment_time,
    optimal_checkpoint_interval,
    young_interval,
)


class TestYoung:
    def test_formula(self):
        assert young_interval(100.0, 1e-5) == pytest.approx(
            math.sqrt(2 * 100.0 / 1e-5)
        )

    def test_daly_is_young_minus_cost(self):
        c, lam = 50.0, 1e-6
        assert optimal_checkpoint_interval(c, lam) == pytest.approx(
            young_interval(c, lam) - c
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0.0, 1e-5)
        with pytest.raises(ValueError):
            young_interval(10.0, 0.0)


class TestEq4:
    def test_formula(self):
        c, lam = 100.0, 1e-5
        tau = optimal_checkpoint_interval(c, lam)
        assert tau == pytest.approx(math.sqrt(2 * c / lam) - c)

    def test_paper_example_full_system_32gb(self):
        """Table II cross-check: full system, 32 GB/node, 10-year MTBF
        gives a period around 19 minutes."""
        from repro.units import MINUTE, years

        c = (32.0 / 600.0) * (120_000 / 12)  # Eq. 3 = 533 s
        lam = 120_000 / years(10)
        tau = optimal_checkpoint_interval(c, lam)
        assert tau == pytest.approx(19.0 * MINUTE, rel=0.05)

    def test_thrashing_regime_falls_back_to_young(self):
        # Cost so large Eq. 4 would be negative.
        c, lam = 1000.0, 1.0
        tau = optimal_checkpoint_interval(c, lam)
        assert tau == pytest.approx(math.sqrt(2 * c / lam))
        assert tau > 0

    def test_interval_decreases_with_failure_rate(self):
        c = 100.0
        assert optimal_checkpoint_interval(c, 1e-4) < optimal_checkpoint_interval(
            c, 1e-6
        )

    def test_interval_increases_with_cost(self):
        lam = 1e-5
        assert optimal_checkpoint_interval(400.0, lam) > optimal_checkpoint_interval(
            100.0, lam
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            optimal_checkpoint_interval(0.0, 1e-5)
        with pytest.raises(ValueError):
            optimal_checkpoint_interval(100.0, 0.0)


class TestExpectedSegmentTime:
    def test_no_failures_is_work_plus_checkpoint(self):
        assert expected_segment_time(100.0, 10.0, 5.0, 0.0) == pytest.approx(110.0)

    def test_small_rate_close_to_failure_free(self):
        e = expected_segment_time(100.0, 10.0, 5.0, 1e-9)
        assert e == pytest.approx(110.0, rel=1e-5)

    def test_increases_with_rate(self):
        lo = expected_segment_time(100.0, 10.0, 5.0, 1e-4)
        hi = expected_segment_time(100.0, 10.0, 5.0, 1e-2)
        assert hi > lo > 110.0

    def test_matches_monte_carlo(self, rng):
        """The closed form must agree with a direct simulation of the
        segment renewal process."""
        interval, cost, restart, lam = 50.0, 5.0, 8.0, 0.01
        segment = interval + cost

        def one_trial():
            total = 0.0
            while True:
                fail_gap = rng.exponential(1.0 / lam)
                if fail_gap >= segment:
                    return total + segment
                total += fail_gap + restart

        draws = [one_trial() for _ in range(20_000)]
        closed = expected_segment_time(interval, cost, restart, lam)
        assert np.mean(draws) == pytest.approx(closed, rel=0.03)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            expected_segment_time(0.0, 1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            expected_segment_time(10.0, -1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            expected_segment_time(10.0, 1.0, -1.0, 0.1)
        with pytest.raises(ValueError):
            expected_segment_time(10.0, 1.0, 1.0, -0.1)


class TestExpectedCompletion:
    def test_failure_free_total(self):
        # 10 segments of (100 work + 10 ckpt), last checkpoint skipped.
        t = expected_completion_time(1000.0, 100.0, 10.0, 5.0, 0.0)
        assert t == pytest.approx(1000.0 + 9 * 10.0)

    def test_partial_final_segment(self):
        t = expected_completion_time(250.0, 100.0, 10.0, 5.0, 0.0)
        # 2 full segments with checkpoints + 50 remainder without.
        assert t == pytest.approx(2 * 110.0 + 50.0)

    def test_efficiency_bounded(self):
        eff = expected_efficiency(1000.0, 100.0, 10.0, 5.0, 1e-4)
        assert 0 < eff < 1

    def test_optimal_interval_beats_neighbours(self):
        """Eq. 4's optimum should (approximately) minimize the exact
        expected completion time."""
        work, cost, lam = 86_400.0, 100.0, 1e-5
        tau = optimal_checkpoint_interval(cost, lam)
        best = expected_completion_time(work, tau, cost, cost, lam)
        for factor in (0.25, 4.0):
            worse = expected_completion_time(work, tau * factor, cost, cost, lam)
            assert worse >= best * 0.999

    def test_invalid_work(self):
        with pytest.raises(ValueError):
            expected_completion_time(0.0, 10.0, 1.0, 1.0, 0.1)
