"""Unit tests for the technique registry."""

import pytest

from repro.resilience.registry import (
    by_name,
    datacenter_techniques,
    get_technique,
    scaling_study_techniques,
)


class TestRegistry:
    def test_scaling_lineup_matches_figs_1_to_3(self):
        names = [t.name for t in scaling_study_techniques()]
        assert names == [
            "checkpoint_restart",
            "multilevel",
            "parallel_recovery",
            "redundancy_r1_5",
            "redundancy_r2",
        ]

    def test_datacenter_lineup_excludes_redundancy(self):
        names = [t.name for t in datacenter_techniques()]
        assert names == ["checkpoint_restart", "multilevel", "parallel_recovery"]

    def test_by_name_roundtrip(self):
        table = by_name()
        for name, technique in table.items():
            assert technique.name == name

    def test_get_technique(self):
        assert get_technique("multilevel").name == "multilevel"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_technique("nope")

    def test_fresh_instances_each_call(self):
        a = scaling_study_techniques()
        b = scaling_study_techniques()
        assert all(x is not y for x, y in zip(a, b))
