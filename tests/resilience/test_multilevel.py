"""Unit tests for Multilevel Checkpointing (Sec. IV-C)."""

import pytest

from repro.failures.severity import SeverityModel
from repro.resilience.checkpoint_restart import pfs_checkpoint_time
from repro.resilience.multilevel import (
    MultilevelCheckpoint,
    level1_checkpoint_time,
    level2_checkpoint_time,
)
from repro.units import years
from repro.workload.synthetic import make_application

MTBF = years(10)


class TestEq5:
    def test_level1_is_memory_over_bandwidth(self, small_system):
        app = make_application("A32", nodes=100)
        # 32 GB / 320 GB/s = 0.1 s.
        assert level1_checkpoint_time(app, small_system) == pytest.approx(0.1)

    def test_level1_64gb(self, small_system):
        app = make_application("A64", nodes=100)
        assert level1_checkpoint_time(app, small_system) == pytest.approx(0.2)


class TestEq6:
    def test_level2_formula(self, small_system):
        app = make_application("A32", nodes=100)
        t1 = level1_checkpoint_time(app, small_system)
        expected = 2 * (t1 + small_system.network.latency_s + 32.0 / 320.0)
        assert level2_checkpoint_time(app, small_system) == pytest.approx(expected)

    def test_level2_about_4x_level1(self, small_system):
        app = make_application("A32", nodes=100)
        ratio = level2_checkpoint_time(app, small_system) / level1_checkpoint_time(
            app, small_system
        )
        assert ratio == pytest.approx(4.0, rel=1e-3)  # latency is negligible


class TestPlan:
    def test_three_levels_in_order(self, small_system, small_app):
        plan = MultilevelCheckpoint().plan(small_app, small_system, MTBF)
        assert [lvl.index for lvl in plan.levels] == [1, 2, 3]
        assert [lvl.recovers_severity for lvl in plan.levels] == [1, 2, 3]

    def test_costs_strictly_increase_with_level(self, small_system, small_app):
        plan = MultilevelCheckpoint().plan(small_app, small_system, MTBF)
        costs = [lvl.cost_s for lvl in plan.levels]
        assert costs[0] < costs[1] < costs[2]

    def test_level3_cost_is_eq3(self, small_system, small_app):
        plan = MultilevelCheckpoint().plan(small_app, small_system, MTBF)
        assert plan.levels[2].cost_s == pytest.approx(
            pfs_checkpoint_time(small_app, small_system)
        )

    def test_periods_nested_and_increasing(self, small_system, small_app):
        plan = MultilevelCheckpoint().plan(small_app, small_system, MTBF)
        periods = [lvl.period_s for lvl in plan.levels]
        assert periods[0] <= periods[1] <= periods[2]
        assert plan.level_multiplier(2) >= 1
        assert plan.level_multiplier(3) >= 1

    def test_cheap_levels_much_more_frequent(self, small_system):
        """With realistic parameters the RAM checkpoint should fire far
        more often than the PFS checkpoint."""
        app = make_application("A32", nodes=1200)
        plan = MultilevelCheckpoint().plan(app, small_system, MTBF)
        assert plan.levels[0].period_s < plan.levels[2].period_s

    def test_severity_model_shapes_schedule(self, small_system, small_app):
        """More severe failures should pull level-3 checkpoints closer
        together."""
        mild = SeverityModel.from_probabilities([0.9, 0.08, 0.02])
        harsh = SeverityModel.from_probabilities([0.2, 0.2, 0.6])
        plan_mild = MultilevelCheckpoint().plan(
            small_app, small_system, MTBF, severity=mild
        )
        plan_harsh = MultilevelCheckpoint().plan(
            small_app, small_system, MTBF, severity=harsh
        )
        assert plan_harsh.levels[2].period_s < plan_mild.levels[2].period_s

    def test_no_execution_inflation(self, small_system, small_app):
        plan = MultilevelCheckpoint().plan(small_app, small_system, MTBF)
        assert plan.work_rate == 1.0
        assert plan.recovery_speedup == 1.0

    def test_level_costs_helper(self, small_system, small_app):
        c1, c2, c3 = MultilevelCheckpoint.level_costs(small_app, small_system)
        assert c1 == pytest.approx(level1_checkpoint_time(small_app, small_system))
        assert c2 == pytest.approx(level2_checkpoint_time(small_app, small_system))
        assert c3 == pytest.approx(pfs_checkpoint_time(small_app, small_system))
