"""Unit tests for Partial/Full Redundancy (Sec. IV-E)."""

import pytest

from repro.failures.rates import application_failure_rate
from repro.resilience.checkpoint_restart import pfs_checkpoint_time
from repro.resilience.daly import optimal_checkpoint_interval
from repro.resilience.redundancy import (
    Redundancy,
    effective_restart_rate,
    redundancy_work_rate,
    replica_plan,
    solve_checkpoint_period,
)
from repro.units import years
from repro.workload.synthetic import make_application

MTBF = years(10)


class TestReplicaPlanConstruction:
    def test_partial_half_replicated(self):
        app = make_application("A32", nodes=100)
        plan = replica_plan(app, 1.5)
        assert plan.virtual_nodes == 100
        assert plan.replicated == 50
        assert plan.physical_nodes == 150

    def test_full_redundancy(self):
        app = make_application("A32", nodes=100)
        plan = replica_plan(app, 2.0)
        assert plan.replicated == 100
        assert plan.physical_nodes == 200

    def test_no_redundancy_degenerate(self):
        app = make_application("A32", nodes=100)
        plan = replica_plan(app, 1.0)
        assert plan.replicated == 0
        assert plan.physical_nodes == 100

    def test_odd_node_count_rounds_up(self):
        app = make_application("A32", nodes=5)
        plan = replica_plan(app, 1.5)
        assert plan.replicated == 3  # ceil(2.5)


class TestEq8:
    @pytest.mark.parametrize(
        "type_name,r,expected",
        [
            ("A32", 1.5, 1.0),  # no communication: no inflation
            ("D64", 1.5, 0.25 + 1.5 * 0.75),
            ("D64", 2.0, 0.25 + 2.0 * 0.75),
            ("C32", 2.0, 0.5 + 2.0 * 0.5),
        ],
    )
    def test_work_rate(self, type_name, r, expected):
        app = make_application(type_name, nodes=10)
        assert redundancy_work_rate(app, r) == pytest.approx(expected)


class TestEffectiveRate:
    def test_all_single_is_raw_rate(self):
        from repro.resilience.base import ReplicaPlan

        plan = ReplicaPlan(degree=1.0, virtual_nodes=100, replicated=0)
        assert effective_restart_rate(plan, 1e-8, 1000.0) == pytest.approx(1e-6)

    def test_full_redundancy_quadratic(self):
        from repro.resilience.base import ReplicaPlan

        plan = ReplicaPlan(degree=2.0, virtual_nodes=100, replicated=100)
        nu, tau = 1e-8, 1000.0
        assert effective_restart_rate(plan, nu, tau) == pytest.approx(
            100 * nu**2 * tau
        )

    def test_replication_reduces_rate(self):
        from repro.resilience.base import ReplicaPlan

        nu, tau = 1e-8, 1000.0
        none = ReplicaPlan(degree=1.0, virtual_nodes=100, replicated=0)
        full = ReplicaPlan(degree=2.0, virtual_nodes=100, replicated=100)
        assert effective_restart_rate(full, nu, tau) < effective_restart_rate(
            none, nu, tau
        )

    def test_validation(self):
        from repro.resilience.base import ReplicaPlan

        plan = ReplicaPlan(degree=1.5, virtual_nodes=10, replicated=5)
        with pytest.raises(ValueError):
            effective_restart_rate(plan, 0.0, 100.0)
        with pytest.raises(ValueError):
            effective_restart_rate(plan, 1e-8, 0.0)


class TestFixedPointPeriod:
    def test_satisfies_fixed_point(self):
        from repro.resilience.base import ReplicaPlan

        plan = ReplicaPlan(degree=2.0, virtual_nodes=1000, replicated=1000)
        cost, nu = 100.0, 1.0 / MTBF
        tau = solve_checkpoint_period(cost, plan, nu)
        lam = effective_restart_rate(plan, nu, tau)
        assert tau == pytest.approx(
            optimal_checkpoint_interval(cost, lam), rel=1e-4
        )

    def test_full_redundancy_allows_longer_period(self):
        from repro.resilience.base import ReplicaPlan

        cost, nu = 100.0, 1.0 / MTBF
        none = ReplicaPlan(degree=1.0, virtual_nodes=1000, replicated=0)
        full = ReplicaPlan(degree=2.0, virtual_nodes=1000, replicated=1000)
        assert solve_checkpoint_period(cost, full, nu) > solve_checkpoint_period(
            cost, none, nu
        )


class TestTechnique:
    def test_names(self):
        assert Redundancy.partial().name == "redundancy_r1_5"
        assert Redundancy.full().name == "redundancy_r2"

    def test_nodes_required(self):
        app = make_application("A32", nodes=100)
        assert Redundancy.partial().nodes_required(app) == 150
        assert Redundancy.full().nodes_required(app) == 200

    def test_fits_enforces_size_wall(self, small_system):
        """Sec. V: redundancy yields zero efficiency when the machine
        cannot host the replicas."""
        app = make_application("A32", nodes=900)
        assert not Redundancy.partial().fits(app, small_system)  # 1350 > 1200
        assert Redundancy.partial().fits(
            make_application("A32", nodes=800), small_system
        )

    def test_plan_rejects_oversized(self, small_system):
        app = make_application("A32", nodes=900)
        with pytest.raises(ValueError):
            Redundancy.partial().plan(app, small_system, MTBF)

    def test_paper_interval_matches_cr(self, small_system):
        """Default mode: 'all parameters ... remain the same as the
        Checkpoint Restart technique', including the period."""
        app = make_application("A32", nodes=100)
        plan = Redundancy.partial().plan(app, small_system, MTBF)
        cost = pfs_checkpoint_time(app, small_system)
        cr_rate = application_failure_rate(app.nodes, MTBF)
        assert plan.levels[0].period_s == pytest.approx(
            optimal_checkpoint_interval(cost, cr_rate)
        )

    def test_effective_mode_lengthens_period(self, small_system):
        app = make_application("A32", nodes=100)
        paper = Redundancy(2.0, interval_mode="paper").plan(app, small_system, MTBF)
        eff = Redundancy(2.0, interval_mode="effective").plan(
            app, small_system, MTBF
        )
        assert eff.levels[0].period_s > paper.levels[0].period_s

    def test_invalid_degree_and_mode(self):
        with pytest.raises(ValueError):
            Redundancy(0.9)
        with pytest.raises(ValueError):
            Redundancy(2.1)
        with pytest.raises(ValueError):
            Redundancy(1.5, interval_mode="bogus")

    def test_plan_carries_replicas(self, small_system):
        app = make_application("A32", nodes=100)
        plan = Redundancy.partial().plan(app, small_system, MTBF)
        assert plan.replicas is not None
        assert plan.replicas.physical_nodes == plan.nodes_required == 150
