"""Unit tests for the extension techniques: adaptive redundancy and
incremental checkpointing."""

import pytest

from repro.resilience.adaptive import AdaptiveRedundancy
from repro.resilience.checkpoint_restart import (
    CheckpointRestart,
    IncrementalCheckpointRestart,
    pfs_checkpoint_time,
)
from repro.units import years
from repro.workload.synthetic import make_application

MTBF = years(10)


class TestAdaptiveRedundancy:
    def test_low_comm_apps_get_high_degrees(self, full_system):
        selector = AdaptiveRedundancy()
        app = make_application("A32", nodes=full_system.fraction_to_nodes(0.12))
        assert selector.choose_degree(app, full_system, MTBF) >= 1.5

    def test_high_comm_apps_get_no_redundancy(self, full_system):
        selector = AdaptiveRedundancy()
        app = make_application("D64", nodes=full_system.fraction_to_nodes(0.12))
        assert selector.choose_degree(app, full_system, MTBF) == 1.0

    def test_size_wall_caps_degree(self, full_system):
        """Near the machine limit only small degrees remain feasible."""
        selector = AdaptiveRedundancy()
        app = make_application("A32", nodes=full_system.fraction_to_nodes(0.8))
        degree = selector.choose_degree(app, full_system, MTBF)
        assert degree <= 1.25

    def test_distinct_apps_get_distinct_choices(self, full_system):
        """Regression: the choice cache must key on the full application
        identity, not just (id, nodes)."""
        selector = AdaptiveRedundancy()
        nodes = full_system.fraction_to_nodes(0.12)
        a32 = make_application("A32", nodes=nodes)
        d64 = make_application("D64", nodes=nodes)
        assert selector.choose_degree(a32, full_system, MTBF) != (
            selector.choose_degree(d64, full_system, MTBF)
        )

    def test_plan_brands_chosen_degree(self, full_system):
        selector = AdaptiveRedundancy()
        app = make_application("D64", nodes=full_system.fraction_to_nodes(0.12))
        plan = selector.plan(app, full_system, MTBF)
        assert plan.technique.startswith("adaptive_redundancy[r=")
        assert plan.replicas is not None

    def test_nodes_required_uses_minimum_degree(self):
        selector = AdaptiveRedundancy(degrees=(1.0, 2.0))
        app = make_application("A32", nodes=100)
        assert selector.nodes_required(app) == 100

    def test_simulated_beats_fixed_degree_on_mixed_apps(self, full_system):
        """On a high-communication app the adaptive policy (r = 1)
        must beat fixed full redundancy in simulation too."""
        from repro.core.single_app import SingleAppConfig, run_trials
        from repro.resilience.redundancy import Redundancy

        app = make_application("D64", nodes=full_system.fraction_to_nodes(0.12))
        config = SingleAppConfig(seed=77)
        adaptive = run_trials(app, AdaptiveRedundancy(), full_system, 4, config)
        fixed = run_trials(app, Redundancy.full(), full_system, 4, config)
        assert adaptive.mean_efficiency > fixed.mean_efficiency

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRedundancy(degrees=())
        with pytest.raises(ValueError):
            AdaptiveRedundancy(degrees=(0.5,))

    def test_no_feasible_degree_raises(self, small_system):
        selector = AdaptiveRedundancy(degrees=(2.0,))
        app = make_application("A32", nodes=900)
        with pytest.raises(ValueError):
            selector.choose_degree(app, small_system, MTBF)


class TestIncrementalCheckpointRestart:
    def test_cost_scaled_restart_full(self, small_system, small_app):
        technique = IncrementalCheckpointRestart(dirty_fraction=0.3)
        plan = technique.plan(small_app, small_system, MTBF)
        full = pfs_checkpoint_time(small_app, small_system)
        assert plan.levels[0].cost_s == pytest.approx(0.3 * full)
        assert plan.levels[0].restart_s == pytest.approx(full)

    def test_period_shorter_than_full_cr(self, small_system, small_app):
        incremental = IncrementalCheckpointRestart(0.3).plan(
            small_app, small_system, MTBF
        )
        full = CheckpointRestart().plan(small_app, small_system, MTBF)
        assert incremental.levels[0].period_s < full.levels[0].period_s

    def test_simulated_improvement(self, full_system):
        from repro.core.single_app import SingleAppConfig, run_trials

        app = make_application("A64", nodes=full_system.fraction_to_nodes(0.5))
        config = SingleAppConfig(seed=13)
        incremental = run_trials(
            app, IncrementalCheckpointRestart(0.3), full_system, 5, config
        )
        full = run_trials(app, CheckpointRestart(), full_system, 5, config)
        assert incremental.mean_efficiency > full.mean_efficiency

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalCheckpointRestart(0.0)
        with pytest.raises(ValueError):
            IncrementalCheckpointRestart(1.5)

    def test_name_carries_fraction(self):
        assert IncrementalCheckpointRestart(0.25).name == "incremental_cr_0.25"
