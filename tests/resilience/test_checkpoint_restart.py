"""Unit tests for the Checkpoint Restart technique (Sec. IV-B)."""

import pytest

from repro.failures.rates import application_failure_rate
from repro.resilience.checkpoint_restart import CheckpointRestart, pfs_checkpoint_time
from repro.resilience.daly import optimal_checkpoint_interval
from repro.units import years
from repro.workload.synthetic import make_application

MTBF = years(10)


class TestEq3:
    def test_checkpoint_time(self, small_system):
        app = make_application("A32", nodes=1200)
        # (32/600) * (1200/12) = 5.333 s.
        assert pfs_checkpoint_time(app, small_system) == pytest.approx(
            (32.0 / 600.0) * (1200 / 12)
        )

    def test_memory_dependence(self, small_system):
        a32 = make_application("A32", nodes=600)
        a64 = make_application("A64", nodes=600)
        assert pfs_checkpoint_time(a64, small_system) == pytest.approx(
            2 * pfs_checkpoint_time(a32, small_system)
        )


class TestPlan:
    def test_single_level_covering_everything(self, small_system, small_app):
        plan = CheckpointRestart().plan(small_app, small_system, MTBF)
        assert len(plan.levels) == 1
        assert plan.levels[0].recovers_severity == 3

    def test_symmetric_checkpoint_restart(self, small_system, small_app):
        plan = CheckpointRestart().plan(small_app, small_system, MTBF)
        level = plan.levels[0]
        assert level.cost_s == pytest.approx(level.restart_s)
        assert level.cost_s == pytest.approx(
            pfs_checkpoint_time(small_app, small_system)
        )

    def test_period_is_daly_optimum(self, small_system, small_app):
        plan = CheckpointRestart().plan(small_app, small_system, MTBF)
        cost = pfs_checkpoint_time(small_app, small_system)
        rate = application_failure_rate(small_app.nodes, MTBF)
        assert plan.levels[0].period_s == pytest.approx(
            optimal_checkpoint_interval(cost, rate)
        )

    def test_no_execution_inflation(self, small_system, small_app):
        plan = CheckpointRestart().plan(small_app, small_system, MTBF)
        assert plan.work_rate == 1.0
        assert plan.recovery_speedup == 1.0
        assert plan.replicas is None

    def test_nodes_required_equals_app_nodes(self, small_system, small_app):
        technique = CheckpointRestart()
        assert technique.nodes_required(small_app) == small_app.nodes
        plan = technique.plan(small_app, small_system, MTBF)
        assert plan.nodes_required == small_app.nodes

    def test_fits_anything_up_to_machine_size(self, small_system):
        technique = CheckpointRestart()
        assert technique.fits(make_application("A32", nodes=1200), small_system)
        assert not technique.fits(make_application("A32", nodes=1201), small_system)

    def test_period_shrinks_with_worse_mtbf(self, small_system, small_app):
        good = CheckpointRestart().plan(small_app, small_system, years(10))
        bad = CheckpointRestart().plan(small_app, small_system, years(2.5))
        assert bad.levels[0].period_s < good.levels[0].period_s
