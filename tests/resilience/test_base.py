"""Unit tests for plan/level/replica structures."""

import pytest

from repro.resilience.base import (
    CheckpointLevel,
    ExecutionPlan,
    ReplicaPlan,
    ceil_nodes,
)
from repro.workload.synthetic import make_application


def _level(index=1, recovers=3, cost=10.0, restart=10.0, period=100.0):
    return CheckpointLevel(
        index=index,
        recovers_severity=recovers,
        cost_s=cost,
        restart_s=restart,
        period_s=period,
    )


def _plan(levels=None, **overrides):
    app = make_application("A32", nodes=100, time_steps=60)
    kwargs = dict(
        app=app,
        technique="test",
        work_rate=1.0,
        levels=levels or (_level(),),
        nodes_required=100,
    )
    kwargs.update(overrides)
    return ExecutionPlan(**kwargs)


class TestCheckpointLevel:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(index=0),
            dict(recovers=0),
            dict(recovers=4),
            dict(cost=-1.0),
            dict(restart=-1.0),
            dict(period=0.0),
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            _level(**overrides)


class TestReplicaPlan:
    def test_physical_nodes(self):
        plan = ReplicaPlan(degree=1.5, virtual_nodes=100, replicated=50)
        assert plan.physical_nodes == 150

    def test_virtual_of_physical_mapping(self):
        plan = ReplicaPlan(degree=1.5, virtual_nodes=4, replicated=2)
        # Physical 0,1 -> virtual 0; 2,3 -> virtual 1; 4 -> 2; 5 -> 3.
        assert [plan.virtual_of_physical(i) for i in range(6)] == [0, 0, 1, 1, 2, 3]

    def test_replicas_of(self):
        plan = ReplicaPlan(degree=1.5, virtual_nodes=4, replicated=2)
        assert plan.replicas_of(0) == 2
        assert plan.replicas_of(3) == 1

    def test_full_redundancy_mapping(self):
        plan = ReplicaPlan(degree=2.0, virtual_nodes=3, replicated=3)
        assert plan.physical_nodes == 6
        assert [plan.virtual_of_physical(i) for i in range(6)] == [0, 0, 1, 1, 2, 2]

    def test_out_of_range_rejected(self):
        plan = ReplicaPlan(degree=1.5, virtual_nodes=4, replicated=2)
        with pytest.raises(ValueError):
            plan.virtual_of_physical(6)
        with pytest.raises(ValueError):
            plan.replicas_of(4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(degree=0.5, virtual_nodes=4, replicated=2),
            dict(degree=2.5, virtual_nodes=4, replicated=2),
            dict(degree=1.5, virtual_nodes=0, replicated=0),
            dict(degree=1.5, virtual_nodes=4, replicated=5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReplicaPlan(**kwargs)


class TestExecutionPlan:
    def test_effective_work_includes_rate(self):
        plan = _plan(work_rate=1.075)
        assert plan.effective_work_s == pytest.approx(60 * 60 * 1.075)

    def test_boundary_level_single_level(self):
        plan = _plan()
        assert plan.boundary_level(1).index == 1
        assert plan.boundary_level(17).index == 1

    def test_boundary_level_nested(self):
        levels = (
            _level(index=1, recovers=1, period=100.0),
            _level(index=2, recovers=2, period=300.0),
            _level(index=3, recovers=3, period=1200.0),
        )
        plan = _plan(levels=levels)
        assert plan.boundary_level(1).index == 1
        assert plan.boundary_level(3).index == 2
        assert plan.boundary_level(6).index == 2
        assert plan.boundary_level(12).index == 3
        assert plan.boundary_level(24).index == 3

    def test_level_multiplier(self):
        levels = (
            _level(index=1, recovers=1, period=100.0),
            _level(index=2, recovers=2, period=300.0),
            _level(index=3, recovers=3, period=1200.0),
        )
        plan = _plan(levels=levels)
        assert plan.level_multiplier(1) == 1
        assert plan.level_multiplier(2) == 3
        assert plan.level_multiplier(3) == 12

    def test_recovery_levels_filters_by_severity(self):
        levels = (
            _level(index=1, recovers=1, period=100.0),
            _level(index=2, recovers=2, period=300.0),
            _level(index=3, recovers=3, period=1200.0),
        )
        plan = _plan(levels=levels)
        assert [l.index for l in plan.recovery_levels(1)] == [1, 2, 3]
        assert [l.index for l in plan.recovery_levels(2)] == [2, 3]
        assert [l.index for l in plan.recovery_levels(3)] == [3]

    def test_boundary_must_be_positive(self):
        with pytest.raises(ValueError):
            _plan().boundary_level(0)

    def test_top_level_must_cover_worst_severity(self):
        with pytest.raises(ValueError):
            _plan(levels=(_level(recovers=1),))

    def test_non_nested_periods_rejected(self):
        levels = (
            _level(index=1, recovers=1, period=100.0),
            _level(index=2, recovers=3, period=250.0),  # 2.5x: not integer
        )
        with pytest.raises(ValueError):
            _plan(levels=levels)

    def test_duplicate_level_indices_rejected(self):
        levels = (
            _level(index=1, recovers=1, period=100.0),
            _level(index=1, recovers=3, period=100.0),
        )
        with pytest.raises(ValueError):
            _plan(levels=levels)

    def test_work_rate_below_one_rejected(self):
        with pytest.raises(ValueError):
            _plan(work_rate=0.9)

    def test_nodes_below_app_rejected(self):
        with pytest.raises(ValueError):
            _plan(nodes_required=50)

    def test_level_by_index_missing(self):
        with pytest.raises(KeyError):
            _plan().level_by_index(9)


class TestCeilNodes:
    def test_exact(self):
        assert ceil_nodes(100.0) == 100

    def test_rounds_up(self):
        assert ceil_nodes(100.1) == 101

    def test_float_fuzz_tolerated(self):
        assert ceil_nodes(0.5 * 300) == 150
        assert ceil_nodes(150.0000000001) == 150
