"""Unit tests for Parallel Recovery (Sec. IV-D)."""

import pytest

from repro.resilience.multilevel import level2_checkpoint_time
from repro.resilience.parallel_recovery import (
    ParallelRecovery,
    message_logging_slowdown,
)
from repro.units import years
from repro.workload.synthetic import make_application

MTBF = years(10)


class TestMu:
    @pytest.mark.parametrize(
        "tc,expected",
        [(0.0, 1.0), (0.25, 1.025), (0.5, 1.05), (0.75, 1.075)],
    )
    def test_paper_values(self, tc, expected):
        assert message_logging_slowdown(tc) == pytest.approx(expected)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            message_logging_slowdown(1.0)
        with pytest.raises(ValueError):
            message_logging_slowdown(-0.1)


class TestEq7:
    def test_effective_work_inflated_by_mu(self, small_system):
        app = make_application("D64", nodes=120, time_steps=60)
        plan = ParallelRecovery().plan(app, small_system, MTBF)
        assert plan.work_rate == pytest.approx(1.075)
        assert plan.effective_work_s == pytest.approx(app.baseline_time * 1.075)

    def test_no_inflation_for_ep_apps(self, small_system, small_app):
        plan = ParallelRecovery().plan(small_app, small_system, MTBF)
        assert plan.work_rate == 1.0


class TestPlan:
    def test_in_memory_checkpoint_cost(self, small_system, comm_app):
        plan = ParallelRecovery().plan(comm_app, small_system, MTBF)
        assert plan.levels[0].cost_s == pytest.approx(
            level2_checkpoint_time(comm_app, small_system)
        )

    def test_never_touches_pfs(self, small_system, comm_app):
        """Sec. VII: 'the Parallel Recovery technique never requires
        checkpoints to a parallel file system' — its checkpoint cost is
        seconds, not minutes, regardless of size."""
        big = make_application("D64", nodes=1200)
        plan = ParallelRecovery().plan(big, small_system, MTBF)
        assert plan.levels[0].cost_s < 1.0

    def test_recovers_all_severities(self, small_system, comm_app):
        plan = ParallelRecovery().plan(comm_app, small_system, MTBF)
        assert plan.levels[0].recovers_severity == 3

    def test_recovery_speedup_default(self, small_system, comm_app):
        plan = ParallelRecovery().plan(comm_app, small_system, MTBF)
        assert plan.recovery_speedup == pytest.approx(4.0)

    def test_recovery_speedup_configurable(self, small_system, comm_app):
        plan = ParallelRecovery(recovery_parallelism=8.0).plan(
            comm_app, small_system, MTBF
        )
        assert plan.recovery_speedup == pytest.approx(8.0)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            ParallelRecovery(recovery_parallelism=0.5)

    def test_checkpoint_period_much_shorter_than_cr(self, small_system):
        """Cheap checkpoints allow much tighter periods than PFS ones."""
        from repro.resilience.checkpoint_restart import CheckpointRestart

        app = make_application("A32", nodes=1200)
        pr = ParallelRecovery().plan(app, small_system, MTBF)
        cr = CheckpointRestart().plan(app, small_system, MTBF)
        assert pr.levels[0].period_s < cr.levels[0].period_s
