"""Unit tests for the multilevel schedule optimizer."""

import pytest

from repro.resilience.daly import optimal_checkpoint_interval
from repro.resilience.moody_markov import (
    MultilevelSchedule,
    _boundary_fractions,
    expected_overhead,
    optimize_schedule,
)


class TestBoundaryFractions:
    def test_single_level(self):
        assert _boundary_fractions(()) == (1.0,)

    def test_two_levels(self):
        # m2 = 4: 3/4 of boundaries are exactly L1, 1/4 are L2.
        assert _boundary_fractions((4,)) == pytest.approx((0.75, 0.25))

    def test_three_levels(self):
        f = _boundary_fractions((4, 3))
        assert f == pytest.approx((0.75, 0.25 - 1 / 12, 1 / 12))
        assert sum(f) == pytest.approx(1.0)

    def test_all_multipliers_one(self):
        # Every boundary is the top level.
        assert _boundary_fractions((1, 1)) == pytest.approx((0.0, 0.0, 1.0))


class TestExpectedOverhead:
    def test_single_level_matches_daly_form(self):
        c, r, lam, tau = 100.0, 100.0, 1e-5, 3000.0
        overhead = expected_overhead(tau, (), [c], [r], [lam])
        assert overhead == pytest.approx(c / tau + lam * (r + tau / 2))

    def test_decreases_then_increases_in_tau(self):
        c, r, lam = 100.0, 100.0, 1e-5
        opt = optimal_checkpoint_interval(c, lam)
        at_opt = expected_overhead(opt, (), [c], [r], [lam])
        assert expected_overhead(opt / 10, (), [c], [r], [lam]) > at_opt
        assert expected_overhead(opt * 10, (), [c], [r], [lam]) > at_opt

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_overhead(0.0, (), [1.0], [1.0], [1e-5])
        with pytest.raises(ValueError):
            expected_overhead(10.0, (0,), [1.0, 2.0], [1.0, 2.0], [1e-5, 1e-6])
        with pytest.raises(ValueError):
            expected_overhead(10.0, (), [1.0, 2.0], [1.0], [1e-5])
        with pytest.raises(ValueError):
            expected_overhead(10.0, (2, 2), [1.0], [1.0], [1e-5])


class TestOptimizeSchedule:
    def test_single_level_recovers_daly(self):
        c, lam = 100.0, 1e-5
        schedule = optimize_schedule([c], [c], [lam])
        # The renewal objective's optimum matches Daly's to first order.
        assert schedule.base_interval_s == pytest.approx(
            optimal_checkpoint_interval(c, lam), rel=0.15
        )

    def test_three_level_structure(self):
        costs = [0.1, 0.4, 500.0]
        rates = [6.5e-5, 2e-5, 1.5e-5]
        schedule = optimize_schedule(costs, costs, rates)
        assert len(schedule.multipliers) == 2
        assert all(m >= 1 for m in schedule.multipliers)
        periods = schedule.periods_s
        assert periods[0] <= periods[1] <= periods[2]
        # The expensive PFS level must be much rarer than the RAM level.
        assert periods[2] / periods[0] > 10

    def test_optimum_beats_perturbations(self):
        costs = [0.1, 0.4, 500.0]
        rates = [6.5e-5, 2e-5, 1.5e-5]
        schedule = optimize_schedule(costs, costs, rates)
        best = schedule.overhead
        for tau_scale in (0.3, 3.0):
            worse = expected_overhead(
                schedule.base_interval_s * tau_scale,
                schedule.multipliers,
                costs,
                costs,
                rates,
            )
            assert worse >= best * 0.999

    def test_zero_rate_level_tolerated(self):
        schedule = optimize_schedule([0.1, 500.0], [0.1, 500.0], [1e-5, 0.0])
        assert schedule.base_interval_s > 0

    def test_periods_property(self):
        schedule = MultilevelSchedule(
            base_interval_s=10.0, multipliers=(3, 4), overhead=0.1
        )
        assert schedule.periods_s == (10.0, 30.0, 120.0)

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError):
            optimize_schedule([], [], [])
