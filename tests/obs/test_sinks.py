"""Unit tests for the shipped bus sinks."""

import io
import json

from repro.obs.bus import EventBus
from repro.obs.events import (
    ActivitySpan,
    CheckpointTaken,
    FailureInjected,
    JobDropped,
)
from repro.obs.sinks import (
    JsonlExportSink,
    MetricsSink,
    RecordingSink,
    TimelineSink,
    TraceSink,
    event_to_jsonl,
)
from repro.sim.engine import Simulator
from repro.sim.events import EventKind


def _span(app_id=1, technique="t", activity="work", start=0.0, end=5.0):
    return ActivitySpan(
        time=end,
        app_id=app_id,
        technique=technique,
        activity=activity,
        start=start,
        end=end,
    )


class TestRecordingSink:
    def test_records_in_order_and_filters_by_type(self):
        bus = EventBus()
        sink = RecordingSink()
        sink.attach(bus)
        f = FailureInjected(time=1.0, app_id=1, node_id=0, severity=1)
        s = _span()
        bus.publish(f)
        bus.publish(s)
        assert sink.events == [f, s]
        assert sink.of_type(ActivitySpan) == [s]


class TestTraceSink:
    def test_records_kernel_stream(self):
        sim = Simulator()
        trace = TraceSink()
        trace.attach(sim.bus)
        sim.schedule(1.0, lambda _e: None, kind=EventKind.FAILURE, payload="f")
        sim.schedule(2.0, lambda _e: None, kind=EventKind.CHECKPOINT)
        sim.run()
        assert len(trace) == 2
        assert trace.counts() == {EventKind.FAILURE: 1, EventKind.CHECKPOINT: 1}

    def test_capacity_and_dropped_counter(self):
        trace = TraceSink(capacity=3)
        for i in range(10):
            trace.record(float(i), EventKind.INTERNAL, i)
        assert len(trace) == 3
        assert trace.dropped == 7
        assert [e.payload for e in trace] == [7, 8, 9]

    def test_slicing_matches_list_semantics(self):
        trace = TraceSink(capacity=4)
        for i in range(6):
            trace.record(float(i), EventKind.INTERNAL, i)
        assert [e.payload for e in trace[1:3]] == [3, 4]
        assert trace[-1].payload == 5


class TestTimelineSink:
    def test_collects_spans_as_tuples(self):
        bus = EventBus()
        sink = TimelineSink()
        sink.attach(bus)
        bus.publish(_span(start=0.0, end=3.0))
        bus.publish(_span(activity="checkpoint", start=3.0, end=4.0))
        assert sink.spans == [(0.0, 3.0, "work"), (3.0, 4.0, "checkpoint")]

    def test_app_filter(self):
        bus = EventBus()
        sink = TimelineSink(app_id=1)
        sink.attach(bus)
        bus.publish(_span(app_id=1))
        bus.publish(_span(app_id=2))
        assert len(sink.spans) == 1


class TestMetricsSink:
    def _populated(self):
        bus = EventBus()
        sink = MetricsSink()
        sink.attach(bus)
        bus.publish(FailureInjected(time=1.0, app_id=1, node_id=0, severity=1))
        bus.publish(_span(technique="cr", activity="work", start=0.0, end=10.0))
        bus.publish(_span(technique="cr", activity="work", start=12.0, end=15.0))
        bus.publish(_span(technique="cr", activity="restart", start=10.0, end=12.0))
        return sink

    def test_counts_and_activity(self):
        sink = self._populated()
        assert sink.count(FailureInjected) == 1
        assert sink.count(ActivitySpan) == 3
        assert sink.activity_seconds("cr", "work") == 13.0
        assert sink.activity_seconds("cr", "restart") == 2.0
        assert sink.activity_seconds("cr", "checkpoint") == 0.0

    def test_to_dict_roundtrips_through_merge(self):
        payload = self._populated().to_dict()
        merged = MetricsSink()
        merged.merge(payload)
        merged.merge(payload)
        assert merged.count(FailureInjected) == 2
        assert merged.activity_seconds("cr", "work") == 26.0

    def test_to_dict_is_json_serialisable_and_sorted(self):
        payload = self._populated().to_dict()
        text = json.dumps(payload, sort_keys=True)
        assert json.loads(text) == payload


class TestJsonlExport:
    def test_event_to_jsonl_deterministic(self):
        event = FailureInjected(time=1.5, app_id=3, node_id=7, severity=2)
        line = event_to_jsonl(event)
        assert line == event_to_jsonl(event)
        record = json.loads(line)
        assert record == {
            "event": "FailureInjected",
            "time": 1.5,
            "app_id": 3,
            "node_id": 7,
            "severity": 2,
            "width": 1,
        }

    def test_export_sink_collects_and_writes(self):
        bus = EventBus()
        sink = JsonlExportSink()
        sink.attach(bus)
        bus.publish(JobDropped(time=5.0, app_id=1, reason="scheduler"))
        bus.publish(
            CheckpointTaken(
                time=6.0, app_id=1, technique="cr", level_index=0, position=3.0
            )
        )
        assert len(sink.lines) == 2
        buffer = io.StringIO()
        assert sink.write(buffer) == 2
        parsed = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [p["event"] for p in parsed] == ["JobDropped", "CheckpointTaken"]
