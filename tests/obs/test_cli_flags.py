"""The --trace-out / --metrics-out CLI flags."""

import json

from repro.cli import build_parser, main


class TestParser:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["fig1", "--trace-out", "t.jsonl", "--metrics-out", "m.json"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out == "m.json"

    def test_flags_default_off(self):
        args = build_parser().parse_args(["fig1"])
        assert args.trace_out is None
        assert args.metrics_out is None


class TestTraceOut:
    def test_fig1_writes_valid_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "fig1",
                    "--quick",
                    "--trials",
                    "2",
                    "--trace-out",
                    str(trace),
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "Fig. 1" in captured.out
        assert str(trace) in captured.err

        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert events
        kinds = {e["event"] for e in events}
        # The acceptance triad: failures, checkpoints, completions.
        assert "FailureInjected" in kinds
        assert "CheckpointTaken" in kinds
        assert "ExecutionCompleted" in kinds
        for event in events:
            assert isinstance(event["time"], float) or isinstance(
                event["time"], int
            )

        payload = json.loads(metrics.read_text())
        assert payload["counts"]["FailureInjected"] == sum(
            e["event"] == "FailureInjected" for e in events
        )

    def test_datacenter_fig_writes_job_lifecycle(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        assert (
            main(
                [
                    "fig4",
                    "--quick",
                    "--patterns",
                    "1",
                    "--trace-out",
                    str(trace),
                ]
            )
            == 0
        )
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {e["event"] for e in events}
        assert "JobArrived" in kinds
        assert "JobMapped" in kinds
        assert {"JobCompleted", "JobDropped"} & kinds
