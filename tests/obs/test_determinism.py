"""Instrumentation is passive: sink configuration never changes results.

The acceptance property of the bus refactor — running a study with no
sinks, with every shipped sink, or with sinks across worker processes
must produce bit-identical numeric results, and the exported JSONL
stream must be byte-identical for any ``--jobs`` value.
"""

import json

from repro.core.single_app import SingleAppConfig, simulate_application
from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig
from repro.experiments.parallel import ExecutorOptions
from repro.experiments.runner import run_datacenter_study, run_scaling_study
from repro.core.selection import FixedSelector
from repro.obs.sinks import (
    JsonlExportSink,
    MetricsSink,
    RecordingSink,
    TimelineSink,
    TraceSink,
)
from repro.resilience.registry import get_technique
from repro.units import HOUR
from repro.workload.synthetic import make_application

SCALING = ScalingStudyConfig(
    app_type="A32",
    fractions=(0.1,),
    trials=3,
    system_nodes=1_200,
    baseline_s=3_600.0,
    seed=11,
)

DATACENTER = DatacenterStudyConfig(
    patterns=1, arrivals_per_pattern=30, system_nodes=1_200, seed=11
)

TECHNIQUES = [get_technique("checkpoint_restart"), get_technique("multilevel")]


def _selectors():
    return {"checkpoint_restart": lambda: FixedSelector(TECHNIQUES[0])}


def _scaling_numbers(result):
    return [
        (c.fraction, c.technique, c.infeasible, c.mean_efficiency)
        for c in result.cells
    ]


def _datacenter_numbers(study):
    return [
        (c.rm_name, c.selector_name, c.bias, c.samples) for c in study.cells
    ]


class TestSingleTrialBitIdentity:
    def test_all_sink_combinations_identical(self, small_system):
        """One failure-heavy trial with none/each/all sinks attached
        reports identical stats."""
        app = make_application("A32", nodes=120, time_steps=60)
        technique = get_technique("multilevel")
        config = SingleAppConfig(node_mtbf_s=200 * HOUR, seed=99)

        def run(sinks):
            stats = simulate_application(
                app, technique, small_system, config, sinks=sinks
            )
            return (
                stats.completed,
                stats.end_time,
                stats.failures,
                stats.restarts,
                stats.total_checkpoints,
                stats.work_time_s,
                stats.rework_time_s,
                stats.checkpoint_time_s,
                stats.restart_time_s,
            )

        baseline = run(None)
        assert baseline[2] > 0  # failure-heavy, or the test is vacuous
        all_sinks = (
            TraceSink(),
            MetricsSink(),
            TimelineSink(),
            JsonlExportSink(),
            RecordingSink(),
        )
        assert run(all_sinks) == baseline
        assert run((MetricsSink(),)) == baseline


class TestScalingStudy:
    def test_observation_and_jobs_preserve_results(self):
        plain = run_scaling_study(SCALING, techniques=TECHNIQUES)
        observed = run_scaling_study(SCALING, techniques=TECHNIQUES, observe=True)
        parallel = run_scaling_study(
            SCALING,
            techniques=TECHNIQUES,
            observe=True,
            options=ExecutorOptions(jobs=2, cache=False),
        )
        numbers = _scaling_numbers(plain)
        assert _scaling_numbers(observed) == numbers
        assert _scaling_numbers(parallel) == numbers
        # The exported stream is byte-identical across jobs values.
        assert observed.trace_lines == parallel.trace_lines
        assert observed.metrics == parallel.metrics
        assert plain.trace_lines is None and plain.metrics is None

    def test_trace_lines_are_valid_jsonl(self):
        observed = run_scaling_study(SCALING, techniques=TECHNIQUES, observe=True)
        assert observed.trace_lines
        events = [json.loads(line) for line in observed.trace_lines]
        kinds = {e["event"] for e in events}
        assert "TrialStarted" in kinds
        assert "ExecutionStarted" in kinds
        assert "ActivitySpan" in kinds
        # Metrics agree with the stream they were computed from.
        counts = observed.metrics["counts"]
        for kind in kinds:
            assert counts[kind] == sum(e["event"] == kind for e in events)


class TestDatacenterStudy:
    def test_observation_and_jobs_preserve_results(self):
        plain, _ = run_datacenter_study(
            DATACENTER, selectors=_selectors(), rm_names=["fcfs"]
        )
        observed, _ = run_datacenter_study(
            DATACENTER, selectors=_selectors(), rm_names=["fcfs"], observe=True
        )
        parallel, _ = run_datacenter_study(
            DATACENTER,
            selectors=_selectors(),
            rm_names=["fcfs"],
            observe=True,
            options=ExecutorOptions(jobs=2, cache=False),
        )
        numbers = _datacenter_numbers(plain)
        assert _datacenter_numbers(observed) == numbers
        assert _datacenter_numbers(parallel) == numbers
        assert observed.trace_lines == parallel.trace_lines
        assert observed.metrics == parallel.metrics

    def test_dropped_events_match_dropped_percentage(self):
        observed, _ = run_datacenter_study(
            DATACENTER, selectors=_selectors(), rm_names=["fcfs"], observe=True
        )
        events = [json.loads(line) for line in observed.trace_lines]
        dropped = [
            e
            for e in events
            if e["event"] == "JobDropped" and not e["is_fill"]
        ]
        (cell,) = observed.cells
        arriving = DATACENTER.arrivals_per_pattern
        expected = sum(
            round(pct * arriving / 100.0) for pct in cell.samples
        )
        assert len(dropped) == expected

    def test_reruns_are_reproducible(self):
        first, _ = run_datacenter_study(
            DATACENTER, selectors=_selectors(), rm_names=["fcfs"], observe=True
        )
        second, _ = run_datacenter_study(
            DATACENTER, selectors=_selectors(), rm_names=["fcfs"], observe=True
        )
        assert first.trace_lines == second.trace_lines
        assert first.metrics == second.metrics
