"""Event-stream invariants over real simulations.

These tests run full single-application and datacenter simulations
with recording sinks attached and check that the published event
stream is internally consistent and agrees with the stats the
simulation reports — the "one source of truth" property of the bus.
"""

import pytest

from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.single_app import SingleAppConfig, simulate_application
from repro.core.selection import FixedSelector
from repro.experiments.runner import generate_patterns
from repro.experiments.config import DatacenterStudyConfig
from repro.obs.events import (
    ActivitySpan,
    CheckpointFailed,
    CheckpointTaken,
    ExecutionCompleted,
    ExecutionStarted,
    FailureInjected,
    JobArrived,
    JobCompleted,
    JobDropped,
    JobMapped,
    ReplicaAbsorbed,
    RestartStarted,
    TrialFinished,
    TrialStarted,
)
from repro.obs.sinks import MetricsSink, RecordingSink
from repro.resilience.registry import get_technique
from repro.rm.registry import make_manager
from repro.rng.streams import StreamFactory
from repro.units import HOUR
from repro.workload.patterns import PatternBias
from repro.workload.synthetic import make_application

#: A failure-heavy configuration: low MTBF so several failures land.
FAILURE_HEAVY = SingleAppConfig(node_mtbf_s=200 * HOUR, seed=99)


def _run(technique_name, small_system, config=FAILURE_HEAVY, trial=0):
    app = make_application("A32", nodes=120, time_steps=60)
    technique = get_technique(technique_name)
    recording = RecordingSink()
    metrics = MetricsSink()
    stats = simulate_application(
        app,
        technique,
        small_system,
        config,
        trial=trial,
        sinks=(recording, metrics),
    )
    return stats, recording, metrics


class TestSingleAppInvariants:
    @pytest.mark.parametrize(
        "technique_name",
        ["checkpoint_restart", "multilevel", "parallel_recovery", "redundancy_r2"],
    )
    def test_stats_equal_event_stream(self, small_system, technique_name):
        stats, recording, metrics = _run(technique_name, small_system)
        assert stats.failures == metrics.count(FailureInjected)
        assert stats.replica_failures_absorbed == metrics.count(ReplicaAbsorbed)
        restarts = [
            e for e in recording.of_type(RestartStarted) if not e.retry
        ]
        assert stats.restarts == len(restarts)
        assert stats.total_checkpoints == metrics.count(CheckpointTaken)
        assert stats.failed_checkpoints == metrics.count(CheckpointFailed)
        assert metrics.count(ExecutionStarted) == 1
        assert metrics.count(ExecutionCompleted) == (1 if stats.completed else 0)

    @pytest.mark.parametrize(
        "technique_name", ["checkpoint_restart", "multilevel", "parallel_recovery"]
    )
    def test_run_is_failure_heavy(self, small_system, technique_name):
        stats, _, _ = _run(technique_name, small_system)
        assert stats.failures > 0  # otherwise the invariants test nothing

    @pytest.mark.parametrize(
        "technique_name",
        ["checkpoint_restart", "multilevel", "parallel_recovery", "redundancy_r2"],
    )
    def test_every_failure_answered(self, small_system, technique_name):
        """Each FailureInjected is immediately followed by the engine's
        response: a RestartStarted or a ReplicaAbsorbed."""
        _, recording, _ = _run(technique_name, small_system)
        events = recording.events
        for i, event in enumerate(events):
            if not isinstance(event, FailureInjected):
                continue
            responses = [
                e
                for e in events[i + 1 :]
                if isinstance(e, (RestartStarted, ReplicaAbsorbed))
            ]
            assert responses, f"failure at index {i} never answered"
            assert responses[0].time >= event.time

    def test_activity_spans_match_stats_accumulators(self, small_system):
        stats, recording, metrics = _run("multilevel", small_system)
        technique = "multilevel"
        assert metrics.activity_seconds(technique, "work") == pytest.approx(
            stats.work_time_s
        )
        assert metrics.activity_seconds(technique, "recovery") == pytest.approx(
            stats.rework_time_s
        )
        assert metrics.activity_seconds(technique, "checkpoint") == pytest.approx(
            stats.checkpoint_time_s
        )
        assert metrics.activity_seconds(technique, "restart") == pytest.approx(
            stats.restart_time_s
        )

    def test_spans_are_positive_and_ordered(self, small_system):
        _, recording, _ = _run("checkpoint_restart", small_system)
        spans = recording.of_type(ActivitySpan)
        assert spans
        for span in spans:
            assert span.end > span.start
            assert span.time == span.end

    def test_trial_markers_bracket_the_stream(self, small_system):
        _, recording, _ = _run("checkpoint_restart", small_system)
        events = recording.events
        assert isinstance(events[0], TrialStarted)
        assert isinstance(events[-1], TrialFinished)
        assert events[0].scope == "single_app"


@pytest.fixture(scope="module")
def datacenter_run():
    """One full datacenter pattern with a recording sink attached."""
    config = DatacenterStudyConfig(
        patterns=1, arrivals_per_pattern=40, system_nodes=1_200, seed=7
    )
    pattern = generate_patterns(config, PatternBias.UNBIASED)[0]
    from repro.platform.presets import exascale_system

    system = exascale_system(config.system_nodes)
    manager = make_manager("fcfs", StreamFactory(7).fresh("rm"))
    selector = FixedSelector(get_technique("checkpoint_restart"))
    recording = RecordingSink()
    result = run_datacenter(
        pattern,
        manager,
        selector,
        system,
        DatacenterConfig(seed=7),
        sinks=(recording,),
    )
    return result, recording


class TestDatacenterInvariants:
    def test_dropped_events_equal_dropped_numerator(self, datacenter_run):
        """Non-fill JobDropped events equal the numerator of the
        Figs. 4-5 dropped percentage."""
        result, recording = datacenter_run
        dropped_events = [
            e for e in recording.of_type(JobDropped) if not e.is_fill
        ]
        numerator = sum(r.dropped for r in result.arriving_records())
        assert len(dropped_events) == numerator
        assert numerator > 0  # the invariant must be exercised

    def test_each_job_dropped_at_most_once(self, datacenter_run):
        _, recording = datacenter_run
        dropped_ids = [e.app_id for e in recording.of_type(JobDropped)]
        assert len(dropped_ids) == len(set(dropped_ids))

    def test_every_arrival_resolves(self, datacenter_run):
        """Every arrived job is eventually mapped+completed or dropped."""
        _, recording = datacenter_run
        arrived = {e.app_id for e in recording.of_type(JobArrived)}
        completed = {e.app_id for e in recording.of_type(JobCompleted)}
        dropped = {e.app_id for e in recording.of_type(JobDropped)}
        # Completed-but-late jobs appear in both sets; that is expected.
        assert arrived == (completed | dropped)

    def test_mapped_jobs_were_pending_first(self, datacenter_run):
        _, recording = datacenter_run
        arrived = {e.app_id for e in recording.of_type(JobArrived)}
        mapped = {e.app_id for e in recording.of_type(JobMapped)}
        assert mapped <= arrived

    def test_completion_count_matches_records(self, datacenter_run):
        result, recording = datacenter_run
        assert len(recording.of_type(JobCompleted)) == result.completed_count
