"""Unit tests for the instrumentation EventBus."""

from repro.obs.bus import EventBus
from repro.obs.events import CheckpointTaken, FailureInjected, TrialStarted
from repro.sim.events import EventKind


def _failure(app_id=1, time=1.0):
    return FailureInjected(time=time, app_id=app_id, node_id=0, severity=1)


class TestSubscribe:
    def test_by_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(FailureInjected, seen.append)
        event = _failure()
        bus.publish(event)
        assert seen == [event]

    def test_by_type_ignores_other_types(self):
        bus = EventBus()
        seen = []
        bus.subscribe(CheckpointTaken, seen.append)
        bus.publish(_failure())
        assert seen == []

    def test_keyed_dispatches_only_matching_app(self):
        bus = EventBus()
        seen = []
        bus.subscribe_key(FailureInjected, 7, seen.append)
        bus.publish(_failure(app_id=7))
        bus.publish(_failure(app_id=8))
        assert [e.app_id for e in seen] == [7]

    def test_keyed_skips_events_without_app_id(self):
        bus = EventBus()
        seen = []
        bus.subscribe_key(TrialStarted, None, seen.append)
        # TrialStarted has app_id=None -> never keyed-dispatched.
        bus.publish(TrialStarted(time=0.0, scope="single_app"))
        assert seen == []

    def test_subscribe_all_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        bus.publish(_failure())
        bus.publish(TrialStarted(time=0.0, scope="single_app"))
        assert len(seen) == 2

    def test_all_handlers_fire_for_one_event(self):
        bus = EventBus()
        hits = []
        bus.subscribe_all(lambda e: hits.append("all"))
        bus.subscribe(FailureInjected, lambda e: hits.append("typed"))
        bus.subscribe_key(FailureInjected, 1, lambda e: hits.append("keyed"))
        bus.publish(_failure(app_id=1))
        assert hits == ["all", "typed", "keyed"]


class TestActivation:
    def test_empty_bus_has_no_subscribers(self):
        bus = EventBus()
        assert not bus.has_subscribers
        assert bus.subscriber_count() == 0
        bus.publish(_failure())  # no-op, must not raise

    def test_kernel_taps_do_not_activate_domain_channel(self):
        bus = EventBus()
        bus.add_kernel_tap(lambda t, k, p: None)
        assert not bus.has_subscribers

    def test_subscriber_count_spans_channels(self):
        bus = EventBus()
        bus.subscribe_all(lambda e: None)
        bus.subscribe(FailureInjected, lambda e: None)
        bus.subscribe_key(FailureInjected, 1, lambda e: None)
        assert bus.subscriber_count() == 3
        assert bus.has_subscribers


class TestKernelTaps:
    def test_simulator_forwards_executed_events(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        taps = []
        sim.bus.add_kernel_tap(lambda t, k, p: taps.append((t, k, p)))
        sim.schedule(2.0, lambda _e: None, kind=EventKind.FAILURE, payload="x")
        sim.run()
        assert taps == [(2.0, EventKind.FAILURE, "x")]

    def test_cancelled_events_not_tapped(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        taps = []
        sim.bus.add_kernel_tap(lambda t, k, p: taps.append(k))
        ev = sim.schedule(1.0, lambda _e: None, kind=EventKind.FAILURE)
        sim.cancel(ev)
        sim.run()
        assert taps == []
