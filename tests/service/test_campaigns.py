"""``POST /v1/campaigns``: scenario campaigns over HTTP.

Covers the acceptance criteria: bundled scenarios (including Weibull,
burst-storm, and trace-replay regimes) execute end-to-end through the
service, and schema violations come back as 400s with the same
field-path-qualified one-line message the CLI prints.
"""

import pytest

from repro.scenarios import load_named, spec_sha256
from repro.service.app import ReproService, ServiceConfig
from repro.service.client import ServiceClient, ServiceError


def inline_spec(**overrides):
    doc = {
        "scenario": {"name": "inline"},
        "failures": {"regime": "poisson", "mtbf_years": 5.0},
        "workload": {
            "study": "scaling",
            "app_type": "A32",
            "fractions": [0.01],
        },
        "techniques": {"names": ["checkpoint_restart"]},
        "run": {"trials": 2},
    }
    doc.update(overrides)
    return doc


@pytest.fixture
def service():
    svc = ReproService(
        ServiceConfig(
            host="127.0.0.1",
            port=0,
            workers=1,
            db_path=":memory:",
            poll_interval_s=0.01,
        )
    )
    svc.start()
    yield svc
    svc.shutdown(timeout=30)


@pytest.fixture
def client(service):
    return ServiceClient(service.url, timeout=30.0)


class TestSubmission:
    def test_bundled_campaign_runs_to_done(self, client):
        campaign = client.submit_campaign(scenario="weibull-aging", quick=True)
        assert campaign["scenario"] == "weibull-aging"
        assert campaign["spec_sha256"] == spec_sha256(
            load_named("weibull-aging")
        )
        assert len(campaign["units"]) == 1
        job_id = campaign["units"][0]["job"]["id"]
        final = client.wait(job_id, timeout=300)
        assert final["state"] == "done"
        assert "analytic model bypassed" in client.result(job_id)

    def test_trace_replay_campaign_round_trips_the_trace(self, client):
        """The embedded trace must survive the job store: replay jobs
        are self-contained, no path resolution happens on the worker."""
        campaign = client.submit_campaign(scenario="trace-replay", quick=True)
        job_id = campaign["units"][0]["job"]["id"]
        final = client.wait(job_id, timeout=300)
        assert final["state"] == "done"
        text = client.result(job_id)
        assert "trace replay" in text or "recorded failure" in text

    def test_burst_storm_campaign_accepted(self, client):
        campaign = client.submit_campaign(scenario="burst-storm", quick=True)
        job_id = campaign["units"][0]["job"]["id"]
        assert client.wait(job_id, timeout=300)["state"] == "done"

    def test_inline_spec_with_provenance_in_result(self, client):
        campaign = client.submit_campaign(
            spec=inline_spec(), quick=True, format="csv"
        )
        job_id = campaign["units"][0]["job"]["id"]
        assert client.wait(job_id, timeout=300)["state"] == "done"
        first_line = client.result(job_id).splitlines()[0]
        assert first_line.startswith("# scenario=inline")
        assert campaign["spec_sha256"] in first_line

    def test_notes_surface_compiler_decisions(self, client):
        campaign = client.submit_campaign(scenario="fig1", quick=True)
        assert any("lowered to fig1" in n for n in campaign["notes"])


class TestValidation:
    def test_unknown_bundled_name_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(scenario="no-such-study")
        assert excinfo.value.status == 400
        assert "no-such-study" in excinfo.value.message

    def test_schema_violation_400_with_field_path(self, client):
        bad = inline_spec(failures={"regime": "weibull"})
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(spec=bad)
        assert excinfo.value.status == 400
        assert "failures.shape" in excinfo.value.message

    def test_both_scenario_and_spec_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(scenario="fig1", spec=inline_spec())
        assert excinfo.value.status == 400

    def test_neither_scenario_nor_spec_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(quick=True)
        assert excinfo.value.status == 400

    def test_unknown_field_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(scenario="fig1", bogus=1)
        assert excinfo.value.status == 400
        assert "bogus" in excinfo.value.message

    def test_bad_format_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(scenario="fig1", format="yaml")
        assert excinfo.value.status == 400

    def test_nothing_enqueued_on_rejection(self, client, service):
        before = service.store.counts()
        with pytest.raises(ServiceError):
            client.submit_campaign(spec=inline_spec(failures={"regime": "x"}))
        assert service.store.counts() == before
