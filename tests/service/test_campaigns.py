"""``POST /v1/campaigns``: scenario campaigns over HTTP.

Covers the acceptance criteria: bundled scenarios (including Weibull,
burst-storm, and trace-replay regimes) execute end-to-end through the
service, and schema violations come back as 400s with the same
field-path-qualified one-line message the CLI prints.
"""

import pytest

from repro.scenarios import load_named, spec_sha256
from repro.service.app import ReproService, ServiceConfig
from repro.service.client import ServiceClient, ServiceError


def inline_spec(**overrides):
    doc = {
        "scenario": {"name": "inline"},
        "failures": {"regime": "poisson", "mtbf_years": 5.0},
        "workload": {
            "study": "scaling",
            "app_type": "A32",
            "fractions": [0.01],
        },
        "techniques": {"names": ["checkpoint_restart"]},
        "run": {"trials": 2},
    }
    doc.update(overrides)
    return doc


@pytest.fixture
def service():
    svc = ReproService(
        ServiceConfig(
            host="127.0.0.1",
            port=0,
            workers=1,
            db_path=":memory:",
            poll_interval_s=0.01,
        )
    )
    svc.start()
    yield svc
    svc.shutdown(timeout=30)


@pytest.fixture
def client(service):
    return ServiceClient(service.url, timeout=30.0)


class TestSubmission:
    def test_bundled_campaign_runs_to_done(self, client):
        campaign = client.submit_campaign(scenario="weibull-aging", quick=True)
        assert campaign["scenario"] == "weibull-aging"
        assert campaign["spec_sha256"] == spec_sha256(
            load_named("weibull-aging")
        )
        assert len(campaign["units"]) == 1
        job_id = campaign["units"][0]["job"]["id"]
        final = client.wait(job_id, timeout=300)
        assert final["state"] == "done"
        assert "analytic model bypassed" in client.result(job_id)

    def test_trace_replay_campaign_round_trips_the_trace(self, client):
        """The embedded trace must survive the job store: replay jobs
        are self-contained, no path resolution happens on the worker."""
        campaign = client.submit_campaign(scenario="trace-replay", quick=True)
        job_id = campaign["units"][0]["job"]["id"]
        final = client.wait(job_id, timeout=300)
        assert final["state"] == "done"
        text = client.result(job_id)
        assert "trace replay" in text or "recorded failure" in text

    def test_burst_storm_campaign_accepted(self, client):
        campaign = client.submit_campaign(scenario="burst-storm", quick=True)
        job_id = campaign["units"][0]["job"]["id"]
        assert client.wait(job_id, timeout=300)["state"] == "done"

    def test_inline_spec_with_provenance_in_result(self, client):
        campaign = client.submit_campaign(
            spec=inline_spec(), quick=True, format="csv"
        )
        job_id = campaign["units"][0]["job"]["id"]
        assert client.wait(job_id, timeout=300)["state"] == "done"
        first_line = client.result(job_id).splitlines()[0]
        assert first_line.startswith("# scenario=inline")
        assert campaign["spec_sha256"] in first_line

    def test_notes_surface_compiler_decisions(self, client):
        campaign = client.submit_campaign(scenario="fig1", quick=True)
        assert any("lowered to fig1" in n for n in campaign["notes"])


class TestValidation:
    def test_unknown_bundled_name_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(scenario="no-such-study")
        assert excinfo.value.status == 400
        assert "no-such-study" in excinfo.value.message

    def test_schema_violation_400_with_field_path(self, client):
        bad = inline_spec(failures={"regime": "weibull"})
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(spec=bad)
        assert excinfo.value.status == 400
        assert "failures.shape" in excinfo.value.message

    def test_both_scenario_and_spec_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(scenario="fig1", spec=inline_spec())
        assert excinfo.value.status == 400

    def test_neither_scenario_nor_spec_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(quick=True)
        assert excinfo.value.status == 400

    def test_unknown_field_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(scenario="fig1", bogus=1)
        assert excinfo.value.status == 400
        assert "bogus" in excinfo.value.message

    def test_bad_format_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(scenario="fig1", format="yaml")
        assert excinfo.value.status == 400

    def test_nothing_enqueued_on_rejection(self, client, service):
        before = service.store.counts()
        with pytest.raises(ServiceError):
            client.submit_campaign(spec=inline_spec(failures={"regime": "x"}))
        assert service.store.counts() == before


def adaptive_spec(**overrides):
    """A small two-technique sweep that converges in a handful of
    batches on a 20k-node platform (cheap trials, clear winner)."""
    doc = {
        "scenario": {"name": "adaptive-inline"},
        "platform": {"total_nodes": 20000},
        "failures": {"regime": "poisson", "mtbf_years": 5.0},
        "workload": {
            "study": "scaling",
            "app_type": "A32",
            "fractions": [0.1, 0.9],
        },
        "techniques": {"names": ["checkpoint_restart", "multilevel"]},
        "adaptive": {
            "max_trials": 12,
            "batch_size": 4,
            "ci_rel_threshold": 0.05,
            "refine_depth": 0,
        },
    }
    doc.update(overrides)
    return doc


class TestAdaptiveCampaigns:
    def test_converges_with_fewer_trials_than_exhaustive(self, client):
        campaign = client.submit_campaign(spec=adaptive_spec())
        assert campaign["adaptive"]["max_trials"] == 12
        assert campaign["units"] == []
        assert campaign["cells"] == 4
        status = client.wait_campaign(campaign["id"], timeout=300)
        assert status["state"] == "done"
        assert all(cell["settled"] for cell in status["cells"])
        trials = status["trials"]
        assert trials["executed"] < trials["exhaustive"]
        assert trials["reduction"] > 1.0
        # The rendered winning-technique table appears once done.
        assert "10%" in status["table"] and "90%" in status["table"]

    def test_early_stop_skips_the_unconsumed_tail(self, client, service):
        """A converged cell consumes only a prefix of its batch chain.
        (Whether the tail ends up cancelled or had already finished
        when the cancel landed is a race against the worker; the
        store-level cascade tests pin the cancellation semantics.)"""
        campaign = client.submit_campaign(spec=adaptive_spec())
        status = client.wait_campaign(campaign["id"], timeout=300)
        converged = [c for c in status["cells"] if c["converged"]]
        assert converged, "expected at least one early-stopped cell"
        consumed = sum(c["jobs_consumed"] for c in status["cells"])
        assert consumed < status["jobs"]["total"]
        for cell in converged:
            assert cell["jobs_consumed"] < cell["jobs_total"]

    def test_adaptive_results_match_exhaustive_prefix(self, client):
        """Byte-determinism: a converged cell's consumed batches are
        the exact prefix of an exhaustive run of the same spec."""
        from repro.experiments.stats import SummaryStats
        from repro.scenarios.runtime import run_scenario
        from repro.scenarios.schema import parse_scenario

        doc = adaptive_spec()
        doc["workload"]["fractions"] = [0.1]
        doc["techniques"]["names"] = ["checkpoint_restart"]
        campaign = client.submit_campaign(spec=doc)
        status = client.wait_campaign(campaign["id"], timeout=300)
        cell = status["cells"][0]
        spec = parse_scenario(doc, source="<test>")
        full = run_scenario(spec, trials=cell["trials"])
        expected = full[0][1].cells[0].stats
        assert cell["mean_efficiency"] == expected.mean
        assert cell["std_efficiency"] == expected.std

    def test_status_endpoint_and_unknown_id_404(self, client):
        campaign = client.submit_campaign(spec=adaptive_spec())
        status = client.campaign_status(campaign["id"])
        assert status["id"] == campaign["id"]
        assert status["adaptive"]["batch_size"] == 4
        assert {"executed", "exhaustive", "reduction"} <= set(
            status["trials"]
        )
        with pytest.raises(ServiceError) as excinfo:
            client.campaign_status("no-such-campaign")
        assert excinfo.value.status == 404

    def test_static_campaign_is_tracked_too(self, client):
        campaign = client.submit_campaign(scenario="fig1", quick=True)
        assert "id" in campaign
        status = client.campaign_status(campaign["id"])
        assert status["adaptive"] is None
        assert len(status["units"]) == len(campaign["units"])

    def test_adaptive_false_overrides_spec_section(self, client):
        campaign = client.submit_campaign(
            spec=adaptive_spec(), adaptive=False
        )
        # Static path: one unit per compiled request, no controller.
        assert campaign["units"]
        assert "cells" not in campaign

    def test_adaptive_true_uses_spec_defaults(self, client):
        campaign = client.submit_campaign(spec=adaptive_spec(), adaptive=True)
        assert campaign["adaptive"]["batch_size"] == 4

    def test_adaptive_object_overrides_spec(self, client):
        campaign = client.submit_campaign(
            spec=adaptive_spec(), adaptive={"batch_size": 6}
        )
        assert campaign["adaptive"]["batch_size"] == 6
        assert campaign["adaptive"]["max_trials"] == 12


class TestAdaptiveValidation:
    def test_quick_plus_adaptive_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(spec=adaptive_spec(), quick=True)
        assert excinfo.value.status == 400
        assert "quick" in excinfo.value.message

    def test_format_plus_adaptive_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(spec=adaptive_spec(), format="csv")
        assert excinfo.value.status == 400
        assert "format" in excinfo.value.message

    def test_trace_spec_with_adaptive_flag_400(self, client):
        doc = {
            "scenario": {"name": "trace-adaptive"},
            "failures": {"regime": "trace", "trace_file": "x.jsonl"},
            "workload": {
                "study": "scaling",
                "app_type": "A32",
                "fractions": [0.05],
            },
        }
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(spec=doc, adaptive=True)
        assert excinfo.value.status == 400
        assert "trace replay" in excinfo.value.message

    def test_bad_adaptive_object_field_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(
                spec=adaptive_spec(), adaptive={"max_trials": 1}
            )
        assert excinfo.value.status == 400
        assert "max_trials" in excinfo.value.message

    def test_adaptive_must_be_bool_or_object_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit_campaign(spec=adaptive_spec(), adaptive="yes")
        assert excinfo.value.status == 400

    def test_nothing_enqueued_on_adaptive_rejection(self, client, service):
        before = service.store.counts()
        with pytest.raises(ServiceError):
            client.submit_campaign(
                spec=adaptive_spec(), adaptive={"batch_size": 99}
            )
        assert service.store.counts() == before
