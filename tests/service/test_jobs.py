"""Tests for :mod:`repro.service.jobs`: strict payload parsing and the
guarantee that a job executes through the same entrypoint as the CLI."""

import pytest

from repro.experiments.entry import StudyRequest, run_request
from repro.service.jobs import JobSpec, ValidationError


class TestFromPayload:
    def test_roundtrip(self):
        spec = JobSpec(
            request=StudyRequest(
                experiment="fig1", format="json", trials=7, quick=True
            ),
            jobs=2,
            cache=False,
        )
        assert JobSpec.from_payload(spec.to_payload()) == spec

    def test_defaults(self):
        spec = JobSpec.from_payload({"experiment": "table1"})
        assert spec.jobs == 1
        assert spec.cache is True
        assert spec.request.experiment == "table1"

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            ["experiment", "table1"],
            None,
            {"experiment": "fig99"},
            {"experiment": "fig1", "bogus_field": 1},
            {"experiment": "fig1", "trials": 0},
            {"experiment": "fig1", "trials": "200"},
            {"experiment": "fig1", "format": "yaml"},
            {"experiment": "fig1", "jobs": 0},
            {"experiment": "fig1", "jobs": True},
            {"experiment": "fig1", "jobs": "2"},
            {"experiment": "fig1", "cache": "yes"},
            {"experiment": "fig1", "cache": 1},
            {},
        ],
    )
    def test_rejects_bad_payloads(self, payload):
        with pytest.raises(ValidationError):
            JobSpec.from_payload(payload)

    def test_error_message_is_one_line(self):
        with pytest.raises(ValidationError) as excinfo:
            JobSpec.from_payload({"experiment": "fig1", "jobs": 0})
        assert "\n" not in str(excinfo.value)


class TestExecute:
    def test_matches_direct_entrypoint(self):
        """A job's rendered text is byte-identical to calling the shared
        entrypoint directly — the core service determinism guarantee."""
        request = StudyRequest(experiment="table1")
        via_job = JobSpec.from_payload({"experiment": "table1"}).execute()
        direct = run_request(request)
        assert via_job.text == direct.text

    def test_cache_flag_and_jobs_do_not_change_output(self):
        base = JobSpec.from_payload(
            {"experiment": "table1", "cache": False}
        ).execute()
        cached = JobSpec.from_payload(
            {"experiment": "table1", "cache": True, "jobs": 2}
        ).execute()
        assert base.text == cached.text
