"""Unit tests for the durable job store: states, atomic claims,
lease-timeout crash recovery, and the queue-depth bound."""

import threading

import pytest

from repro.service.store import (
    DuplicateJob,
    JobState,
    QueueFull,
    UnknownJob,
    UnknownSite,
    create_store,
    store_backends,
)

SPEC = {"experiment": "table1", "format": "table"}


class FakeClock:
    """Deterministic, advanceable time source for lease tests."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(clock):
    return create_store(
        "sqlite://:memory:", queue_limit=4, max_attempts=3, clock=clock
    )


class TestSubmitAndInspect:
    def test_submit_returns_queued_record(self, store):
        job_id = store.submit(SPEC)
        record = store.get(job_id)
        assert record.state == JobState.QUEUED
        assert record.spec == SPEC
        assert record.attempts == 0
        assert record.worker is None
        assert not record.cancel_requested

    def test_unknown_job_raises(self, store):
        with pytest.raises(UnknownJob):
            store.get("nope")
        with pytest.raises(UnknownJob):
            store.result_text("nope")

    def test_queue_depth_and_counts(self, store):
        for _ in range(3):
            store.submit(SPEC)
        assert store.queue_depth() == 3
        counts = store.counts()
        assert counts[JobState.QUEUED] == 3
        assert counts[JobState.DONE] == 0

    def test_queue_limit_raises_queue_full(self, store):
        for _ in range(4):
            store.submit(SPEC)
        with pytest.raises(QueueFull):
            store.submit(SPEC)
        # Draining one job frees a slot again.
        store.claim("w", lease_s=60)
        store.submit(SPEC)

    def test_list_jobs_filters_by_state(self, store, clock):
        first = store.submit(SPEC)
        clock.advance(1)
        store.submit(SPEC)
        store.claim("w", lease_s=60)  # claims `first` (oldest)
        running = [r.id for r in store.list_jobs(state=JobState.RUNNING)]
        assert running == [first]
        assert len(store.list_jobs()) == 2

    def test_persists_across_reopen(self, tmp_path, clock):
        path = tmp_path / "jobs.db"
        store = create_store(f"sqlite://{path}", clock=clock)
        job_id = store.submit(SPEC)
        store.close()
        reopened = create_store(f"sqlite://{path}", clock=clock)
        assert reopened.get(job_id).state == JobState.QUEUED
        reopened.close()


class TestClaimProtocol:
    def test_claim_is_fifo(self, store, clock):
        first = store.submit(SPEC)
        clock.advance(1)
        second = store.submit(SPEC)
        assert store.claim("w", lease_s=60).id == first
        assert store.claim("w", lease_s=60).id == second
        assert store.claim("w", lease_s=60) is None

    def test_claim_marks_running_with_lease(self, store, clock):
        job_id = store.submit(SPEC)
        record = store.claim("w1", lease_s=60)
        assert record.id == job_id
        assert record.state == JobState.RUNNING
        assert record.worker == "w1"
        assert record.attempts == 1
        assert record.lease_expires_at == clock.now + 60

    def test_complete_roundtrip(self, store):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=60)
        assert store.complete(job_id, "w1", "the result")
        record = store.get(job_id)
        assert record.state == JobState.DONE
        assert store.result_text(job_id) == "the result"

    def test_fail_records_error(self, store):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=60)
        assert store.fail(job_id, "w1", "boom")
        record = store.get(job_id)
        assert record.state == JobState.FAILED
        assert record.error == "boom"

    def test_release_requeues_and_refunds_attempt(self, store):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=60)
        assert store.release(job_id, "w1")
        record = store.get(job_id)
        assert record.state == JobState.QUEUED
        assert record.attempts == 0
        assert record.worker is None

    def test_reassign_transfers_completion_authority(self, store):
        job_id = store.submit(SPEC)
        store.claim("scheduler", lease_s=60)
        assert store.reassign(job_id, "scheduler", "w1")
        assert not store.complete(job_id, "scheduler", "x")
        assert store.complete(job_id, "w1", "y")

    def test_concurrent_claims_never_double_claim(self, clock, tmp_path):
        store = create_store(
            f"sqlite://{tmp_path}/jobs.db", queue_limit=64, clock=clock
        )
        ids = [store.submit(SPEC) for _ in range(16)]
        claimed = []
        lock = threading.Lock()

        def worker(name):
            while True:
                record = store.claim(name, lease_s=600)
                if record is None:
                    return
                with lock:
                    claimed.append(record.id)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == sorted(ids)
        assert len(set(claimed)) == len(ids)
        store.close()


class TestLeaseRecovery:
    def test_expired_lease_is_reclaimable(self, store, clock):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=30)
        assert store.claim("w2", lease_s=30) is None  # lease still held
        clock.advance(31)
        record = store.claim("w2", lease_s=30)
        assert record is not None and record.id == job_id
        assert record.worker == "w2"
        assert record.attempts == 2

    def test_stale_worker_cannot_clobber_result(self, store, clock):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=30)
        clock.advance(31)
        store.claim("w2", lease_s=30)
        store.complete(job_id, "w2", "good")
        # The crashed-and-revived w1 comes back too late.
        assert not store.complete(job_id, "w1", "stale")
        assert not store.fail(job_id, "w1", "stale")
        assert store.result_text(job_id) == "good"

    def test_renew_extends_lease(self, store, clock):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=30)
        clock.advance(25)
        assert store.renew(job_id, "w1", lease_s=30)
        clock.advance(25)  # 50s total, but lease renewed at t+25
        assert store.claim("w2", lease_s=30) is None

    def test_renew_rejects_non_owner(self, store):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=30)
        assert not store.renew(job_id, "w2", lease_s=30)

    def test_attempts_bound_marks_failed(self, store, clock):
        job_id = store.submit(SPEC)
        for attempt in range(3):
            record = store.claim(f"w{attempt}", lease_s=10)
            assert record is not None and record.attempts == attempt + 1
            clock.advance(11)
        # Three leases burned: the next claim retires the job.
        assert store.claim("w3", lease_s=10) is None
        record = store.get(job_id)
        assert record.state == JobState.FAILED
        assert "lease expired" in record.error

    def test_expired_claim_prefers_crashed_job_over_queue(self, store, clock):
        crashed = store.submit(SPEC)
        store.claim("w1", lease_s=10)
        clock.advance(5)
        store.submit(SPEC)  # fresh job behind the crashed one
        clock.advance(6)  # w1's lease expired
        record = store.claim("w2", lease_s=10)
        assert record.id == crashed


class TestCancellation:
    def test_cancel_queued_is_immediate(self, store):
        job_id = store.submit(SPEC)
        record = store.cancel(job_id)
        assert record.state == JobState.CANCELLED
        assert store.claim("w", lease_s=60) is None

    def test_cancel_running_sets_flag_and_completion_lands_cancelled(
        self, store
    ):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=60)
        record = store.cancel(job_id)
        assert record.state == JobState.RUNNING
        assert record.cancel_requested
        assert store.complete(job_id, "w1", "late result")
        assert store.get(job_id).state == JobState.CANCELLED

    def test_cancel_terminal_job_is_a_no_op(self, store):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=60)
        store.complete(job_id, "w1", "r")
        assert store.cancel(job_id).state == JobState.DONE


class TestStoreFactory:
    def test_sqlite_scheme_and_bare_path_both_work(self, tmp_path, clock):
        for url in (f"sqlite://{tmp_path}/a.db", f"{tmp_path}/b.db"):
            store = create_store(url, clock=clock)
            job_id = store.submit(SPEC)
            assert store.get(job_id).state == JobState.QUEUED
            store.close()

    def test_unknown_scheme_lists_registered_backends(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            create_store("redis://localhost/0")
        assert "sqlite" in store_backends()

    def test_duplicate_job_id_raises(self, store):
        store.submit(SPEC, job_id="job-12345678")
        with pytest.raises(DuplicateJob) as exc:
            store.submit(SPEC, job_id="job-12345678")
        assert exc.value.job_id == "job-12345678"


class TestClaimBatch:
    def test_claims_up_to_limit_in_order(self, store, clock):
        ids = []
        for _ in range(3):
            ids.append(store.submit(SPEC))
            clock.advance(1)
        batch = store.claim_batch("w1", lease_s=60, limit=2)
        assert [r.id for r in batch] == ids[:2]
        assert all(r.state == JobState.RUNNING for r in batch)
        assert all(r.worker == "w1" for r in batch)
        rest = store.claim_batch("w2", lease_s=60, limit=8)
        assert [r.id for r in rest] == ids[2:]

    def test_zero_or_negative_limit_claims_nothing(self, store):
        store.submit(SPEC)
        assert store.claim_batch("w", lease_s=60, limit=0) == []
        assert store.queue_depth() == 1

    def test_records_claiming_site(self, store):
        job_id = store.submit(SPEC)
        store.claim_batch("w1", lease_s=60, limit=1, site="site-a")
        assert store.get(job_id).site == "site-a"

    def test_release_clears_site(self, store):
        job_id = store.submit(SPEC)
        store.claim_batch("w1", lease_s=60, limit=1, site="site-a")
        assert store.release(job_id, "w1")
        assert store.get(job_id).site is None

    def test_concurrent_batches_never_overlap(self, clock, tmp_path):
        store = create_store(
            f"sqlite://{tmp_path}/jobs.db", queue_limit=64, clock=clock
        )
        ids = [store.submit(SPEC) for _ in range(24)]
        claimed = []
        lock = threading.Lock()

        def worker(name):
            while True:
                batch = store.claim_batch(name, lease_s=600, limit=5)
                if not batch:
                    return
                with lock:
                    claimed.extend(r.id for r in batch)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == sorted(ids)
        assert len(set(claimed)) == len(ids)
        store.close()

    def test_batch_mixes_expired_and_queued_crashed_first(self, store, clock):
        crashed = store.submit(SPEC)
        store.claim("w1", lease_s=10)
        clock.advance(5)
        fresh = store.submit(SPEC)
        clock.advance(6)  # w1's lease expired
        batch = store.claim_batch("w2", lease_s=10, limit=2)
        assert [r.id for r in batch] == [crashed, fresh]
        assert batch[0].attempts == 2


class TestSites:
    def test_register_heartbeat_drain_roundtrip(self, store, clock):
        record = store.register_site("site-a", {"workers": 4})
        assert record.state == "active"
        assert record.meta == {"workers": 4}
        clock.advance(10)
        beat = store.heartbeat_site("site-a")
        assert beat.last_heartbeat == clock.now
        assert store.drain_site("site-a").state == "draining"
        # Re-registration re-activates a draining site.
        assert store.register_site("site-a").state == "active"

    def test_reregistration_preserves_registered_at(self, store, clock):
        first = store.register_site("site-a")
        clock.advance(100)
        again = store.register_site("site-a")
        assert again.registered_at == first.registered_at

    def test_unknown_site_raises(self, store):
        with pytest.raises(UnknownSite):
            store.heartbeat_site("nope")
        with pytest.raises(UnknownSite):
            store.drain_site("nope")

    def test_list_sites_in_registration_order(self, store, clock):
        store.register_site("site-b")
        clock.advance(1)
        store.register_site("site-a")
        assert [s.name for s in store.list_sites()] == ["site-b", "site-a"]

    def test_site_stats_ledger(self, store, clock):
        done_id = store.submit(SPEC)
        clock.advance(1)
        failed_id = store.submit(SPEC)
        clock.advance(1)
        running_id = store.submit(SPEC)
        store.claim_batch("w1", lease_s=60, limit=3, site="site-a")
        store.complete(done_id, "w1", "ok")
        store.fail(failed_id, "w1", "boom")
        stats = store.site_stats()
        assert stats == {
            "site-a": {
                "completed": 1,
                "failed": 1,
                "inflight": 1,
                "cancelled": 0,
            }
        }
        assert store.get(running_id).site == "site-a"

    def test_persists_across_reopen(self, tmp_path, clock):
        path = tmp_path / "jobs.db"
        store = create_store(f"sqlite://{path}", clock=clock)
        store.register_site("site-a", {"workers": 2})
        store.close()
        reopened = create_store(f"sqlite://{path}", clock=clock)
        [site] = reopened.list_sites()
        assert site.name == "site-a"
        assert site.meta == {"workers": 2}
        reopened.close()
