"""Client-SDK resilience tests against a scripted HTTP server.

The server plays back a canned response sequence (429s, abrupt
connection drops, then success), and the client is driven with an
injected sleep recorder and a deterministic rng, so every retry
decision and backoff value is asserted exactly.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.service.client import (
    NO_RETRY,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)


class ScriptedHandler(BaseHTTPRequestHandler):
    """Plays the server's scripted response list, one per request.

    Script entries: ``("json", status, payload)``, ``("retry_after",
    seconds)`` (a 429 with the header), ``("drop",)`` (close the
    connection abruptly — what a crashed server looks like), or
    ``("sse", text)`` (an event-stream body ending in a clean EOF;
    the request's ``Last-Event-ID`` header is recorded in
    ``server.sse_resumes``).
    """

    protocol_version = "HTTP/1.1"

    def log_message(self, *args):
        pass

    def _play(self):
        with self.server.lock:
            self.server.requests.append((self.command, self.path))
            if not self.server.script:
                step = ("json", 200, {"ok": True})
            else:
                step = self.server.script.pop(0)
        if step[0] == "drop":
            self.connection.close()
            return
        if step[0] == "sse":
            with self.server.lock:
                self.server.sse_resumes.append(
                    self.headers.get("Last-Event-ID")
                )
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(step[1].encode("utf-8"))
            self.close_connection = True
            return
        if step[0] == "retry_after":
            body = json.dumps({"error": "queue is full"}).encode() + b"\n"
            self.send_response(429)
            self.send_header("Retry-After", str(step[1]))
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        _, status, payload = step
        body = json.dumps(payload).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _play
    do_POST = _play


@pytest.fixture
def scripted_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), ScriptedHandler)
    server.daemon_threads = True
    server.script = []
    server.requests = []
    server.sse_resumes = []
    server.lock = threading.Lock()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def make_client(server, *, attempts=4, rng=lambda: 0.0):
    sleeps = []
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}",
        timeout=5.0,
        retry=RetryPolicy(attempts=attempts, backoff_s=0.01, jitter=0.5),
        sleep=sleeps.append,
        rng=rng,
    )
    return client, sleeps


class TestRetryAfter:
    def test_429_is_retried_honoring_retry_after(self, scripted_server):
        scripted_server.script = [
            ("retry_after", 3),
            ("json", 201, {"id": "j1", "state": "queued"}),
        ]
        client, sleeps = make_client(scripted_server)
        record = client.submit(experiment="table1")
        assert record["id"] == "j1"
        assert sleeps == [3.0]  # the server's header, not the backoff

    def test_retry_after_is_capped(self, scripted_server):
        scripted_server.script = [
            ("retry_after", 9999),
            ("json", 201, {"id": "j1"}),
        ]
        client, sleeps = make_client(scripted_server)
        client.submit(experiment="table1")
        assert sleeps == [RetryPolicy().retry_after_cap_s]

    def test_429_exhaustion_raises_last_error(self, scripted_server):
        scripted_server.script = [("retry_after", 1)] * 5
        client, sleeps = make_client(scripted_server, attempts=3)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(experiment="table1")
        assert excinfo.value.status == 429
        assert len(sleeps) == 2  # attempts - 1 retries

    def test_no_retry_policy_fails_fast(self, scripted_server):
        scripted_server.script = [("retry_after", 1)]
        sleeps = []
        client = ServiceClient(
            f"http://127.0.0.1:{scripted_server.server_address[1]}",
            retry=NO_RETRY,
            sleep=sleeps.append,
        )
        with pytest.raises(ServiceError):
            client.submit(experiment="table1")
        assert sleeps == []


class TestConnectionErrors:
    def test_idempotent_get_retries_on_dropped_connection(
        self, scripted_server
    ):
        scripted_server.script = [
            ("drop",),
            ("json", 200, {"state": "done", "id": "j1"}),
        ]
        client, sleeps = make_client(scripted_server)
        record = client.status("j1")
        assert record["state"] == "done"
        assert len(sleeps) == 1

    def test_bare_submit_never_retries_on_dropped_connection(
        self, scripted_server
    ):
        scripted_server.script = [
            ("drop",),
            ("json", 201, {"id": "never-reached"}),
        ]
        client, sleeps = make_client(scripted_server)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(experiment="table1")
        assert excinfo.value.status == 0
        assert sleeps == []
        # Only the dropped request went out; no blind resubmission.
        assert len(scripted_server.requests) == 1

    def test_submit_with_job_id_is_retried(self, scripted_server):
        scripted_server.script = [
            ("drop",),
            ("json", 201, {"id": "stable-key-1", "state": "queued"}),
        ]
        client, sleeps = make_client(scripted_server)
        record = client.submit(experiment="table1", job_id="stable-key-1")
        assert record["id"] == "stable-key-1"
        assert len(sleeps) == 1

    def test_fleet_claims_are_retried(self, scripted_server):
        scripted_server.script = [
            ("drop",),
            ("json", 200, {"jobs": [], "draining": False}),
        ]
        client, sleeps = make_client(scripted_server)
        response = client.claim_jobs("site-a", "w1", limit=4, lease_s=30)
        assert response["jobs"] == []
        assert len(sleeps) == 1

    def test_exhausted_connection_retries_raise_status_zero(
        self, scripted_server
    ):
        scripted_server.script = [("drop",)] * 5
        client, sleeps = make_client(scripted_server, attempts=2)
        with pytest.raises(ServiceError) as excinfo:
            client.status("j1")
        assert excinfo.value.status == 0
        assert len(sleeps) == 1


class TestBackoffShape:
    def test_exponential_capped_jittered(self):
        policy = RetryPolicy(
            attempts=6, backoff_s=0.2, backoff_cap_s=1.0, jitter=0.5
        )
        # rng=1.0 -> full jitter: base * 1.5
        delays = [policy.delay(n, lambda: 1.0) for n in range(4)]
        assert delays == pytest.approx([0.3, 0.6, 1.2, 1.5])
        # rng=0.0 -> no jitter, capped at 1.0 from attempt 3 on.
        bare = [policy.delay(n, lambda: 0.0) for n in range(4)]
        assert bare == pytest.approx([0.2, 0.4, 0.8, 1.0])


def sse(*frames):
    """Join SSE frames into one scripted response body."""
    return "".join(frames)


def event_frame(seq, kind, **data):
    payload = json.dumps(dict(data, seq=seq, kind=kind))
    return f"id: {seq}\nevent: event\ndata: {payload}\n\n"


END = 'event: end\ndata: {"kind": "job.done"}\n\n'


class TestIterEvents:
    def test_yields_frames_and_terminates_on_end(self, scripted_server):
        scripted_server.script = [
            ("sse", sse(event_frame(1, "job.claimed"),
                        event_frame(2, "job.done"), END)),
        ]
        client, sleeps = make_client(scripted_server)
        frames = list(client.iter_events(job_id="j1"))
        assert [f["event"] for f in frames] == ["event", "event", "end"]
        assert [f["id"] for f in frames] == [1, 2, None]
        assert frames[0]["data"]["kind"] == "job.claimed"
        assert sleeps == []  # no reconnects needed
        assert scripted_server.requests == [("GET", "/v1/jobs/j1/events")]

    def test_reconnects_with_resume_after_clean_eof(self, scripted_server):
        # First connection delivers two events then ends cleanly; the
        # client must reconnect and resume from the last event id.
        scripted_server.script = [
            ("sse", sse(event_frame(1, "job.claimed"),
                        event_frame(2, "sim.TrialStarted"))),
            ("sse", sse(event_frame(3, "job.done"), END)),
        ]
        client, sleeps = make_client(scripted_server)
        frames = list(client.iter_events(job_id="j1", last_event_id=0))
        assert [f["id"] for f in frames] == [1, 2, 3, None]
        assert scripted_server.sse_resumes == ["0", "2"]
        assert len(sleeps) == 1

    def test_frames_reset_the_retry_budget(self, scripted_server):
        # attempts=2 allows one reconnect per delivered frame; three
        # single-frame connections only survive because each frame
        # resets the attempt counter.
        scripted_server.script = [
            ("sse", event_frame(1, "job.claimed")),
            ("sse", event_frame(2, "sim.TrialStarted")),
            ("sse", sse(event_frame(3, "job.done"), END)),
        ]
        client, _ = make_client(scripted_server, attempts=2)
        frames = list(client.iter_events(job_id="j1"))
        assert [f["id"] for f in frames] == [1, 2, 3, None]

    def test_http_errors_raise_immediately(self, scripted_server):
        scripted_server.script = [("json", 404, {"error": "no job 'x'"})]
        client, _ = make_client(scripted_server)
        with pytest.raises(ServiceError) as excinfo:
            next(client.iter_events(job_id="x"))
        assert excinfo.value.status == 404
        assert "no job" in excinfo.value.message

    def test_dead_stream_exhausts_and_raises(self, scripted_server):
        scripted_server.script = [("drop",)] * 5
        client, sleeps = make_client(scripted_server, attempts=2)
        with pytest.raises(ServiceError) as excinfo:
            list(client.iter_events())
        assert excinfo.value.status == 0
        assert "event stream" in excinfo.value.message
        assert len(sleeps) == 1
