"""Grid counters across the process boundary: protocol validation,
control-plane merging of agent-shipped deltas, and the /v1/metrics
grid block."""

import pytest

from repro.obs import counters as obs_counters
from repro.service.protocol import ValidationError, parse_complete_request
from repro.service.app import ReproService, ServiceConfig
from repro.service.client import ServiceClient


def complete_body(job_id, counters=None):
    item = {"id": job_id, "ok": True, "result": "artifact"}
    if counters is not None:
        item["counters"] = counters
    return {"worker": "agent-1", "results": [item]}


class TestProtocol:
    def test_counters_accepted(self):
        worker, [item] = parse_complete_request(
            complete_body("j1", {"grid.cost_microusd": 5, "grid.energy_j": 0})
        )
        assert worker == "agent-1"
        assert item.counters == {"grid.cost_microusd": 5, "grid.energy_j": 0}

    def test_absent_counters_default_none(self):
        _, [item] = parse_complete_request(complete_body("j1"))
        assert item.counters is None

    def test_bool_values_rejected(self):
        with pytest.raises(ValidationError, match="counters"):
            parse_complete_request(
                complete_body("j1", {"grid.cells_accounted": True})
            )

    def test_non_int_values_rejected(self):
        with pytest.raises(ValidationError, match="counters"):
            parse_complete_request(
                complete_body("j1", {"grid.cost_microusd": 1.5})
            )

    def test_non_dict_rejected(self):
        with pytest.raises(ValidationError, match="counters"):
            parse_complete_request(complete_body("j1", [1, 2]))

    def test_payload_round_trip(self):
        _, [item] = parse_complete_request(
            complete_body("j1", {"grid.carbon_mg": 7})
        )
        assert item.to_payload()["counters"] == {"grid.carbon_mg": 7}
        # Counter-less items stay wire-compatible with old agents.
        _, [plain] = parse_complete_request(complete_body("j1"))
        assert "counters" not in plain.to_payload()


@pytest.fixture
def paused_service():
    svc = ReproService(
        ServiceConfig(
            host="127.0.0.1",
            port=0,
            workers=0,
            db_path=":memory:",
            poll_interval_s=0.01,
            lease_s=60.0,
        )
    )
    svc.start()
    yield svc
    svc.shutdown(timeout=10)


@pytest.fixture
def client(paused_service):
    return ServiceClient(paused_service.url, timeout=30.0)


def claimed_job(client):
    job = client.submit(experiment="table1")
    client.register_site("site-a")
    client.claim_jobs("site-a", "agent-1", lease_s=60)
    return job


class TestControlPlaneMerge:
    def test_grid_deltas_land_in_metrics(self, client):
        job = claimed_job(client)
        before = client.metrics()["grid"]
        client.complete_jobs(
            "agent-1",
            [
                {
                    "id": job["id"],
                    "ok": True,
                    "result": "r",
                    "counters": {
                        "grid.cost_microusd": 5_000_000,
                        "grid.carbon_mg": 2_000_000,
                        "grid.energy_j": 7_200_000,
                        "grid.cells_accounted": 3,
                    },
                }
            ],
        )
        after = client.metrics()["grid"]
        assert after["cost_usd"] - before["cost_usd"] == pytest.approx(5.0)
        assert after["carbon_g"] - before["carbon_g"] == pytest.approx(2000.0)
        assert after["energy_kwh"] - before["energy_kwh"] == pytest.approx(2.0)
        assert after["cells_accounted"] - before["cells_accounted"] == 3

    def test_only_grid_namespace_is_merged(self, client):
        job = claimed_job(client)
        before = obs_counters.snapshot()
        client.complete_jobs(
            "agent-1",
            [
                {
                    "id": job["id"],
                    "ok": True,
                    "result": "r",
                    "counters": {
                        "grid.cells_accounted": 1,
                        "sim.events": 999_999,
                        "cache.hits": 50,
                    },
                }
            ],
        )
        delta = obs_counters.delta_since(before)
        assert delta.get("grid.cells_accounted", 0) == 1
        # Agents cannot inflate non-grid observability counters.
        assert delta.get("sim.events", 0) == 0
        assert delta.get("cache.hits", 0) == 0

    def test_duplicate_completion_counts_once(self, client):
        job = claimed_job(client)
        before = client.metrics()["grid"]
        push = [
            {
                "id": job["id"],
                "ok": True,
                "result": "r",
                "counters": {"grid.cells_accounted": 2},
            }
        ]
        assert client.complete_jobs("agent-1", push)["results"][0]["accepted"]
        # The agent's retry and a stale worker are both rejected, so
        # neither merges the delta again.
        client.complete_jobs("agent-1", push)
        client.complete_jobs("agent-0", push)
        after = client.metrics()["grid"]
        assert after["cells_accounted"] - before["cells_accounted"] == 2

    def test_metrics_grid_block_shape(self, client):
        grid = client.metrics()["grid"]
        assert set(grid) == {
            "cost_usd",
            "carbon_g",
            "energy_kwh",
            "cells_accounted",
        }
