"""End-to-end HTTP API tests against a real in-process service.

Includes the acceptance-criterion determinism test: the JSON artifact
fetched over HTTP is byte-identical to the direct entrypoint output
for the same request.
"""

import pytest

from repro.experiments.entry import StudyRequest, run_request
from repro.experiments.parallel import ExecutorOptions
from repro.service.app import ReproService, ServiceConfig
from repro.service.client import ServiceClient, ServiceError


def make_service(**overrides):
    """An ephemeral-port, in-memory service for one test."""
    defaults = dict(
        host="127.0.0.1",
        port=0,
        workers=1,
        db_path=":memory:",
        poll_interval_s=0.01,
        lease_s=60.0,
    )
    defaults.update(overrides)
    return ReproService(ServiceConfig(**defaults))


@pytest.fixture
def service():
    svc = make_service()
    svc.start()
    yield svc
    svc.shutdown(timeout=30)


@pytest.fixture
def paused_service():
    """Workers=0: jobs queue up but never run (for 409/429 tests)."""
    svc = make_service(workers=0, queue_limit=1)
    svc.start()
    yield svc
    svc.shutdown(timeout=10)


@pytest.fixture
def client(service):
    return ServiceClient(service.url, timeout=30.0)


class TestBasics:
    def test_healthz(self, client, service):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["workers"] == service.config.workers
        assert payload["version"]

    def test_unknown_routes_404(self, client):
        for path in ("/nope", "/v1/nope"):
            with pytest.raises(ServiceError) as excinfo:
                client._json("GET", path)
            assert excinfo.value.status == 404

    def test_unknown_job_404(self, client):
        for call in (client.status, client.result, client.cancel):
            with pytest.raises(ServiceError) as excinfo:
                call("deadbeef")
            assert excinfo.value.status == 404

    def test_malformed_specs_400(self, client):
        bad = [
            {"experiment": "fig99"},
            {"experiment": "fig1", "bogus": 1},
            {"experiment": "fig1", "trials": -1},
            {},
        ]
        for payload in bad:
            with pytest.raises(ServiceError) as excinfo:
                client.submit(payload)
            assert excinfo.value.status == 400
            assert excinfo.value.message  # one-line reason

    def test_non_json_body_400(self, client, service):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            service.url + "/v1/jobs",
            data=b"this is not json",
            headers={"Content-Type": "text/plain"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestJobLifecycle:
    def test_submit_wait_result(self, client):
        job = client.submit(experiment="table1")
        assert job["state"] == "queued"
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "done"
        expected = run_request(StudyRequest(experiment="table1")).text
        assert client.result(job["id"]) == expected

    def test_list_jobs(self, client):
        job = client.submit(experiment="table1")
        listed = client.list_jobs()
        assert any(r["id"] == job["id"] for r in listed["jobs"])
        client.wait(job["id"], timeout=60)
        done = client.list_jobs(state="done")
        assert all(r["state"] == "done" for r in done["jobs"])

    def test_list_jobs_bad_state_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.list_jobs(state="sleeping")
        assert excinfo.value.status == 400

    def test_result_before_done_409(self, paused_service):
        client = ServiceClient(paused_service.url)
        job = client.submit(experiment="table1")
        with pytest.raises(ServiceError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 409

    def test_queue_full_429(self, paused_service):
        client = ServiceClient(paused_service.url)
        client.submit(experiment="table1")
        with pytest.raises(ServiceError) as excinfo:
            client.submit(experiment="table1")
        assert excinfo.value.status == 429

    def test_cancel_queued_job(self, paused_service):
        client = ServiceClient(paused_service.url)
        job = client.submit(experiment="table1")
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"

    def test_failed_job_result_500(self, service):
        # A corrupt spec slipped past validation (submitted straight to
        # the store) must surface as a 500 with the failure reason.
        client = ServiceClient(service.url)
        job_id = service.store.submit({"experiment": "not-a-thing"})
        client.wait(job_id, timeout=60)
        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 500
        assert "invalid job spec" in excinfo.value.message


class TestDeterminism:
    def test_fetched_json_is_byte_identical_to_direct_run(self, client):
        """Acceptance criterion: submitting via the service yields the
        exact bytes of the equivalent direct invocation."""
        payload = {
            "experiment": "fig1",
            "format": "json",
            "quick": True,
            "trials": 2,
        }
        job = client.submit(payload)
        final = client.wait(job["id"], timeout=300)
        assert final["state"] == "done"
        fetched = client.result(job["id"])
        direct = run_request(
            StudyRequest(
                experiment="fig1", format="json", quick=True, trials=2
            ),
            options=ExecutorOptions(jobs=1, cache=False),
        ).text
        assert fetched == direct

    def test_resubmission_is_a_cache_hit(self, client):
        payload = {
            "experiment": "fig1",
            "format": "json",
            "quick": True,
            "trials": 2,
        }
        first = client.submit(payload)
        client.wait(first["id"], timeout=300)
        before = client.metrics()["cache"]
        second = client.submit(payload)
        client.wait(second["id"], timeout=300)
        after = client.metrics()["cache"]
        assert after["hits"] > before["hits"]
        assert client.result(second["id"]) == client.result(first["id"])


class TestMetrics:
    def test_metrics_shape_and_counts(self, client):
        job = client.submit(experiment="table1")
        client.wait(job["id"], timeout=60)
        payload = client.metrics()
        assert set(payload) >= {
            "queue", "jobs", "cache", "executor", "counters", "uptime_s"
        }
        assert payload["queue"]["limit"] > 0
        assert payload["jobs"]["by_state"]["done"] >= 1
        assert payload["jobs"]["accepted"] >= 1
        assert payload["jobs"]["completed"] >= 1
        assert 0.0 <= payload["cache"]["hit_rate"] <= 1.0
        assert payload["uptime_s"] >= 0.0


class TestFleetEndpoints:
    """Site lifecycle + batch claim/complete over real HTTP."""

    @pytest.fixture
    def paused_client(self, paused_service):
        return ServiceClient(paused_service.url)

    def test_site_register_heartbeat_drain(self, paused_client):
        site = paused_client.register_site("site-a", meta={"workers": 2})
        assert site["state"] == "active"
        assert site["meta"] == {"workers": 2}
        listed = paused_client.list_sites()
        assert [s["name"] for s in listed["sites"]] == ["site-a"]
        beat = paused_client.site_heartbeat("site-a")
        assert beat["drain"] is False
        drained = paused_client.drain_site("site-a")
        assert drained["state"] == "draining"
        assert paused_client.site_heartbeat("site-a")["drain"] is True

    def test_heartbeat_unknown_site_404(self, paused_client):
        with pytest.raises(ServiceError) as excinfo:
            paused_client.site_heartbeat("ghost")
        assert excinfo.value.status == 404

    def test_bad_site_name_400(self, paused_client):
        with pytest.raises(ServiceError) as excinfo:
            paused_client.register_site("no spaces allowed")
        assert excinfo.value.status == 400

    def test_claim_complete_roundtrip(self, paused_service, paused_client):
        job = paused_client.submit(experiment="table1")
        paused_client.register_site("site-a")
        response = paused_client.claim_jobs(
            "site-a", "agent-1", limit=4, lease_s=60
        )
        assert response["draining"] is False
        [claimed] = response["jobs"]
        assert claimed["id"] == job["id"]
        assert claimed["state"] == "running"
        assert claimed["site"] == "site-a"
        done = paused_client.complete_jobs(
            "agent-1", [{"id": job["id"], "ok": True, "result": "artifact"}]
        )
        assert done["results"] == [
            {"id": job["id"], "accepted": True, "state": "done"}
        ]
        assert paused_client.result(job["id"]) == "artifact"

    def test_claim_on_draining_site_is_empty(self, paused_service, paused_client):
        paused_client.submit(experiment="table1")
        paused_client.register_site("site-a")
        paused_client.drain_site("site-a")
        response = paused_client.claim_jobs("site-a", "agent-1")
        assert response == {"draining": True, "jobs": []}

    def test_stale_completion_is_rejected_not_error(
        self, paused_service, paused_client
    ):
        job = paused_client.submit(experiment="table1")
        paused_client.register_site("site-a")
        paused_client.claim_jobs("site-a", "agent-1", lease_s=60)
        # agent-1's result lands; its own retry is answered idempotently.
        push = [{"id": job["id"], "ok": True, "result": "r"}]
        assert paused_client.complete_jobs("agent-1", push)["results"][0][
            "accepted"
        ]
        retry = paused_client.complete_jobs("agent-1", push)["results"][0]
        assert retry == {"id": job["id"], "accepted": False, "state": "done"}
        # A different (stale) worker is rejected the same way.
        stale = paused_client.complete_jobs("agent-0", push)["results"][0]
        assert stale["accepted"] is False

    def test_renew_and_release(self, paused_service, paused_client):
        job = paused_client.submit(experiment="table1")
        paused_client.register_site("site-a")
        paused_client.claim_jobs("site-a", "agent-1", lease_s=60)
        renewed = paused_client.renew_jobs("agent-1", [job["id"]], lease_s=60)
        assert renewed["renewed"] == [{"id": job["id"], "ok": True}]
        released = paused_client.release_jobs("agent-1", [job["id"]])
        assert released["released"] == [{"id": job["id"], "ok": True}]
        assert paused_client.status(job["id"])["state"] == "queued"

    def test_completion_of_unknown_job_is_rejected(self, paused_client):
        response = paused_client.complete_jobs(
            "agent-1", [{"id": "deadbeef", "ok": True, "result": "r"}]
        )
        assert response["results"] == [
            {"id": "deadbeef", "accepted": False, "state": "unknown"}
        ]

    def test_idempotent_submit_with_job_id(self, paused_service):
        # queue_limit=1: without idempotency the second submit would 429.
        client = ServiceClient(paused_service.url)
        first = client.submit(experiment="table1", job_id="stable-key-1")
        again = client.submit(experiment="table1", job_id="stable-key-1")
        assert again["id"] == first["id"]
        assert paused_service.store.queue_depth() == 1

    def test_bad_job_id_400(self, paused_client):
        with pytest.raises(ServiceError) as excinfo:
            paused_client.submit(experiment="table1", job_id="x")
        assert excinfo.value.status == 400

    def test_per_site_metrics(self, paused_service, paused_client):
        job = paused_client.submit(experiment="table1")
        paused_client.register_site("site-a")
        paused_client.claim_jobs("site-a", "agent-1", lease_s=60)
        paused_client.complete_jobs(
            "agent-1", [{"id": job["id"], "ok": True, "result": "r"}]
        )
        sites = paused_client.metrics()["sites"]
        assert sites["site-a"]["completed"] == 1
        assert sites["site-a"]["failed"] == 0
        assert sites["site-a"]["inflight"] == 0
        assert sites["site-a"]["state"] == "active"
        assert sites["site-a"]["last_heartbeat_age_s"] >= 0.0
