"""The live telemetry surface over real HTTP: SSE streams, the
fleet-events ingest route, the dashboard, and the metrics extensions.

Covers the acceptance criterion end-to-end on both execution paths: a
live SSE client receives lifecycle (and, for watched jobs, in-flight
simulation) events while jobs run on the in-process pool, and the
remote-agent protocol round-trip (claim ``watched`` marker → forwarded
events → completion) feeds the same per-job stream.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.service.app import ReproService, ServiceConfig
from repro.service.client import ServiceClient, ServiceError

FIG1 = {"experiment": "fig1", "quick": True, "trials": 2, "cache": False}


def make_service(**overrides):
    defaults = dict(
        host="127.0.0.1",
        port=0,
        workers=1,
        db_path=":memory:",
        poll_interval_s=0.01,
        lease_s=60.0,
    )
    defaults.update(overrides)
    return ReproService(ServiceConfig(**defaults))


@pytest.fixture
def service():
    svc = make_service()
    svc.start()
    yield svc
    svc.shutdown(timeout=30)


@pytest.fixture
def paused_service():
    """Workers=0: jobs queue but never run (protocol-level tests)."""
    svc = make_service(workers=0)
    svc.start()
    yield svc
    svc.shutdown(timeout=10)


@pytest.fixture
def client(service):
    return ServiceClient(service.url, timeout=30.0)


@pytest.fixture
def paused_client(paused_service):
    return ServiceClient(paused_service.url, timeout=30.0)


def frame_kinds(frames):
    return [
        f["data"]["kind"] for f in frames if f["event"] == "event"
    ]


class TestDashboard:
    def test_root_serves_the_status_page(self, service):
        with urllib.request.urlopen(service.url + "/", timeout=30) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/html")
            body = resp.read().decode("utf-8")
        assert "repro fleet status" in body
        # The page drives itself from the two SSE feeds.
        assert "/v1/metrics/stream" in body
        assert "/v1/events" in body


class TestMetricsExtensions:
    def test_metrics_gain_uptime_telemetry_and_campaigns(self, client):
        payload = client.metrics()
        assert payload["uptime_s"] >= 0
        ring = payload["telemetry"]["ring"]
        assert set(ring) == {"capacity", "size", "dropped", "last_seq"}
        assert payload["telemetry"]["watched_jobs"] == 0
        assert payload["campaigns"] == {
            "total": 0, "active": 0, "campaigns": []
        }

    def test_last_seq_is_monotonic_over_activity(self, paused_client):
        before = paused_client.metrics()["telemetry"]["ring"]["last_seq"]
        paused_client.submit(FIG1)
        after = paused_client.metrics()["telemetry"]["ring"]["last_seq"]
        assert after > before

    def test_metrics_stream_emits_metrics_frames(self, paused_service):
        request = urllib.request.Request(
            paused_service.url + "/v1/metrics/stream",
            headers={"Accept": "text/event-stream"},
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            assert resp.headers["Content-Type"] == "text/event-stream"
            event, data = None, None
            for raw in resp:
                line = raw.decode("utf-8").strip()
                if line.startswith("event:"):
                    event = line[6:].strip()
                elif line.startswith("data:"):
                    data = json.loads(line[5:])
                    break
        assert event == "metrics"
        assert "queue" in data and "telemetry" in data


class TestGlobalStream:
    def test_replays_from_resume_position(self, paused_client):
        job = paused_client.submit(FIG1)
        frames = []
        stream = paused_client.iter_events(last_event_id=0)
        for frame in stream:
            frames.append(frame)
            if frame["event"] == "event":
                break
        stream.close()
        assert frames[-1]["data"]["kind"] == "job.submitted"
        assert frames[-1]["data"]["job_id"] == job["id"]
        assert frames[-1]["id"] == frames[-1]["data"]["seq"]

    def test_resume_past_eviction_yields_gap_marker(self, paused_service):
        svc = make_service(workers=0, telemetry_ring=4)
        svc.start()
        try:
            for i in range(10):
                svc.hub.publish(f"tick.{i}")
            client = ServiceClient(svc.url, timeout=30.0)
            stream = client.iter_events(last_event_id=1)
            frames = []
            for frame in stream:
                frames.append(frame)
                if len(frames) == 5:
                    break
            stream.close()
        finally:
            svc.shutdown(timeout=10)
        # Retained: seqs 7-10; requested from 2; 2-6 are gone.
        assert frames[0]["event"] == "gap"
        assert frames[0]["data"] == {"missed": 5, "after_seq": 1}
        assert frames[0]["id"] is None  # gaps never become a cursor
        assert [f["id"] for f in frames[1:]] == [7, 8, 9, 10]

    def test_negative_last_event_id_is_rejected(self, paused_client):
        with pytest.raises(ServiceError) as excinfo:
            next(paused_client.iter_events(last_event_id=-3))
        assert excinfo.value.status == 400


class TestJobStream:
    def test_unknown_job_404s(self, client):
        with pytest.raises(ServiceError) as excinfo:
            next(client.iter_events(job_id="no-such-job"))
        assert excinfo.value.status == 404

    def test_lifecycle_stream_for_a_local_worker_job(self, client):
        job = client.submit(FIG1)
        frames = list(
            client.iter_events(job_id=job["id"], last_event_id=0)
        )
        assert frames[0]["event"] == "snapshot"
        assert frames[0]["data"]["id"] == job["id"]
        assert frames[0]["id"] is None
        kinds = frame_kinds(frames)
        assert kinds.index("job.submitted") < kinds.index("job.claimed")
        assert kinds[-1] == "job.done"
        assert frames[-1]["event"] == "end"
        assert frames[-1]["data"]["kind"] == "job.done"
        # Only this job's slice of the feed.
        assert all(
            f["data"]["job_id"] == job["id"]
            for f in frames
            if f["event"] == "event"
        )

    def test_terminal_job_streams_snapshot_then_end(self, client):
        job = client.submit(FIG1)
        client.wait(job["id"], timeout=120)
        frames = list(client.iter_events(job_id=job["id"]))
        assert [f["event"] for f in frames] == ["snapshot", "end"]
        assert frames[1]["data"]["state"] == "done"

    def test_watched_job_streams_live_simulation_events(self, client):
        # Pin the single worker with a blocker so the dependent target
        # is still pending when its stream (and therefore its watch)
        # opens — the deterministic version of "attach before it runs".
        blocker = client.submit(dict(FIG1, trials=1))
        target = client.submit(dict(FIG1, depends_on=[blocker["id"]]))
        frames = list(
            client.iter_events(job_id=target["id"], last_event_id=0)
        )
        kinds = frame_kinds(frames)
        assert "sim.TrialStarted" in kinds
        assert "sim.ExecutionStarted" in kinds
        assert "sim.ActivitySpan" not in kinds  # filtered as too chatty
        assert kinds[-1] == "job.done"
        assert frames[-1]["event"] == "end"
        # The watch was per-stream: it is gone once the stream closed.
        assert client.metrics()["telemetry"]["watched_jobs"] == 0


class TestSiteEventsRoute:
    def test_unknown_site_404s(self, paused_client):
        with pytest.raises(ServiceError) as excinfo:
            paused_client.post_site_events(
                "ghost", [{"kind": "sim.TrialStarted"}]
            )
        assert excinfo.value.status == 404

    def test_accepts_and_tags_a_batch(self, paused_service, paused_client):
        paused_client.register_site("site-a")
        response = paused_client.post_site_events(
            "site-a",
            [
                {"kind": "sim.TrialStarted", "job_id": "j1"},
                {"kind": "sim.CheckpointTaken", "job_id": "j1",
                 "data": {"level": 1}},
            ],
        )
        assert response == {"accepted": 2}
        events, _ = paused_service.hub.ring.read_since(0)
        tagged = [e for e in events if e.site == "site-a"]
        assert [e.kind for e in tagged][-2:] == [
            "sim.TrialStarted", "sim.CheckpointTaken"
        ]

    def test_event_push_counts_as_heartbeat(self, paused_client):
        paused_client.register_site("site-a")
        before = {
            s["name"]: s["last_heartbeat"]
            for s in paused_client.list_sites()["sites"]
        }["site-a"]
        time.sleep(0.05)
        paused_client.post_site_events(
            "site-a", [{"kind": "sim.TrialStarted"}]
        )
        after = {
            s["name"]: s["last_heartbeat"]
            for s in paused_client.list_sites()["sites"]
        }["site-a"]
        assert after > before

    def test_malformed_batches_400(self, paused_client):
        paused_client.register_site("site-a")
        bad = [
            {},  # no events
            {"events": []},  # empty
            {"events": [{"kind": "sim.TrialStarted"}], "extra": 1},
            {"events": [{}]},  # no kind
            {"events": [{"kind": "NoDot"}]},
            {"events": [{"kind": "sim.X", "bogus": 1}]},
            {"events": [{"kind": "sim.X", "data": "not-a-dict"}]},
            {"events": [{"kind": "sim.X", "job_id": ""}]},
            {"events": [{"kind": "sim.X"}] * 513},  # over batch bound
        ]
        for payload in bad:
            with pytest.raises(ServiceError) as excinfo:
                paused_client._json(
                    "POST", "/v1/sites/site-a/events", payload
                )
            assert excinfo.value.status == 400


class TestRemoteAgentPath:
    def test_claim_marks_watched_jobs(self, paused_service, paused_client):
        paused_client.register_site("site-a")
        watched = paused_client.submit(FIG1)["id"]
        unwatched = paused_client.submit(FIG1)["id"]
        paused_service.hub.watch(watched)
        try:
            response = paused_client.claim_jobs(
                "site-a", "site-a/w0", limit=2
            )
        finally:
            paused_service.hub.unwatch(watched)
        assert {j["id"] for j in response["jobs"]} == {watched, unwatched}
        assert response["watched"] == [watched]

    def test_forwarded_events_reach_the_job_stream(
        self, paused_service, paused_client
    ):
        """The full remote round-trip at the protocol level: an open
        stream watches the job, the claim reports it as watched, the
        agent forwards simulation events, and the stream interleaves
        them with the lifecycle it already narrates."""
        paused_client.register_site("site-a")
        job_id = paused_client.submit(FIG1)["id"]

        frames = []
        done = threading.Event()

        def follow():
            try:
                for frame in paused_client.iter_events(
                    job_id=job_id, last_event_id=0
                ):
                    frames.append(frame)
            finally:
                done.set()

        thread = threading.Thread(target=follow, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if paused_service.hub.is_watched(job_id):
                break
            time.sleep(0.01)
        assert paused_service.hub.is_watched(job_id)

        claim = paused_client.claim_jobs("site-a", "site-a/w0")
        assert claim["watched"] == [job_id]
        paused_client.post_site_events(
            "site-a",
            [
                {"kind": "sim.TrialStarted", "job_id": job_id,
                 "data": {"trial": 0}},
                {"kind": "sim.FailureInjected", "job_id": job_id,
                 "data": {"node": 3}},
            ],
        )
        paused_client.complete_jobs(
            "site-a/w0",
            [{"id": job_id, "ok": True, "result": "{}"}],
        )
        assert done.wait(timeout=60)
        thread.join(timeout=30)

        kinds = frame_kinds(frames)
        assert kinds.index("job.claimed") < kinds.index("sim.TrialStarted")
        assert (
            kinds.index("sim.FailureInjected") < kinds.index("job.done")
        )
        injected = [
            f for f in frames
            if f["event"] == "event"
            and f["data"]["kind"] == "sim.FailureInjected"
        ]
        assert injected[0]["data"]["site"] == "site-a"
        assert frames[-1]["event"] == "end"


class TestWatchCommand:
    def test_watch_follows_a_job_and_exits_0(self, client, service, capsys):
        from repro.cli import main

        job = client.submit(FIG1)
        assert main(["watch", job["id"], "--url", service.url]) == 0
        out = capsys.readouterr().out
        assert out.startswith("snapshot")
        assert "job.done" in out
        assert "end" in out

    def test_watch_exits_1_when_the_job_fails(self, service, capsys):
        from repro.cli import main

        # Bypass submit validation: an unknown experiment fails at
        # execution time, which is exactly a failing job.
        job_id = service.store.submit({"experiment": "not-a-thing"})
        assert main(["watch", job_id, "--url", service.url]) == 1
        assert "job.failed" in capsys.readouterr().out

    def test_watch_unknown_target_exits_2(self, service, capsys):
        from repro.cli import main

        assert main(["watch", "no-such-id", "--url", service.url]) == 2
        assert "no job or campaign" in capsys.readouterr().err


class TestCampaignEvents:
    def test_campaign_submission_is_narrated(self, paused_client,
                                             paused_service):
        campaign = paused_client.submit_campaign(
            scenario="fig1", quick=True
        )
        events, _ = paused_service.hub.ring.read_since(0)
        submitted = [e for e in events if e.kind == "campaign.submitted"]
        assert len(submitted) == 1
        assert submitted[0].campaign_id == campaign["id"]
        assert submitted[0].data["scenario"] == "fig1"
        assert submitted[0].data["adaptive"] is False
        summary = paused_client.metrics()["campaigns"]
        assert summary["total"] == 1

    def test_adaptive_campaign_progress_is_narrated(self, client, service):
        """The controller's notify hook feeds the ring: submission,
        per-cell settlement, and completion all appear."""
        spec = {
            "scenario": {"name": "adaptive-inline"},
            "platform": {"total_nodes": 20000},
            "failures": {"regime": "poisson", "mtbf_years": 5.0},
            "workload": {
                "study": "scaling",
                "app_type": "A32",
                "fractions": [0.1],
            },
            "techniques": {"names": ["checkpoint_restart"]},
            "adaptive": {
                "max_trials": 12,
                "batch_size": 4,
                "ci_rel_threshold": 0.05,
                "refine_depth": 0,
            },
        }
        campaign = client.submit_campaign(spec=spec)
        client.wait_campaign(campaign["id"], timeout=300)
        events, _ = service.hub.ring.read_since(0)
        mine = [e for e in events if e.campaign_id == campaign["id"]]
        kinds = [e.kind for e in mine]
        assert kinds[0] == "campaign.submitted"
        assert mine[0].data["adaptive"] is True
        assert "campaign.cell_settled" in kinds
        settled = next(
            e for e in mine if e.kind == "campaign.cell_settled"
        )
        assert settled.data["technique"] == "checkpoint_restart"
        assert settled.data["reason"] in (
            "converged", "max_trials", "infeasible"
        )
        assert kinds[-1] == "campaign.done"
        assert mine[-1].data["trials_executed"] >= 1
        summary = client.metrics()["campaigns"]
        assert summary["active"] == 0
        assert summary["campaigns"][0]["state"] == "done"
