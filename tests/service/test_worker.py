"""Worker-pool lifecycle tests: execution, crash recovery via lease
expiry, graceful-shutdown drain, and cancellation."""

import time

import pytest

from repro.experiments.entry import StudyRequest, run_request
from repro.service.store import JobState, create_store
from repro.service.worker import WorkerPool

TABLE1 = {"experiment": "table1", "format": "table", "jobs": 1, "cache": True}


def wait_for(predicate, timeout=30.0, interval=0.02):
    """Poll *predicate* until truthy or *timeout* elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class FakeClock:
    """Advanceable time source shared with the store under test."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def store():
    js = create_store("sqlite://:memory:", queue_limit=64)
    yield js
    js.close()


def make_pool(store, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("poll_interval_s", 0.01)
    return WorkerPool(store, **kwargs)


class TestExecution:
    def test_pool_drains_jobs_to_done(self, store):
        ids = [store.submit(TABLE1) for _ in range(3)]
        pool = make_pool(store, workers=2)
        pool.start()
        try:
            assert wait_for(
                lambda: all(
                    store.get(i).state == JobState.DONE for i in ids
                )
            )
        finally:
            pool.shutdown(timeout=30)
        expected = run_request(StudyRequest(experiment="table1")).text
        for job_id in ids:
            assert store.result_text(job_id) == expected

    def test_paused_pool_leaves_jobs_queued(self, store):
        job_id = store.submit(TABLE1)
        pool = make_pool(store, workers=0)
        pool.start()
        time.sleep(0.1)
        pool.shutdown(timeout=5)
        assert store.get(job_id).state == JobState.QUEUED

    def test_invalid_spec_lands_failed(self, store):
        # Bypass API validation: a corrupt spec straight into the store.
        job_id = store.submit({"experiment": "no-such-figure"})
        pool = make_pool(store)
        pool.start()
        try:
            assert wait_for(
                lambda: store.get(job_id).state == JobState.FAILED
            )
        finally:
            pool.shutdown(timeout=10)
        assert "invalid job spec" in store.get(job_id).error

    def test_executor_metrics_accumulate(self, store):
        job_id = store.submit(
            {"experiment": "fig1", "format": "json", "quick": True,
             "trials": 2, "jobs": 1, "cache": True}
        )
        pool = make_pool(store)
        pool.start()
        try:
            assert wait_for(
                lambda: store.get(job_id).state == JobState.DONE,
                timeout=120,
            )
        finally:
            pool.shutdown(timeout=30)
        assert pool.metrics.cells_done > 0
        assert pool.metrics.trials_done > 0


class TestCrashRecovery:
    def test_expired_lease_job_is_rerun_and_completed(self):
        """A job claimed by a worker that died (lease expired, no
        heartbeat) is re-leased by a fresh pool and completed."""
        clock = FakeClock()
        store = create_store("sqlite://:memory:", queue_limit=64, clock=clock)
        try:
            job_id = store.submit(TABLE1)
            crashed = store.claim("crashed-worker", lease_s=10)
            assert crashed is not None
            assert store.get(job_id).state == JobState.RUNNING
            clock.advance(11)  # the dead worker never renewed
            pool = make_pool(store, lease_s=60)
            pool.start()
            try:
                assert wait_for(
                    lambda: store.get(job_id).state == JobState.DONE
                )
            finally:
                pool.shutdown(timeout=30)
            record = store.get(job_id)
            assert record.attempts == 2
            expected = run_request(StudyRequest(experiment="table1")).text
            assert store.result_text(job_id) == expected
        finally:
            store.close()


class TestShutdownDrain:
    def test_shutdown_loses_no_accepted_jobs(self, tmp_path):
        """SIGTERM semantics: after shutdown every accepted job is
        done, queued, or running-with-expired-potential — never lost —
        and a restarted pool finishes all of them."""
        path = tmp_path / "jobs.db"
        store = create_store(f"sqlite://{path}", queue_limit=64)
        ids = [store.submit(TABLE1) for _ in range(8)]
        pool = make_pool(store)
        pool.start()
        # Shut down almost immediately, mid-drain.
        pool.shutdown(timeout=30)
        states = {i: store.get(i).state for i in ids}
        assert all(
            s in (JobState.DONE, JobState.QUEUED) for s in states.values()
        ), states
        # Restart: a fresh pool over the same durable store finishes
        # everything that was still queued.
        pool2 = make_pool(store)
        pool2.start()
        try:
            assert wait_for(
                lambda: all(
                    store.get(i).state == JobState.DONE for i in ids
                )
            )
        finally:
            pool2.shutdown(timeout=30)
            store.close()


class TestCancellation:
    def test_cancel_requested_before_start_skips_execution(self, store):
        job_id = store.submit(TABLE1)
        pool = make_pool(store, workers=0)
        record = store.claim(pool.identity, lease_s=60)
        store.cancel(job_id)  # running -> cancel_requested
        pool._run_job(record, f"{pool.identity}/w0")
        final = store.get(job_id)
        assert final.state == JobState.CANCELLED
        assert store.result_text(job_id) == ""

    def test_cancelled_queued_job_is_never_claimed(self, store):
        job_id = store.submit(TABLE1)
        store.cancel(job_id)
        pool = make_pool(store)
        pool.start()
        time.sleep(0.1)
        pool.shutdown(timeout=5)
        assert store.get(job_id).state == JobState.CANCELLED
