"""Job-dependency contract of the store: blocked holds, atomic
release, per-policy cascade, and the thread-race guarantees the
adaptive campaign controller builds on."""

import threading

import pytest

from repro.service.store import (
    DepPolicy,
    JobState,
    QueueFull,
    UnknownJob,
    create_store,
)

SPEC = {"experiment": "table1", "format": "table"}


class FakeClock:
    """Deterministic, advanceable time source."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(clock):
    return create_store(
        "sqlite://:memory:", queue_limit=64, max_attempts=3, clock=clock
    )


def run_to_done(store, job_id, worker="w1"):
    """Claim *job_id* (which must be runnable) and complete it."""
    batch = store.claim_batch(worker, 60.0, limit=64)
    assert job_id in [r.id for r in batch]
    assert store.complete(job_id, worker, "out")


class TestSubmitWithDependencies:
    def test_child_starts_blocked(self, store):
        parent = store.submit(SPEC)
        child = store.submit(SPEC, depends_on=[parent])
        record = store.get(child)
        assert record.state == JobState.BLOCKED
        assert record.depends_on == (parent,)
        assert record.dep_policy == DepPolicy.CASCADE

    def test_unknown_parent_rejected(self, store):
        with pytest.raises(UnknownJob):
            store.submit(SPEC, depends_on=["missing-parent"])

    def test_bad_policy_rejected(self, store):
        parent = store.submit(SPEC)
        with pytest.raises(ValueError):
            store.submit(SPEC, depends_on=[parent], dep_policy="maybe")

    def test_all_parents_terminal_starts_queued(self, store):
        parent = store.submit(SPEC)
        run_to_done(store, parent)
        child = store.submit(SPEC, depends_on=[parent])
        assert store.get(child).state == JobState.QUEUED

    def test_failed_parent_cascades_at_submit(self, store):
        parent = store.submit(SPEC)
        batch = store.claim_batch("w1", 60.0, limit=1)
        assert store.fail(batch[0].id, "w1", "boom")
        assert store.get(parent).state == JobState.FAILED
        child = store.submit(SPEC, depends_on=[parent])
        record = store.get(child)
        assert record.state == JobState.FAILED
        assert parent in (record.error or "")

    def test_run_policy_ignores_failed_parent_at_submit(self, store):
        parent = store.submit(SPEC)
        batch = store.claim_batch("w1", 60.0, limit=1)
        assert store.fail(batch[0].id, "w1", "boom")
        assert store.get(parent).state == JobState.FAILED
        child = store.submit(SPEC, depends_on=[parent], dep_policy=DepPolicy.RUN)
        assert store.get(child).state == JobState.QUEUED

    def test_payload_roundtrip(self, store):
        parent = store.submit(SPEC)
        child = store.submit(
            SPEC, depends_on=[parent], dep_policy=DepPolicy.RUN
        )
        payload = store.get(child).to_payload()
        assert payload["depends_on"] == [parent]
        assert payload["dep_policy"] == DepPolicy.RUN
        # A job without dependencies keeps its old wire shape.
        plain = store.get(parent).to_payload()
        assert "depends_on" not in plain
        assert "dep_policy" not in plain

    def test_blocked_counts_toward_queue_limit(self, clock):
        store = create_store(
            "sqlite://:memory:", queue_limit=2, max_attempts=3, clock=clock
        )
        parent = store.submit(SPEC)
        store.submit(SPEC, depends_on=[parent])
        with pytest.raises(QueueFull):
            store.submit(SPEC)


class TestBlockedIsNeverClaimable:
    def test_claim_skips_blocked(self, store):
        parent = store.submit(SPEC)
        child = store.submit(SPEC, depends_on=[parent])
        batch = store.claim_batch("w1", 60.0, limit=64)
        assert [r.id for r in batch] == [parent]
        assert store.get(child).state == JobState.BLOCKED

    def test_release_only_after_all_parents_terminal(self, store):
        p1 = store.submit(SPEC)
        p2 = store.submit(SPEC)
        child = store.submit(SPEC, depends_on=[p1, p2])
        batch = store.claim_batch("w1", 60.0, limit=64)
        assert {r.id for r in batch} == {p1, p2}
        assert store.complete(p1, "w1", "out")
        assert store.get(child).state == JobState.BLOCKED
        assert not store.claim_batch("w2", 60.0, limit=64)
        assert store.complete(p2, "w1", "out")
        assert store.get(child).state == JobState.QUEUED
        claimed = store.claim_batch("w2", 60.0, limit=64)
        assert [r.id for r in claimed] == [child]

    def test_chain_releases_one_link_at_a_time(self, store):
        a = store.submit(SPEC)
        b = store.submit(SPEC, depends_on=[a])
        c = store.submit(SPEC, depends_on=[b])
        assert store.get(c).state == JobState.BLOCKED
        run_to_done(store, a)
        assert store.get(b).state == JobState.QUEUED
        assert store.get(c).state == JobState.BLOCKED
        run_to_done(store, b, worker="w2")
        assert store.get(c).state == JobState.QUEUED


class TestCascade:
    def test_failed_parent_fails_cascade_children(self, store):
        parent = store.submit(SPEC)
        child = store.submit(SPEC, depends_on=[parent])
        grandchild = store.submit(SPEC, depends_on=[child])
        batch = store.claim_batch("w1", 60.0, limit=1)
        assert store.fail(batch[0].id, "w1", "boom")
        assert store.get(parent).state == JobState.FAILED
        for job_id in (child, grandchild):
            record = store.get(job_id)
            assert record.state == JobState.FAILED
            assert "dependency" in (record.error or "")

    def test_cancelled_parent_cancels_cascade_children(self, store):
        parent = store.submit(SPEC)
        child = store.submit(SPEC, depends_on=[parent])
        grandchild = store.submit(SPEC, depends_on=[child])
        store.cancel(parent)
        assert store.get(child).state == JobState.CANCELLED
        assert store.get(grandchild).state == JobState.CANCELLED

    def test_blocked_job_is_cancellable(self, store):
        parent = store.submit(SPEC)
        child = store.submit(SPEC, depends_on=[parent])
        record = store.cancel(child)
        assert record.state == JobState.CANCELLED
        # The parent is untouched and still runnable.
        assert store.get(parent).state == JobState.QUEUED

    def test_run_policy_survives_failed_parent(self, store):
        parent = store.submit(SPEC)
        child = store.submit(
            SPEC, depends_on=[parent], dep_policy=DepPolicy.RUN
        )
        batch = store.claim_batch("w1", 60.0, limit=1)
        assert store.fail(batch[0].id, "w1", "boom")
        assert store.get(parent).state == JobState.FAILED
        assert store.get(child).state == JobState.QUEUED

    def test_mixed_policies_diverge_on_the_same_parent(self, store):
        parent = store.submit(SPEC)
        cascade_child = store.submit(SPEC, depends_on=[parent])
        run_child = store.submit(
            SPEC, depends_on=[parent], dep_policy=DepPolicy.RUN
        )
        store.cancel(parent)
        assert store.get(cascade_child).state == JobState.CANCELLED
        assert store.get(run_child).state == JobState.QUEUED


class TestLeaseExpiryRelease:
    def test_expired_parent_retirement_cascades(self, store, clock):
        """A parent that burns all its leases is retired *inside* a
        claim transaction; its cascade children must fail in that same
        transaction, not linger blocked forever."""
        parent = store.submit(SPEC)
        child = store.submit(SPEC, depends_on=[parent])
        for _ in range(3):
            batch = store.claim_batch("w1", 10.0, limit=1)
            if not batch:
                break
            clock.advance(11.0)
        # The final claim call retires the job (attempts exhausted).
        store.claim_batch("w1", 10.0, limit=1)
        assert store.get(parent).state == JobState.FAILED
        assert store.get(child).state == JobState.FAILED


class TestReleaseIsAtomicUnderConcurrentClaims:
    def test_thread_raced_claims_never_double_run_or_lose_children(self):
        """Race claim_batch against dependency release: every child
        runs exactly once, and no child is ever claimed while its
        parent is still non-terminal."""
        store = create_store(
            "sqlite://:memory:", queue_limit=512, max_attempts=3
        )
        parents = [store.submit(SPEC) for _ in range(8)]
        children = {
            store.submit(SPEC, depends_on=[p]): p for p in parents
        }
        claims = []
        claims_lock = threading.Lock()
        stop = threading.Event()

        def worker(name):
            while not stop.is_set():
                batch = store.claim_batch(name, 60.0, limit=2)
                for record in batch:
                    if record.id in children:
                        parent_state = store.get(children[record.id]).state
                        with claims_lock:
                            claims.append((record.id, parent_state))
                    store.complete(record.id, name, "out")
                if not batch and store.counts().get("blocked", 0) == 0:
                    remaining = store.counts().get("queued", 0)
                    if remaining == 0:
                        return

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        stop.set()
        assert not any(t.is_alive() for t in threads)
        # Every child ran exactly once...
        assert sorted(c for c, _ in claims) == sorted(children)
        # ...and only after its parent was terminal.
        assert all(state == JobState.DONE for _, state in claims)
        for job_id in children:
            assert store.get(job_id).state == JobState.DONE
