"""Agent-fleet tests: a control plane with zero in-process workers
served by separately running worker agents.

Covers the acceptance criterion (a job submitted to a ``--workers 0``
server is executed by a separately launched ``repro agent`` process,
byte-identical to the direct CLI run) and the crash-recovery
satellite: an agent SIGKILLed mid-batch loses its leases, a second
agent reruns the jobs, and the dead agent's identity can never push a
stale result.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.entry import StudyRequest, run_request
from repro.experiments.parallel import ExecutorOptions
from repro.service.agent import LocalJobSource, RemoteJobSource, WorkerAgent
from repro.service.app import ReproService, ServiceConfig
from repro.service.client import ServiceClient
from repro.service.store import JobState, create_store

REPO_ROOT = Path(__file__).resolve().parents[2]

FIG1 = {
    "experiment": "fig1",
    "format": "json",
    "quick": True,
    "trials": 2,
    "jobs": 1,
    "cache": False,
}


def wait_for(predicate, timeout=60.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def direct_text(**overrides):
    fields = {
        "experiment": "fig1",
        "format": "json",
        "quick": True,
        "trials": 2,
    }
    fields.update(overrides)
    return run_request(
        StudyRequest(**fields), options=ExecutorOptions(jobs=1, cache=False)
    ).text


@pytest.fixture
def control_plane():
    """A server with NO in-process workers: agents do all execution."""
    svc = ReproService(
        ServiceConfig(
            host="127.0.0.1",
            port=0,
            workers=0,
            db_path=":memory:",
            poll_interval_s=0.01,
        )
    )
    svc.start()
    yield svc
    svc.shutdown(timeout=30)


def agent_env(tmp_path, name):
    """A subprocess environment emulating a separate agent host (own
    result cache)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / f"cache-{name}")
    return env


def spawn_agent(url, site, tmp_path, *, lease_s=2.0, batch_size=4):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "agent",
            "--url",
            url,
            "--site",
            site,
            "--workers",
            "1",
            "--batch-size",
            str(batch_size),
            "--lease-s",
            str(lease_s),
        ],
        env=agent_env(tmp_path, site),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO_ROOT),
    )


class TestInProcessAgent:
    """The agent engine driven through the remote source, in-process
    (fast; the subprocess path is covered below)."""

    def test_remote_agent_executes_byte_identical(self, control_plane):
        client = ServiceClient(control_plane.url)
        job = client.submit(FIG1)
        agent = WorkerAgent(
            RemoteJobSource(ServiceClient(control_plane.url), "inproc"),
            workers=1,
            lease_s=30.0,
            poll_interval_s=0.01,
        )
        agent.start()
        try:
            final = client.wait(job["id"], timeout=120)
        finally:
            agent.shutdown(timeout=30)
        assert final["state"] == "done"
        assert final["site"] == "inproc"
        assert client.result(job["id"]) == direct_text()

    def test_server_drain_winds_agent_down(self, control_plane):
        client = ServiceClient(control_plane.url)
        agent = WorkerAgent(
            RemoteJobSource(ServiceClient(control_plane.url), "drainme"),
            workers=1,
            lease_s=30.0,
            poll_interval_s=0.01,
            heartbeat_interval_s=0.05,
        )
        agent.start()
        try:
            assert wait_for(
                lambda: any(
                    s["name"] == "drainme"
                    for s in client.list_sites()["sites"]
                )
            )
            client.drain_site("drainme")
            assert wait_for(lambda: agent.draining, timeout=30)
        finally:
            agent.shutdown(timeout=30)

    def test_shutdown_releases_claimed_but_unstarted_jobs(self):
        store = create_store("sqlite://:memory:", queue_limit=16)
        try:
            ids = [store.submit(FIG1) for _ in range(3)]
            # workers=3 sizes the hand-off queue to hold the batch.
            agent = WorkerAgent(LocalJobSource(store), workers=3)
            # Claim a batch by hand (no threads started): these sit in
            # the hand-off queue, never picked up by an executor.
            for record in store.claim_batch(
                agent.identity, lease_s=60, limit=3
            ):
                agent._handoff.put(record)
            agent.shutdown(timeout=5)
            states = [store.get(i) for i in ids]
            assert all(r.state == JobState.QUEUED for r in states)
            assert all(r.attempts == 0 for r in states)  # refunded
        finally:
            store.close()


class TestAgentSubprocessFleet:
    """Real ``repro agent`` subprocesses against a workers=0 server."""

    def test_agent_process_runs_jobs_byte_identical(
        self, control_plane, tmp_path
    ):
        """Acceptance criterion: a separately launched agent process
        executes the workers=0 server's jobs, byte-identical to CLI."""
        client = ServiceClient(control_plane.url)
        job = client.submit(FIG1)
        agent = spawn_agent(
            control_plane.url, "solo", tmp_path, lease_s=30.0
        )
        try:
            final = client.wait(job["id"], timeout=180)
            assert final["state"] == "done"
            assert final["site"] == "solo"
            assert client.result(job["id"]) == direct_text()
        finally:
            agent.send_signal(signal.SIGTERM)
            out, err = agent.communicate(timeout=60)
        assert agent.returncode == 0, err
        assert "serving site solo" in out

    def test_sigkilled_agent_jobs_are_reclaimed_and_rerun(
        self, control_plane, tmp_path
    ):
        """Crash recovery end to end: kill agent #1 mid-batch, let the
        leases expire, agent #2 reruns everything; the resurrected
        identity's stale push is rejected."""
        client = ServiceClient(control_plane.url)
        jobs = [
            client.submit({**FIG1, "trials": trials})
            for trials in (2, 3, 4)
        ]
        first = spawn_agent(
            control_plane.url, "crashy", tmp_path, lease_s=2.0, batch_size=3
        )
        try:
            # Wait until the batch is claimed and one job is running.
            assert wait_for(
                lambda: any(
                    client.status(j["id"])["state"] == "running"
                    for j in jobs
                ),
                timeout=60,
            )
            victims = {
                j["id"]: client.status(j["id"]) for j in jobs
            }
            dead_worker = next(
                record["worker"]
                for record in victims.values()
                if record["state"] == "running"
            )
        finally:
            first.kill()
            first.wait(timeout=30)
        # The dead agent never renews; after lease expiry (2s) a second
        # agent on a different site claims and finishes everything.
        second = spawn_agent(
            control_plane.url, "rescue", tmp_path, lease_s=30.0, batch_size=3
        )
        try:
            finals = [client.wait(j["id"], timeout=180) for j in jobs]
        finally:
            second.send_signal(signal.SIGTERM)
            _, err = second.communicate(timeout=60)
        assert second.returncode == 0, err
        assert all(f["state"] == "done" for f in finals)
        # At least the job that was mid-run burned a second attempt.
        assert any(f["attempts"] >= 2 for f in finals)
        assert all(f["site"] == "rescue" for f in finals)
        # Byte-identical to the direct run despite the crash.
        for job, trials in zip(jobs, (2, 3, 4)):
            assert client.result(job["id"]) == direct_text(trials=trials)
        # The resurrected worker's stale completion is rejected.
        stale = client.complete_jobs(
            dead_worker,
            [{"id": jobs[0]["id"], "ok": True, "result": "stale"}],
        )["results"][0]
        assert stale["accepted"] is False
        assert stale["state"] == "done"
        assert client.result(jobs[0]["id"]) != "stale"
