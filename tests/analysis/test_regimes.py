"""Unit tests for the analytic regime explorer."""

import pytest

from repro.analysis.regimes import (
    analytic_efficiency,
    crossover_fraction,
    render_selection_map,
    selection_map,
)
from repro.platform.presets import exascale_system
from repro.resilience.registry import get_technique
from repro.units import years

MTBF = years(10)


@pytest.fixture(scope="module")
def system():
    return exascale_system()


class TestAnalyticEfficiency:
    def test_in_unit_interval(self, system):
        eff = analytic_efficiency(
            get_technique("checkpoint_restart"), "C32", 0.25, system, MTBF
        )
        assert 0 < eff < 1

    def test_monotone_in_size(self, system):
        technique = get_technique("checkpoint_restart")
        effs = [
            analytic_efficiency(technique, "A32", f, system, MTBF)
            for f in (0.01, 0.1, 0.5, 1.0)
        ]
        assert effs == sorted(effs, reverse=True)


class TestCrossoverFraction:
    def test_d64_crossover_near_paper_value(self, system):
        """The paper reports the Fig. 2 crossover at ~25% of the
        system; the analytic boundary must land in that neighbourhood."""
        cross = crossover_fraction("D64", system, MTBF)
        assert cross is not None
        assert 0.1 < cross < 0.5

    def test_a32_pr_wins_from_the_start(self, system):
        cross = crossover_fraction("A32", system, MTBF)
        assert cross is not None
        assert cross < 0.01  # effectively everywhere

    def test_crossover_ordered_by_communication(self, system):
        """More communication pushes the PR takeover later."""
        crossings = [
            crossover_fraction(t, system, MTBF) for t in ("B64", "C64", "D64")
        ]
        assert all(c is not None for c in crossings)
        assert crossings == sorted(crossings)

    def test_lower_mtbf_moves_crossover_left(self, system):
        ten = crossover_fraction("D64", system, years(10))
        low = crossover_fraction("D64", system, years(2.5))
        assert low < ten

    def test_no_crossover_case(self, system):
        """CR never overtakes multilevel, in any regime."""
        cross = crossover_fraction(
            "D64",
            system,
            MTBF,
            technique_small="multilevel",
            technique_large="checkpoint_restart",
        )
        assert cross is None


class TestSelectionMap:
    def test_matches_figure_story(self, system):
        fractions = (0.01, 0.12, 0.5, 1.0)
        mapping = selection_map(system, MTBF, fractions)
        # A-types: PR everywhere; D-types: ML small, PR large.
        assert mapping[("A32", 0.01)] == "parallel_recovery"
        assert mapping[("D64", 0.01)] == "multilevel"
        assert mapping[("D64", 1.0)] == "parallel_recovery"

    def test_render(self, system):
        fractions = (0.01, 1.0)
        mapping = selection_map(system, MTBF, fractions)
        text = render_selection_map(mapping, fractions)
        assert "A32" in text and "D64" in text
        assert "PR" in text and "ML" in text


class TestRequiredMTBF:
    def test_cr_at_exascale_needs_long_mtbf(self, system):
        from repro.analysis.regimes import required_node_mtbf
        from repro.units import to_years

        mtbf = required_node_mtbf(
            get_technique("checkpoint_restart"), "A32", 1.0, system, 0.9
        )
        assert mtbf is not None
        # CR needs vastly more reliable nodes than 10 years to hit 90%
        # at full scale (Fig. 1: it sits at 0.40 there).
        assert to_years(mtbf) > 30

    def test_pr_reaches_target_cheaply(self, system):
        from repro.analysis.regimes import required_node_mtbf
        from repro.units import to_years

        pr = required_node_mtbf(
            get_technique("parallel_recovery"), "A32", 1.0, system, 0.9
        )
        cr = required_node_mtbf(
            get_technique("checkpoint_restart"), "A32", 1.0, system, 0.9
        )
        assert pr is not None and cr is not None
        assert pr < cr

    def test_unreachable_target_returns_none(self, system):
        from repro.analysis.regimes import required_node_mtbf

        # PR's mu ceiling for D64 is 1/1.075 ~ 0.930: 0.95 is unreachable.
        assert (
            required_node_mtbf(
                get_technique("parallel_recovery"), "D64", 0.5, system, 0.95
            )
            is None
        )

    def test_target_validation(self, system):
        from repro.analysis.regimes import required_node_mtbf

        with pytest.raises(ValueError):
            required_node_mtbf(
                get_technique("multilevel"), "A32", 0.5, system, 1.5
            )

    def test_solution_achieves_target(self, system):
        from repro.analysis.regimes import analytic_efficiency, required_node_mtbf

        mtbf = required_node_mtbf(
            get_technique("multilevel"), "C32", 0.5, system, 0.95
        )
        assert mtbf is not None
        achieved = analytic_efficiency(
            get_technique("multilevel"), "C32", 0.5, system, mtbf
        )
        assert achieved == pytest.approx(0.95, abs=1e-3)
