"""Bracket-edge behavior of the regime solvers.

:func:`crossover_fraction` and :func:`required_node_mtbf` bisect a
gap function over a bracket; the adaptive campaign controller now
consumes their answers as refinement priors, so the edge cases must be
pinned: no crossover in range returns None (never a fabricated root),
a crossover sitting at an endpoint returns that endpoint, and a
non-monotone gap still yields a genuine sign change — loudly, not a
silently wrong value.

The gap functions are synthesized by monkeypatching
``analytic_efficiency``, so each case is exact by construction.
"""

import math

import pytest

from repro.analysis import regimes
from repro.platform.presets import exascale_system


@pytest.fixture(scope="module")
def system():
    return exascale_system()


def patch_efficiencies(monkeypatch, small_fn, large_fn):
    """Make ``analytic_efficiency`` return ``small_fn(fraction)`` for
    the multilevel technique and ``large_fn(fraction)`` for parallel
    recovery (the solver's two defaults)."""

    def fake(technique, app_type, fraction, system, node_mtbf_s, severity=None):
        if technique.name == "multilevel":
            return small_fn(fraction)
        if technique.name == "parallel_recovery":
            return large_fn(fraction)
        raise AssertionError(f"unexpected technique {technique.name}")

    monkeypatch.setattr(regimes, "analytic_efficiency", fake)


class TestCrossoverBrackets:
    def test_no_crossover_in_range_returns_none(self, monkeypatch, system):
        # The small technique wins everywhere: the gap never reaches 0.
        patch_efficiencies(
            monkeypatch, lambda f: 0.9, lambda f: 0.9 - 0.01 * (1 + f)
        )
        assert (
            regimes.crossover_fraction("D64", system, 5.0e8) is None
        )

    def test_crossover_at_low_endpoint(self, monkeypatch, system):
        # The large technique already wins at the smallest resolvable
        # fraction: the solver reports that endpoint, not a root hunt.
        patch_efficiencies(monkeypatch, lambda f: 0.5, lambda f: 0.9)
        lo = max(10.0 / system.total_nodes, 1e-4)
        assert regimes.crossover_fraction("D64", system, 5.0e8) == pytest.approx(lo)

    def test_crossover_hugging_high_endpoint(self, monkeypatch, system):
        # The sign change sits just inside the upper bracket edge;
        # brentq must localize it there instead of bailing to None.
        threshold = 1e-4
        patch_efficiencies(
            monkeypatch,
            lambda f: 0.5,
            lambda f: 0.5 + threshold + 0.3 * (f - 0.999),
        )
        value = regimes.crossover_fraction("D64", system, 5.0e8)
        assert value == pytest.approx(0.999, abs=1e-4)

    def test_gap_never_positive_at_exact_endpoint_returns_none(
        self, monkeypatch, system
    ):
        # Touching zero exactly at the edge but never exceeding the
        # threshold inside the range is "no crossover", not a root.
        threshold = 1e-4
        patch_efficiencies(
            monkeypatch,
            lambda f: 0.5,
            lambda f: 0.5 + threshold * f * 0.999999,
        )
        assert regimes.crossover_fraction("D64", system, 5.0e8) is None

    def test_non_monotone_gap_still_finds_genuine_root(
        self, monkeypatch, system
    ):
        # A dip-then-rise gap: non-monotone but with a single sign
        # change.  The solver must return the actual root, and the gap
        # evaluated there must vanish (no endpoint fallback).
        threshold = 1e-4

        def large(f):
            return 0.5 + threshold + 0.4 * (f - 0.6) * (f + 0.2)

        patch_efficiencies(monkeypatch, lambda f: 0.5, large)
        value = regimes.crossover_fraction("D64", system, 5.0e8)
        assert value == pytest.approx(0.6, abs=1e-4)
        assert large(value) - 0.5 - threshold == pytest.approx(0.0, abs=1e-3)

    def test_nan_gap_fails_loudly(self, monkeypatch, system):
        # A gap that goes NaN inside the bracket must raise, never
        # return a fabricated crossover for the controller to chase.
        patch_efficiencies(
            monkeypatch,
            lambda f: 0.5,
            lambda f: float("nan") if 0.2 < f < 0.8 else (0.4 if f < 0.2 else 0.6),
        )
        with pytest.raises(ValueError):
            regimes.crossover_fraction("D64", system, 5.0e8)


class TestRequiredMtbfBrackets:
    @staticmethod
    def patch_mtbf_curve(monkeypatch, curve):
        def fake(technique, app_type, fraction, system, node_mtbf_s, severity=None):
            return curve(node_mtbf_s)

        monkeypatch.setattr(regimes, "analytic_efficiency", fake)

    def test_unreachable_target_returns_none(self, monkeypatch, system):
        self.patch_mtbf_curve(monkeypatch, lambda m: 0.5)
        technique = regimes.get_technique("checkpoint_restart")
        assert (
            regimes.required_node_mtbf(technique, "D64", 0.5, system, 0.9)
            is None
        )

    def test_reachable_at_pessimistic_bound_returns_lo(
        self, monkeypatch, system
    ):
        self.patch_mtbf_curve(monkeypatch, lambda m: 0.99)
        technique = regimes.get_technique("checkpoint_restart")
        value = regimes.required_node_mtbf(
            technique, "D64", 0.5, system, 0.9, mtbf_bounds_s=(1e5, 1e9)
        )
        assert value == pytest.approx(1e5)

    def test_interior_root_is_genuine(self, monkeypatch, system):
        self.patch_mtbf_curve(
            monkeypatch, lambda m: 1.0 - math.exp(-m / 1.0e7)
        )
        technique = regimes.get_technique("checkpoint_restart")
        value = regimes.required_node_mtbf(
            technique, "D64", 0.5, system, 0.9, mtbf_bounds_s=(1e5, 1e9)
        )
        # Analytic inverse: m = -1e7 * ln(0.1).
        assert value == pytest.approx(-1.0e7 * math.log(0.1), rel=1e-5)

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5, 1.5])
    def test_bad_target_raises(self, system, target):
        technique = regimes.get_technique("checkpoint_restart")
        with pytest.raises(ValueError):
            regimes.required_node_mtbf(
                technique, "D64", 0.5, system, target
            )
