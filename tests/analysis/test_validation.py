"""Simulator-vs-model agreement tests.

These are the strongest correctness tests in the suite: the DES and the
closed-form model are independent implementations, so agreement within
statistical tolerance vouches for both.
"""

import pytest

from repro.analysis.validation import validate_plan
from repro.core.single_app import SingleAppConfig
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.resilience.redundancy import Redundancy
from repro.units import years
from repro.workload.synthetic import make_application

CONFIG = SingleAppConfig(seed=99)


class TestSimMatchesModel:
    @pytest.mark.parametrize(
        "technique_factory,tolerance",
        [
            (CheckpointRestart, 0.03),
            (MultilevelCheckpoint, 0.03),
            (ParallelRecovery, 0.03),
        ],
    )
    def test_moderate_scale_agreement(self, full_system, technique_factory, tolerance):
        app = make_application("C32", nodes=full_system.fraction_to_nodes(0.12))
        report = validate_plan(
            app, technique_factory(), full_system, trials=25, config=CONFIG
        )
        assert report.relative_error < tolerance, str(report)

    def test_redundancy_agreement(self, full_system):
        app = make_application("A32", nodes=full_system.fraction_to_nodes(0.12))
        report = validate_plan(
            app, Redundancy.full(), full_system, trials=25, config=CONFIG
        )
        assert report.relative_error < 0.05, str(report)

    def test_high_failure_rate_still_reasonable(self, full_system):
        """First-order model degrades gracefully at higher rates: allow
        a looser tolerance but require the right ballpark."""
        app = make_application("C32", nodes=full_system.fraction_to_nodes(0.12))
        config = SingleAppConfig(seed=99, node_mtbf_s=years(2.5))
        report = validate_plan(
            app, CheckpointRestart(), full_system, trials=25, config=config
        )
        assert report.relative_error < 0.10, str(report)

    def test_report_rendering(self, full_system):
        app = make_application("A32", nodes=1200)
        report = validate_plan(
            app, CheckpointRestart(), full_system, trials=5, config=CONFIG
        )
        text = str(report)
        assert "checkpoint_restart" in text
        assert "rel.err" in text
