"""Grid-objective regime solvers: objective values, the $-crossover
locator, and the curve-level boundary solver."""

import pytest

from repro.analysis import regimes
from repro.analysis.regimes import (
    crossover_fraction,
    grid_crossover_fraction,
    grid_crossover_level,
    grid_objective_value,
)
from repro.grid.curves import FlatCurve
from repro.platform.presets import exascale_system
from repro.resilience.registry import get_technique
from repro.units import years

MTBF = years(2.5)
PRICE = FlatCurve(0.12)


@pytest.fixture(scope="module")
def system():
    return exascale_system()


class TestGridObjectiveValue:
    def test_cost_is_positive_dollars(self, system):
        usd = grid_objective_value(
            get_technique("multilevel"), "D64", 0.1, system, MTBF,
            objective="cost", price=PRICE,
        )
        assert usd > 0

    def test_carbon_scales_with_intensity(self, system):
        low = grid_objective_value(
            get_technique("multilevel"), "D64", 0.1, system, MTBF,
            objective="carbon", carbon=FlatCurve(100.0),
        )
        high = grid_objective_value(
            get_technique("multilevel"), "D64", 0.1, system, MTBF,
            objective="carbon", carbon=FlatCurve(400.0),
        )
        assert high == pytest.approx(4 * low, rel=1e-9)

    def test_efficiency_objective_is_negated(self, system):
        value = grid_objective_value(
            get_technique("multilevel"), "D64", 0.1, system, MTBF,
            objective="efficiency",
        )
        assert -1.0 < value < 0.0

    def test_cost_grows_with_allocation(self, system):
        costs = [
            grid_objective_value(
                get_technique("checkpoint_restart"), "A32", f, system,
                MTBF, objective="cost", price=PRICE,
            )
            for f in (0.01, 0.1, 0.5)
        ]
        assert costs == sorted(costs)


class TestGridCrossoverFraction:
    def test_d64_dollar_crossover_exists_and_differs_from_efficiency(
        self, system
    ):
        """Parallel recovery's recovery-idling saves dollars before it
        wins on efficiency: the $-crossover must land strictly left of
        the paper's ~25% efficiency crossover."""
        dollars = grid_crossover_fraction(
            "D64", system, MTBF, objective="cost", price=PRICE
        )
        efficiency = crossover_fraction("D64", system, MTBF)
        assert dollars is not None and efficiency is not None
        assert 0.05 < dollars < efficiency

    def test_sign_flips_across_the_root(self, system):
        root = grid_crossover_fraction(
            "D64", system, MTBF, objective="cost", price=PRICE
        )
        ml, pr = get_technique("multilevel"), get_technique("parallel_recovery")

        def gap(fraction):
            return grid_objective_value(
                ml, "D64", fraction, system, MTBF,
                objective="cost", price=PRICE,
            ) - grid_objective_value(
                pr, "D64", fraction, system, MTBF,
                objective="cost", price=PRICE,
            )

        assert gap(root - 0.03) < 0  # multilevel cheaper below
        assert gap(root + 0.03) > 0  # parallel recovery cheaper above


class TestBracketEdges:
    """Synthetic gap functions via monkeypatching, exact by
    construction (same approach as ``test_regimes_brackets``)."""

    def patch_costs(self, monkeypatch, small_fn, large_fn):
        def fake(
            technique, app_type, fraction, system, node_mtbf_s,
            objective="cost", price=None, carbon=None, power=None,
            start_s=0.0, severity=None,
        ):
            if technique.name == "multilevel":
                return small_fn(fraction)
            if technique.name == "parallel_recovery":
                return large_fn(fraction)
            raise AssertionError(f"unexpected technique {technique.name}")

        monkeypatch.setattr(regimes, "grid_objective_value", fake)

    def test_never_crosses_returns_none(self, monkeypatch, system):
        self.patch_costs(monkeypatch, lambda f: 100.0, lambda f: 150.0)
        assert (
            grid_crossover_fraction("D64", system, MTBF, price=PRICE)
            is None
        )

    def test_already_cheaper_returns_low_endpoint(self, monkeypatch, system):
        self.patch_costs(monkeypatch, lambda f: 150.0, lambda f: 100.0)
        lo = max(10.0 / system.total_nodes, 1e-4)
        assert grid_crossover_fraction(
            "D64", system, MTBF, price=PRICE
        ) == pytest.approx(lo)

    def test_interior_root_is_located(self, monkeypatch, system):
        # Gap crosses at f = 0.4 with a wide margin on both sides.
        self.patch_costs(
            monkeypatch, lambda f: 100.0, lambda f: 100.0 * (1.4 - f)
        )
        root = grid_crossover_fraction("D64", system, MTBF, price=PRICE)
        assert root == pytest.approx(0.4, abs=0.01)

    def test_level_solver_interior_root(self, monkeypatch, system):
        def fake(
            technique, app_type, fraction, system, node_mtbf_s,
            objective="cost", price=None, carbon=None, power=None,
            start_s=0.0, severity=None,
        ):
            level = price.level
            if technique.name == "checkpoint_restart":
                return 100.0
            return 150.0 - 10.0 * level  # crosses at level 5

        monkeypatch.setattr(regimes, "grid_objective_value", fake)
        root = grid_crossover_level(
            "D64", 0.25, system, MTBF,
            curve_factory=FlatCurve, lo=0.0, hi=10.0,
        )
        assert root == pytest.approx(5.0, rel=1e-6)

    def test_level_solver_edges(self, monkeypatch, system):
        def cheaper_b(technique, *args, **kwargs):
            return 100.0 if technique.name == "parallel_recovery" else 150.0

        monkeypatch.setattr(regimes, "grid_objective_value", cheaper_b)
        assert grid_crossover_level(
            "D64", 0.25, system, MTBF,
            curve_factory=FlatCurve, lo=1.0, hi=10.0,
        ) == pytest.approx(1.0)

        def cheaper_a(technique, *args, **kwargs):
            return 100.0 if technique.name == "checkpoint_restart" else 150.0

        monkeypatch.setattr(regimes, "grid_objective_value", cheaper_a)
        assert grid_crossover_level(
            "D64", 0.25, system, MTBF,
            curve_factory=FlatCurve, lo=1.0, hi=10.0,
        ) is None
