"""Unit tests for the first-order analytic models."""

import pytest

from repro.analysis.analytic import predict, predict_efficiency
from repro.failures.severity import SeverityModel
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.resilience.redundancy import Redundancy
from repro.units import years
from repro.workload.synthetic import make_application

MTBF = years(10)


class TestPredictionStructure:
    def test_components_positive(self, small_system, small_app):
        plan = CheckpointRestart().plan(small_app, small_system, MTBF)
        p = predict(plan, MTBF)
        assert p.checkpoint_overhead > 0
        assert p.rework_overhead > 0
        assert p.expected_elapsed_s > plan.effective_work_s
        assert p.total_overhead == pytest.approx(
            p.checkpoint_overhead + p.rework_overhead
        )

    def test_efficiency_below_one(self, small_system, small_app):
        plan = CheckpointRestart().plan(small_app, small_system, MTBF)
        assert 0 < predict_efficiency(plan, MTBF) < 1

    def test_invalid_mtbf(self, small_system, small_app):
        plan = CheckpointRestart().plan(small_app, small_system, MTBF)
        with pytest.raises(ValueError):
            predict(plan, 0.0)


class TestModelOrderings:
    """The analytic model must reproduce the paper's qualitative
    orderings (these are the facts Resilience Selection relies on)."""

    def test_efficiency_decreases_with_size(self, full_system):
        effs = []
        for fraction in (0.01, 0.12, 0.5, 1.0):
            app = make_application(
                "A32", nodes=full_system.fraction_to_nodes(fraction)
            )
            plan = CheckpointRestart().plan(app, full_system, MTBF)
            effs.append(predict_efficiency(plan, MTBF))
        assert effs == sorted(effs, reverse=True)

    def test_multilevel_beats_cr_at_scale(self, full_system):
        app = make_application("A32", nodes=full_system.fraction_to_nodes(0.5))
        cr = predict_efficiency(CheckpointRestart().plan(app, full_system, MTBF), MTBF)
        ml = predict_efficiency(
            MultilevelCheckpoint().plan(app, full_system, MTBF), MTBF
        )
        assert ml > cr

    def test_pr_mu_caps_efficiency(self, full_system):
        app = make_application("D64", nodes=full_system.fraction_to_nodes(0.01))
        pr = predict_efficiency(ParallelRecovery().plan(app, full_system, MTBF), MTBF)
        assert pr < 1.0 / 1.075 + 1e-6

    def test_worse_mtbf_lowers_efficiency(self, full_system):
        app = make_application("A32", nodes=full_system.fraction_to_nodes(0.25))
        good = predict_efficiency(
            CheckpointRestart().plan(app, full_system, years(10)), years(10)
        )
        bad = predict_efficiency(
            CheckpointRestart().plan(app, full_system, years(2.5)), years(2.5)
        )
        assert bad < good

    def test_redundancy_rework_far_below_cr(self, full_system):
        app = make_application("A32", nodes=full_system.fraction_to_nodes(0.25))
        cr = predict(CheckpointRestart().plan(app, full_system, MTBF), MTBF)
        red = predict(Redundancy.full().plan(app, full_system, MTBF), MTBF)
        assert red.rework_overhead < cr.rework_overhead / 5


class TestSeverityHandling:
    def test_severity_model_threaded_through(self, small_system, small_app):
        plan = MultilevelCheckpoint().plan(small_app, small_system, MTBF)
        mild = SeverityModel.from_probabilities([0.98, 0.01, 0.01])
        harsh = SeverityModel.from_probabilities([0.01, 0.01, 0.98])
        assert predict_efficiency(plan, MTBF, mild) > predict_efficiency(
            plan, MTBF, harsh
        )
