"""Unit tests for the analytic sensitivity sweeps."""

import pytest

from repro.analysis.sensitivity import severity_pmf_sweep, sigma_sweep
from repro.platform.presets import exascale_system
from repro.units import years
from repro.workload.synthetic import make_application

MTBF = years(10)


@pytest.fixture(scope="module")
def system():
    return exascale_system()


@pytest.fixture(scope="module")
def app(system):
    return make_application("D64", nodes=system.fraction_to_nodes(0.25))


class TestSeverityPMFSweep:
    def test_rows_ordered_with_severity(self, app, system):
        pmfs = [(0.9, 0.08, 0.02), (0.5, 0.3, 0.2), (0.1, 0.2, 0.7)]
        points = severity_pmf_sweep(app, system, MTBF, pmfs)
        assert len(points) == 3
        effs = [p.efficiency for p in points]
        assert effs == sorted(effs, reverse=True)

    def test_parameter_recorded(self, app, system):
        points = severity_pmf_sweep(app, system, MTBF, [(0.65, 0.2, 0.15)])
        assert points[0].parameter == (0.65, 0.2, 0.15)


class TestSigmaSweep:
    def test_monotone_in_sigma(self, app, system):
        points = sigma_sweep(app, system, MTBF, sigmas=[1.0, 2.0, 4.0, 8.0])
        effs = [p.efficiency for p in points]
        assert all(b >= a for a, b in zip(effs, effs[1:]))

    def test_bounded_by_mu_ceiling(self, app, system):
        points = sigma_sweep(app, system, MTBF, sigmas=[64.0])
        assert points[0].efficiency <= 1 / 1.075 + 1e-9
