"""Unit tests for the EASY-backfilling extension policy."""

from typing import List

import pytest

from repro.rm.easy import EasyBackfill, shadow_time_and_extra
from repro.units import hours
from repro.workload.synthetic import make_application


class FakeReservingPlacer:
    """Capacity placer that also reports running jobs."""

    def __init__(self, capacity: int, running=None) -> None:
        self.capacity = capacity
        self.running = list(running or [])  # (nodes, estimated_end)
        self.placed: List = []
        self.dropped: List = []

    def can_place(self, app) -> bool:
        return app.nodes <= self.capacity

    def place(self, app) -> None:
        assert self.can_place(app)
        self.capacity -= app.nodes
        self.placed.append(app)

    def drop(self, app) -> None:
        self.dropped.append(app)

    def running_jobs(self):
        return list(self.running)

    def free_nodes(self) -> int:
        return self.capacity

    def nodes_needed(self, app) -> int:
        return app.nodes


def _apps(sizes, steps=60):
    return [
        make_application(
            "A32", nodes=s, time_steps=steps, app_id=i, arrival_time=i * 1e-3
        )
        for i, s in enumerate(sizes)
    ]


class TestShadowTime:
    def test_immediate_fit(self):
        shadow, extra = shadow_time_and_extra([], free_nodes=100, needed=60, now=5.0)
        assert shadow == 5.0
        assert extra == 40

    def test_waits_for_enough_releases(self):
        running = [(50, 100.0), (30, 200.0)]
        shadow, extra = shadow_time_and_extra(running, 10, needed=80, now=0.0)
        # Needs 80: 10 free + 50 at t=100 = 60 (< 80); +30 at t=200 = 90.
        assert shadow == 200.0
        assert extra == 10

    def test_release_order_sorted_by_end(self):
        running = [(30, 500.0), (50, 100.0)]
        shadow, _ = shadow_time_and_extra(running, 10, needed=60, now=0.0)
        assert shadow == 100.0  # the 50-node job ends first

    def test_never_fits(self):
        shadow, extra = shadow_time_and_extra([(10, 50.0)], 5, needed=100, now=0.0)
        assert shadow == float("inf")
        assert extra == 0

    def test_shadow_never_before_now(self):
        running = [(50, 10.0)]
        shadow, _ = shadow_time_and_extra(running, 0, needed=50, now=20.0)
        assert shadow == 20.0


class TestEasyBackfill:
    def test_fcfs_when_everything_fits(self):
        placer = FakeReservingPlacer(100)
        left = EasyBackfill().map_applications(_apps([40, 50]), placer, now=0.0)
        assert [a.app_id for a in placer.placed] == [0, 1]
        assert left == []

    def test_backfills_short_job_behind_blocked_head(self):
        # Head needs 90, only 20 free; a 60-node job releases at
        # t=7200.  A short 10-node job (1 h + 20% = 4320 s < 7200)
        # backfills.
        placer = FakeReservingPlacer(20, running=[(80, 7200.0)])
        apps = _apps([90, 10], steps=60)
        left = EasyBackfill().map_applications(apps, placer, now=0.0)
        assert [a.app_id for a in placer.placed] == [1]
        assert [a.app_id for a in left] == [0]

    def test_does_not_backfill_job_that_would_delay_head(self):
        # Same shadow (7200 s) but a long job (24 h baseline) that
        # would outlive it and uses nodes the head needs.
        placer = FakeReservingPlacer(20, running=[(80, 7200.0)])
        apps = _apps([90, 15], steps=1440)
        left = EasyBackfill().map_applications(apps, placer, now=0.0)
        assert placer.placed == []
        assert [a.app_id for a in left] == [0, 1]

    def test_backfills_long_job_within_extra_nodes(self):
        # Head needs 50; free 20 + 80 released at t=7200 => extra = 50.
        # A long 30-node job fits inside the extra and may run
        # indefinitely without delaying the head.
        placer = FakeReservingPlacer(20, running=[(80, 7200.0)])
        apps = _apps([50, 15], steps=1440)
        left = EasyBackfill().map_applications(apps, placer, now=0.0)
        assert [a.app_id for a in placer.placed] == [1]
        assert [a.app_id for a in left] == [0]

    def test_extra_budget_decrements(self):
        # Extra = 50 after head reservation; two 30-node long jobs:
        # only the first backfills on the extra budget.
        placer = FakeReservingPlacer(70, running=[(80, 7200.0)])
        apps = _apps([100, 30, 30], steps=1440)
        left = EasyBackfill().map_applications(apps, placer, now=0.0)
        # Head needs 100: free 70 + 80 at 7200 -> shadow 7200, extra 50.
        assert [a.app_id for a in placer.placed] == [1]
        assert [a.app_id for a in left] == [0, 2]

    def test_estimated_runtime_headroom(self):
        app = _apps([10], steps=60)[0]
        assert EasyBackfill.estimated_runtime(app) == pytest.approx(
            1.2 * hours(1)
        )

    def test_registry_exposes_easy(self):
        from repro.rng.streams import StreamFactory
        from repro.rm.registry import extended_manager_names, make_manager

        assert "easy" in extended_manager_names()
        manager = make_manager("easy", StreamFactory(0).stream("rm"))
        assert manager.name == "easy"
