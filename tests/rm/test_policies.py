"""Unit tests for the three resource-management policies (Sec. III-D).

Policies are driven with a fake placer so mapping logic is tested in
isolation from the datacenter machinery.
"""

from typing import List

import pytest

from repro.rm.fcfs import FCFS
from repro.rm.random_policy import RandomMapping
from repro.rm.registry import make_manager, manager_names
from repro.rm.slack import SlackBased, remaining_slack
from repro.rng.streams import StreamFactory
from repro.units import hours
from repro.workload.synthetic import make_application


class FakePlacer:
    """Capacity-counting placer (ignores contiguity)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.placed: List = []
        self.dropped: List = []

    def can_place(self, app) -> bool:
        return app.nodes <= self.capacity

    def place(self, app) -> None:
        assert self.can_place(app)
        self.capacity -= app.nodes
        self.placed.append(app)

    def drop(self, app) -> None:
        self.dropped.append(app)


def _apps(sizes, deadline_hours=None, arrival=0.0):
    out = []
    for i, size in enumerate(sizes):
        deadline = None
        if deadline_hours is not None:
            deadline = arrival + hours(deadline_hours[i])
        out.append(
            make_application(
                "A32",
                nodes=size,
                time_steps=60,  # one-hour baseline
                app_id=i,
                arrival_time=arrival + i * 1e-3,  # preserve arrival order
                deadline=deadline,
            )
        )
    return out


class TestFCFS:
    def test_maps_in_order_until_blocked(self):
        placer = FakePlacer(100)
        pending = _apps([40, 50, 20])
        left = FCFS().map_applications(pending, placer, now=0.0)
        # 40 and 50 fit; 20 would fit but is blocked behind nothing —
        # capacity is 10 left, 20 does not fit.
        assert [a.app_id for a in placer.placed] == [0, 1]
        assert [a.app_id for a in left] == [2]

    def test_no_backfill(self):
        placer = FakePlacer(100)
        pending = _apps([40, 90, 20])  # 90 blocks; 20 would fit
        left = FCFS().map_applications(pending, placer, now=0.0)
        assert [a.app_id for a in placer.placed] == [0]
        assert [a.app_id for a in left] == [1, 2]

    def test_empty_queue(self):
        placer = FakePlacer(100)
        assert FCFS().map_applications([], placer, now=0.0) == []

    def test_never_drops(self):
        placer = FakePlacer(10)
        pending = _apps([40, 50])
        FCFS().map_applications(pending, placer, now=0.0)
        assert placer.dropped == []


class TestRandomMapping:
    def _policy(self, seed=0):
        return RandomMapping(StreamFactory(seed).stream("rm"))

    def test_backfills_around_blockers(self):
        placer = FakePlacer(100)
        pending = _apps([90, 90, 50, 40])
        left = self._policy().map_applications(pending, placer, now=0.0)
        placed_nodes = sum(a.nodes for a in placer.placed)
        assert placed_nodes <= 100
        # At least one app always fits (the policy keeps drawing).
        assert placer.placed
        assert len(placer.placed) + len(left) == 4

    def test_order_is_random(self):
        orders = set()
        for seed in range(10):
            placer = FakePlacer(1000)
            pending = _apps([10, 10, 10, 10, 10])
            self._policy(seed).map_applications(pending, placer, now=0.0)
            orders.add(tuple(a.app_id for a in placer.placed))
        assert len(orders) > 1  # not deterministic arrival order

    def test_returned_queue_sorted_by_arrival(self):
        placer = FakePlacer(5)
        pending = _apps([10, 20, 30])
        left = self._policy().map_applications(pending, placer, now=0.0)
        assert [a.app_id for a in left] == [0, 1, 2]

    def test_exhausts_mappable_set(self):
        placer = FakePlacer(30)
        pending = _apps([10, 10, 10, 10])
        left = self._policy().map_applications(pending, placer, now=0.0)
        assert len(placer.placed) == 3
        assert len(left) == 1


class TestSlackBased:
    def test_remaining_slack(self):
        app = _apps([10], deadline_hours=[2.0])[0]
        # baseline 1h, deadline at 2h: slack at t=0 is 1h.
        assert remaining_slack(app, 0.0) == pytest.approx(hours(1.0), rel=1e-3)
        assert remaining_slack(app, hours(1.5)) < 0

    def test_no_deadline_infinite_slack(self):
        app = _apps([10])[0]
        assert remaining_slack(app, 1e12) == float("inf")

    def test_drops_negative_slack(self):
        placer = FakePlacer(100)
        pending = _apps([10, 10], deadline_hours=[1.05, 5.0])
        # At t = 0.5h, app 0 has slack 1.05h - 0.5h - 1h < 0.
        left = SlackBased().map_applications(pending, placer, now=hours(0.5))
        assert [a.app_id for a in placer.dropped] == [0]
        assert [a.app_id for a in placer.placed] == [1]
        assert left == []

    def test_prioritizes_lowest_slack(self):
        placer = FakePlacer(10)  # room for exactly one
        pending = _apps([10, 10], deadline_hours=[10.0, 2.0])
        SlackBased().map_applications(pending, placer, now=0.0)
        assert [a.app_id for a in placer.placed] == [1]  # tighter deadline first

    def test_skips_non_fitting(self):
        placer = FakePlacer(50)
        pending = _apps([60, 40], deadline_hours=[2.0, 10.0])
        left = SlackBased().map_applications(pending, placer, now=0.0)
        assert [a.app_id for a in placer.placed] == [1]
        assert [a.app_id for a in left] == [0]


class TestRegistry:
    def test_names(self):
        assert manager_names() == ["fcfs", "random", "slack"]

    def test_make_manager(self):
        rng = StreamFactory(0).stream("rm")
        for name in manager_names():
            assert make_manager(name, rng).name == name

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_manager("lifo", StreamFactory(0).stream("rm"))
