"""Integration tests: the paper's headline qualitative claims.

Each test reproduces one Sec. V-VII finding at reduced statistical
scale (fewer trials than the paper's 200, same model parameters).
These are the acceptance tests of the reproduction: if one fails, the
simulator no longer tells the paper's story.
"""

import pytest

from repro.core.comparison import compare_techniques
from repro.core.single_app import SingleAppConfig
from repro.units import years


@pytest.fixture(scope="module")
def ten_year():
    return SingleAppConfig(node_mtbf_s=years(10), seed=424242)


@pytest.fixture(scope="module")
def low_mtbf():
    return SingleAppConfig(node_mtbf_s=years(2.5), seed=424242)


def _eff(result, name):
    return next(s for s in result.summaries if s.technique == name).mean_efficiency


class TestFig1Claims:
    """A32 (low memory, low communication), 10-year MTBF."""

    @pytest.fixture(scope="class")
    def results(self, ten_year):
        return {
            f: compare_techniques("A32", f, trials=8, config=ten_year)
            for f in (0.01, 0.12, 0.50, 1.00)
        }

    def test_parallel_recovery_dominates_all_sizes(self, results):
        for fraction, result in results.items():
            assert result.best.technique == "parallel_recovery", fraction

    def test_cr_degrades_fastest(self, results):
        drop = {
            name: _eff(results[0.01], name) - _eff(results[0.50], name)
            for name in ("checkpoint_restart", "multilevel", "parallel_recovery")
        }
        assert drop["checkpoint_restart"] > drop["multilevel"]
        assert drop["checkpoint_restart"] > drop["parallel_recovery"]

    def test_redundancy_between_cr_and_pr_at_scale(self, results):
        result = results[0.50]
        assert (
            _eff(result, "checkpoint_restart")
            < _eff(result, "redundancy_r2")
            < _eff(result, "parallel_recovery")
        )

    def test_redundancy_infeasible_at_full_system(self, results):
        result = results[1.00]
        for name in ("redundancy_r1_5", "redundancy_r2"):
            summary = next(s for s in result.summaries if s.technique == name)
            assert summary.infeasible
            assert summary.mean_efficiency == 0.0

    def test_efficiency_decreases_with_size(self, results):
        for name in ("checkpoint_restart", "multilevel", "parallel_recovery"):
            effs = [_eff(results[f], name) for f in (0.01, 0.12, 0.50)]
            assert effs[0] >= effs[1] >= effs[2] - 0.01, name


class TestFig2Claims:
    """D64 (high memory, high communication), 10-year MTBF."""

    @pytest.fixture(scope="class")
    def results(self, ten_year):
        return {
            f: compare_techniques("D64", f, trials=8, config=ten_year)
            for f in (0.03, 0.12, 0.50, 1.00)
        }

    def test_multilevel_optimal_at_small_sizes(self, results):
        assert results[0.03].best.technique == "multilevel"
        assert results[0.12].best.technique == "multilevel"

    def test_crossover_to_parallel_recovery_at_scale(self, results):
        assert results[0.50].best.technique == "parallel_recovery"
        assert results[1.00].best.technique == "parallel_recovery"

    def test_communication_penalizes_pr_and_redundancy(self, ten_year, results):
        """Sec. V: PR and redundancy 'suffer a larger decrease in
        efficiency' on D64 than on A32, relative to CR/ML."""
        a32 = compare_techniques("A32", 0.12, trials=8, config=ten_year)
        d64 = results[0.12]
        for name in ("parallel_recovery", "redundancy_r1_5", "redundancy_r2"):
            penalty = _eff(a32, name) - _eff(d64, name)
            assert penalty > 0.03, name
        for name in ("checkpoint_restart", "multilevel"):
            penalty = _eff(a32, name) - _eff(d64, name)
            assert penalty < 0.05, name

    def test_mu_ceiling_binds_pr(self, results):
        for fraction, result in results.items():
            assert _eff(result, "parallel_recovery") <= 1 / 1.075 + 0.01


class TestFig3Claims:
    """D64 at 2.5-year MTBF: everything degrades faster; CR collapses."""

    @pytest.fixture(scope="class")
    def results(self, low_mtbf):
        return {
            f: compare_techniques("D64", f, trials=8, config=low_mtbf)
            for f in (0.12, 1.00)
        }

    def test_all_lower_than_ten_year(self, ten_year, low_mtbf):
        for name in ("checkpoint_restart", "multilevel"):
            good = _eff(compare_techniques("D64", 0.5, trials=8, config=ten_year), name)
            bad = _eff(compare_techniques("D64", 0.5, trials=8, config=low_mtbf), name)
            assert bad < good, name

    def test_cr_collapses_at_exascale(self, results):
        """'Unable to even complete execution at exascale sizes': CR
        pins at the walltime-cap efficiency floor."""
        cr = _eff(results[1.00], "checkpoint_restart")
        assert cr < 0.10

    def test_pr_still_maintains_efficiency(self, results):
        assert _eff(results[1.00], "parallel_recovery") > 0.85
