"""Smoke tests: the runnable examples must actually run.

The two heavyweight examples (efficiency_study, datacenter_study) are
exercised through their underlying drivers elsewhere; here we execute
the fast ones end-to-end as subprocesses, exactly as a user would.
"""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "Application D64" in out
        assert "best:" in out

    def test_energy_study(self):
        out = _run("energy_study.py")
        assert "parallel_recovery" in out
        assert "vs ideal" in out

    def test_nas_bt_scaling(self):
        out = _run("nas_bt_scaling.py")
        assert "SET_1" in out
        assert "Table I" in out
        assert "parallel_recovery" in out

    def test_execution_timeline(self):
        out = _run("execution_timeline.py")
        for technique in ("checkpoint_restart", "multilevel", "parallel_recovery"):
            assert f"=== {technique} ===" in out
        assert "work" in out and "restart" in out

    def test_all_examples_present_and_syntactically_valid(self):
        expected = {
            "nas_bt_scaling.py",
            "quickstart.py",
            "efficiency_study.py",
            "datacenter_study.py",
            "resilience_selection.py",
            "energy_study.py",
            "execution_timeline.py",
        }
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert expected <= present
        for name in expected:
            source = (EXAMPLES / name).read_text()
            compile(source, name, "exec")  # syntax check only
