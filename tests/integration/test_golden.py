"""Golden-value regression tests.

These pin a handful of end-to-end numbers under fixed seeds.  Unlike
the qualitative paper-claim tests, any behavioural change — to the
kernel's event ordering, the RNG stream discipline, the engine's
rollback arithmetic, or the planners — moves these values and fails
loudly.  Update them only after confirming the change is intentional
(they use loose-enough tolerances to survive floating-point noise but
not logic changes).
"""

import pytest

from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.selection import FixedSelector
from repro.core.single_app import SingleAppConfig, simulate_application
from repro.platform.presets import exascale_system
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rm.fcfs import FCFS
from repro.rng.streams import StreamFactory
from repro.units import years
from repro.workload.patterns import PatternGenerator
from repro.workload.synthetic import make_application


class TestGoldenSingleApp:
    """One trial each, fully deterministic given (seed, trial)."""

    @pytest.fixture(scope="class")
    def system(self):
        return exascale_system()

    def test_checkpoint_restart_trial_zero(self, system):
        app = make_application("C32", nodes=system.fraction_to_nodes(0.25))
        config = SingleAppConfig(node_mtbf_s=years(10), seed=2017)
        stats = simulate_application(app, CheckpointRestart(), system, config, 0)
        assert stats.completed
        assert stats.failures == 10
        assert stats.restarts == 10
        assert stats.efficiency() == pytest.approx(0.838762, abs=2e-4)

    def test_multilevel_trial_zero(self, system):
        app = make_application("C32", nodes=system.fraction_to_nodes(0.25))
        config = SingleAppConfig(node_mtbf_s=years(10), seed=2017)
        stats = simulate_application(app, MultilevelCheckpoint(), system, config, 0)
        assert stats.completed
        assert stats.failures == 10
        assert stats.efficiency() == pytest.approx(0.929293, abs=2e-4)

    def test_parallel_recovery_trial_zero(self, system):
        app = make_application("C32", nodes=system.fraction_to_nodes(0.25))
        config = SingleAppConfig(node_mtbf_s=years(10), seed=2017)
        stats = simulate_application(app, ParallelRecovery(), system, config, 0)
        assert stats.completed
        assert stats.efficiency() == pytest.approx(0.946994, abs=2e-4)

    def test_trial_reproducibility_is_exact(self, system):
        app = make_application("D64", nodes=system.fraction_to_nodes(0.12))
        config = SingleAppConfig(seed=42)
        a = simulate_application(app, CheckpointRestart(), system, config, 5)
        b = simulate_application(app, CheckpointRestart(), system, config, 5)
        assert a.elapsed_s == b.elapsed_s  # bitwise, not approx


class TestGoldenDatacenter:
    def test_pattern_zero_fcfs_pr(self):
        pattern = PatternGenerator(StreamFactory(2017), 120_000).generate(
            0, arrivals=40
        )
        result = run_datacenter(
            pattern,
            FCFS(),
            FixedSelector(ParallelRecovery()),
            exascale_system(),
            DatacenterConfig(seed=2017),
        )
        # Pin the workload identity and the outcome.
        assert len(pattern.fill_apps) == 11
        assert result.failures_injected == 114
        assert result.dropped_pct == pytest.approx(57.5, abs=1e-9)
