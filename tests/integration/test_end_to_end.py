"""End-to-end integration: the Sec. VI/VII datacenter story at reduced
scale, plus cross-layer consistency checks."""

import pytest

from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.selection import FixedSelector, ResilienceSelection
from repro.experiments.stats import SummaryStats
from repro.platform.presets import exascale_system
from repro.resilience.registry import datacenter_techniques, get_technique
from repro.rm.registry import make_manager, manager_names
from repro.rng.streams import StreamFactory
from repro.workload.patterns import PatternBias, PatternGenerator

NODES = 12_000
PATTERNS = 4
ARRIVALS = 30
SEED = 31337


def _patterns(bias=PatternBias.UNBIASED):
    generator = PatternGenerator(StreamFactory(SEED), NODES)
    return [
        generator.generate(i, bias=bias, arrivals=ARRIVALS) for i in range(PATTERNS)
    ]


def _dropped(patterns, rm_name, selector_factory, ideal=False):
    streams = StreamFactory(SEED)
    samples = []
    for pattern in patterns:
        system = exascale_system(NODES)
        manager = make_manager(rm_name, streams.fresh(f"{rm_name}-{pattern.index}"))
        config = DatacenterConfig(ideal=ideal, seed=SEED)
        result = run_datacenter(
            pattern, manager, selector_factory(), system, config
        )
        samples.append(result.dropped_pct)
    return SummaryStats.from_samples(samples)


@pytest.fixture(scope="module")
def unbiased_patterns():
    return _patterns()


class TestSectionVIStory:
    def test_failures_and_overhead_increase_drops(self, unbiased_patterns):
        """Fig. 4's central claim: every technique drops more than the
        Ideal Baseline (averaged over patterns)."""
        ideal = _dropped(
            unbiased_patterns,
            "slack",
            lambda: FixedSelector(get_technique("parallel_recovery")),
            ideal=True,
        )
        for technique in datacenter_techniques():
            real = _dropped(
                unbiased_patterns, "slack", lambda t=technique: FixedSelector(t)
            )
            assert real.mean >= ideal.mean - 2.0, technique.name

    def test_slack_outperforms_fcfs(self, unbiased_patterns):
        def pr():
            return FixedSelector(get_technique("parallel_recovery"))
        fcfs = _dropped(unbiased_patterns, "fcfs", pr)
        slack = _dropped(unbiased_patterns, "slack", pr)
        assert slack.mean < fcfs.mean

    def test_all_rm_technique_combinations_run(self, unbiased_patterns):
        for rm_name in manager_names():
            for technique in datacenter_techniques():
                stats = _dropped(
                    unbiased_patterns[:1], rm_name, lambda t=technique: FixedSelector(t)
                )
                assert 0.0 <= stats.mean <= 100.0


class TestSectionVIIStory:
    def test_selection_competitive_with_parallel_recovery(self, unbiased_patterns):
        """Fig. 5: Resilience Selection provides a (possibly small)
        benefit; at reduced scale we assert it is at least no worse
        than a couple of dropped apps on average."""
        pr = _dropped(
            unbiased_patterns,
            "slack",
            lambda: FixedSelector(get_technique("parallel_recovery")),
        )
        config = DatacenterConfig(seed=SEED)
        sel = _dropped(
            unbiased_patterns,
            "slack",
            lambda: ResilienceSelection(config.node_mtbf_s),
        )
        assert sel.mean <= pr.mean + 3.0

    def test_selection_picks_multiple_techniques_on_high_comm(self):
        """High-communication patterns are where technique optimality
        varies most (Sec. VII).  The ML/PR crossover lives at exascale
        node counts, so this check uses the full machine."""
        full = exascale_system()
        pattern = PatternGenerator(StreamFactory(SEED), full.total_nodes).generate(
            0, bias=PatternBias.HIGH_COMMUNICATION, arrivals=ARRIVALS
        )
        config = DatacenterConfig(seed=SEED)
        selector = ResilienceSelection(config.node_mtbf_s)
        for app in pattern.arriving_apps:
            selector.select(app, full)
        assert len(selector.selection_counts) >= 2

    def test_large_patterns_drop_more(self, unbiased_patterns):
        def pr():
            return FixedSelector(get_technique("parallel_recovery"))
        unbiased = _dropped(unbiased_patterns, "slack", pr)
        large = _dropped(_patterns(bias=PatternBias.LARGE), "slack", pr)
        assert large.mean > unbiased.mean
