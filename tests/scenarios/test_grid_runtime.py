"""Grid runtime tests: the locked technique-selection flip, byte-
identity of priced outputs across every execution path, export
surfaces, and the fleet counter stream."""

import json
from dataclasses import replace

import pytest

from repro.core import execution
from repro.experiments.entry import RequestError, StudyRequest, run_request
from repro.experiments.parallel import ExecutorOptions
from repro.obs import counters as obs_counters
from repro.scenarios import parse_scenario
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.library import load_named
from repro.scenarios.runtime import run_scenario_request


def tiny_grid(objective="cost"):
    """A two-cell priced scenario that runs in well under a second."""
    return parse_scenario(
        {
            "scenario": {"name": "tiny-grid"},
            "failures": {"regime": "poisson", "mtbf_years": 5.0},
            "workload": {
                "study": "scaling",
                "app_type": "A32",
                "fractions": [0.01],
            },
            "techniques": {"names": ["checkpoint_restart", "multilevel"]},
            "run": {"trials": 3},
            "grid": {
                "objective": objective,
                "start_hour": 8.0,
                "price": {
                    "kind": "sinusoidal",
                    "base": 0.12,
                    "amplitude": 0.05,
                    "peak_hour": 18.0,
                },
                "carbon": {"kind": "flat", "level": 400.0},
            },
        }
    )


def request_for(spec, fmt="table"):
    request = compile_scenario(spec).units[0].request
    return replace(request, format=fmt)


def run_text(spec, fmt="table", **options):
    outcome = run_scenario_request(
        request_for(spec, fmt), options=ExecutorOptions(**options)
    )
    return outcome.text


class TestRenderSurfaces:
    def test_table_shows_grid_accounting_block(self):
        text = run_text(tiny_grid())
        assert "Grid accounting" in text
        assert "objective=cost" in text
        assert "best by cost" in text

    def test_csv_gains_grid_columns(self):
        text = run_text(tiny_grid(), "csv")
        header = next(
            line for line in text.splitlines() if not line.startswith("#")
        )
        assert header.endswith(",mean_energy_kwh,mean_cost_usd,mean_carbon_g")
        row = text.splitlines()[-1].split(",")
        assert float(row[-2]) > 0  # priced dollars
        assert float(row[-1]) > 0  # priced grams

    def test_plain_scenario_csv_is_unchanged(self):
        spec = parse_scenario(
            {
                "scenario": {"name": "plain"},
                "failures": {"regime": "poisson", "mtbf_years": 5.0},
                "workload": {
                    "study": "scaling",
                    "app_type": "A32",
                    "fractions": [0.01],
                },
                "techniques": {"names": ["checkpoint_restart"]},
                "run": {"trials": 3},
            }
        )
        assert "mean_cost_usd" not in run_text(spec, "csv")

    def test_json_embeds_the_grid_object(self):
        payload = json.loads(run_text(tiny_grid(), "json"))
        grid = payload["grid"]
        assert grid["objective"] == "cost"
        assert grid["start_hour"] == 8.0
        assert grid["power"] == {"busy_w": 350.0, "idle_w": 120.0}
        assert grid["curves"]["price"]["kind"] == "sinusoidal"
        assert grid["curves"]["carbon"]["kind"] == "flat"
        assert grid["totals"]["cells_accounted"] == 2
        assert grid["totals"]["cost_usd"] > 0
        assert grid["totals"]["carbon_g"] > 0
        for row in payload["results"][0]["cells"]:
            assert row["mean_cost_usd"] > 0
            assert row["mean_energy_kwh"] > 0
        [sel] = grid["selection"]
        assert sel["fraction"] == 0.01
        assert sel["best_efficiency"] in ("checkpoint_restart", "multilevel")

    def test_compiler_notes_the_grid_block(self):
        notes = "\n".join(compile_scenario(tiny_grid()).notes)
        assert "grid accounting" in notes
        assert "objective=cost" in notes


class TestByteIdentity:
    """Acceptance criterion: priced outputs are byte-identical across
    --jobs 1/2, cache cold/warm, fast-path on/off, service-vs-CLI."""

    def test_serial_vs_parallel(self):
        serial = run_text(tiny_grid(), "csv", jobs=1, cache=False)
        parallel = run_text(tiny_grid(), "csv", jobs=2, cache=False)
        assert serial == parallel

    def test_cache_cold_vs_warm(self):
        cold = run_text(tiny_grid(), "csv", cache=True)
        warm = run_text(tiny_grid(), "csv", cache=True)
        assert cold == warm

    def test_fast_path_on_vs_off(self, monkeypatch):
        monkeypatch.setattr(execution, "FAST_PATH_ENABLED", True)
        fast = run_text(tiny_grid(), "csv", cache=False)
        monkeypatch.setattr(execution, "FAST_PATH_ENABLED", False)
        stepped = run_text(tiny_grid(), "csv", cache=False)
        assert fast == stepped

    def test_wire_round_trip_matches_direct_run(self):
        """The service path: the compiled request survives JSON
        serialization and produces the same bytes run_request-side."""
        request = request_for(tiny_grid(), "json")
        wire = json.dumps(request.to_payload())
        revived = StudyRequest.from_payload(json.loads(wire))
        direct = run_scenario_request(
            request, options=ExecutorOptions(cache=False)
        ).text
        via_service = run_request(
            revived, options=ExecutorOptions(cache=False)
        ).text
        assert via_service == direct


class TestGridTraces:
    def test_compiled_trace_scenario_embeds_the_curve(self):
        spec = load_named("grid-trace-tariff")
        request = compile_scenario(spec).units[0].request
        assert request.grid_traces is not None
        traces = json.loads(request.grid_traces)
        assert "price" in traces
        assert "repro-grid-curve" in traces["price"]

    def test_grid_traces_survive_payload_round_trip(self):
        spec = load_named("grid-trace-tariff")
        request = compile_scenario(spec).units[0].request
        revived = StudyRequest.from_payload(
            json.loads(json.dumps(request.to_payload()))
        )
        assert revived.grid_traces == request.grid_traces

    def test_trace_request_requires_embedded_curve(self):
        spec = load_named("grid-trace-tariff")
        request = compile_scenario(spec).units[0].request
        with pytest.raises(RequestError, match="grid_traces"):
            replace(request, grid_traces=None).validate()


class TestCounters:
    def test_grid_counters_accumulate_even_on_cache_hits(self):
        spec = tiny_grid()
        before = obs_counters.snapshot()
        run_text(spec, "csv", cache=True)
        first = obs_counters.delta_since(before)
        mid = obs_counters.snapshot()
        run_text(spec, "csv", cache=True)  # warm: every cell a cache hit
        second = obs_counters.delta_since(mid)
        for key in (
            "grid.cost_microusd",
            "grid.carbon_mg",
            "grid.energy_j",
            "grid.cells_accounted",
        ):
            assert first[key] > 0
            assert second[key] == first[key]
        assert first["grid.cells_accounted"] == 2


class TestFlipLock:
    """The acceptance-criterion flip: under the bundled peak tariff at
    a 0.2-year MTBF, 25% of the machine, redundancy_r2 wins on
    efficiency while multilevel wins on dollars."""

    @pytest.fixture(scope="class")
    def payload(self):
        spec = load_named("grid-peak-flip")
        outcome = run_scenario_request(
            replace(compile_scenario(spec).units[0].request, format="json"),
            options=ExecutorOptions(cache=False),
        )
        return json.loads(outcome.text)

    def test_no_flip_at_small_scale(self, payload):
        [small] = [
            s for s in payload["grid"]["selection"] if s["fraction"] == 0.1
        ]
        assert small["flip"] is False
        assert small["best_efficiency"] == small["best_objective"]

    def test_flip_at_quarter_machine(self, payload):
        [big] = [
            s for s in payload["grid"]["selection"] if s["fraction"] == 0.25
        ]
        assert big["flip"] is True
        assert big["best_efficiency"] == "redundancy_r2"
        assert big["best_objective"] == "multilevel"

    def test_every_cell_accounted(self, payload):
        assert payload["grid"]["totals"]["cells_accounted"] == 6
        assert payload["grid"]["objective"] == "cost"
