"""Acceptance criterion: the bundled fig1 scenario, run through
``repro scenario run``, is byte-identical to ``repro fig1`` for the
same configuration — the paper-exact lowering compiles to the very
figure driver, so seeds, cells, and rendered bytes all coincide."""

import pytest

from repro.cli import main


def stdout_of(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


@pytest.mark.parametrize("fmt", ["csv", "table"])
def test_fig1_scenario_byte_identical_to_fig1(capsys, fmt):
    direct = stdout_of(capsys, ["fig1", "--quick", "--format", fmt])
    scenario = stdout_of(
        capsys, ["scenario", "run", "fig1", "--quick", "--format", fmt]
    )
    assert scenario == direct


def test_fig1_scenario_honours_spec_format_by_default(capsys):
    """Without --format the spec's run.format (table) wins."""
    out = stdout_of(capsys, ["scenario", "run", "fig1", "--quick"])
    assert "Fig. 1" in out


def test_fig1_parity_survives_parallel_execution(capsys):
    direct = stdout_of(capsys, ["fig1", "--quick", "--format", "csv"])
    scenario = stdout_of(
        capsys,
        ["scenario", "run", "fig1", "--quick", "--format", "csv",
         "--jobs", "2", "--no-cache"],
    )
    assert scenario == direct
