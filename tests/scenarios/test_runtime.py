"""Runtime tests: execution, determinism, and provenance stamping."""

import json
import pickle

import pytest

from repro.experiments.entry import StudyRequest, run_request
from repro.experiments.parallel import ExecutorOptions, ResultCache
from repro.scenarios import parse_scenario, spec_sha256
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.runtime import run_scenario_request, scenario_provenance


def tiny(**failures):
    """A one-cell scenario that runs in well under a second."""
    return parse_scenario(
        {
            "scenario": {"name": "tiny", "title": "Tiny"},
            "failures": failures or {"regime": "poisson", "mtbf_years": 5.0},
            "workload": {
                "study": "scaling",
                "app_type": "A32",
                "fractions": [0.01],
            },
            "techniques": {"names": ["checkpoint_restart"]},
            "run": {"trials": 3},
        }
    )


def request_for(spec, fmt="table"):
    from dataclasses import replace

    request = compile_scenario(spec).units[0].request
    return replace(request, format=fmt)


def run_text(spec, fmt="table", **options):
    outcome = run_scenario_request(
        request_for(spec, fmt), options=ExecutorOptions(**options)
    )
    return outcome.text


class TestExecution:
    def test_table_renders(self):
        text = run_text(tiny())
        assert "Scenario tiny" in text
        assert "checkpoint_restart" in text

    def test_deterministic_across_runs(self):
        assert run_text(tiny(), "csv") == run_text(tiny(), "csv")

    def test_serial_vs_parallel_byte_identical(self):
        serial = run_text(tiny(), "csv", jobs=1, cache=False)
        parallel = run_text(tiny(), "csv", jobs=2, cache=False)
        assert serial == parallel

    def test_weibull_regime_runs_and_flags_bypass(self):
        text = run_text(tiny(regime="weibull", shape=1.5))
        assert "analytic model bypassed" in text
        assert "weibull" in text

    def test_sweep_renders_every_axis_value(self):
        spec = parse_scenario(
            {
                "scenario": {"name": "sw"},
                "failures": {"regime": "poisson"},
                "workload": {
                    "study": "scaling",
                    "app_type": "A32",
                    "fractions": [0.01],
                },
                "techniques": {"names": ["checkpoint_restart"]},
                "sweep": {"axis": "mtbf_years", "values": [2.5, 10.0]},
                "run": {"trials": 2},
            }
        )
        text = run_text(spec)
        assert "mtbf_years = 2.5" in text
        assert "mtbf_years = 10" in text

    def test_shape_one_weibull_matches_poisson_bytes(self):
        """The regime plumbing itself must not disturb the stream:
        Weibull(shape=1) renders the same cells as the plain poisson
        run of the same scenario (same seeds, bit-identical gaps)."""
        poisson = run_text(tiny(regime="poisson", mtbf_years=5.0), "csv")
        shape1 = run_text(
            tiny(regime="weibull", shape=1.0, mtbf_years=5.0), "csv"
        )
        # Identical numbers; only the provenance hash (spec) differs.
        strip = lambda t: [  # noqa: E731
            line for line in t.splitlines() if not line.startswith("#")
        ]
        assert strip(poisson) == strip(shape1)


class TestProvenance:
    def test_stamp_fields(self):
        from repro import __version__

        spec = tiny()
        stamp = scenario_provenance(spec)
        assert stamp == {
            "scenario": "tiny",
            "spec_sha256": spec_sha256(spec),
            "version": __version__,
        }

    def test_csv_header_carries_stamp(self):
        spec = tiny()
        text = run_text(spec, "csv")
        first = text.splitlines()[0]
        assert first.startswith("# scenario=tiny")
        assert spec_sha256(spec) in first

    def test_json_carries_stamp_and_bypass(self):
        spec = tiny(regime="lognormal", sigma=1.0, mtbf_years=5.0)
        payload = json.loads(run_text(spec, "json"))
        assert payload["provenance"]["spec_sha256"] == spec_sha256(spec)
        assert payload["analytic_bypass"] is not None

    def test_cache_entries_stamped(self, tmp_path):
        """Every cache entry written by a scenario run must carry the
        scenario name, canonical-spec SHA-256, and package version."""
        from repro import __version__

        cache_dir = tmp_path / "cache"
        spec = tiny()
        run_scenario_request(
            request_for(spec),
            options=ExecutorOptions(cache=True, cache_dir=str(cache_dir)),
        )
        entries = list(cache_dir.glob("*.pkl"))
        assert entries
        for path in entries:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            assert payload["provenance"] == {
                "scenario": "tiny",
                "spec_sha256": spec_sha256(spec),
                "version": __version__,
            }

    def test_cache_round_trip_provenance_reader(self, tmp_path):
        cache = ResultCache(directory=tmp_path / "c", enabled=True)
        stamp = {"scenario": "x", "spec_sha256": "ab" * 32, "version": "1"}
        cache.put("k", 42, provenance=stamp)
        hit, value = cache.get("k")
        assert hit and value == 42
        assert cache.provenance("k") == stamp

    def test_unstamped_entries_stay_valid(self, tmp_path):
        cache = ResultCache(directory=tmp_path / "c", enabled=True)
        cache.put("k", "v")
        assert cache.get("k") == (True, "v")
        assert cache.provenance("k") is None

    def test_cached_rerun_byte_identical(self, tmp_path):
        """A second run served from cache renders the same bytes."""
        options = dict(cache=True, cache_dir=str(tmp_path / "c"))
        first = run_text(tiny(), "csv", **options)
        second = run_text(tiny(), "csv", **options)
        assert first == second


class TestEntryIntegration:
    def test_scenario_experiment_via_run_request(self):
        spec = tiny()
        request = compile_scenario(spec, quick=True).units[0].request
        outcome = run_request(request, options=ExecutorOptions())
        assert "Scenario tiny" in outcome.text

    def test_scenario_payload_round_trip(self):
        """Scenario requests survive to_payload/from_payload — that is
        what carries them through the service's job store."""
        request = compile_scenario(tiny()).units[0].request
        again = StudyRequest.from_payload(request.to_payload())
        assert again == request

    def test_scenario_requires_spec(self):
        from repro.experiments.entry import RequestError

        with pytest.raises(RequestError):
            StudyRequest(experiment="scenario").validate()

    def test_non_scenario_rejects_scenario_fields(self):
        from repro.experiments.entry import RequestError

        with pytest.raises(RequestError):
            StudyRequest(experiment="fig1", scenario="{}").validate()
