"""Schema tests for the ``[grid]`` block: strict validation with
field-path-qualified errors, and provenance digest coverage."""

import pytest

from repro.scenarios import ScenarioError, parse_scenario, spec_sha256
from repro.scenarios.spec import spec_to_dict


def minimal(**overrides):
    """A valid scaling scenario with a cost-objective grid block."""
    doc = {
        "scenario": {"name": "g"},
        "failures": {"regime": "poisson"},
        "workload": {
            "study": "scaling",
            "app_type": "A32",
            "fractions": [0.01],
        },
        "techniques": {"names": ["checkpoint_restart"]},
        "run": {"trials": 5},
        "grid": {
            "objective": "cost",
            "start_hour": 8.0,
            "price": {"kind": "flat", "level": 0.12},
        },
    }
    doc.update(overrides)
    return doc


def err(doc):
    with pytest.raises(ScenarioError) as excinfo:
        parse_scenario(doc)
    return excinfo.value


class TestAccepts:
    def test_minimal_grid(self):
        spec = parse_scenario(minimal())
        assert spec.grid is not None
        assert spec.grid.objective == "cost"
        assert spec.grid.start_hour == 8.0
        assert spec.grid.price.kind == "flat"
        assert spec.grid.carbon is None

    def test_defaults(self):
        doc = minimal()
        doc["grid"] = {"carbon": {"kind": "flat", "level": 400.0}}
        spec = parse_scenario(doc)
        assert spec.grid.objective == "efficiency"
        assert spec.grid.start_hour == 0.0
        assert spec.grid.busy_w is None
        assert spec.grid.idle_w is None

    def test_all_curve_kinds(self):
        doc = minimal()
        doc["grid"]["price"] = {
            "kind": "piecewise",
            "hours": [0.0, 7.0, 21.0],
            "levels": [0.08, 0.24, 0.12],
        }
        doc["grid"]["carbon"] = {
            "kind": "sinusoidal",
            "base": 420.0,
            "amplitude": 160.0,
            "peak_hour": 20.0,
        }
        spec = parse_scenario(doc)
        assert spec.grid.price.kind == "piecewise"
        assert spec.grid.price.period_hours == 24.0
        assert spec.grid.carbon.kind == "sinusoidal"

    def test_grid_round_trips_through_spec_to_dict(self):
        spec = parse_scenario(minimal())
        again = parse_scenario(spec_to_dict(spec))
        assert again.grid == spec.grid

    def test_grid_enters_the_provenance_digest(self):
        base = parse_scenario(minimal())
        hotter = minimal()
        hotter["grid"]["price"]["level"] = 0.13
        assert spec_sha256(base) != spec_sha256(parse_scenario(hotter))

    def test_absent_grid_is_none(self):
        doc = minimal()
        del doc["grid"]
        assert parse_scenario(doc).grid is None


class TestRejects:
    def test_unknown_grid_key(self):
        doc = minimal()
        doc["grid"]["tariff"] = "x"
        assert "grid" in err(doc).path

    def test_unknown_objective(self):
        doc = minimal()
        doc["grid"]["objective"] = "joules"
        assert err(doc).path == "grid.objective"

    def test_cost_objective_requires_price_curve(self):
        doc = minimal()
        doc["grid"] = {"objective": "cost", "carbon": {"kind": "flat", "level": 1.0}}
        error = err(doc)
        assert error.path == "grid.objective"
        assert "price" in error.reason

    def test_carbon_objective_requires_carbon_curve(self):
        doc = minimal()
        doc["grid"] = {"objective": "carbon", "price": {"kind": "flat", "level": 1.0}}
        assert err(doc).path == "grid.objective"

    def test_at_least_one_curve_required(self):
        doc = minimal()
        doc["grid"] = {"objective": "efficiency"}
        assert "curve table" in err(doc).reason

    def test_start_hour_range(self):
        doc = minimal()
        doc["grid"]["start_hour"] = 24.0
        assert err(doc).path == "grid.start_hour"

    def test_idle_above_busy(self):
        doc = minimal()
        doc["grid"]["busy_w"] = 200.0
        doc["grid"]["idle_w"] = 300.0
        assert err(doc).path == "grid.idle_w"

    def test_curve_param_invalid_for_kind(self):
        doc = minimal()
        doc["grid"]["price"] = {"kind": "flat", "level": 0.1, "base": 0.2}
        error = err(doc)
        assert error.path == "grid.price.base"
        assert "not valid for curve kind" in error.reason

    def test_piecewise_must_start_at_zero(self):
        doc = minimal()
        doc["grid"]["price"] = {
            "kind": "piecewise",
            "hours": [1.0, 2.0],
            "levels": [0.1, 0.2],
        }
        assert err(doc).path == "grid.price.hours"

    def test_piecewise_levels_pair_with_hours(self):
        doc = minimal()
        doc["grid"]["price"] = {
            "kind": "piecewise",
            "hours": [0.0, 2.0],
            "levels": [0.1],
        }
        assert err(doc).path == "grid.price.levels"

    def test_trace_kind_requires_trace_file(self):
        doc = minimal()
        doc["grid"]["price"] = {"kind": "trace"}
        assert err(doc).path == "grid.price.trace_file"

    def test_grid_requires_scaling_study(self):
        doc = minimal(workload={"study": "datacenter", "mode": "techniques"})
        del doc["techniques"]
        del doc["run"]
        error = err(doc)
        assert "scaling" in error.reason

    def test_grid_rejects_trace_failure_replay(self):
        doc = minimal(
            failures={"regime": "trace", "trace_file": "traces/x.jsonl"}
        )
        error = err(doc)
        assert "trace" in error.reason
