"""Compiler tests: paper-exact lowering vs the generic runtime."""

import json

import pytest

from repro.scenarios import (
    ScenarioError,
    list_scenarios,
    load_named,
    parse_scenario,
    spec_sha256,
)
from repro.scenarios.compiler import compile_scenario, scenario_analytic_reason


def scaling(**overrides):
    doc = {
        "scenario": {"name": "t"},
        "failures": {"regime": "poisson"},
        "workload": {
            "study": "scaling",
            "app_type": "A32",
            "fractions": [0.01],
        },
        "techniques": {"names": ["checkpoint_restart"]},
        "run": {"trials": 5},
    }
    doc.update(overrides)
    return parse_scenario(doc)


class TestPaperExactLowering:
    """The 5 bundled paper scenarios must lower to the figure drivers
    themselves — that is what guarantees byte parity with `repro figN`."""

    @pytest.mark.parametrize(
        "name, experiment",
        [
            ("fig1", "fig1"),
            ("fig2", "fig2"),
            ("fig3", "fig3"),
            ("fig4", "fig4"),
            ("fig5", "fig5"),
        ],
    )
    def test_bundled_figs_lower_to_figure_drivers(self, name, experiment):
        campaign = compile_scenario(load_named(name))
        assert len(campaign.units) == 1
        assert campaign.units[0].request.experiment == experiment
        assert campaign.analytic_bypass is None
        assert any(f"lowered to {experiment}" in n for n in campaign.notes)

    def test_deviating_mtbf_goes_generic(self):
        spec = parse_scenario(
            {
                "scenario": {"name": "t"},
                "failures": {"regime": "poisson", "mtbf_years": 5.0},
                "workload": {"study": "scaling", "app_type": "A32"},
            }
        )
        campaign = compile_scenario(spec)
        assert campaign.units[0].request.experiment == "scenario"

    def test_nondefault_techniques_go_generic(self):
        campaign = compile_scenario(
            scaling(
                failures={"regime": "poisson", "mtbf_years": 10.0},
            )
        )
        assert campaign.units[0].request.experiment == "scenario"


class TestGenericLowering:
    def test_request_is_self_contained(self):
        campaign = compile_scenario(scaling())
        request = campaign.units[0].request
        assert request.experiment == "scenario"
        assert request.scenario is not None
        payload = json.loads(request.scenario)
        assert payload["scenario"]["name"] == "t"
        assert request.trace is None

    def test_sha_matches_spec(self):
        spec = scaling()
        campaign = compile_scenario(spec)
        assert campaign.sha256 == spec_sha256(spec)

    def test_quick_propagates(self):
        assert compile_scenario(scaling(), quick=True).units[0].request.quick
        assert not compile_scenario(scaling()).units[0].request.quick

    def test_spec_format_carried(self):
        spec = scaling(run={"trials": 5, "format": "csv"})
        assert compile_scenario(spec).units[0].request.format == "csv"


class TestAnalyticBypass:
    def test_poisson_has_no_reason(self):
        assert scenario_analytic_reason(scaling()) is None

    def test_weibull_reason(self):
        spec = scaling(failures={"regime": "weibull", "shape": 1.5})
        reason = scenario_analytic_reason(spec)
        assert reason is not None and "weibull" in reason

    def test_lognormal_reason(self):
        spec = scaling(failures={"regime": "lognormal", "sigma": 1.0})
        reason = scenario_analytic_reason(spec)
        assert reason is not None and "lognormal" in reason

    def test_burst_reason(self):
        spec = scaling(
            failures={"regime": "poisson", "burst_mean_width": 4.0}
        )
        reason = scenario_analytic_reason(spec)
        assert reason is not None and "burst" in reason

    def test_burst_sweep_reason(self):
        spec = scaling(
            sweep={"axis": "burst_mean_width", "values": [1.0, 4.0]}
        )
        assert scenario_analytic_reason(spec) is not None

    def test_bypass_lands_in_campaign_notes(self):
        spec = scaling(failures={"regime": "weibull", "shape": 1.5})
        campaign = compile_scenario(spec)
        assert campaign.analytic_bypass is not None
        assert any("bypass" in n for n in campaign.notes)


class TestTraceCompilation:
    def test_bundled_trace_embedded(self):
        campaign = compile_scenario(load_named("trace-replay"))
        request = campaign.units[0].request
        assert request.experiment == "scenario"
        assert request.trace is not None
        assert "repro-failure-trace" in request.trace.splitlines()[0]
        assert request.trials == 1
        assert campaign.analytic_bypass is not None

    def test_missing_trace_file_is_schema_error(self, tmp_path):
        spec = parse_scenario(
            {
                "scenario": {"name": "t"},
                "failures": {"regime": "trace", "trace_file": "absent.jsonl"},
                "workload": {
                    "study": "scaling",
                    "app_type": "A32",
                    "fractions": [0.01],
                },
            },
            base_dir=str(tmp_path),
        )
        with pytest.raises(ScenarioError, match="failures.trace_file"):
            compile_scenario(spec)


class TestBundledLibrary:
    def test_every_bundled_scenario_compiles(self):
        names = list_scenarios()
        assert len(names) >= 9
        for name in names:
            campaign = compile_scenario(load_named(name))
            assert campaign.units, name

    def test_required_studies_present(self):
        names = set(list_scenarios())
        assert {"fig1", "fig2", "fig3", "fig4", "fig5"} <= names
        assert {
            "weibull-aging",
            "lognormal-heavy-tail",
            "burst-storm",
            "trace-replay",
            "heterogeneous-mtbf",
        } <= names

    def test_non_poisson_bundles_declare_bypass(self):
        for name in ("weibull-aging", "lognormal-heavy-tail",
                     "burst-storm", "trace-replay"):
            campaign = compile_scenario(load_named(name))
            assert campaign.analytic_bypass is not None, name
