"""Schema tests: strict validation with field-path-qualified errors."""

import json

import pytest

from repro.scenarios import (
    ScenarioError,
    canonical_json,
    parse_scenario,
    scenario_from_json,
    spec_sha256,
)
from repro.scenarios.spec import spec_to_dict


def minimal(**overrides):
    """A minimal valid scaling-scenario document."""
    doc = {
        "scenario": {"name": "t"},
        "failures": {"regime": "poisson"},
        "workload": {
            "study": "scaling",
            "app_type": "A32",
            "fractions": [0.01],
        },
        "techniques": {"names": ["checkpoint_restart"]},
        "run": {"trials": 5},
    }
    doc.update(overrides)
    return doc


def err(doc):
    with pytest.raises(ScenarioError) as excinfo:
        parse_scenario(doc)
    return excinfo.value


class TestAccepts:
    def test_minimal_scaling(self):
        spec = parse_scenario(minimal())
        assert spec.scenario.name == "t"
        assert spec.failures.regime == "poisson"
        assert spec.failures.mtbf_years == 10.0
        assert spec.run.seed == 2017
        assert spec.run.format == "table"

    def test_weibull_with_shape(self):
        spec = parse_scenario(
            minimal(failures={"regime": "weibull", "shape": 1.5})
        )
        assert spec.failures.shape == 1.5

    def test_sweep_supplies_the_shape(self):
        spec = parse_scenario(
            minimal(
                failures={"regime": "weibull"},
                sweep={"axis": "shape", "values": [0.7, 1.0, 1.5]},
            )
        )
        assert spec.sweep.axis == "shape"
        assert spec.failures.shape is None

    def test_datacenter_minimal(self):
        spec = parse_scenario(
            {
                "scenario": {"name": "dc"},
                "failures": {"regime": "poisson"},
                "workload": {"study": "datacenter", "mode": "selection"},
            }
        )
        assert spec.workload.mode == "selection"


class TestRejects:
    def test_unknown_top_level_section(self):
        assert "field 'extra'" in str(err(minimal(extra={})))

    def test_unknown_key_in_section(self):
        exc = err(minimal(platform={"preset": "exascale", "nodez": 3}))
        assert "field 'platform.nodez'" in str(exc)

    def test_wrong_type_reports_path(self):
        exc = err(minimal(failures={"regime": "poisson", "mtbf_years": "x"}))
        assert "failures.mtbf_years" in str(exc)

    def test_bool_is_not_a_number(self):
        exc = err(minimal(failures={"regime": "poisson", "mtbf_years": True}))
        assert "failures.mtbf_years" in str(exc)

    def test_unknown_regime(self):
        exc = err(minimal(failures={"regime": "gamma"}))
        assert "failures.regime" in str(exc)

    def test_missing_scenario_name(self):
        exc = err(minimal(scenario={}))
        assert "scenario.name" in str(exc)

    def test_bad_scenario_name(self):
        exc = err(minimal(scenario={"name": "has spaces"}))
        assert "scenario.name" in str(exc)

    def test_weibull_needs_shape(self):
        exc = err(minimal(failures={"regime": "weibull"}))
        assert "failures.shape" in str(exc)

    def test_lognormal_needs_sigma(self):
        exc = err(minimal(failures={"regime": "lognormal"}))
        assert "failures.sigma" in str(exc)

    def test_trace_needs_trace_file(self):
        exc = err(minimal(failures={"regime": "trace"}))
        assert "failures.trace_file" in str(exc)

    def test_trace_forbids_ensembles(self):
        exc = err(
            minimal(
                failures={"regime": "trace", "trace_file": "t.jsonl"},
                run={"trials": 5},
            )
        )
        assert "run.trials" in str(exc)

    def test_sweep_axis_must_match_regime(self):
        exc = err(
            minimal(sweep={"axis": "sigma", "values": [0.5, 1.0]})
        )
        assert "sweep.axis" in str(exc)

    def test_sweep_axis_cannot_also_be_fixed(self):
        exc = err(
            minimal(
                failures={"regime": "poisson", "mtbf_years": 5.0},
                sweep={"axis": "mtbf_years", "values": [1.0, 10.0]},
            )
        )
        assert "sweep.axis" in str(exc)

    def test_unknown_technique(self):
        exc = err(minimal(techniques={"names": ["raid"]}))
        assert "techniques.names" in str(exc)

    def test_fraction_out_of_range(self):
        exc = err(
            minimal(
                workload={
                    "study": "scaling",
                    "app_type": "A32",
                    "fractions": [1.5],
                }
            )
        )
        assert "workload.fractions" in str(exc)


class TestDatacenterRestrictions:
    def base(self, **failures):
        doc = {
            "scenario": {"name": "dc"},
            "failures": {"regime": "poisson", **failures},
            "workload": {"study": "datacenter", "mode": "techniques"},
        }
        return doc

    def test_non_poisson_rejected(self):
        doc = self.base(regime="weibull", shape=1.5)
        exc = err(doc)
        assert "datacenter" in str(exc)

    def test_burst_rejected(self):
        exc = err(self.base(burst_mean_width=4.0))
        assert "datacenter" in str(exc)

    def test_nondefault_mtbf_rejected(self):
        exc = err(self.base(mtbf_years=2.5))
        assert "datacenter" in str(exc)

    def test_trials_rejected_patterns_suggested(self):
        doc = self.base()
        doc["run"] = {"trials": 10}
        exc = err(doc)
        assert "workload.patterns" in str(exc)

    def test_sweep_rejected(self):
        doc = self.base()
        doc["sweep"] = {"axis": "mtbf_years", "values": [1.0]}
        exc = err(doc)
        assert "scaling" in str(exc)


class TestCanonicalIdentity:
    def test_sha_ignores_document_key_order(self):
        a = minimal()
        b = {k: a[k] for k in reversed(list(a))}
        assert spec_sha256(parse_scenario(a)) == spec_sha256(parse_scenario(b))

    def test_sha_sensitive_to_values(self):
        a = spec_sha256(parse_scenario(minimal()))
        b = spec_sha256(
            parse_scenario(minimal(failures={"regime": "poisson", "mtbf_years": 2.5}))
        )
        assert a != b

    def test_round_trip_through_canonical_json(self):
        spec = parse_scenario(
            minimal(failures={"regime": "weibull", "shape": 1.5})
        )
        again = scenario_from_json(canonical_json(spec))
        assert spec_to_dict(again) == spec_to_dict(spec)
        assert spec_sha256(again) == spec_sha256(spec)

    def test_canonical_json_is_compact_and_sorted(self):
        text = canonical_json(parse_scenario(minimal()))
        data = json.loads(text)
        assert list(data) == sorted(data)
        assert ": " not in text


class TestAdaptiveSection:
    def test_defaults(self):
        spec = parse_scenario(minimal(adaptive={}))
        assert spec.adaptive.max_trials == 200
        assert spec.adaptive.batch_size == 25
        assert spec.adaptive.ci_rel_threshold == 0.02
        assert spec.adaptive.refine_depth == 1

    def test_overrides_round_trip(self):
        doc = minimal(
            adaptive={
                "max_trials": 40,
                "batch_size": 8,
                "ci_rel_threshold": 0.05,
                "refine_depth": 2,
            }
        )
        spec = parse_scenario(doc)
        again = scenario_from_json(canonical_json(spec))
        assert spec_to_dict(again)["adaptive"] == doc["adaptive"]
        assert spec_sha256(again) == spec_sha256(spec)

    def test_absent_section_stays_none_and_off_the_wire(self):
        spec = parse_scenario(minimal())
        assert spec.adaptive is None
        assert "adaptive" not in spec_to_dict(spec)

    def test_adaptive_changes_the_sha(self):
        plain = spec_sha256(parse_scenario(minimal()))
        adaptive = spec_sha256(parse_scenario(minimal(adaptive={})))
        assert plain != adaptive

    @pytest.mark.parametrize(
        "section, path",
        [
            ({"max_trials": 1}, "adaptive.max_trials"),
            ({"batch_size": 1}, "adaptive.batch_size"),
            ({"max_trials": 10, "batch_size": 11}, "adaptive.batch_size"),
            ({"ci_rel_threshold": 0.0}, "adaptive.ci_rel_threshold"),
            ({"ci_rel_threshold": 1.0}, "adaptive.ci_rel_threshold"),
            ({"refine_depth": -1}, "adaptive.refine_depth"),
            ({"bogus": 3}, "adaptive.bogus"),
        ],
    )
    def test_bad_values_name_the_field(self, section, path):
        assert path in str(err(minimal(adaptive=section)))

    def test_trace_replay_rejected(self):
        doc = minimal(
            failures={"regime": "trace", "trace_file": "x.jsonl"},
            adaptive={},
        )
        doc.pop("run")
        exc = err(doc)
        assert "adaptive.max_trials" in str(exc)
        assert "trace replay" in str(exc)

    def test_datacenter_rejected(self):
        exc = err(
            {
                "scenario": {"name": "dc"},
                "failures": {"regime": "poisson"},
                "workload": {"study": "datacenter", "mode": "techniques"},
                "adaptive": {},
            }
        )
        assert "adaptive.max_trials" in str(exc)
        assert "scaling" in str(exc)
