"""Unit tests for the energy accounting extension."""

import pytest

from repro.core.single_app import SingleAppConfig, simulate_application
from repro.energy.model import PowerModel, energy_of, energy_overhead_ratio
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.units import years
from repro.workload.synthetic import make_application


@pytest.fixture
def failing_config():
    # Unreliable machine so rework is substantial.
    return SingleAppConfig(node_mtbf_s=years(0.2), seed=5)


class TestPowerModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(busy_w=0.0)
        with pytest.raises(ValueError):
            PowerModel(busy_w=100.0, idle_w=200.0)
        with pytest.raises(ValueError):
            PowerModel(busy_w=100.0, idle_w=-1.0)


class TestEnergyAccounting:
    def test_breakdown_sums(self, small_system, small_app, failing_config):
        stats = simulate_application(
            small_app, CheckpointRestart(), small_system, failing_config
        )
        breakdown = energy_of(stats)
        assert breakdown.total_j == pytest.approx(
            breakdown.work_j
            + breakdown.rework_j
            + breakdown.checkpoint_j
            + breakdown.restart_j
        )
        assert breakdown.work_j > 0

    def test_failure_free_energy_is_work_plus_checkpoints(self, small_system, small_app):
        config = SingleAppConfig(node_mtbf_s=years(1000), seed=5)
        stats = simulate_application(
            small_app, CheckpointRestart(), small_system, config
        )
        if stats.failures == 0:
            breakdown = energy_of(stats)
            assert breakdown.rework_j == 0.0
            assert breakdown.restart_j == 0.0

    def test_parallel_recovery_saves_recovery_energy(
        self, small_system, failing_config
    ):
        """Sec. II-D's qualitative claim: message-logging recovery lets
        the rest of the machine idle, so its rework joules per rework
        second are far below every-node re-execution."""
        app = make_application("A32", nodes=120, time_steps=120)
        pr_stats = simulate_application(
            app, ParallelRecovery(), small_system, failing_config
        )
        power = PowerModel()
        idling = energy_of(pr_stats, power, recovery_idles_rest=True)
        busy = energy_of(pr_stats, power, recovery_idles_rest=False)
        if pr_stats.rework_time_s > 0:
            assert idling.rework_j < busy.rework_j
            # Per-node power during recovery approaches idle power.
            per_node_w = idling.rework_j / (
                pr_stats.rework_time_s * pr_stats.plan.nodes_required
            )
            assert per_node_w < power.busy_w * 0.5

    def test_default_idling_follows_recovery_speedup(
        self, small_system, failing_config
    ):
        app = make_application("A32", nodes=120, time_steps=120)
        pr = simulate_application(app, ParallelRecovery(), small_system, failing_config)
        cr = simulate_application(
            app, CheckpointRestart(), small_system, failing_config
        )
        power = PowerModel()
        assert energy_of(pr, power) == energy_of(pr, power, recovery_idles_rest=True)
        assert energy_of(cr, power) == energy_of(cr, power, recovery_idles_rest=False)

    def test_overhead_ratio_at_least_one(self, small_system, small_app, failing_config):
        stats = simulate_application(
            small_app, CheckpointRestart(), small_system, failing_config
        )
        assert energy_overhead_ratio(stats) >= 1.0
