"""Edge cases of the energy model: the recovery-cohort clamp, the
degenerate power models, and the overhead-ratio guard rails."""

from types import SimpleNamespace

import pytest

from repro.energy.model import (
    EnergyBreakdown,
    PowerModel,
    energy_of,
    energy_overhead_ratio,
)


def fake_stats(
    nodes=100,
    recovery_speedup=1.0,
    work_s=1000.0,
    rework_s=100.0,
    checkpoint_s=50.0,
    restart_s=10.0,
    effective_work_s=1000.0,
):
    """A stats/plan pair with exactly controlled activity seconds
    (energy accounting only reads attributes, never simulates)."""
    plan = SimpleNamespace(
        nodes_required=nodes,
        recovery_speedup=recovery_speedup,
        effective_work_s=effective_work_s,
        app=SimpleNamespace(app_id="fake-app"),
    )
    return SimpleNamespace(
        plan=plan,
        work_time_s=work_s,
        rework_time_s=rework_s,
        checkpoint_time_s=checkpoint_s,
        restart_time_s=restart_s,
    )


class TestRecoveryCohort:
    def test_speedup_exactly_one_charges_every_node(self):
        stats = fake_stats(recovery_speedup=1.0)
        breakdown = energy_of(stats, PowerModel(busy_w=100.0, idle_w=10.0))
        # Default idling rule: speedup 1.0 means no parallel recovery,
        # so rework re-executes on all 100 nodes at busy power.
        assert breakdown.rework_j == pytest.approx(100.0 * 100 * 100.0)

    def test_speedup_above_node_count_clamps_to_the_allocation(self):
        stats = fake_stats(nodes=4, recovery_speedup=64.0)
        power = PowerModel(busy_w=100.0, idle_w=10.0)
        breakdown = energy_of(stats, power)
        # busy_nodes clamps at 4: no negative idle cohort, and the
        # whole allocation burns busy power during rework.
        assert breakdown.rework_j == pytest.approx(100.0 * 4 * 100.0)

    def test_fractional_cohort_splits_busy_and_idle(self):
        stats = fake_stats(nodes=10, recovery_speedup=4.0)
        power = PowerModel(busy_w=100.0, idle_w=10.0)
        breakdown = energy_of(stats, power)
        assert breakdown.rework_j == pytest.approx(
            100.0 * (4 * 100.0 + 6 * 10.0)
        )

    def test_explicit_override_beats_the_speedup_default(self):
        stats = fake_stats(nodes=10, recovery_speedup=4.0)
        power = PowerModel(busy_w=100.0, idle_w=10.0)
        busy = energy_of(stats, power, recovery_idles_rest=False)
        assert busy.rework_j == pytest.approx(100.0 * 10 * 100.0)


class TestPowerModelEdges:
    def test_idle_equal_to_busy_is_allowed(self):
        power = PowerModel(busy_w=200.0, idle_w=200.0)
        stats = fake_stats(nodes=10, recovery_speedup=4.0)
        breakdown = energy_of(stats, power)
        # With no busy/idle contrast, cohort idling changes nothing.
        assert breakdown.rework_j == pytest.approx(100.0 * 10 * 200.0)

    def test_zero_idle_power_is_allowed(self):
        power = PowerModel(busy_w=200.0, idle_w=0.0)
        stats = fake_stats(nodes=10, recovery_speedup=4.0)
        breakdown = energy_of(stats, power)
        assert breakdown.rework_j == pytest.approx(100.0 * 4 * 200.0)

    def test_zero_activity_yields_zero_energy(self):
        stats = fake_stats(
            work_s=0.0, rework_s=0.0, checkpoint_s=0.0, restart_s=0.0
        )
        assert energy_of(stats).total_j == 0.0


class TestOverheadRatio:
    def test_zero_work_plan_is_an_error_not_a_nan(self):
        stats = fake_stats(effective_work_s=0.0)
        breakdown = EnergyBreakdown(1.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError, match="no effective work"):
            energy_overhead_ratio(stats, breakdown=breakdown)

    def test_precomputed_breakdown_matches_recomputation(self):
        stats = fake_stats()
        power = PowerModel(busy_w=100.0, idle_w=10.0)
        precomputed = energy_of(stats, power)
        assert energy_overhead_ratio(
            stats, power, breakdown=precomputed
        ) == pytest.approx(energy_overhead_ratio(stats, power))

    def test_exact_ratio_arithmetic(self):
        stats = fake_stats(
            nodes=10,
            recovery_speedup=1.0,
            work_s=1000.0,
            rework_s=500.0,
            checkpoint_s=0.0,
            restart_s=0.0,
            effective_work_s=1000.0,
        )
        power = PowerModel(busy_w=100.0, idle_w=10.0)
        # total = (1000 + 500) busy node-seconds vs ideal 1000.
        assert energy_overhead_ratio(stats, power) == pytest.approx(1.5)
