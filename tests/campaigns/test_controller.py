"""Unit tests for the adaptive campaign controller's pure pieces:
config parsing, batch-chain planning, artifact parsing, and the shared
winning-technique renderer the bench uses for byte-identity checks."""

import json

import pytest

from repro.campaigns.controller import (
    AdaptiveConfig,
    best_map_from_results,
    parse_cell_result,
    render_best_technique_table,
    technique_tag,
)
from repro.scenarios.schema import parse_scenario
from repro.service.jobs import ValidationError


class TestAdaptiveConfig:
    def test_defaults_mirror_the_schema(self):
        cfg = AdaptiveConfig()
        assert (cfg.max_trials, cfg.batch_size) == (200, 25)
        assert (cfg.ci_rel_threshold, cfg.refine_depth) == (0.02, 1)

    def test_from_spec_none_is_defaults(self):
        assert AdaptiveConfig.from_spec(None) == AdaptiveConfig()

    def test_from_spec_carries_the_section(self):
        spec = parse_scenario(
            {
                "scenario": {"name": "t"},
                "workload": {
                    "study": "scaling",
                    "app_type": "A32",
                    "fractions": [0.01],
                },
                "adaptive": {"max_trials": 30, "batch_size": 10},
            }
        )
        cfg = AdaptiveConfig.from_spec(spec.adaptive)
        assert cfg.max_trials == 30
        assert cfg.batch_size == 10

    def test_from_payload_overrides_defaults_fieldwise(self):
        defaults = AdaptiveConfig(max_trials=40, batch_size=8)
        cfg = AdaptiveConfig.from_payload({"batch_size": 4}, defaults)
        assert cfg.max_trials == 40
        assert cfg.batch_size == 4

    @pytest.mark.parametrize(
        "payload",
        [
            {"max_trials": 1},
            {"max_trials": True},
            {"max_trials": "many"},
            {"batch_size": 1},
            {"max_trials": 10, "batch_size": 11},
            {"ci_rel_threshold": 0.0},
            {"ci_rel_threshold": 1.0},
            {"ci_rel_threshold": False},
            {"refine_depth": -1},
            {"bogus": 3},
            "not-an-object",
        ],
    )
    def test_bad_payloads_raise_validation_error(self, payload):
        with pytest.raises(ValidationError):
            AdaptiveConfig.from_payload(payload)

    def test_payload_round_trip(self):
        cfg = AdaptiveConfig(
            max_trials=12, batch_size=5, ci_rel_threshold=0.1, refine_depth=2
        )
        assert AdaptiveConfig.from_payload(cfg.to_payload()) == cfg

    def test_batch_sizes_cover_max_trials_exactly(self):
        assert AdaptiveConfig(max_trials=12, batch_size=5).batch_sizes() == [
            5,
            5,
            2,
        ]
        assert AdaptiveConfig(max_trials=10, batch_size=5).batch_sizes() == [
            5,
            5,
        ]
        assert sum(AdaptiveConfig().batch_sizes()) == 200


class TestParseCellResult:
    def artifact(self, **cell):
        base = {
            "app_type": "A32",
            "fraction": 0.05,
            "technique": "checkpoint_restart",
            "mean_efficiency": 0.8,
            "std_efficiency": 0.01,
            "trials": 4,
            "infeasible": False,
        }
        base.update(cell)
        return json.dumps(
            {
                "results": [
                    {"axis": None, "axis_value": None, "cells": [base]}
                ]
            }
        )

    def test_extracts_the_tuple(self):
        n, mean, std, infeasible = parse_cell_result(self.artifact())
        assert (n, mean, std, infeasible) == (4, 0.8, 0.01, False)

    def test_infeasible_flag(self):
        assert parse_cell_result(self.artifact(infeasible=True))[3] is True

    def test_garbage_fails_loudly(self):
        with pytest.raises((ValueError, KeyError)):
            parse_cell_result("not json at all")


class TestBestTechniqueTable:
    def test_tags(self):
        assert technique_tag("checkpoint_restart") == "CR"
        assert technique_tag("multilevel") == "ML"
        assert technique_tag("parallel_recovery") == "PR"
        assert technique_tag("whatever") == "WH"

    def test_best_map_prefers_highest_feasible_mean(self):
        payload = {
            "results": [
                {
                    "axis": None,
                    "axis_value": None,
                    "cells": [
                        {
                            "fraction": 0.1,
                            "technique": "checkpoint_restart",
                            "mean_efficiency": 0.7,
                            "infeasible": False,
                        },
                        {
                            "fraction": 0.1,
                            "technique": "multilevel",
                            "mean_efficiency": 0.9,
                            "infeasible": False,
                        },
                        {
                            "fraction": 0.9,
                            "technique": "checkpoint_restart",
                            "mean_efficiency": 0.99,
                            "infeasible": True,
                        },
                        {
                            "fraction": 0.9,
                            "technique": "multilevel",
                            "mean_efficiency": 0.2,
                            "infeasible": True,
                        },
                    ],
                }
            ]
        }
        best = best_map_from_results(payload)
        assert best[(None, 0.1)] == "multilevel"
        # Infeasible everywhere: no winner, never "highest anyway".
        assert best[(None, 0.9)] is None

    def test_exact_tie_goes_to_first_in_order(self):
        payload = {
            "results": [
                {
                    "axis": None,
                    "axis_value": None,
                    "cells": [
                        {
                            "fraction": 0.5,
                            "technique": "checkpoint_restart",
                            "mean_efficiency": 0.5,
                            "infeasible": False,
                        },
                        {
                            "fraction": 0.5,
                            "technique": "multilevel",
                            "mean_efficiency": 0.5,
                            "infeasible": False,
                        },
                    ],
                }
            ]
        }
        assert best_map_from_results(payload)[(None, 0.5)] == (
            "checkpoint_restart"
        )

    def test_render_is_fixed_width_and_stable(self):
        best = {
            (None, 0.1): "multilevel",
            (None, 0.9): None,
        }
        table = render_best_technique_table(None, [None], [0.1, 0.9], best)
        lines = table.splitlines()
        assert lines[0] == f"{'sweep':<14}" + f"{10:>7.0f}%" + f"{90:>7.0f}%"
        assert set(lines[1]) == {"-"}
        assert lines[2].startswith(f"{'-':<14}")
        assert "ML" in lines[2] and "--" in lines[2]

    def test_render_with_axis_rows(self):
        best = {(1.0, 0.5): "parallel_recovery", (5.0, 0.5): "multilevel"}
        table = render_best_technique_table(
            "mtbf_years", [1.0, 5.0], [0.5], best
        )
        lines = table.splitlines()
        assert lines[0].startswith("mtbf_years")
        assert lines[2].startswith("1 ") and "PR" in lines[2]
        assert lines[3].startswith("5 ") and "ML" in lines[3]
