"""Unit tests for Poisson arrival processes."""

import numpy as np
import pytest

from repro.rng.poisson import PoissonProcess, VariableRatePoisson


class TestPoissonProcess:
    def test_arrivals_increase(self, rng):
        p = PoissonProcess(rng, rate=1.0)
        times = [p.next_arrival() for _ in range(100)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_interarrival(self, rng):
        p = PoissonProcess(rng, rate=0.5)
        gaps = [p.next_interarrival() for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(2.0, rel=0.05)

    def test_vectorized_matches_state(self, rng):
        p = PoissonProcess(rng, rate=1.0)
        times = p.arrivals(10)
        assert len(times) == 10
        assert p.last_arrival == pytest.approx(times[-1])
        nxt = p.next_arrival()
        assert nxt > times[-1]

    def test_arrivals_zero_count(self, rng):
        p = PoissonProcess(rng, rate=1.0)
        assert p.arrivals(0).size == 0
        assert p.last_arrival == 0.0

    def test_arrivals_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            PoissonProcess(rng, rate=1.0).arrivals(-1)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            PoissonProcess(rng, rate=0.0)

    def test_iterator_protocol(self, rng):
        p = PoissonProcess(rng, rate=1.0)
        it = iter(p)
        first = next(it)
        second = next(it)
        assert second > first > 0


class TestVariableRatePoisson:
    def test_zero_rate_suspends(self, rng):
        p = VariableRatePoisson(rng, rate=0.0)
        assert p.next_interarrival() is None

    def test_rate_change(self, rng):
        p = VariableRatePoisson(rng, rate=1.0)
        p.set_rate(100.0)
        gaps = [p.next_interarrival() for _ in range(5000)]
        assert np.mean(gaps) == pytest.approx(0.01, rel=0.1)

    def test_negative_rate_rejected(self, rng):
        p = VariableRatePoisson(rng)
        with pytest.raises(ValueError):
            p.set_rate(-1.0)
        with pytest.raises(ValueError):
            VariableRatePoisson(rng, rate=-0.5)

    def test_rate_property(self, rng):
        p = VariableRatePoisson(rng, rate=2.0)
        assert p.rate == 2.0
        p.set_rate(3.0)
        assert p.rate == 3.0
