"""Unit tests for named random streams."""

import numpy as np
import pytest

from repro.rng.streams import StreamFactory


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = StreamFactory(42).stream("failures")
        b = StreamFactory(42).stream("failures")
        assert a.random(10).tolist() == b.random(10).tolist()

    def test_different_names_independent(self):
        f = StreamFactory(42)
        a = f.stream("failures").random(10)
        b = f.stream("arrivals").random(10)
        assert a.tolist() != b.tolist()

    def test_different_seeds_differ(self):
        a = StreamFactory(1).stream("x").random(10)
        b = StreamFactory(2).stream("x").random(10)
        assert a.tolist() != b.tolist()

    def test_stream_is_cached(self):
        f = StreamFactory(42)
        assert f.stream("x") is f.stream("x")

    def test_fresh_restarts_state(self):
        f = StreamFactory(42)
        first = f.fresh("x").random(5)
        f.stream("x").random(100)  # consume the cached stream
        again = f.fresh("x").random(5)
        assert first.tolist() == again.tolist()


class TestSpawning:
    def test_spawn_is_deterministic(self):
        a = StreamFactory(42).spawn("trial-1").stream("f").random(5)
        b = StreamFactory(42).spawn("trial-1").stream("f").random(5)
        assert a.tolist() == b.tolist()

    def test_spawn_indexed_children_differ(self):
        f = StreamFactory(42)
        a = f.spawn_indexed(0).stream("f").random(5)
        b = f.spawn_indexed(1).stream("f").random(5)
        assert a.tolist() != b.tolist()

    def test_spawn_indexed_negative_rejected(self):
        with pytest.raises(ValueError):
            StreamFactory(42).spawn_indexed(-1)


class TestValidation:
    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            StreamFactory("42")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        f = StreamFactory(np.int64(7))
        assert f.seed == 7
