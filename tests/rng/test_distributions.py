"""Unit tests for distribution helpers."""

import math

import numpy as np
import pytest

from repro.rng.distributions import (
    DiscretePMF,
    choice,
    exponential,
    lognormal,
    lognormal_mu_for_mean,
    uniform,
    uniform_int,
    weibull,
    weibull_scale_for_mean,
)


class TestExponential:
    def test_mean_matches_rate(self, rng):
        rate = 0.25
        draws = [exponential(rng, rate) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(1.0 / rate, rel=0.05)

    def test_positive(self, rng):
        assert all(exponential(rng, 2.0) > 0 for _ in range(100))

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            exponential(rng, 0.0)
        with pytest.raises(ValueError):
            exponential(rng, -1.0)


class TestUniform:
    def test_bounds_respected(self, rng):
        draws = [uniform(rng, 1.2, 2.0) for _ in range(1000)]
        assert min(draws) >= 1.2
        assert max(draws) <= 2.0

    def test_mean(self, rng):
        draws = [uniform(rng, 0.0, 10.0) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(5.0, rel=0.05)

    def test_inverted_bounds_rejected(self, rng):
        with pytest.raises(ValueError):
            uniform(rng, 2.0, 1.0)


class TestUniformInt:
    def test_inclusive_bounds(self, rng):
        draws = {uniform_int(rng, 1, 3) for _ in range(500)}
        assert draws == {1, 2, 3}

    def test_degenerate_range(self, rng):
        assert uniform_int(rng, 5, 5) == 5

    def test_inverted_rejected(self, rng):
        with pytest.raises(ValueError):
            uniform_int(rng, 3, 1)


class TestChoice:
    def test_picks_from_options(self, rng):
        options = ["a", "b", "c"]
        assert {choice(rng, options) for _ in range(200)} == set(options)

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            choice(rng, [])


class TestDiscretePMF:
    def test_normalizes(self):
        pmf = DiscretePMF([2.0, 2.0])
        assert pmf.probabilities == (0.5, 0.5)

    def test_sample_frequencies(self, rng):
        pmf = DiscretePMF([0.7, 0.2, 0.1])
        samples = pmf.sample_many(rng, 50_000)
        freqs = np.bincount(samples, minlength=3) / len(samples)
        assert freqs[0] == pytest.approx(0.7, abs=0.02)
        assert freqs[2] == pytest.approx(0.1, abs=0.02)

    def test_sample_in_range(self, rng):
        pmf = DiscretePMF([0.5, 0.5])
        assert all(pmf.sample(rng) in (0, 1) for _ in range(100))

    def test_tail(self):
        pmf = DiscretePMF([0.65, 0.20, 0.15])
        assert pmf.tail(0) == pytest.approx(1.0)
        assert pmf.tail(1) == pytest.approx(0.35)
        assert pmf.tail(2) == pytest.approx(0.15)

    def test_probability(self):
        pmf = DiscretePMF([0.65, 0.20, 0.15])
        assert pmf.probability(1) == pytest.approx(0.20)

    def test_len(self):
        assert len(DiscretePMF([1, 1, 1])) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF([0.5, -0.1])

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF([0.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF([])

    def test_sample_many_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            DiscretePMF([1.0]).sample_many(rng, -1)


class TestWeibull:
    """Property tests against the Weibull closed forms."""

    def test_mean_matches_closed_form(self, rng):
        shape, scale = 1.5, 40.0
        draws = [weibull(rng, shape, scale) for _ in range(20_000)]
        expected = scale * math.gamma(1.0 + 1.0 / shape)
        assert np.mean(draws) == pytest.approx(expected, rel=0.05)

    def test_variance_matches_closed_form(self, rng):
        shape, scale = 1.5, 40.0
        draws = [weibull(rng, shape, scale) for _ in range(40_000)]
        g1 = math.gamma(1.0 + 1.0 / shape)
        g2 = math.gamma(1.0 + 2.0 / shape)
        expected = scale * scale * (g2 - g1 * g1)
        assert np.var(draws) == pytest.approx(expected, rel=0.10)

    def test_shape_one_is_bitwise_exponential(self):
        """Weibull(1, 1/rate) consumes the same NumPy variate as
        Exp(rate): equal streams give bit-identical draws."""
        rate = 1.0 / 3600.0
        a = np.random.default_rng(2017)
        b = np.random.default_rng(2017)
        for _ in range(500):
            assert weibull(a, 1.0, 1.0 / rate) == exponential(b, rate)

    def test_scale_for_mean_inverts_the_mean(self, rng):
        shape, mean = 0.7, 123.0
        scale = weibull_scale_for_mean(shape, mean)
        assert scale * math.gamma(1.0 + 1.0 / shape) == pytest.approx(mean)

    def test_positive(self, rng):
        assert all(weibull(rng, 0.5, 2.0) > 0 for _ in range(200))

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            weibull(rng, 0.0, 1.0)
        with pytest.raises(ValueError):
            weibull(rng, 1.0, 0.0)
        with pytest.raises(ValueError):
            weibull_scale_for_mean(-1.0, 1.0)
        with pytest.raises(ValueError):
            weibull_scale_for_mean(1.0, 0.0)


class TestLognormal:
    """Property tests against the lognormal closed forms."""

    def test_mean_matches_closed_form(self, rng):
        mu, sigma = 2.0, 0.75
        draws = [lognormal(rng, mu, sigma) for _ in range(40_000)]
        expected = math.exp(mu + sigma * sigma / 2.0)
        assert np.mean(draws) == pytest.approx(expected, rel=0.05)

    def test_variance_matches_closed_form(self, rng):
        mu, sigma = 2.0, 0.75
        draws = [lognormal(rng, mu, sigma) for _ in range(80_000)]
        s2 = sigma * sigma
        expected = (math.exp(s2) - 1.0) * math.exp(2.0 * mu + s2)
        assert np.var(draws) == pytest.approx(expected, rel=0.15)

    def test_mu_for_mean_inverts_the_mean(self):
        mean, sigma = 3600.0, 1.5
        mu = lognormal_mu_for_mean(mean, sigma)
        assert math.exp(mu + sigma * sigma / 2.0) == pytest.approx(mean)

    def test_positive(self, rng):
        assert all(lognormal(rng, 0.0, 2.0) > 0 for _ in range(200))

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            lognormal(rng, 0.0, 0.0)
        with pytest.raises(ValueError):
            lognormal_mu_for_mean(0.0, 1.0)
        with pytest.raises(ValueError):
            lognormal_mu_for_mean(1.0, -2.0)
