"""Unit tests for unit conversions and paper constants."""

import pytest

from repro import constants, units


class TestConversions:
    def test_minute_hour_day_year(self):
        assert units.minutes(1) == 60.0
        assert units.hours(1) == 3600.0
        assert units.days(1) == 86400.0
        assert units.years(1) == pytest.approx(365.25 * 86400.0)

    def test_roundtrips(self):
        assert units.to_minutes(units.minutes(7.5)) == pytest.approx(7.5)
        assert units.to_hours(units.hours(3)) == pytest.approx(3.0)
        assert units.to_days(units.days(2)) == pytest.approx(2.0)
        assert units.to_years(units.years(10)) == pytest.approx(10.0)

    def test_microsecond(self):
        assert units.MICROSECOND == pytest.approx(1e-6)


class TestPaperConstants:
    def test_system_reaches_exascale(self):
        total_tflops = constants.EXASCALE_NODES * constants.TFLOPS_PER_NODE
        assert total_tflops >= 1_000_000  # >= 1 EFLOP/s

    def test_taihulight_scaling_factors(self):
        # "increase by a factor of four": 1028 cores, 128 GB.
        assert constants.CORES_PER_NODE == 1028
        assert constants.MEMORY_PER_NODE_GB == 128.0

    def test_communication_model(self):
        assert constants.NETWORK_LATENCY_S == pytest.approx(0.5e-6)
        assert constants.NETWORK_BANDWIDTH_GBS == 600.0
        assert constants.SWITCH_CONNECTIONS == 12

    def test_time_step_is_one_minute(self):
        assert constants.TIME_STEP_S == 60.0

    def test_app_length_bounds(self):
        assert constants.MIN_TIME_STEPS * constants.TIME_STEP_S == units.hours(6)
        assert constants.MAX_TIME_STEPS * constants.TIME_STEP_S == units.days(2)

    def test_mtbf_settings(self):
        assert constants.DEFAULT_NODE_MTBF_S == pytest.approx(units.years(10))
        assert constants.LOW_NODE_MTBF_S == pytest.approx(units.years(2.5))

    def test_severity_pmf_normalized_and_mild_heavy(self):
        pmf = constants.DEFAULT_SEVERITY_PMF
        assert sum(pmf) == pytest.approx(1.0)
        assert pmf[0] > pmf[1] > pmf[2]  # most failures are mild

    def test_scaling_study_parameters(self):
        assert constants.SCALING_STUDY_BASELINE_S == units.minutes(1440)
        assert len(constants.SCALING_STUDY_FRACTIONS) == 8
        assert constants.SCALING_STUDY_TRIALS == 200

    def test_pattern_parameters(self):
        assert constants.PATTERN_ARRIVALS == 100
        assert constants.PATTERN_COUNT == 50
        assert constants.PATTERN_MEAN_INTERARRIVAL_S == units.hours(2)
        assert constants.PATTERN_BASELINE_CHOICES_S == (
            units.hours(6),
            units.hours(12),
            units.hours(24),
            units.hours(48),
        )
        assert 0.50 in constants.PATTERN_FRACTION_CHOICES
        assert 1.00 not in constants.PATTERN_FRACTION_CHOICES

    def test_deadline_multiplier_bounds(self):
        assert (constants.DEADLINE_U_LOW, constants.DEADLINE_U_HIGH) == (1.2, 2.0)


class TestPublicAPI:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
