"""Unit tests for generator-based processes and interrupts."""

import pytest

from repro.sim.errors import Interrupt, ProcessError
from repro.sim.process import ProcessState, Timeout


class TestTimeoutObject:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_elapsed_and_remaining(self, sim):
        captured = {}

        def body():
            t = sim.timeout(10.0)
            captured["t"] = t
            yield t

        sim.process(body())
        sim.run(until=4.0)
        t = captured["t"]
        assert t.started_at == 0.0
        assert t.wake_at == 10.0
        assert t.elapsed(4.0) == pytest.approx(4.0)
        assert t.remaining(4.0) == pytest.approx(6.0)

    def test_unstarted_timeout_elapsed_zero(self):
        t = Timeout(5.0)
        assert t.elapsed(100.0) == 0.0
        assert t.remaining(100.0) == 5.0


class TestBareNumberYield:
    def test_bare_number_sleeps_that_long(self, sim):
        times = []

        def body():
            yield 2.5
            times.append(sim.now)
            yield 3
            times.append(sim.now)

        sim.process(body())
        sim.run()
        assert times == [2.5, 5.5]

    def test_pending_timeout_visible_while_suspended(self, sim):
        seen = {}

        def body():
            yield 10.0

        proc = sim.process(body())
        sim.schedule(4.0, lambda _e: seen.update(t=proc.pending_timeout))
        sim.run(until=5.0)
        t = seen["t"]
        assert t is not None
        assert t.delay == 10.0
        assert t.wake_at == 10.0
        assert t.elapsed(4.0) == pytest.approx(4.0)

    def test_scratch_timeout_reused_across_yields(self, sim):
        seen = []

        def body():
            yield 1.0
            seen.append(self_proc.pending_timeout is None)  # between yields
            yield 2.0

        def capture(_e):
            seen.append(self_proc.pending_timeout)

        self_proc = sim.process(body())
        sim.schedule(0.5, capture)
        sim.schedule(1.5, capture)
        sim.run()
        assert seen[1] is True  # cleared between yields
        assert seen[0] is seen[2]  # one Timeout object per process

    def test_negative_number_fails_process(self, sim):
        def body():
            yield -1.0

        proc = sim.process(body())
        with pytest.raises(ProcessError):
            sim.run()
        assert proc.state is ProcessState.FAILED
        assert isinstance(proc.error, ProcessError)

    def test_bool_yield_still_rejected(self, sim):
        def body():
            yield True

        proc = sim.process(body())
        with pytest.raises(ProcessError):
            sim.run()
        assert proc.state is ProcessState.FAILED

    def test_interruptible_like_timeout(self, sim):
        caught = []

        def body():
            try:
                yield 10.0
            except Interrupt as intr:
                caught.append((sim.now, intr.cause))

        proc = sim.process(body())
        sim.schedule(3.0, lambda _e: proc.interrupt("boom"))
        sim.run()
        assert caught == [(3.0, "boom")]


class TestProcessLifecycle:
    def test_sequence_of_timeouts(self, sim):
        marks = []

        def body():
            yield sim.timeout(1.0)
            marks.append(sim.now)
            yield sim.timeout(2.0)
            marks.append(sim.now)

        sim.process(body())
        sim.run()
        assert marks == [1.0, 3.0]

    def test_return_value_captured(self, sim):
        def body():
            yield sim.timeout(1.0)
            return 42

        proc = sim.process(body())
        sim.run()
        assert proc.state is ProcessState.FINISHED
        assert proc.value == 42

    def test_alive_transitions(self, sim):
        def body():
            yield sim.timeout(1.0)

        proc = sim.process(body())
        assert proc.alive
        sim.run()
        assert not proc.alive

    def test_first_step_runs_at_spawn_time(self, sim):
        seen = []

        def body():
            seen.append(sim.now)
            yield sim.timeout(0.0)

        sim.schedule(5.0, lambda _e: sim.process(body()))
        sim.run()
        assert seen == [5.0]

    def test_yield_unsupported_type_fails(self, sim):
        def body():
            yield "nonsense"

        proc = sim.process(body())
        with pytest.raises(ProcessError):
            sim.run()
        assert proc.state is ProcessState.FAILED


class TestJoin:
    def test_join_receives_return_value(self, sim):
        def child():
            yield sim.timeout(2.0)
            return "done"

        results = []

        def parent():
            c = sim.process(child(), name="child")
            value = yield c
            results.append((sim.now, value))

        sim.process(parent(), name="parent")
        sim.run()
        assert results == [(2.0, "done")]

    def test_join_already_finished_process(self, sim):
        def child():
            yield sim.timeout(1.0)
            return 7

        c = sim.process(child())

        results = []

        def parent():
            yield sim.timeout(5.0)  # child finishes first
            value = yield c
            results.append(value)

        sim.process(parent())
        sim.run()
        assert results == [7]

    def test_join_failed_process_raises_in_parent(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        outcomes = []

        def parent():
            c = sim.process(child(), name="child")
            try:
                yield c
            except ProcessError as exc:
                outcomes.append(str(exc))

        sim.process(parent(), name="parent")
        with pytest.raises(RuntimeError):
            sim.run()  # the child's crash propagates out of the loop
        sim.run()  # continue: parent receives the ProcessError
        assert outcomes and "boom" in outcomes[0]


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        causes = []

        def body():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                causes.append((sim.now, intr.cause))

        proc = sim.process(body())
        sim.schedule(3.0, lambda _e: proc.interrupt("why"))
        sim.run()
        assert causes == [(3.0, "why")]

    def test_interrupt_cancels_pending_wakeup(self, sim):
        marks = []

        def body():
            try:
                yield sim.timeout(10.0)
                marks.append("completed")
            except Interrupt:
                marks.append("interrupted")

        proc = sim.process(body())
        sim.schedule(3.0, lambda _e: proc.interrupt())
        sim.run()
        assert marks == ["interrupted"]

    def test_process_can_resume_after_interrupt(self, sim):
        marks = []

        def body():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                pass
            yield sim.timeout(5.0)
            marks.append(sim.now)

        proc = sim.process(body())
        sim.schedule(3.0, lambda _e: proc.interrupt())
        sim.run()
        assert marks == [8.0]

    def test_interrupt_terminated_process_raises(self, sim):
        def body():
            yield sim.timeout(1.0)

        proc = sim.process(body())
        sim.run()
        with pytest.raises(ProcessError):
            proc.interrupt()

    def test_unhandled_interrupt_terminates_cleanly(self, sim):
        def body():
            yield sim.timeout(100.0)

        proc = sim.process(body())
        sim.schedule(1.0, lambda _e: proc.interrupt("cause"))
        sim.run()
        assert proc.state is ProcessState.FAILED
        assert isinstance(proc.error, Interrupt)

    def test_interrupt_while_joining(self, sim):
        def child():
            yield sim.timeout(100.0)

        marks = []

        def parent():
            c = sim.process(child(), name="child")
            try:
                yield c
            except Interrupt:
                marks.append(sim.now)

        sim.schedule(0.0, lambda _e: None)
        parent_proc = sim.process(parent(), name="parent")
        sim.schedule(4.0, lambda _e: parent_proc.interrupt())
        sim.run(until=50.0)
        assert marks == [4.0]

    def test_pending_timeout_visible_during_wait(self, sim):
        def body():
            yield sim.timeout(10.0)

        proc = sim.process(body())
        sim.run(until=5.0)
        assert proc.pending_timeout is not None
        assert proc.pending_timeout.wake_at == 10.0
