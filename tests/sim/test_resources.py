"""Unit tests for Signal and SlotPool."""

import pytest

from repro.sim.errors import Interrupt
from repro.sim.resources import Signal, SlotPool


class TestSignal:
    def test_wait_then_fire(self, sim):
        signal = Signal(sim)
        got = []

        def waiter():
            value = yield signal
            got.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(5.0, lambda _e: signal.fire("go"))
        sim.run()
        assert got == [(5.0, "go")]

    def test_fire_before_wait_resumes_immediately(self, sim):
        signal = Signal(sim)
        signal.fire(42)
        got = []

        def waiter():
            got.append((yield signal))

        sim.process(waiter())
        sim.run()
        assert got == [42]

    def test_multiple_waiters(self, sim):
        signal = Signal(sim)
        got = []

        def waiter(tag):
            yield signal
            got.append(tag)

        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.schedule(1.0, lambda _e: signal.fire())
        sim.run()
        assert sorted(got) == ["a", "b"]

    def test_double_fire_rejected(self, sim):
        signal = Signal(sim)
        signal.fire()
        with pytest.raises(RuntimeError):
            signal.fire()

    def test_interrupt_while_waiting(self, sim):
        signal = Signal(sim)
        got = []

        def waiter():
            try:
                yield signal
                got.append("resumed")
            except Interrupt:
                got.append("interrupted")

        proc = sim.process(waiter())
        sim.schedule(1.0, lambda _e: proc.interrupt())
        sim.schedule(2.0, lambda _e: signal.fire())
        sim.run()
        assert got == ["interrupted"]

    def test_interrupt_between_fire_and_delivery(self, sim):
        """An interrupt landing at the same instant as the fire must
        not double-resume the process."""
        signal = Signal(sim)
        got = []

        def waiter():
            try:
                yield signal
                got.append("resumed")
            except Interrupt:
                got.append("interrupted")
            yield sim.timeout(1.0)
            got.append("after")

        proc = sim.process(waiter())

        def fire_and_interrupt(_e):
            signal.fire()
            proc.interrupt()

        sim.schedule(1.0, fire_and_interrupt)
        sim.run()
        assert got == ["interrupted", "after"]


class TestSlotPool:
    def test_immediate_grant(self, sim):
        pool = SlotPool(sim, slots=2)
        t1 = pool.request()
        assert t1.state == "held"
        assert pool.free == 1
        assert pool.in_use == 1

    def test_fifo_queueing(self, sim):
        pool = SlotPool(sim, slots=1)
        order = []

        def user(tag, hold):
            ticket = pool.request()
            yield from ticket.wait()
            order.append((sim.now, tag))
            yield sim.timeout(hold)
            ticket.release()

        sim.process(user("a", 10.0))
        sim.process(user("b", 10.0))
        sim.process(user("c", 10.0))
        sim.run()
        assert order == [(0.0, "a"), (10.0, "b"), (20.0, "c")]
        assert pool.free == 1
        assert pool.contended_requests == 2

    def test_release_passes_slot_directly(self, sim):
        pool = SlotPool(sim, slots=1)
        first = pool.request()
        second = pool.request()
        assert second.state == "queued"
        first.release()
        assert second.state == "granted"
        assert pool.free == 0  # handed over, never returned to free

    def test_abandon_queued(self, sim):
        pool = SlotPool(sim, slots=1)
        pool.request()
        waiter = pool.request()
        waiter.abandon()
        assert pool.queued == 0

    def test_abandon_granted_returns_slot(self, sim):
        pool = SlotPool(sim, slots=1)
        first = pool.request()
        second = pool.request()
        first.release()  # second becomes granted
        second.abandon()
        assert pool.free == 1

    def test_interrupt_while_queued(self, sim):
        pool = SlotPool(sim, slots=1)
        holder = pool.request()
        outcomes = []

        def waiter():
            ticket = pool.request()
            try:
                yield from ticket.wait()
                outcomes.append("got it")
                ticket.release()
            except Interrupt:
                ticket.abandon()
                outcomes.append("gave up")

        proc = sim.process(waiter())
        sim.schedule(1.0, lambda _e: proc.interrupt())
        sim.run()
        holder.release()
        assert outcomes == ["gave up"]
        assert pool.free == 1

    def test_release_invalid_state(self, sim):
        pool = SlotPool(sim, slots=1)
        ticket = pool.request()
        ticket.release()
        with pytest.raises(RuntimeError):
            ticket.release()

    def test_wait_on_abandoned_rejected(self, sim):
        pool = SlotPool(sim, slots=1)
        pool.request()
        waiter = pool.request()
        waiter.abandon()
        with pytest.raises(RuntimeError):
            list(waiter.wait())

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            SlotPool(sim, slots=0)

    def test_concurrent_holders_capped(self, sim):
        pool = SlotPool(sim, slots=2)
        peak = [0]

        def user():
            ticket = pool.request()
            yield from ticket.wait()
            peak[0] = max(peak[0], pool.in_use)
            assert pool.in_use <= 2
            yield sim.timeout(5.0)
            ticket.release()

        for _ in range(6):
            sim.process(user())
        sim.run()
        assert peak[0] == 2
