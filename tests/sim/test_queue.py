"""Unit tests for the pending-event queue."""

import pytest

from repro.sim.events import Event
from repro.sim.queue import EventQueue


def _noop(_event):
    pass


def _event(t, seq=0, priority=0):
    return Event(t, _noop, seq=seq, priority=priority)


class TestPushPop:
    def test_pop_in_time_order(self):
        q = EventQueue()
        for i, t in enumerate([5.0, 1.0, 3.0]):
            q.push(_event(t, seq=i))
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_counts_live_events(self):
        q = EventQueue()
        q.push(_event(1.0, seq=1))
        q.push(_event(2.0, seq=2))
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        q.push(_event(1.0))
        assert q

    def test_push_cancelled_rejected(self):
        q = EventQueue()
        e = _event(1.0)
        e.cancel()
        with pytest.raises(ValueError):
            q.push(e)

    def test_fifo_within_same_time(self):
        q = EventQueue()
        first = _event(1.0, seq=1)
        second = _event(1.0, seq=2)
        q.push(second)
        q.push(first)
        assert q.pop() is first
        assert q.pop() is second


class TestCancellation:
    def test_cancelled_events_skipped_on_pop(self):
        q = EventQueue()
        doomed = _event(1.0, seq=1)
        keeper = _event(2.0, seq=2)
        q.push(doomed)
        q.push(keeper)
        doomed.cancel()
        q.notify_cancelled()
        assert q.pop() is keeper

    def test_cancelled_events_skipped_on_peek(self):
        q = EventQueue()
        doomed = _event(1.0, seq=1)
        keeper = _event(2.0, seq=2)
        q.push(doomed)
        q.push(keeper)
        doomed.cancel()
        q.notify_cancelled()
        assert q.peek() is keeper
        assert q.peek_time() == 2.0

    def test_len_after_cancel(self):
        q = EventQueue()
        e = _event(1.0)
        q.push(e)
        e.cancel()
        q.notify_cancelled()
        assert len(q) == 0
        assert not q


class TestPopDue:
    def test_returns_head_at_or_before_limit(self):
        q = EventQueue()
        first = _event(1.0, seq=1)
        second = _event(2.0, seq=2)
        q.push(first)
        q.push(second)
        assert q.pop_due(1.0) is first
        assert q.pop_due(1.5) is None
        assert q.pop_due(2.0) is second

    def test_no_limit_pops_everything(self):
        q = EventQueue()
        q.push(_event(3.0, seq=1))
        q.push(_event(1.0, seq=2))
        assert q.pop_due().time == 1.0
        assert q.pop_due(None).time == 3.0
        assert q.pop_due() is None

    def test_skips_cancelled_head(self):
        q = EventQueue()
        doomed = _event(1.0, seq=1)
        keeper = _event(2.0, seq=2)
        q.push(doomed)
        q.push(keeper)
        doomed.cancel()
        q.notify_cancelled()
        # The cancelled head must not satisfy the limit check.
        assert q.pop_due(1.5) is None
        assert q.pop_due(2.0) is keeper

    def test_empty_returns_none(self):
        assert EventQueue().pop_due(10.0) is None


class TestInQueueFlag:
    def test_lifecycle_push_pop(self):
        q = EventQueue()
        e = _event(1.0)
        assert not e.in_queue
        q.push(e)
        assert e.in_queue
        assert q.pop() is e
        assert not e.in_queue

    def test_cleared_by_pop_due(self):
        q = EventQueue()
        e = _event(1.0)
        q.push(e)
        assert q.pop_due(1.0) is e
        assert not e.in_queue

    def test_cleared_when_cancelled_entry_pruned(self):
        q = EventQueue()
        doomed = _event(1.0, seq=1)
        keeper = _event(2.0, seq=2)
        q.push(doomed)
        q.push(keeper)
        doomed.cancel()
        q.notify_cancelled()
        q.peek()  # prunes the cancelled head
        assert not doomed.in_queue
        assert keeper.in_queue

    def test_cleared_by_clear(self):
        q = EventQueue()
        events = [_event(float(i), seq=i) for i in range(3)]
        for e in events:
            q.push(e)
        q.clear()
        assert all(not e.in_queue for e in events)


class TestCompaction:
    def test_compaction_drops_dead_entries_and_preserves_order(self):
        q = EventQueue()
        events = [_event(float(i), seq=i) for i in range(200)]
        for e in events:
            q.push(e)
        # Cancel the back 140: once the dead outnumber the live (and
        # exceed the threshold) the queue rebuilds itself.
        for e in events[60:]:
            e.cancel()
            q.notify_cancelled()
        assert len(q._heap) < len(events)  # compaction happened
        # Entries removed by the rebuild are marked out-of-queue.
        assert sum(1 for e in events if e.cancelled and not e.in_queue) >= 100
        assert len(q) == 60
        popped = [q.pop().time for _ in range(len(q))]
        assert popped == [float(i) for i in range(60)]

    def test_no_compaction_below_threshold(self):
        q = EventQueue()
        events = [_event(float(i), seq=i) for i in range(10)]
        for e in events:
            q.push(e)
        events[3].cancel()
        q.notify_cancelled()
        assert len(q._heap) == 10  # tombstone left in place
        assert len(q) == 9


class TestMisc:
    def test_peek_empty_returns_none(self):
        q = EventQueue()
        assert q.peek() is None
        assert q.peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(_event(1.0))
        q.clear()
        assert len(q) == 0
        assert not q
        assert q.pop_due() is None

    def test_iter_skips_cancelled(self):
        q = EventQueue()
        live = _event(1.0, seq=1)
        dead = _event(2.0, seq=2)
        q.push(live)
        q.push(dead)
        dead.cancel()
        q.notify_cancelled()
        assert list(q) == [live]
