"""Unit tests for the pending-event queue."""

import pytest

from repro.sim.events import Event
from repro.sim.queue import EventQueue


def _noop(_event):
    pass


def _event(t, seq=0, priority=0):
    return Event(t, _noop, seq=seq, priority=priority)


class TestPushPop:
    def test_pop_in_time_order(self):
        q = EventQueue()
        for i, t in enumerate([5.0, 1.0, 3.0]):
            q.push(_event(t, seq=i))
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_counts_live_events(self):
        q = EventQueue()
        q.push(_event(1.0, seq=1))
        q.push(_event(2.0, seq=2))
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        q.push(_event(1.0))
        assert q

    def test_push_cancelled_rejected(self):
        q = EventQueue()
        e = _event(1.0)
        e.cancel()
        with pytest.raises(ValueError):
            q.push(e)

    def test_fifo_within_same_time(self):
        q = EventQueue()
        first = _event(1.0, seq=1)
        second = _event(1.0, seq=2)
        q.push(second)
        q.push(first)
        assert q.pop() is first
        assert q.pop() is second


class TestCancellation:
    def test_cancelled_events_skipped_on_pop(self):
        q = EventQueue()
        doomed = _event(1.0, seq=1)
        keeper = _event(2.0, seq=2)
        q.push(doomed)
        q.push(keeper)
        doomed.cancel()
        q.notify_cancelled()
        assert q.pop() is keeper

    def test_cancelled_events_skipped_on_peek(self):
        q = EventQueue()
        doomed = _event(1.0, seq=1)
        keeper = _event(2.0, seq=2)
        q.push(doomed)
        q.push(keeper)
        doomed.cancel()
        q.notify_cancelled()
        assert q.peek() is keeper
        assert q.peek_time() == 2.0

    def test_len_after_cancel(self):
        q = EventQueue()
        e = _event(1.0)
        q.push(e)
        e.cancel()
        q.notify_cancelled()
        assert len(q) == 0
        assert not q


class TestMisc:
    def test_peek_empty_returns_none(self):
        q = EventQueue()
        assert q.peek() is None
        assert q.peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(_event(1.0))
        q.clear()
        assert len(q) == 0

    def test_iter_skips_cancelled(self):
        q = EventQueue()
        live = _event(1.0, seq=1)
        dead = _event(2.0, seq=2)
        q.push(live)
        q.push(dead)
        dead.cancel()
        q.notify_cancelled()
        assert list(q) == [live]
