"""Unit tests for the trace recorder."""

from repro.sim.events import EventKind
from repro.sim.tracing import TraceRecorder


class TestRecording:
    def test_records_entries(self):
        t = TraceRecorder()
        t.record(1.0, EventKind.FAILURE, "a")
        t.record(2.0, EventKind.CHECKPOINT, "b")
        assert len(t) == 2
        assert t[0].payload == "a"

    def test_kind_filter_at_record_time(self):
        t = TraceRecorder(kinds={EventKind.FAILURE})
        t.record(1.0, EventKind.FAILURE, None)
        t.record(2.0, EventKind.CHECKPOINT, None)
        assert len(t) == 1

    def test_capacity_drops_oldest(self):
        t = TraceRecorder(capacity=2)
        for i in range(4):
            t.record(float(i), EventKind.INTERNAL, i)
        assert len(t) == 2
        assert t.dropped == 2
        assert [e.payload for e in t] == [2, 3]


class TestQuerying:
    def _populate(self):
        t = TraceRecorder()
        t.record(1.0, EventKind.FAILURE, "f1")
        t.record(2.0, EventKind.RESTART, "r1")
        t.record(3.0, EventKind.FAILURE, "f2")
        return t

    def test_filter_by_kind(self):
        t = self._populate()
        failures = t.filter(kind=EventKind.FAILURE)
        assert [e.payload for e in failures] == ["f1", "f2"]

    def test_filter_by_predicate(self):
        t = self._populate()
        late = t.filter(predicate=lambda e: e.time > 1.5)
        assert [e.payload for e in late] == ["r1", "f2"]

    def test_counts(self):
        t = self._populate()
        assert t.counts() == {EventKind.FAILURE: 2, EventKind.RESTART: 1}

    def test_clear(self):
        t = self._populate()
        t.clear()
        assert len(t) == 0

    def test_dump_limits(self):
        t = self._populate()
        assert t.dump(limit=1).count("\n") == 0
        assert "failure" in t.dump()


class TestDequeStorage:
    """The recorder's ring buffer: O(1) eviction, list-like access."""

    def test_large_capacity_churn_keeps_newest(self):
        t = TraceRecorder(capacity=100)
        for i in range(10_000):
            t.record(float(i), EventKind.INTERNAL, i)
        assert len(t) == 100
        assert t.dropped == 9_900
        assert [e.payload for e in t][:3] == [9_900, 9_901, 9_902]
        assert t[-1].payload == 9_999

    def test_slicing_after_eviction(self):
        t = TraceRecorder(capacity=3)
        for i in range(5):
            t.record(float(i), EventKind.INTERNAL, i)
        assert [e.payload for e in t[0:2]] == [2, 3]
        assert [e.payload for e in t[::-1]] == [4, 3, 2]

    def test_iteration_and_indexing_agree(self):
        t = TraceRecorder(capacity=4)
        for i in range(6):
            t.record(float(i), EventKind.INTERNAL, i)
        assert [e.payload for e in t] == [t[j].payload for j in range(len(t))]
