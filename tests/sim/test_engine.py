"""Unit tests for the Simulator event loop."""

import pytest

from repro.obs.sinks import TraceSink
from repro.sim.engine import Simulator
from repro.sim.errors import SchedulingError
from repro.sim.events import EventKind


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_order(self, sim):
        order = []
        sim.schedule(2.0, lambda _e: order.append("b"))
        sim.schedule(1.0, lambda _e: order.append("a"))
        sim.run()
        assert order == ["a", "b"]

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(3.5, lambda _e: times.append(sim.now))
        sim.run()
        assert times == [3.5]
        assert sim.now == 3.5

    def test_schedule_in_past_raises(self, sim):
        sim.schedule(1.0, lambda _e: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(0.5, lambda _e: None)

    def test_schedule_nonfinite_raises(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(float("inf"), lambda _e: None)
        with pytest.raises(SchedulingError):
            sim.schedule(float("nan"), lambda _e: None)

    def test_nested_scheduling_from_callback(self, sim):
        seen = []

        def outer(_e):
            sim.schedule(1.0, lambda _e2: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [2.0]

    def test_zero_delay_event_runs_at_same_time(self, sim):
        seen = []
        sim.schedule(5.0, lambda _e: sim.schedule(0.0, lambda _e2: seen.append(sim.now)))
        sim.run()
        assert seen == [5.0]


class TestRunControl:
    def test_run_until_stops_clock_at_until(self, sim):
        sim.schedule(10.0, lambda _e: None)
        stopped = sim.run(until=4.0)
        assert stopped == 4.0
        assert sim.pending == 1  # the event is still there

    def test_run_until_executes_events_at_until(self, sim):
        seen = []
        sim.schedule(4.0, lambda _e: seen.append("x"))
        sim.run(until=4.0)
        assert seen == ["x"]

    def test_max_events(self, sim):
        seen = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda _e, i=i: seen.append(i))
        sim.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_event_count(self, sim):
        sim.schedule(1.0, lambda _e: None)
        sim.schedule(2.0, lambda _e: None)
        sim.run()
        assert sim.event_count == 2

    def test_run_not_reentrant(self, sim):
        def recurse(_e):
            with pytest.raises(SchedulingError):
                sim.run()

        sim.schedule(1.0, recurse)
        sim.run()


class TestCancel:
    def test_cancelled_event_does_not_fire(self, sim):
        seen = []
        ev = sim.schedule(1.0, lambda _e: seen.append("x"))
        sim.cancel(ev)
        sim.run()
        assert seen == []

    def test_double_cancel_is_safe(self, sim):
        ev = sim.schedule(1.0, lambda _e: None)
        sim.cancel(ev)
        sim.cancel(ev)
        assert sim.pending == 0

    def test_cancel_after_execution_keeps_count_accurate(self, sim):
        # Regression: cancelling an event that already ran used to
        # decrement the queue's live count, driving it negative and
        # making `sim.pending` lie about later events.
        ev = sim.schedule(1.0, lambda _e: None)
        sim.run()
        sim.cancel(ev)
        assert sim.pending == 0
        sim.schedule(2.0, lambda _e: None)
        assert sim.pending == 1

    def test_cancel_never_queued_event_keeps_count_accurate(self, sim):
        from repro.sim.events import Event

        loose = Event(1.0, lambda _e: None, seq=0)
        sim.cancel(loose)
        assert loose.cancelled
        assert sim.pending == 0
        sim.schedule(1.0, lambda _e: None)
        assert sim.pending == 1

    def test_cancel_decrements_once_for_queued_event(self, sim):
        keeper = sim.schedule(2.0, lambda _e: None)
        doomed = sim.schedule(1.0, lambda _e: None)
        sim.cancel(doomed)
        sim.cancel(doomed)
        assert sim.pending == 1
        sim.run()
        assert not keeper.cancelled


class TestTimeoutAt:
    def test_wakes_exactly_at_absolute_time(self, sim):
        times = []

        def body():
            yield sim.timeout_at(7.25)
            times.append(sim.now)

        sim.process(body())
        sim.run()
        assert times == [7.25]

    def test_past_time_clamps_to_zero_delay(self, sim):
        sim.schedule(5.0, lambda _e: None)
        sim.run()
        times = []

        def body():
            yield sim.timeout_at(1.0)  # already in the past
            times.append(sim.now)

        sim.process(body())
        sim.run()
        assert times == [5.0]

    def test_wake_at_is_the_absolute_time(self, sim):
        captured = {}

        def body():
            t = sim.timeout_at(3.0)
            captured["t"] = t
            yield t

        sim.process(body())
        sim.run(until=1.0)
        assert captured["t"].wake_at == 3.0


class TestTracing:
    def test_trace_sink_records_kind_and_time(self):
        trace = TraceSink()
        sim = Simulator()
        trace.attach(sim.bus)
        sim.schedule(1.0, lambda _e: None, kind=EventKind.FAILURE, payload="f1")
        sim.run()
        assert len(trace) == 1
        assert trace[0].kind is EventKind.FAILURE
        assert trace[0].time == 1.0
        assert trace[0].payload == "f1"


class TestRunUntilEmpty:
    def test_drains_queue(self, sim):
        seen = []
        for i in range(4):
            sim.schedule(float(i), lambda _e, i=i: seen.append(i))
        end = sim.run_until_empty()
        assert seen == [0, 1, 2, 3]
        assert end == 3.0
        assert sim.pending == 0

    def test_max_events_guard(self, sim):
        def reschedule(_e):
            sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        sim.run_until_empty(max_events=25)
        assert sim.event_count == 25
