"""Unit tests for repro.sim.events."""

from repro.sim.events import DEFAULT_PRIORITY, Event, EventKind, FAILURE_PRIORITY


def _noop(_event):
    pass


class TestEventOrdering:
    def test_earlier_time_sorts_first(self):
        a = Event(1.0, _noop, seq=1)
        b = Event(2.0, _noop, seq=2)
        assert a < b

    def test_priority_breaks_time_ties(self):
        failure = Event(5.0, _noop, priority=FAILURE_PRIORITY, seq=2)
        wake = Event(5.0, _noop, priority=DEFAULT_PRIORITY, seq=1)
        assert failure < wake

    def test_seq_breaks_full_ties(self):
        a = Event(5.0, _noop, seq=1)
        b = Event(5.0, _noop, seq=2)
        assert a < b

    def test_sort_key_shape(self):
        e = Event(3.0, _noop, priority=2, seq=7)
        assert e.sort_key == (3.0, 2, 7)


class TestEventCancellation:
    def test_cancel_sets_flag(self):
        e = Event(1.0, _noop)
        assert not e.cancelled
        e.cancel()
        assert e.cancelled

    def test_cancel_is_idempotent(self):
        e = Event(1.0, _noop)
        e.cancel()
        e.cancel()
        assert e.cancelled


class TestEventKind:
    def test_paper_taxonomy_present(self):
        names = {k.value for k in EventKind}
        for expected in (
            "arrival",
            "mapping",
            "computation",
            "failure",
            "checkpoint",
            "restart",
            "recovery",
        ):
            assert expected in names

    def test_str_is_value(self):
        assert str(EventKind.FAILURE) == "failure"

    def test_payload_carried(self):
        payload = {"x": 1}
        e = Event(0.0, _noop, payload=payload)
        assert e.payload is payload

    def test_failure_priority_beats_default(self):
        assert FAILURE_PRIORITY < DEFAULT_PRIORITY
