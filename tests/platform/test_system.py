"""Unit tests for the HPCSystem allocation/active-node substrate."""

import pytest

from repro.platform.allocator import AllocationError
from repro.platform.presets import exascale_system


class TestCapacity:
    def test_total_tflops(self, small_system):
        assert small_system.total_tflops == pytest.approx(1200 * 12.0)

    def test_exascale_preset_reaches_exaflop(self, full_system):
        # 120 000 nodes x 12 TFLOPs = 1.44 EFLOPs > 1 EFLOP.
        assert full_system.total_tflops >= 1_000_000.0

    def test_fraction_to_nodes(self, full_system):
        assert full_system.fraction_to_nodes(0.01) == 1200
        assert full_system.fraction_to_nodes(1.0) == 120_000

    def test_fraction_bounds(self, full_system):
        with pytest.raises(ValueError):
            full_system.fraction_to_nodes(0.0)
        with pytest.raises(ValueError):
            full_system.fraction_to_nodes(1.5)


class TestAllocation:
    def test_allocate_updates_active(self, small_system):
        small_system.allocate("a", 100)
        assert small_system.active_nodes == 100
        assert small_system.idle_nodes == 1100

    def test_release_returns_nodes(self, small_system):
        small_system.allocate("a", 100)
        small_system.release("a")
        assert small_system.active_nodes == 0

    def test_duplicate_owner_rejected(self, small_system):
        small_system.allocate("a", 10)
        with pytest.raises(ValueError):
            small_system.allocate("a", 10)

    def test_release_unknown_owner_rejected(self, small_system):
        with pytest.raises(KeyError):
            small_system.release("ghost")

    def test_over_capacity_raises(self, small_system):
        with pytest.raises(AllocationError):
            small_system.allocate("big", 1201)

    def test_owner_of_node(self, small_system):
        alloc = small_system.allocate("a", 100)
        assert small_system.owner_of_node(alloc.block.start) == "a"
        assert small_system.owner_of_node(alloc.block.stop) is None

    def test_allocation_of(self, small_system):
        small_system.allocate("a", 10)
        assert small_system.allocation_of("a").nodes == 10
        assert small_system.allocation_of("b") is None

    def test_allocations_snapshot(self, small_system):
        small_system.allocate("a", 10)
        small_system.allocate("b", 20)
        owners = {a.owner for a in small_system.allocations()}
        assert owners == {"a", "b"}

    def test_invariants(self, small_system):
        small_system.allocate("a", 10)
        small_system.allocate("b", 20)
        small_system.release("a")
        small_system.check_invariants()


class TestFailureSampling:
    def test_sample_requires_active_nodes(self, small_system, rng):
        with pytest.raises(RuntimeError):
            small_system.sample_active_node(rng)

    def test_sample_returns_owner_and_member_node(self, small_system, rng):
        alloc = small_system.allocate("a", 50)
        owner, node = small_system.sample_active_node(rng)
        assert owner == "a"
        assert node in alloc.block

    def test_sample_distribution_proportional_to_size(self, small_system, rng):
        small_system.allocate("small", 100)
        small_system.allocate("big", 900)
        hits = {"small": 0, "big": 0}
        for _ in range(2000):
            owner, _ = small_system.sample_active_node(rng)
            hits[owner] += 1
        # Expect ~10% / ~90%.
        assert 0.05 < hits["small"] / 2000 < 0.15

    def test_sample_never_hits_idle_nodes(self, small_system, rng):
        alloc = small_system.allocate("a", 7)
        for _ in range(200):
            _, node = small_system.sample_active_node(rng)
            assert node in alloc.block


class TestConstruction:
    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            exascale_system(total_nodes=0)
