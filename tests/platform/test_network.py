"""Unit tests for the network model (Eq. 3 in particular)."""

import pytest

from repro.platform.network import NetworkModel
from repro.platform.presets import ndr_infiniband
from repro.units import MINUTE


class TestEq3:
    def test_pfs_transfer_formula(self):
        net = NetworkModel(latency_s=0.5e-6, bandwidth_gbs=600.0, switch_connections=12)
        # (32/600) * (1200/12) = 5.333... s
        assert net.pfs_transfer_time(32.0, 1200) == pytest.approx(32.0 / 600.0 * 100.0)

    def test_paper_full_system_window(self):
        """Sec. IV-B: checkpoint+restart of a full-system application
        takes 17-35 minutes depending on the application type."""
        net = ndr_infiniband()
        for mem in (32.0, 64.0):
            round_trip = 2.0 * net.pfs_transfer_time(mem, 120_000)
            assert 17 * MINUTE <= round_trip <= 36 * MINUTE

    def test_scales_linearly_in_nodes(self):
        net = ndr_infiniband()
        assert net.pfs_transfer_time(32.0, 2400) == pytest.approx(
            2 * net.pfs_transfer_time(32.0, 1200)
        )

    def test_scales_linearly_in_memory(self):
        net = ndr_infiniband()
        assert net.pfs_transfer_time(64.0, 1200) == pytest.approx(
            2 * net.pfs_transfer_time(32.0, 1200)
        )

    def test_invalid_args(self):
        net = ndr_infiniband()
        with pytest.raises(ValueError):
            net.pfs_transfer_time(-1.0, 10)
        with pytest.raises(ValueError):
            net.pfs_transfer_time(32.0, 0)


class TestPointToPoint:
    def test_latency_only_for_empty_message(self):
        net = ndr_infiniband()
        assert net.point_to_point_time(0.0) == pytest.approx(0.5e-6)

    def test_bandwidth_term(self):
        net = ndr_infiniband()
        assert net.point_to_point_time(600.0) == pytest.approx(1.0, rel=1e-5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ndr_infiniband().point_to_point_time(-1.0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(latency_s=-1.0, bandwidth_gbs=600.0, switch_connections=12),
            dict(latency_s=0.0, bandwidth_gbs=0.0, switch_connections=12),
            dict(latency_s=0.0, bandwidth_gbs=600.0, switch_connections=0),
        ],
    )
    def test_invalid_model_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkModel(**kwargs)
