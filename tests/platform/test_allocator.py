"""Unit tests for the contiguous allocator."""

import pytest

from repro.platform.allocator import AllocationError, Block, ContiguousAllocator


class TestBlock:
    def test_size_and_contains(self):
        b = Block(10, 20)
        assert b.size == 10
        assert 10 in b and 19 in b
        assert 9 not in b and 20 not in b

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Block(5, 5)
        with pytest.raises(ValueError):
            Block(5, 3)


class TestAllocate:
    def test_first_fit_from_zero(self):
        a = ContiguousAllocator(100)
        b = a.allocate(10)
        assert (b.start, b.stop) == (0, 10)

    def test_sequential_allocations_contiguous(self):
        a = ContiguousAllocator(100)
        b1 = a.allocate(10)
        b2 = a.allocate(20)
        assert b2.start == b1.stop

    def test_exhaustion_raises(self):
        a = ContiguousAllocator(10)
        a.allocate(10)
        with pytest.raises(AllocationError):
            a.allocate(1)

    def test_fragmentation_blocks_large_requests(self):
        a = ContiguousAllocator(30)
        b1 = a.allocate(10)
        a.allocate(10)
        a.allocate(10)
        a.release(b1)  # free 10 at the front, 10 elsewhere? no: only front
        assert a.free_nodes == 10
        assert not a.can_allocate(11)
        with pytest.raises(AllocationError):
            a.allocate(11)

    def test_skips_small_holes(self):
        a = ContiguousAllocator(100)
        hole = a.allocate(5)
        a.allocate(50)
        a.release(hole)
        big = a.allocate(20)  # must come from the tail, not the 5-hole
        assert big.start == 55

    def test_invalid_size(self):
        a = ContiguousAllocator(10)
        with pytest.raises(ValueError):
            a.allocate(0)


class TestRelease:
    def test_release_then_reallocate(self):
        a = ContiguousAllocator(10)
        b = a.allocate(10)
        a.release(b)
        assert a.allocate(10).start == 0

    def test_coalesce_with_both_neighbours(self):
        a = ContiguousAllocator(30)
        b1, b2, b3 = a.allocate(10), a.allocate(10), a.allocate(10)
        a.release(b1)
        a.release(b3)
        a.release(b2)  # middle release must merge all three
        assert a.largest_free_block == 30
        assert len(a.free_blocks()) == 1

    def test_double_free_rejected(self):
        a = ContiguousAllocator(10)
        b = a.allocate(5)
        a.release(b)
        with pytest.raises(ValueError):
            a.release(b)

    def test_release_out_of_range_rejected(self):
        a = ContiguousAllocator(10)
        with pytest.raises(ValueError):
            a.release(Block(5, 15))

    def test_partial_release_rejected(self):
        a = ContiguousAllocator(20)
        a.allocate(10)
        with pytest.raises(ValueError):
            a.release(Block(5, 8))  # a sub-block, not the allocation

    def test_made_up_block_rejected(self):
        a = ContiguousAllocator(20)
        a.allocate(10)
        with pytest.raises(ValueError):
            a.release(Block(12, 15))  # never allocated


class TestAccounting:
    def test_counters(self):
        a = ContiguousAllocator(100)
        a.allocate(30)
        assert a.allocated_nodes == 30
        assert a.free_nodes == 70
        assert a.largest_free_block == 70

    def test_can_allocate(self):
        a = ContiguousAllocator(10)
        assert a.can_allocate(10)
        a.allocate(6)
        assert a.can_allocate(4)
        assert not a.can_allocate(5)

    def test_can_allocate_invalid(self):
        with pytest.raises(ValueError):
            ContiguousAllocator(10).can_allocate(0)

    def test_invariants_hold_after_mixed_ops(self):
        a = ContiguousAllocator(50)
        blocks = [a.allocate(7) for _ in range(6)]
        for b in blocks[::2]:
            a.release(b)
        a.check_invariants()
        a.allocate(7)
        a.check_invariants()

    def test_total_must_be_positive(self):
        with pytest.raises(ValueError):
            ContiguousAllocator(0)
