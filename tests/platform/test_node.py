"""Unit tests for the node model."""

import pytest

from repro.platform.node import NodeSpec
from repro.platform.presets import exascale_node, sunway_taihulight_node


class TestNodeSpec:
    def test_memory_write_time(self):
        node = NodeSpec(cores=4, tflops=1.0, memory_gb=64.0, memory_bandwidth_gbs=320.0)
        assert node.memory_write_time(32.0) == pytest.approx(0.1)

    def test_memory_write_time_zero(self):
        node = exascale_node()
        assert node.memory_write_time(0.0) == 0.0

    def test_memory_write_time_negative_rejected(self):
        with pytest.raises(ValueError):
            exascale_node().memory_write_time(-1.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cores", 0),
            ("tflops", 0.0),
            ("memory_gb", -1.0),
            ("memory_bandwidth_gbs", 0.0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        kwargs = dict(cores=4, tflops=1.0, memory_gb=64.0, memory_bandwidth_gbs=320.0)
        kwargs[field] = value
        with pytest.raises(ValueError):
            NodeSpec(**kwargs)


class TestPresets:
    def test_exascale_node_paper_values(self):
        node = exascale_node()
        assert node.cores == 1028
        assert node.tflops == pytest.approx(12.0)
        assert node.memory_gb == pytest.approx(128.0)
        assert node.memory_bandwidth_gbs == pytest.approx(320.0)

    def test_taihulight_node_reference(self):
        node = sunway_taihulight_node()
        assert node.cores == 260
        assert node.memory_gb == pytest.approx(32.0)
