"""Unit tests for the ablation sweeps."""

import pytest

from repro.experiments.sweep import (
    checkpoint_interval_sweep_sim,
    recovery_parallelism_sweep_sim,
    render_sweep,
    severity_pmf_sweep_sim,
)

SMALL = dict(trials=3, system_nodes=2400, fraction=0.25)


class TestSeverityPMFSweep:
    def test_harsher_pmf_lowers_multilevel_efficiency(self):
        rows = severity_pmf_sweep_sim(
            pmfs=[(0.9, 0.08, 0.02), (0.2, 0.2, 0.6)], **SMALL
        )
        assert rows[0].stats.mean > rows[1].stats.mean


class TestSigmaSweep:
    def test_rows_labelled(self):
        rows = recovery_parallelism_sweep_sim(sigmas=[1.0, 8.0], **SMALL)
        assert [r.label for r in rows] == ["sigma=1", "sigma=8"]
        for row in rows:
            assert 0 < row.stats.mean <= 1


class TestIntervalSweep:
    def test_daly_optimum_is_best(self):
        """Eq. 4's tau should beat strong perturbations in-simulation.
        Uses a low MTBF so checkpointing costs actually matter."""
        from repro.units import years

        rows = checkpoint_interval_sweep_sim(
            scale_factors=[0.1, 1.0, 10.0],
            trials=6,
            system_nodes=2400,
            fraction=0.5,
            node_mtbf_s=years(0.5),
        )
        by_label = {r.label: r.stats.mean for r in rows}
        assert by_label["tau x 1"] >= by_label["tau x 0.1"] - 0.01
        assert by_label["tau x 1"] >= by_label["tau x 10"] - 0.01

    def test_invalid_factor(self):
        from repro.experiments.sweep import _ScaledIntervalCheckpointRestart

        with pytest.raises(ValueError):
            _ScaledIntervalCheckpointRestart(0.0)


class TestRendering:
    def test_render(self):
        rows = recovery_parallelism_sweep_sim(sigmas=[2.0], **SMALL)
        text = render_sweep(rows, "TITLE")
        assert text.startswith("TITLE")
        assert "sigma=2" in text
