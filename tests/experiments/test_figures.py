"""End-to-end tests of the figure drivers at reduced scale.

Full-scale reproductions (paper trial counts on the 120 000-node
machine) live in the benchmark harness; here each driver runs on a
small machine with few trials and must produce structurally complete,
correctly-labelled output.
"""

import pytest

from repro.experiments import fig1, fig2, fig3, fig4, fig5
from repro.units import years

SMALL_SCALING = dict(fractions=(0.1, 0.5), trials=2, system_nodes=1200)
SMALL_DC = dict(patterns=1, arrivals_per_pattern=8, system_nodes=2400)


class TestFig1Driver:
    def test_runs_and_renders(self):
        result = fig1.run(fig1.config(**SMALL_SCALING))
        text = fig1.render(result)
        assert "Fig. 1" in text
        assert "A32" in fig1.TITLE

    def test_config_defaults(self):
        cfg = fig1.config()
        assert cfg.app_type == "A32"
        assert cfg.trials == 200
        assert cfg.node_mtbf_s == pytest.approx(years(10))


class TestFig2Driver:
    def test_config_is_d64(self):
        assert fig2.config().app_type == "D64"

    def test_crossover_detection(self):
        result = fig2.run(fig2.config(**SMALL_SCALING))
        cross = fig2.crossover_fraction(result)
        assert cross is None or cross in (0.1, 0.5)


class TestFig3Driver:
    def test_low_mtbf_default(self):
        assert fig3.config().node_mtbf_s == pytest.approx(years(2.5))

    def test_runs(self):
        result = fig3.run(fig3.config(**SMALL_SCALING))
        assert len(result.cells) == 10


class TestFig4Driver:
    def test_selector_names(self):
        names = set(fig4.selectors())
        assert names == {"checkpoint_restart", "multilevel", "parallel_recovery"}

    def test_runs_and_renders(self):
        result = fig4.run(fig4.config(**SMALL_DC))
        text = fig4.render(result)
        assert "Fig. 4" in text
        assert "ideal" in text
        # 3 RMs x (3 techniques + ideal).
        assert len(result.cells) == 12

    def test_best_per_rm(self):
        result = fig4.run(fig4.config(**SMALL_DC))
        best = fig4.best_technique_per_rm(result)
        assert set(best) == {"fcfs", "random", "slack"}
        assert all(v != "ideal" for v in best.values())


class TestFig5Driver:
    def test_runs_all_biases(self):
        result = fig5.run(fig5.config(**SMALL_DC))
        # 4 biases x 3 RMs x 2 selectors.
        assert len(result.cells) == 24
        for bias in fig5.BIASES:
            result.cell("slack", "selection", bias)

    def test_benefit_table_structure(self):
        result = fig5.run(fig5.config(**SMALL_DC))
        benefit = fig5.selection_benefit(result)
        assert set(benefit) == {b.value for b in fig5.BIASES}
        assert set(benefit["unbiased"]) == {"fcfs", "random", "slack"}

    def test_render_mentions_selection(self):
        result = fig5.run(fig5.config(**SMALL_DC))
        text = fig5.render(result)
        assert "selection" in text
        assert "high_memory" in text


class TestFig5Significance:
    def test_paired_significance_structure(self):
        result = fig5.run(fig5.config(**SMALL_DC))
        table = fig5.selection_benefit_significance(result)
        assert set(table) == {b.value for b in fig5.BIASES}
        for per_rm in table.values():
            for summary in per_rm.values():
                assert summary.diff.n == SMALL_DC["patterns"]
