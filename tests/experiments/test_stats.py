"""Unit tests for summary statistics."""

import numpy as np
import pytest

from repro.experiments.stats import SummaryStats


class TestSummaryStats:
    def test_mean_and_std(self):
        s = SummaryStats.from_samples([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(np.std([1, 2, 3], ddof=1))

    def test_single_sample(self):
        s = SummaryStats.from_samples([5.0])
        assert s.std == 0.0
        assert s.sem == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SummaryStats.from_samples([])

    def test_sem(self):
        s = SummaryStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert s.sem == pytest.approx(s.std / 2.0)

    def test_ci95_contains_mean(self):
        s = SummaryStats.from_samples(list(range(100)))
        lo, hi = s.ci95()
        assert lo < s.mean < hi
        assert hi - lo == pytest.approx(2 * 1.96 * s.sem)

    def test_str(self):
        assert "n=2" in str(SummaryStats.from_samples([1.0, 2.0]))
