"""Unit tests for summary statistics."""

import math

import numpy as np
import pytest

from repro.experiments.stats import SummaryStats


class TestSummaryStats:
    def test_mean_and_std(self):
        s = SummaryStats.from_samples([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(np.std([1, 2, 3], ddof=1))

    def test_single_sample_never_converged(self):
        # Regression: one observation used to report sem == 0.0, which
        # read as a zero-width (fully converged) confidence interval.
        # Adaptive early-stopping must see an infinite half-width.
        s = SummaryStats.from_samples([5.0])
        assert s.std == 0.0
        assert s.sem == math.inf
        lo, hi = s.ci95()
        assert lo == -math.inf and hi == math.inf

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SummaryStats.from_samples([])

    def test_sem(self):
        s = SummaryStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert s.sem == pytest.approx(s.std / 2.0)

    def test_ci95_contains_mean(self):
        s = SummaryStats.from_samples(list(range(100)))
        lo, hi = s.ci95()
        assert lo < s.mean < hi
        assert hi - lo == pytest.approx(2 * 1.96 * s.sem)

    def test_str(self):
        assert "n=2" in str(SummaryStats.from_samples([1.0, 2.0]))


class TestMerge:
    """`merge()` must agree with `from_samples` on the concatenation."""

    def _check(self, a, b):
        merged = SummaryStats.from_samples(a).merge(SummaryStats.from_samples(b))
        direct = SummaryStats.from_samples(list(a) + list(b))
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-12)
        assert merged.std == pytest.approx(direct.std, rel=1e-9, abs=1e-12)

    def test_basic(self):
        self._check([1.0, 2.0, 3.0], [4.0, 5.0])

    def test_singletons(self):
        self._check([1.0], [2.0])

    def test_single_into_many(self):
        self._check([0.5], [0.1, 0.9, 0.4, 0.7])

    def test_identical_values(self):
        self._check([2.0, 2.0], [2.0, 2.0, 2.0])

    def test_property_random_partitions(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        @hypothesis.given(
            samples=st.lists(
                st.floats(min_value=-1e6, max_value=1e6, width=32),
                min_size=2,
                max_size=40,
            ),
            split=st.integers(min_value=1, max_value=39),
        )
        def check(samples, split):
            hypothesis.assume(1 <= split < len(samples))
            self._check(samples[:split], samples[split:])

        check()

    def test_merge_chain_matches_batched_trials(self):
        # The controller's exact usage: batches of an exhaustive run,
        # merged left to right, equal the full-run summary.
        rng = np.random.default_rng(7)
        samples = rng.normal(0.8, 0.05, size=60).tolist()
        batches = [samples[i : i + 25] for i in range(0, 60, 25)]
        acc = SummaryStats.from_samples(batches[0])
        for batch in batches[1:]:
            acc = acc.merge(SummaryStats.from_samples(batch))
        direct = SummaryStats.from_samples(samples)
        assert acc.n == direct.n
        assert acc.mean == pytest.approx(direct.mean, rel=1e-12)
        assert acc.std == pytest.approx(direct.std, rel=1e-9)
