"""Trial-offset determinism: batch ``[k, k+n)`` is byte-identical to
that slice of an exhaustive run.

This is the contract the adaptive campaign controller stands on: a
cell's per-trial randomness is a pure function of ``(seed, trial
index)``, so submitting a trial budget in offset batches and
concatenating the results reproduces a single full run exactly — the
early-stopped prefix of an adaptive cell equals the prefix of the
exhaustive cell, bit for bit.
"""

import pytest

from repro.core.single_app import SingleAppConfig, run_trials
from repro.experiments.entry import RequestError, StudyRequest
from repro.platform.presets import exascale_system
from repro.resilience import get_technique
from repro.scenarios.runtime import run_scenario
from repro.scenarios.schema import parse_scenario
from repro.units import years
from repro.workload.synthetic import make_application


@pytest.fixture(scope="module")
def cell():
    system = exascale_system()
    app = make_application("A32", nodes=system.fraction_to_nodes(0.05))
    technique = get_technique("checkpoint_restart")
    config = SingleAppConfig(node_mtbf_s=years(5.0))
    return app, technique, system, config


class TestRunTrialsSlice:
    def test_offset_batches_concatenate_to_full_run(self, cell):
        app, technique, system, config = cell
        full = run_trials(app, technique, system, 9, config=config)
        batches = []
        for start, count in ((0, 4), (4, 3), (7, 2)):
            batch = run_trials(
                app, technique, system, count, config=config,
                first_trial=start,
            )
            batches.extend(batch.efficiencies)
        assert batches == full.efficiencies

    def test_disjoint_slices_differ(self, cell):
        app, technique, system, config = cell
        first = run_trials(app, technique, system, 3, config=config)
        shifted = run_trials(
            app, technique, system, 3, config=config, first_trial=3
        )
        assert first.efficiencies != shifted.efficiencies

    def test_negative_offset_rejected(self, cell):
        app, technique, system, config = cell
        with pytest.raises(ValueError):
            run_trials(
                app, technique, system, 2, config=config, first_trial=-1
            )


SCENARIO = {
    "scenario": {"name": "offset-slices"},
    "failures": {"regime": "poisson", "mtbf_years": 5.0},
    "workload": {"study": "scaling", "app_type": "A32", "fractions": [0.05]},
    "techniques": {"names": ["checkpoint_restart"]},
}


class TestScenarioRuntimeOffset:
    def test_scenario_batches_are_prefix_slices(self, cell):
        """Each offset batch's summary equals the stats of the same
        slice of an exhaustive run, exactly (same floats, same code
        path) — so merged batches reproduce the full cell."""
        app, technique, system, config = cell
        spec = parse_scenario(SCENARIO, source="<test>")
        full_trials = run_trials(app, technique, system, 6, config=config)
        merged = None
        for start, count in ((0, 2), (2, 2), (4, 2)):
            part = run_scenario(spec, trials=count, trial_offset=start)
            batch = part[0][1].cells[0].stats
            from repro.experiments.stats import SummaryStats

            expected = SummaryStats.from_samples(
                full_trials.efficiencies[start:start + count]
            )
            assert batch == expected
            merged = batch if merged is None else merged.merge(batch)
        assert merged.n == 6
        assert merged.mean == pytest.approx(
            run_scenario(spec, trials=6)[0][1].cells[0].stats.mean,
            rel=1e-12,
        )

    def test_trace_replay_rejects_offset(self):
        doc = {
            "scenario": {"name": "trace-offset"},
            "failures": {"regime": "trace", "trace_file": "x.jsonl"},
            "workload": {"study": "scaling", "app_type": "A32",
                         "fractions": [0.05]},
        }
        spec = parse_scenario(doc, source="<test>")
        with pytest.raises(ValueError):
            run_scenario(spec, trials=1, trial_offset=1)


class TestStudyRequestOffset:
    @staticmethod
    def _scenario_json():
        from repro.scenarios.spec import canonical_json

        return canonical_json(parse_scenario(SCENARIO, source="<test>"))

    def test_offset_only_for_scenario_requests(self):
        request = StudyRequest(experiment="fig1", trials=2, trial_offset=5)
        with pytest.raises(RequestError):
            request.validate()

    def test_offset_roundtrips_through_payload(self):
        request = StudyRequest(
            experiment="scenario",
            trials=2,
            scenario=self._scenario_json(),
            trial_offset=7,
        )
        payload = request.to_payload()
        assert payload["trial_offset"] == 7
        assert StudyRequest.from_payload(payload).trial_offset == 7

    def test_zero_offset_keeps_old_wire_shape(self):
        request = StudyRequest(
            experiment="scenario", trials=2, scenario=self._scenario_json()
        )
        assert "trial_offset" not in request.to_payload()
