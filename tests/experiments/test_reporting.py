"""Unit tests for result rendering."""

import pytest

from repro.core.selection import FixedSelector
from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig
from repro.experiments.reporting import (
    render_datacenter_study,
    render_scaling_study,
)
from repro.experiments.runner import run_datacenter_study, run_scaling_study
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.workload.patterns import PatternBias


@pytest.fixture(scope="module")
def scaling_result():
    config = ScalingStudyConfig(fractions=(0.5, 1.0), trials=2, system_nodes=1200)
    return run_scaling_study(config)


class TestScalingRendering:
    def test_contains_all_techniques(self, scaling_result):
        text = render_scaling_study(scaling_result, "TITLE")
        for name in scaling_result.techniques():
            assert name in text

    def test_contains_fraction_rows(self, scaling_result):
        text = render_scaling_study(scaling_result, "TITLE")
        assert "\n50 " in text or "\n50 " in text.replace("|", " ")
        assert "100" in text

    def test_infeasible_rendered_as_dashes(self, scaling_result):
        text = render_scaling_study(scaling_result, "TITLE")
        assert "---" in text  # redundancy at 100% of 1200 nodes

    def test_title_first_line(self, scaling_result):
        assert render_scaling_study(scaling_result, "MY TITLE").startswith("MY TITLE")

    def test_best_line_present(self, scaling_result):
        assert "best per size" in render_scaling_study(scaling_result, "T")


class TestDatacenterRendering:
    def test_grid_rendering(self):
        config = DatacenterStudyConfig(
            patterns=1, arrivals_per_pattern=5, system_nodes=2400
        )
        selectors = {"parallel_recovery": lambda: FixedSelector(ParallelRecovery())}
        study, _ = run_datacenter_study(
            config, selectors, rm_names=["fcfs"], include_ideal=True
        )
        text = render_datacenter_study(
            study,
            "TITLE",
            rm_names=["fcfs"],
            selector_names=["parallel_recovery", "ideal"],
        )
        assert "fcfs" in text
        assert "parallel_recovery" in text
        assert "ideal" in text
        assert "+/-" in text

    def test_multi_bias_sections(self):
        config = DatacenterStudyConfig(
            patterns=1, arrivals_per_pattern=5, system_nodes=2400
        )
        selectors = {"parallel_recovery": lambda: FixedSelector(ParallelRecovery())}
        biases = (PatternBias.UNBIASED, PatternBias.LARGE)
        study, _ = run_datacenter_study(
            config, selectors, rm_names=["fcfs"], biases=biases
        )
        text = render_datacenter_study(
            study,
            "TITLE",
            rm_names=["fcfs"],
            selector_names=["parallel_recovery"],
            biases=biases,
        )
        assert "unbiased" in text
        assert "large" in text
