"""Unit tests for the scaling/datacenter study runners.

These use scaled-down configurations (small machine, few trials) so the
full figure machinery runs end-to-end in seconds.
"""

import pytest

from repro.core.selection import FixedSelector
from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig
from repro.experiments.runner import (
    generate_patterns,
    run_datacenter_study,
    run_scaling_study,
)
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.workload.patterns import PatternBias


@pytest.fixture(scope="module")
def small_scaling_result():
    config = ScalingStudyConfig(
        app_type="A32",
        fractions=(0.1, 0.5),
        trials=3,
        system_nodes=2400,
    )
    return run_scaling_study(config)


class TestScalingStudy:
    def test_grid_complete(self, small_scaling_result):
        # 2 fractions x 5 techniques.
        assert len(small_scaling_result.cells) == 10

    def test_series_sorted(self, small_scaling_result):
        series = small_scaling_result.series("checkpoint_restart")
        assert [c.fraction for c in series] == [0.1, 0.5]

    def test_cell_lookup(self, small_scaling_result):
        cell = small_scaling_result.cell(0.1, "multilevel")
        assert cell.stats is not None
        assert cell.stats.n == 3
        assert 0 < cell.mean_efficiency <= 1

    def test_missing_cell_raises(self, small_scaling_result):
        with pytest.raises(KeyError):
            small_scaling_result.cell(0.33, "multilevel")

    def test_cell_lookup_tolerates_float_arithmetic(self):
        # 0.1 + 0.2 != 0.3 exactly; the lookup must still find the
        # cell produced from the literal 0.3 grid point.
        config = ScalingStudyConfig(
            app_type="A32", fractions=(0.3,), trials=1, system_nodes=1200
        )
        result = run_scaling_study(config)
        cell = result.cell(0.1 + 0.2, "parallel_recovery")
        assert cell.fraction == 0.3
        assert result.best_technique(0.1 + 0.2) in {
            c.technique for c in result.cells
        }
        # Distinct grid points must never alias.
        with pytest.raises(KeyError):
            result.cell(0.3 + 1e-6, "parallel_recovery")

    def test_techniques_order(self, small_scaling_result):
        assert small_scaling_result.techniques()[0] == "checkpoint_restart"

    def test_best_technique(self, small_scaling_result):
        assert small_scaling_result.best_technique(0.1) in {
            "parallel_recovery",
            "multilevel",
            "redundancy_r2",
        }

    def test_progress_callback(self):
        messages = []
        config = ScalingStudyConfig(
            fractions=(0.5,), trials=1, system_nodes=1200
        )
        run_scaling_study(config, progress=messages.append)
        assert len(messages) == 5  # one per technique

    def test_infeasible_cells_marked(self, small_scaling_result):
        cell = small_scaling_result.cell(0.5, "redundancy_r2")
        # r=2 at 50% of a 2400-node machine = 2400 nodes: feasible.
        assert not cell.infeasible
        config = ScalingStudyConfig(
            fractions=(1.0,), trials=1, system_nodes=1200
        )
        result = run_scaling_study(config)
        assert result.cell(1.0, "redundancy_r2").infeasible
        assert result.cell(1.0, "redundancy_r2").mean_efficiency == 0.0


class TestPatternGeneration:
    def test_shared_pattern_set(self):
        config = DatacenterStudyConfig(patterns=3, system_nodes=2400)
        a = generate_patterns(config, PatternBias.UNBIASED)
        b = generate_patterns(config, PatternBias.UNBIASED)
        assert len(a) == 3
        assert [p.arriving_apps[0].nodes for p in a] == [
            p.arriving_apps[0].nodes for p in b
        ]


class TestDatacenterStudy:
    def test_grid_and_determinism(self):
        config = DatacenterStudyConfig(
            patterns=2, arrivals_per_pattern=10, system_nodes=2400
        )
        selectors = {
            "parallel_recovery": lambda: FixedSelector(ParallelRecovery())
        }
        study, _ = run_datacenter_study(
            config, selectors, rm_names=["fcfs"], include_ideal=True
        )
        assert len(study.cells) == 2  # (pr, ideal) x fcfs
        cell = study.cell("fcfs", "parallel_recovery", PatternBias.UNBIASED)
        assert cell.stats.n == 2
        assert all(0 <= s <= 100 for s in cell.samples)

        study2, _ = run_datacenter_study(
            config, selectors, rm_names=["fcfs"], include_ideal=True
        )
        assert (
            study2.cell("fcfs", "parallel_recovery", PatternBias.UNBIASED).samples
            == cell.samples
        )

    def test_keep_results(self):
        config = DatacenterStudyConfig(
            patterns=1, arrivals_per_pattern=5, system_nodes=2400
        )
        selectors = {
            "parallel_recovery": lambda: FixedSelector(ParallelRecovery())
        }
        study, raw = run_datacenter_study(
            config, selectors, rm_names=["fcfs"], keep_results=True
        )
        assert len(raw) == 1
        assert raw[0].rm_name == "fcfs"

    def test_biases_generate_separate_cells(self):
        config = DatacenterStudyConfig(
            patterns=1, arrivals_per_pattern=5, system_nodes=2400
        )
        selectors = {
            "parallel_recovery": lambda: FixedSelector(ParallelRecovery())
        }
        study, _ = run_datacenter_study(
            config,
            selectors,
            rm_names=["fcfs"],
            biases=(PatternBias.UNBIASED, PatternBias.LARGE),
        )
        assert len(study.cells) == 2
        study.cell("fcfs", "parallel_recovery", PatternBias.LARGE)
