"""Unit tests for paired statistics."""

import math

import pytest

from repro.experiments.stats import PairedSummary, paired_summary


class TestPairedSummary:
    def test_mean_difference(self):
        result = paired_summary([2.0, 3.0, 4.0], [1.0, 1.0, 1.0])
        assert result.diff.mean == pytest.approx(2.0)
        assert result.diff.n == 3

    def test_significant_difference(self):
        a = [0.90, 0.92, 0.89, 0.93, 0.90, 0.91]
        b = [0.80, 0.83, 0.78, 0.81, 0.82, 0.80]
        result = paired_summary(a, b)
        assert result.significant
        assert result.p_value < 0.01

    def test_noise_not_significant(self):
        a = [0.5, 0.7, 0.4, 0.6]
        b = [0.6, 0.5, 0.6, 0.45]
        result = paired_summary(a, b)
        assert not result.significant

    def test_constant_differences_give_nan_p(self):
        result = paired_summary([1.0, 2.0, 3.0], [0.5, 1.5, 2.5])
        assert math.isnan(result.p_value)
        assert not result.significant
        assert result.diff.mean == pytest.approx(0.5)

    def test_single_pair(self):
        result = paired_summary([1.0], [0.4])
        assert result.diff.mean == pytest.approx(0.6)
        assert math.isnan(result.p_value)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_summary([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paired_summary([], [])

    def test_str(self):
        text = str(paired_summary([1.0, 2.0], [0.0, 0.5]))
        assert "diff" in text and "p=" in text
