"""Unit tests for ASCII bar-chart rendering."""

import pytest

from repro.core.selection import FixedSelector
from repro.experiments.barchart import _bar, datacenter_barchart, scaling_barchart
from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig
from repro.experiments.runner import run_datacenter_study, run_scaling_study
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.workload.patterns import PatternBias


class TestBarPrimitive:
    def test_full_scale(self):
        assert _bar(1.0, 1.0, 10) == "#" * 10

    def test_half(self):
        assert _bar(0.5, 1.0, 10) == "#####     "

    def test_half_cell_marker(self):
        assert _bar(0.55, 1.0, 10) == "#####+    "

    def test_zero(self):
        assert _bar(0.0, 1.0, 10) == " " * 10

    def test_degenerate_scale(self):
        assert _bar(1.0, 0.0, 10) == " " * 10

    def test_width_respected(self):
        assert len(_bar(0.37, 1.0, 25)) == 25


class TestScalingBarchart:
    @pytest.fixture(scope="class")
    def result(self):
        config = ScalingStudyConfig(
            fractions=(0.5, 1.0), trials=2, system_nodes=1200
        )
        return run_scaling_study(config)

    def test_contains_all_rows(self, result):
        text = scaling_barchart(result)
        for technique in result.techniques():
            assert text.count(technique) == 2  # one per fraction group

    def test_infeasible_rendered(self, result):
        assert "(infeasible)" in scaling_barchart(result)

    def test_title(self, result):
        assert scaling_barchart(result, title="HEAD").startswith("HEAD")

    def test_bars_reflect_ordering(self, result):
        """The technique with higher mean efficiency gets the longer bar."""
        text = scaling_barchart(result, width=40)
        lines = [l for l in text.splitlines() if "|" in l]
        lengths = {}
        for line in lines[:5]:  # first fraction group
            name = line.split("|")[0].split()[-1]
            bar = line.split("|")[1]
            lengths[name] = bar.count("#")
        cells = {t: result.cell(0.5, t).mean_efficiency for t in lengths}
        best = max(cells, key=cells.get)
        worst = min(cells, key=cells.get)
        assert lengths[best] >= lengths[worst]


class TestDatacenterBarchart:
    def test_renders_groups(self):
        config = DatacenterStudyConfig(
            patterns=1, arrivals_per_pattern=6, system_nodes=2400
        )
        selectors = {"parallel_recovery": lambda: FixedSelector(ParallelRecovery())}
        study, _ = run_datacenter_study(
            config, selectors, rm_names=["fcfs", "slack"], include_ideal=True
        )
        text = datacenter_barchart(
            study,
            rm_names=["fcfs", "slack"],
            selector_names=["parallel_recovery", "ideal"],
            bias=PatternBias.UNBIASED,
            title="T",
        )
        assert text.startswith("T")
        assert "fcfs" in text and "slack" in text
        assert text.count("%") == 4
