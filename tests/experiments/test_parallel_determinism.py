"""Determinism regression tests for the parallel trial executor.

The contract that makes ``--jobs N`` safe: a study fanned out over
worker processes must produce cell-by-cell *bit-identical* results to
the serial run, because every trial's seed derives from the study seed
and the trial/cell identity — never from execution order.
"""

import pytest

from repro.core.selection import FixedSelector
from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig
from repro.experiments.parallel import ExecutorOptions
from repro.experiments.runner import run_datacenter_study, run_scaling_study
from repro.resilience.parallel_recovery import ParallelRecovery


@pytest.fixture(scope="module")
def scaling_config():
    return ScalingStudyConfig(
        app_type="A32", fractions=(0.1, 0.5), trials=3, system_nodes=2400
    )


@pytest.fixture(scope="module")
def datacenter_config():
    return DatacenterStudyConfig(
        patterns=2, arrivals_per_pattern=8, system_nodes=2400
    )


class TestScalingDeterminism:
    def test_jobs4_matches_jobs1_bitwise(self, scaling_config):
        serial = run_scaling_study(scaling_config)
        parallel = run_scaling_study(
            scaling_config, options=ExecutorOptions(jobs=4)
        )
        assert len(serial.cells) == len(parallel.cells)
        for a, b in zip(serial.cells, parallel.cells):
            assert a.fraction == b.fraction
            assert a.technique == b.technique
            assert a.infeasible == b.infeasible
            # SummaryStats is a frozen dataclass of floats: == is bitwise.
            assert a.stats == b.stats

    def test_parallel_preserves_cell_order(self, scaling_config):
        serial = run_scaling_study(scaling_config)
        parallel = run_scaling_study(
            scaling_config, options=ExecutorOptions(jobs=3)
        )
        assert [(c.fraction, c.technique) for c in serial.cells] == [
            (c.fraction, c.technique) for c in parallel.cells
        ]

    def test_parallel_progress_messages_match_serial(self, scaling_config):
        serial_msgs, parallel_msgs = [], []
        run_scaling_study(scaling_config, progress=serial_msgs.append)
        run_scaling_study(
            scaling_config,
            progress=parallel_msgs.append,
            options=ExecutorOptions(jobs=4),
        )
        assert serial_msgs == parallel_msgs


class TestDatacenterDeterminism:
    def test_jobs4_matches_jobs1_bitwise(self, datacenter_config):
        selectors = {
            "parallel_recovery": lambda: FixedSelector(ParallelRecovery())
        }
        serial, _ = run_datacenter_study(
            datacenter_config, selectors, rm_names=["fcfs"], include_ideal=True
        )
        parallel, _ = run_datacenter_study(
            datacenter_config,
            selectors,
            rm_names=["fcfs"],
            include_ideal=True,
            options=ExecutorOptions(jobs=4),
        )
        assert len(serial.cells) == len(parallel.cells)
        for a, b in zip(serial.cells, parallel.cells):
            assert (a.rm_name, a.selector_name, a.bias) == (
                b.rm_name,
                b.selector_name,
                b.bias,
            )
            assert a.samples == b.samples
            assert a.stats == b.stats

    def test_keep_results_parallel_matches_serial(self, datacenter_config):
        selectors = {
            "parallel_recovery": lambda: FixedSelector(ParallelRecovery())
        }
        _, raw_serial = run_datacenter_study(
            datacenter_config, selectors, rm_names=["fcfs"], keep_results=True
        )
        _, raw_parallel = run_datacenter_study(
            datacenter_config,
            selectors,
            rm_names=["fcfs"],
            keep_results=True,
            options=ExecutorOptions(jobs=2),
        )
        assert len(raw_serial) == len(raw_parallel) == 2
        assert [r.pattern_index for r in raw_serial] == [
            r.pattern_index for r in raw_parallel
        ]
        assert [r.dropped_pct for r in raw_serial] == [
            r.dropped_pct for r in raw_parallel
        ]
