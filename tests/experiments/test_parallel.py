"""Unit tests for the parallel trial executor, result cache, and
progress metrics."""

import pickle

import pytest

from repro.core import single_app
from repro.experiments.config import ScalingStudyConfig
from repro.experiments.parallel import (
    CACHE_VERSION,
    CellTask,
    ExecutorMetrics,
    ExecutorOptions,
    ResultCache,
    TrialExecutor,
    cache_key,
    canonicalize,
    technique_fingerprint,
)
from repro.experiments.runner import run_scaling_study
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.resilience.redundancy import Redundancy


SMALL = ScalingStudyConfig(
    app_type="A32", fractions=(0.1,), trials=2, system_nodes=1200
)


class TestCacheKey:
    def test_stable_across_calls(self):
        assert cache_key("a", 1, SMALL) == cache_key("a", 1, SMALL)

    def test_dict_order_invariant(self):
        assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})

    def test_changes_with_any_config_field(self):
        base = cache_key(SMALL)
        assert cache_key(SMALL.quick(trials=3)) != base
        assert cache_key(ScalingStudyConfig(
            app_type="D64", fractions=(0.1,), trials=2, system_nodes=1200
        )) != base

    def test_distinguishes_types_from_strings(self):
        assert cache_key(1) != cache_key("1")
        assert cache_key((1, 2)) == cache_key([1, 2])  # sequences normalise

    def test_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_technique_fingerprint_separates_parameters(self):
        a = technique_fingerprint(ParallelRecovery())
        b = technique_fingerprint(ParallelRecovery(recovery_parallelism=2.0))
        assert a != b
        assert technique_fingerprint(Redundancy(2))[1] != a[1]


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("cell")
        assert cache.get(key) == (False, None)
        cache.put(key, (False, (0.5, 0.6)))
        assert cache.get(key) == (True, (False, (0.5, 0.6)))
        assert cache.hits == 1 and cache.misses == 1

    def test_disabled_cache_never_hits(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        cache.put("k", 1)
        assert cache.get("k") == (False, None)
        assert not list(tmp_path.iterdir())

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("cell")
        cache.put(key, 42)
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:3])
        assert cache.get(key) == (False, None)

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("cell")
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_bytes(b"not a pickle at all")
        assert cache.get(key) == (False, None)

    def test_version_skew_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("cell")
        cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_bytes(
            pickle.dumps({"version": CACHE_VERSION + 1, "value": 42})
        )
        assert cache.get(key) == (False, None)

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache_key("a"), 1)
        cache.put(cache_key("b"), 2)
        assert cache.clear() == 2
        assert cache.get(cache_key("a")) == (False, None)


class TestExecutor:
    def test_results_in_submission_order(self):
        tasks = [CellTask(fn=lambda i=i: i * i) for i in range(20)]
        assert TrialExecutor(ExecutorOptions(jobs=4)).run(tasks) == [
            i * i for i in range(20)
        ]

    def test_serial_and_parallel_agree(self):
        tasks = [CellTask(fn=lambda i=i: i + 100) for i in range(7)]
        serial = TrialExecutor().run(tasks)
        parallel = TrialExecutor(ExecutorOptions(jobs=3)).run(tasks)
        assert serial == parallel

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ExecutorOptions(jobs=0)

    def test_metrics_accumulate(self, tmp_path):
        metrics = ExecutorMetrics()
        options = ExecutorOptions(
            jobs=1, cache=True, cache_dir=tmp_path, metrics=metrics
        )
        tasks = [
            CellTask(fn=lambda: 1.0, key_parts=("t", 1), trials=5),
            CellTask(fn=lambda: 2.0, key_parts=("t", 2), trials=5),
        ]
        TrialExecutor(options).run(tasks)
        assert metrics.cells_done == 2
        assert metrics.cells_computed == 2
        assert metrics.trials_done == 10
        assert metrics.cache_hits == 0
        TrialExecutor(options).run(tasks)
        assert metrics.cells_done == 4
        assert metrics.cache_hits == 2
        assert metrics.hit_rate == pytest.approx(0.5)
        assert metrics.trials_per_sec > 0
        assert "cells" in metrics.render("x")

    def test_on_cell_called_in_order(self, tmp_path):
        seen = []
        options = ExecutorOptions(
            jobs=2, cache=True, cache_dir=tmp_path, on_cell=seen.append
        )
        tasks = [
            CellTask(fn=lambda i=i: i, key_parts=("c", i), label=f"cell-{i}")
            for i in range(4)
        ]
        TrialExecutor(options).run(tasks)
        assert [p.index for p in seen] == [0, 1, 2, 3]
        assert all(not p.cached for p in seen)
        assert "cell-0" in seen[0].render()

    def test_uncacheable_tasks_always_recompute(self, tmp_path):
        calls = []
        options = ExecutorOptions(cache=True, cache_dir=tmp_path)
        task = CellTask(fn=lambda: calls.append(1) or len(calls))
        assert TrialExecutor(options).run([task]) == [1]
        assert TrialExecutor(options).run([task]) == [2]


class TestStudyCacheBehaviour:
    """The satellite contract: warm reruns do zero simulation work."""

    def _options(self, tmp_path, **kw):
        return ExecutorOptions(cache=True, cache_dir=tmp_path, **kw)

    def test_warm_rerun_performs_zero_simulation_calls(self, tmp_path):
        cold = run_scaling_study(SMALL, options=self._options(tmp_path))
        before = single_app.simulation_call_count()
        warm = run_scaling_study(SMALL, options=self._options(tmp_path))
        assert single_app.simulation_call_count() == before
        assert [c.stats for c in warm.cells] == [c.stats for c in cold.cells]

    def test_no_cache_bypasses(self, tmp_path):
        run_scaling_study(SMALL, options=self._options(tmp_path))
        before = single_app.simulation_call_count()
        run_scaling_study(SMALL, options=ExecutorOptions(cache=False))
        # 5 techniques x 1 fraction, minus the infeasible redundancy
        # cells (r=2/r=3 cannot fail fast here: 10% of 1200 fits), so
        # at least trials x feasible cells simulations ran again.
        assert single_app.simulation_call_count() > before

    def test_corrupted_cell_recomputes_without_crashing(self, tmp_path):
        run_scaling_study(SMALL, options=self._options(tmp_path))
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"\x80corrupt")
        result = run_scaling_study(SMALL, options=self._options(tmp_path))
        assert len(result.cells) == 5

    def test_config_change_misses(self, tmp_path):
        metrics = ExecutorMetrics()
        run_scaling_study(SMALL, options=self._options(tmp_path))
        run_scaling_study(
            SMALL.quick(trials=3),
            options=self._options(tmp_path, metrics=metrics),
        )
        assert metrics.cache_hits == 0
