"""Unit tests for the Table I / Table II reproductions."""

from repro.experiments.tables import render_table1, render_table2


class TestTable1:
    def test_all_eight_types_present(self):
        text = render_table1()
        for name in ("A32", "A64", "B32", "B64", "C32", "C64", "D32", "D64"):
            assert name in text

    def test_communication_rows(self):
        text = render_table1()
        for row in ("0%", "25%", "50%", "75%"):
            assert row in text


class TestTable2:
    def test_parameter_names_present(self):
        text = render_table2()
        for name in (
            "T_S", "T_C", "T_W", "N_m", "N_a", "L", "B_N", "N_S",
            "lambda_a", "M_n", "mu", "r",
        ):
            assert name in text

    def test_paper_checkpoint_window(self):
        """The 17-35 minute full-system checkpoint+restart window shows
        up as one-way times of ~8.9 and ~17.8 minutes."""
        text = render_table2(fraction=1.0)
        assert "8.9 min" in text
        assert "17.8 min" in text

    def test_mu_values(self):
        text = render_table2()
        assert "1.000 / 1.025 / 1.050 / 1.075" in text

    def test_fraction_parameter(self):
        text = render_table2(fraction=0.5)
        assert "50%" in text
        assert "60000" in text
