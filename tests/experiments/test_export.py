"""Unit tests for result export (CSV/JSON)."""

import csv
import io
import json

import pytest

from repro.core.selection import FixedSelector
from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig
from repro.experiments.export import (
    datacenter_rows,
    datacenter_to_csv,
    datacenter_to_json,
    scaling_rows,
    scaling_to_csv,
    scaling_to_json,
)
from repro.experiments.runner import run_datacenter_study, run_scaling_study
from repro.resilience.parallel_recovery import ParallelRecovery


@pytest.fixture(scope="module")
def scaling_result():
    config = ScalingStudyConfig(fractions=(0.5, 1.0), trials=2, system_nodes=1200)
    return run_scaling_study(config)


@pytest.fixture(scope="module")
def datacenter_result():
    config = DatacenterStudyConfig(
        patterns=2, arrivals_per_pattern=8, system_nodes=2400
    )
    selectors = {"parallel_recovery": lambda: FixedSelector(ParallelRecovery())}
    study, _ = run_datacenter_study(
        config, selectors, rm_names=["fcfs", "slack"], include_ideal=True
    )
    return study


class TestScalingExport:
    def test_rows_complete(self, scaling_result):
        rows = scaling_rows(scaling_result)
        assert len(rows) == 10  # 2 fractions x 5 techniques
        assert {r["technique"] for r in rows} == set(scaling_result.techniques())

    def test_csv_parses_back(self, scaling_result):
        text = scaling_to_csv(scaling_result)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 10
        for row in parsed:
            assert 0.0 <= float(row["mean_efficiency"]) <= 1.0

    def test_infeasible_marked(self, scaling_result):
        rows = scaling_rows(scaling_result)
        infeasible = [r for r in rows if r["infeasible"]]
        assert infeasible  # redundancy at 100% of 1200 nodes
        assert all(r["mean_efficiency"] == 0.0 for r in infeasible)

    def test_json_roundtrip(self, scaling_result):
        payload = json.loads(scaling_to_json(scaling_result))
        assert payload["config"]["system_nodes"] == 1200
        assert len(payload["cells"]) == 10


class TestScalingRoundTrip:
    """Exact value round-trips through the serialized formats,
    including the ``infeasible`` and ``std_*`` edge fields."""

    def test_csv_roundtrips_every_field_exactly(self, scaling_result):
        rows = scaling_rows(scaling_result)
        parsed = list(csv.DictReader(io.StringIO(scaling_to_csv(scaling_result))))
        assert len(parsed) == len(rows)
        for original, row in zip(rows, parsed):
            assert row["app_type"] == original["app_type"]
            assert row["technique"] == original["technique"]
            # repr-based float serialization round-trips bit-exactly
            assert float(row["fraction"]) == original["fraction"]
            assert float(row["mean_efficiency"]) == original["mean_efficiency"]
            assert float(row["std_efficiency"]) == original["std_efficiency"]
            assert int(row["trials"]) == original["trials"]
            assert (row["infeasible"] == "True") == original["infeasible"]

    def test_json_cells_equal_rows_exactly(self, scaling_result):
        payload = json.loads(scaling_to_json(scaling_result))
        assert payload["cells"] == scaling_rows(scaling_result)

    def test_infeasible_cells_have_empty_stats(self, scaling_result):
        infeasible = [r for r in scaling_rows(scaling_result) if r["infeasible"]]
        assert infeasible
        for row in infeasible:
            assert row["mean_efficiency"] == 0.0
            assert row["std_efficiency"] == 0.0
            assert row["trials"] == 0

    def test_single_trial_study_exports_zero_std(self):
        """n == 1 is the std edge case: SummaryStats defines ddof=1 std
        as 0.0 there, and that must survive both export formats."""
        config = ScalingStudyConfig(
            fractions=(0.5,), trials=1, system_nodes=1200
        )
        result = run_scaling_study(config)
        rows = scaling_rows(result)
        feasible = [r for r in rows if not r["infeasible"]]
        assert feasible
        for row in feasible:
            assert row["trials"] == 1
            assert row["std_efficiency"] == 0.0
        parsed = list(csv.DictReader(io.StringIO(scaling_to_csv(result))))
        assert all(float(r["std_efficiency"]) == 0.0 for r in parsed)
        payload = json.loads(scaling_to_json(result))
        assert all(c["std_efficiency"] == 0.0 for c in payload["cells"])


class TestDatacenterExport:
    def test_rows_complete(self, datacenter_result):
        rows = datacenter_rows(datacenter_result)
        assert len(rows) == 4  # 2 RMs x (pr + ideal)
        assert {r["selector"] for r in rows} == {"parallel_recovery", "ideal"}

    def test_csv_parses_back(self, datacenter_result):
        parsed = list(csv.DictReader(io.StringIO(datacenter_to_csv(datacenter_result))))
        for row in parsed:
            assert 0.0 <= float(row["mean_dropped_pct"]) <= 100.0
            assert int(row["patterns"]) == 2

    def test_json_roundtrip(self, datacenter_result):
        payload = json.loads(datacenter_to_json(datacenter_result))
        assert payload["config"]["patterns"] == 2
        assert len(payload["cells"]) == 4


class TestDatacenterRoundTrip:
    def test_csv_roundtrips_every_field_exactly(self, datacenter_result):
        rows = datacenter_rows(datacenter_result)
        parsed = list(
            csv.DictReader(io.StringIO(datacenter_to_csv(datacenter_result)))
        )
        assert len(parsed) == len(rows)
        for original, row in zip(rows, parsed):
            assert row["bias"] == original["bias"]
            assert row["rm"] == original["rm"]
            assert row["selector"] == original["selector"]
            assert float(row["mean_dropped_pct"]) == original["mean_dropped_pct"]
            assert float(row["std_dropped_pct"]) == original["std_dropped_pct"]
            assert int(row["patterns"]) == original["patterns"]

    def test_json_cells_equal_rows_exactly(self, datacenter_result):
        payload = json.loads(datacenter_to_json(datacenter_result))
        assert payload["cells"] == datacenter_rows(datacenter_result)

    def test_std_nonnegative(self, datacenter_result):
        for row in datacenter_rows(datacenter_result):
            assert row["std_dropped_pct"] >= 0.0
