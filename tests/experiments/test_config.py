"""Unit tests for experiment configurations."""

import pytest

from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig


class TestScalingStudyConfig:
    def test_paper_defaults(self):
        cfg = ScalingStudyConfig()
        assert cfg.trials == 200
        assert cfg.system_nodes == 120_000
        assert cfg.fractions == (0.01, 0.02, 0.03, 0.06, 0.12, 0.25, 0.50, 1.00)

    def test_quick_reduces_trials_only(self):
        cfg = ScalingStudyConfig().quick(trials=5)
        assert cfg.trials == 5
        assert cfg.system_nodes == 120_000

    def test_quick_fraction_override(self):
        cfg = ScalingStudyConfig().quick(trials=5, fractions=[0.1])
        assert cfg.fractions == (0.1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScalingStudyConfig(trials=0)
        with pytest.raises(ValueError):
            ScalingStudyConfig(system_nodes=0)
        with pytest.raises(ValueError):
            ScalingStudyConfig(fractions=())


class TestDatacenterStudyConfig:
    def test_paper_defaults(self):
        cfg = DatacenterStudyConfig()
        assert cfg.patterns == 50
        assert cfg.arrivals_per_pattern == 100

    def test_quick(self):
        cfg = DatacenterStudyConfig().quick(patterns=3, arrivals=20)
        assert cfg.patterns == 3
        assert cfg.arrivals_per_pattern == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            DatacenterStudyConfig(patterns=0)
        with pytest.raises(ValueError):
            DatacenterStudyConfig(arrivals_per_pattern=0)
