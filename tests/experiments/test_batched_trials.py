"""Batched-trials equivalence: one batch of N == N independent runs.

Two batching layers were added for the fast-path work and both promise
bit-identity to the unbatched code they replaced:

- :func:`repro.core.single_app.run_trials` hoists technique planning
  out of the per-trial loop (one plan shared by every trial);
- :func:`repro.core.datacenter.run_datacenter_batch` runs a cell's
  patterns over one shared system (reset between patterns) and one
  :class:`PlanCache`.

On top of those, :func:`repro.experiments.entry.run_request` must
render identical bytes for every export format regardless of worker
count (``--jobs 1`` vs ``--jobs 2``) and cache state (cold vs warm).
"""

import pytest

from repro.core.datacenter import (
    DatacenterConfig,
    run_datacenter,
    run_datacenter_batch,
)
from repro.core.single_app import SingleAppConfig, run_trials, simulate_application
from repro.core.selection import FixedSelector
from repro.experiments import fig1, fig4
from repro.experiments.config import DatacenterStudyConfig, ScalingStudyConfig
from repro.experiments.entry import StudyRequest, run_request
from repro.experiments.parallel import ExecutorMetrics, ExecutorOptions
from repro.platform.presets import exascale_system
from repro.resilience import get_technique
from repro.rm.registry import make_manager
from repro.rng.streams import StreamFactory
from repro.units import HOUR, years
from repro.workload.patterns import PatternGenerator
from repro.workload.synthetic import make_application


def _stats_tuple(stats):
    return (
        stats.start_time,
        stats.end_time,
        stats.completed,
        stats.failures,
        stats.restarts,
        stats.replica_failures_absorbed,
        dict(stats.checkpoints_taken),
        stats.failed_checkpoints,
        stats.work_time_s,
        stats.rework_time_s,
        stats.checkpoint_time_s,
        stats.restart_time_s,
        stats.resource_wait_s,
    )


class TestRunTrialsPlanHoisting:
    """run_trials (one shared plan) == N independent trials (a plan
    each): planning is pure, so hoisting it must be invisible."""

    @pytest.mark.parametrize(
        "technique_name,mtbf_s",
        [
            ("multilevel", years(2.0)),
            ("multilevel", 20 * HOUR),
            ("checkpoint_restart", years(0.5)),
            ("parallel_recovery", 20 * HOUR),
        ],
    )
    def test_batch_matches_independent_trials(self, technique_name, mtbf_s):
        system = exascale_system(total_nodes=2_400)
        app = make_application("A32", nodes=240, time_steps=40)
        config = SingleAppConfig(node_mtbf_s=mtbf_s, seed=42)
        technique = get_technique(technique_name)
        trials = 6

        batched = run_trials(
            app, technique, system, trials, config, keep_stats=True
        )
        independent = [
            simulate_application(app, technique, system, config, trial=i)
            for i in range(trials)
        ]

        assert len(batched.stats) == trials
        for got, want in zip(batched.stats, independent):
            assert _stats_tuple(got) == _stats_tuple(want)
        assert batched.efficiencies == [s.efficiency() for s in independent]


def _dc_digest(results):
    rows = []
    for result in results:
        rows.append((result.pattern_index, result.end_time, result.failures_injected))
        for record in result.records:
            rows.append(
                (
                    record.app.app_id,
                    str(record.status),
                    record.technique,
                    record.start_time,
                    record.end_time,
                    record.dropped,
                    None
                    if record.stats is None
                    else _stats_tuple(record.stats),
                )
            )
    return rows


class TestDatacenterBatchEquivalence:
    """run_datacenter_batch == per-pattern run_datacenter with a fresh
    system, manager, and selector each time."""

    @pytest.mark.parametrize("pfs_slots", [None, 2])
    def test_batch_matches_independent_runs(self, pfs_slots):
        seed, nodes, count = 11, 2_400, 3
        config = DatacenterConfig(seed=seed, pfs_slots=pfs_slots)
        patterns = PatternGenerator(StreamFactory(seed), nodes).generate_many(
            count=count, arrivals=12
        )

        def manager_factory(pattern):
            return make_manager(
                "fcfs", StreamFactory(seed).fresh(f"rm-fcfs-{pattern.index}")
            )

        def selector_factory():
            return FixedSelector(get_technique("multilevel"))

        batched = run_datacenter_batch(
            patterns,
            manager_factory,
            selector_factory,
            exascale_system(total_nodes=nodes),
            config,
        )
        independent = [
            run_datacenter(
                pattern,
                manager_factory(pattern),
                selector_factory(),
                exascale_system(total_nodes=nodes),
                config,
            )
            for pattern in patterns
        ]
        assert _dc_digest(batched) == _dc_digest(independent)

    def test_batch_resets_system_between_patterns(self):
        seed, nodes = 7, 2_400
        patterns = PatternGenerator(StreamFactory(seed), nodes).generate_many(
            count=2, arrivals=10
        )
        system = exascale_system(total_nodes=nodes)
        run_datacenter_batch(
            patterns,
            lambda p: make_manager(
                "fcfs", StreamFactory(seed).fresh(f"rm-{p.index}")
            ),
            lambda: FixedSelector(get_technique("multilevel")),
            system,
            DatacenterConfig(seed=seed),
        )
        # The shared system is left in a clean state: nothing stays
        # allocated once the batch's last pattern drains.
        assert system.active_nodes == 0
        assert not system.allocations()


SMALL_DC = dict(arrivals_per_pattern=8, system_nodes=2_400)
SMALL_SCALING = dict(fractions=(0.1, 0.5), system_nodes=2_400)


@pytest.fixture()
def small_figs(monkeypatch):
    """Shrink the fig drivers so run_request is test-sized.

    run_request builds configs in the parent process (workers only see
    the already-built cells), so patching the config factories is safe
    under ``jobs > 1`` too.
    """
    monkeypatch.setattr(
        fig4,
        "config",
        lambda **kw: DatacenterStudyConfig(
            patterns=min(kw.pop("patterns", 2), 2), **SMALL_DC, **kw
        ),
    )
    monkeypatch.setattr(
        fig1,
        "config",
        lambda **kw: ScalingStudyConfig(
            app_type="A32",
            trials=min(kw.pop("trials", 3), 3),
            **SMALL_SCALING,
            **kw,
        ),
    )


class TestRunRequestJobsByteIdentity:
    """Every export format renders identical bytes at --jobs 1 and 2."""

    @pytest.mark.parametrize("fmt", ["table", "csv", "json", "barchart"])
    def test_fig4_formats(self, small_figs, fmt):
        request = StudyRequest("fig4", format=fmt, patterns=2)
        serial = run_request(request, options=ExecutorOptions(jobs=1))
        fanned = run_request(request, options=ExecutorOptions(jobs=2))
        assert serial.text == fanned.text

    @pytest.mark.parametrize("fmt", ["csv", "json"])
    def test_fig1_formats(self, small_figs, fmt):
        request = StudyRequest("fig1", format=fmt, trials=3)
        serial = run_request(request, options=ExecutorOptions(jobs=1))
        fanned = run_request(request, options=ExecutorOptions(jobs=2))
        assert serial.text == fanned.text


class TestRunRequestCacheByteIdentity:
    """Cold-cache and warm-cache runs render identical bytes, for both
    worker counts, and provenance sidecars don't perturb outputs."""

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("fmt", ["csv", "json"])
    def test_fig4_cold_vs_warm(self, small_figs, tmp_path, jobs, fmt):
        request = StudyRequest("fig4", format=fmt, patterns=2)
        cache = dict(cache=True, cache_dir=tmp_path / "cache")
        cold_metrics, warm_metrics = ExecutorMetrics(), ExecutorMetrics()
        cold = run_request(
            request,
            options=ExecutorOptions(jobs=jobs, metrics=cold_metrics, **cache),
        )
        warm = run_request(
            request,
            options=ExecutorOptions(jobs=jobs, metrics=warm_metrics, **cache),
        )
        uncached = run_request(request, options=ExecutorOptions(jobs=jobs))
        assert cold.text == warm.text == uncached.text
        assert cold_metrics.cache_hits == 0
        assert warm_metrics.cache_hits == warm_metrics.cells_done > 0

    def test_scenario_export_sidecars_identical_across_jobs(self, tmp_path):
        """The CLI's --export artifact + .provenance.json sidecar are
        byte-identical at --jobs 1 and --jobs 2, fast path on or off."""
        from repro.cli import main

        spec = tmp_path / "mini.toml"
        spec.write_text(
            "[scenario]\nname = 'mini'\n"
            "[failures]\nregime = 'poisson'\nmtbf_years = 5.0\n"
            "[workload]\nstudy = 'scaling'\napp_type = 'A32'\n"
            "fractions = [0.01]\n"
            "[techniques]\nnames = ['checkpoint_restart']\n"
            "[run]\ntrials = 2\nformat = 'csv'\n"
        )
        outputs = {}
        for label, extra in {
            "jobs1": ["--jobs", "1"],
            "jobs2": ["--jobs", "2"],
            "stepped": ["--jobs", "1", "--no-fast-path"],
        }.items():
            out_dir = tmp_path / label
            assert (
                main(
                    [
                        "scenario",
                        "run",
                        str(spec),
                        "--no-cache",
                        "--export",
                        str(out_dir),
                        *extra,
                    ]
                )
                == 0
            )
            outputs[label] = (
                (out_dir / "mini.csv").read_bytes(),
                (out_dir / "mini.provenance.json").read_bytes(),
            )
        assert outputs["jobs1"] == outputs["jobs2"] == outputs["stepped"]

    def test_provenance_sidecar_is_inert(self, small_figs, tmp_path):
        request = StudyRequest("fig4", format="json", patterns=2)
        plain = run_request(
            request,
            options=ExecutorOptions(cache=True, cache_dir=tmp_path / "a"),
        )
        stamped = run_request(
            request,
            options=ExecutorOptions(
                cache=True,
                cache_dir=tmp_path / "b",
                provenance={"scenario": "batched-trials-test", "spec": "sha"},
            ),
        )
        assert plain.text == stamped.text
