"""Unit tests for failure severity modeling."""

import numpy as np
import pytest

from repro.failures.severity import MAX_SEVERITY, NUM_LEVELS, SeverityModel


class TestConstruction:
    def test_default_matches_constants(self):
        from repro.constants import DEFAULT_SEVERITY_PMF

        model = SeverityModel.default()
        for level in range(1, 4):
            assert model.probability(level) == pytest.approx(
                DEFAULT_SEVERITY_PMF[level - 1]
            )

    def test_from_probabilities_normalizes(self):
        model = SeverityModel.from_probabilities([3, 1])
        assert model.probability(1) == pytest.approx(0.75)

    def test_levels(self):
        assert SeverityModel.default().levels == NUM_LEVELS == MAX_SEVERITY == 3


class TestSampling:
    def test_samples_in_range(self, rng):
        model = SeverityModel.default()
        draws = [model.sample(rng) for _ in range(500)]
        assert set(draws) <= {1, 2, 3}

    def test_sample_frequencies(self, rng):
        model = SeverityModel.from_probabilities([0.5, 0.3, 0.2])
        draws = np.array([model.sample(rng) for _ in range(30_000)])
        assert np.mean(draws == 1) == pytest.approx(0.5, abs=0.02)
        assert np.mean(draws == 3) == pytest.approx(0.2, abs=0.02)

    def test_degenerate_pmf(self, rng):
        model = SeverityModel.from_probabilities([0.0, 0.0, 1.0])
        assert all(model.sample(rng) == 3 for _ in range(50))


class TestRates:
    def test_probability_at_least(self):
        model = SeverityModel.from_probabilities([0.65, 0.20, 0.15])
        assert model.probability_at_least(1) == pytest.approx(1.0)
        assert model.probability_at_least(2) == pytest.approx(0.35)
        assert model.probability_at_least(3) == pytest.approx(0.15)

    def test_level_rate_partitions_total(self):
        model = SeverityModel.default()
        total = 1e-4
        parts = [model.level_rate(k, total) for k in (1, 2, 3)]
        assert sum(parts) == pytest.approx(total)

    def test_level_rate_negative_total_rejected(self):
        with pytest.raises(ValueError):
            SeverityModel.default().level_rate(1, -1.0)

    @pytest.mark.parametrize("level", [0, 4])
    def test_level_out_of_range_rejected(self, level):
        model = SeverityModel.default()
        with pytest.raises(ValueError):
            model.probability(level)
        with pytest.raises(ValueError):
            model.probability_at_least(level)
