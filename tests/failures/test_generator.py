"""Unit tests for failure generation."""

import numpy as np
import pytest

from repro.failures.generator import (
    AppFailureGenerator,
    Failure,
    sample_failure_times,
)
from repro.failures.severity import SeverityModel
from repro.units import years


class TestFailureRecord:
    def test_fields(self):
        f = Failure(time=10.0, node_id=3, severity=2)
        assert (f.time, f.node_id, f.severity) == (10.0, 3, 2)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Failure(time=-1.0, node_id=0, severity=1)

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            Failure(time=0.0, node_id=0, severity=0)


class TestAppFailureGenerator:
    def _gen(self, rng, nodes=1200, mtbf=years(10)):
        return AppFailureGenerator(rng, nodes=nodes, node_mtbf_s=mtbf)

    def test_rate_is_nodes_over_mtbf(self, rng):
        gen = self._gen(rng)
        assert gen.rate == pytest.approx(1200 / years(10))

    def test_times_strictly_increase(self, rng):
        gen = self._gen(rng)
        times = [gen.next_failure().time for _ in range(100)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_gap_matches_rate(self, rng):
        gen = self._gen(rng, nodes=100, mtbf=100.0)  # rate = 1/s
        gaps = [gen.next_interarrival() for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(1.0, rel=0.05)

    def test_locations_within_allocation(self, rng):
        gen = self._gen(rng, nodes=10)
        assert all(0 <= gen.next_failure().node_id < 10 for _ in range(200))

    def test_severities_follow_model(self, rng):
        severity = SeverityModel.from_probabilities([0.0, 0.0, 1.0])
        gen = AppFailureGenerator(
            rng, nodes=10, node_mtbf_s=years(10), severity=severity
        )
        assert all(gen.next_failure().severity == 3 for _ in range(50))

    def test_failure_at_uses_given_time(self, rng):
        gen = self._gen(rng)
        f = gen.failure_at(123.0)
        assert f.time == 123.0
        assert 0 <= f.node_id < 1200

    def test_iterator(self, rng):
        gen = self._gen(rng)
        it = iter(gen)
        first = next(it)
        second = next(it)
        assert second.time > first.time


class TestVectorizedSampling:
    def test_all_within_horizon(self, rng):
        times = sample_failure_times(rng, rate=0.01, horizon_s=10_000.0)
        assert times.size > 0
        assert times.max() < 10_000.0
        assert (np.diff(times) > 0).all()

    def test_count_matches_expectation(self, rng):
        times = sample_failure_times(rng, rate=0.01, horizon_s=1_000_000.0)
        assert times.size == pytest.approx(10_000, rel=0.1)

    def test_zero_rate_empty(self, rng):
        assert sample_failure_times(rng, 0.0, 100.0).size == 0

    def test_zero_horizon_empty(self, rng):
        assert sample_failure_times(rng, 1.0, 0.0).size == 0

    def test_negative_args_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_failure_times(rng, -1.0, 10.0)
        with pytest.raises(ValueError):
            sample_failure_times(rng, 1.0, -10.0)
