"""Unit tests for failure generation."""

import numpy as np
import pytest

from repro.failures.generator import (
    AppFailureGenerator,
    ExponentialInterarrivals,
    Failure,
    LognormalInterarrivals,
    WeibullInterarrivals,
    sample_failure_times,
)
from repro.failures.severity import SeverityModel
from repro.units import years


class TestFailureRecord:
    def test_fields(self):
        f = Failure(time=10.0, node_id=3, severity=2)
        assert (f.time, f.node_id, f.severity) == (10.0, 3, 2)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Failure(time=-1.0, node_id=0, severity=1)

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            Failure(time=0.0, node_id=0, severity=0)


class TestAppFailureGenerator:
    def _gen(self, rng, nodes=1200, mtbf=years(10)):
        return AppFailureGenerator(rng, nodes=nodes, node_mtbf_s=mtbf)

    def test_rate_is_nodes_over_mtbf(self, rng):
        gen = self._gen(rng)
        assert gen.rate == pytest.approx(1200 / years(10))

    def test_times_strictly_increase(self, rng):
        gen = self._gen(rng)
        times = [gen.next_failure().time for _ in range(100)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_gap_matches_rate(self, rng):
        gen = self._gen(rng, nodes=100, mtbf=100.0)  # rate = 1/s
        gaps = [gen.next_interarrival() for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(1.0, rel=0.05)

    def test_locations_within_allocation(self, rng):
        gen = self._gen(rng, nodes=10)
        assert all(0 <= gen.next_failure().node_id < 10 for _ in range(200))

    def test_severities_follow_model(self, rng):
        severity = SeverityModel.from_probabilities([0.0, 0.0, 1.0])
        gen = AppFailureGenerator(
            rng, nodes=10, node_mtbf_s=years(10), severity=severity
        )
        assert all(gen.next_failure().severity == 3 for _ in range(50))

    def test_failure_at_uses_given_time(self, rng):
        gen = self._gen(rng)
        f = gen.failure_at(123.0)
        assert f.time == 123.0
        assert 0 <= f.node_id < 1200

    def test_iterator(self, rng):
        gen = self._gen(rng)
        it = iter(gen)
        first = next(it)
        second = next(it)
        assert second.time > first.time


class TestVectorizedSampling:
    def test_all_within_horizon(self, rng):
        times = sample_failure_times(rng, rate=0.01, horizon_s=10_000.0)
        assert times.size > 0
        assert times.max() < 10_000.0
        assert (np.diff(times) > 0).all()

    def test_count_matches_expectation(self, rng):
        times = sample_failure_times(rng, rate=0.01, horizon_s=1_000_000.0)
        assert times.size == pytest.approx(10_000, rel=0.1)

    def test_zero_rate_empty(self, rng):
        assert sample_failure_times(rng, 0.0, 100.0).size == 0

    def test_zero_horizon_empty(self, rng):
        assert sample_failure_times(rng, 1.0, 0.0).size == 0

    def test_negative_args_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_failure_times(rng, -1.0, 10.0)
        with pytest.raises(ValueError):
            sample_failure_times(rng, 1.0, -10.0)


class TestInterarrivalModels:
    """The non-exponential renewal regimes behind scenario specs."""

    def test_memoryless_flags(self):
        assert ExponentialInterarrivals.memoryless is True
        assert WeibullInterarrivals(2.0).memoryless is False
        assert LognormalInterarrivals(1.0).memoryless is False

    def test_none_keeps_legacy_exponential_stream(self):
        """interarrival=None must replay the historical draw sequence
        bit for bit (it guards every pre-scenario artifact)."""
        a = AppFailureGenerator(
            np.random.default_rng(7), nodes=1200, node_mtbf_s=years(10)
        )
        b = AppFailureGenerator(
            np.random.default_rng(7),
            nodes=1200,
            node_mtbf_s=years(10),
            interarrival=None,
        )
        for _ in range(200):
            assert a.next_failure() == b.next_failure()

    def test_weibull_shape_one_is_bitwise_exponential(self):
        """Weibull(shape=1) consumes the same NumPy variate as the
        exponential path, so the whole failure sequence is identical."""
        exp_gen = AppFailureGenerator(
            np.random.default_rng(11),
            nodes=1200,
            node_mtbf_s=years(10),
            interarrival=ExponentialInterarrivals(),
        )
        wei_gen = AppFailureGenerator(
            np.random.default_rng(11),
            nodes=1200,
            node_mtbf_s=years(10),
            interarrival=WeibullInterarrivals(shape=1.0),
        )
        for _ in range(200):
            assert exp_gen.next_failure() == wei_gen.next_failure()

    @pytest.mark.parametrize(
        "model",
        [
            ExponentialInterarrivals(),
            WeibullInterarrivals(shape=0.7),
            WeibullInterarrivals(shape=2.0),
            LognormalInterarrivals(sigma=0.5),
            LognormalInterarrivals(sigma=1.5),
        ],
    )
    def test_mean_gap_preserved_across_regimes(self, rng, model):
        """Every regime keeps the paper's mean rate nodes/MTBF — only
        the gap *distribution* changes."""
        gen = AppFailureGenerator(
            rng, nodes=1200, node_mtbf_s=years(10), interarrival=model
        )
        gaps = [gen.next_interarrival() for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(1.0 / gen.rate, rel=0.10)

    def test_weibull_shape_changes_dispersion(self, rng):
        """shape > 1 must reduce the gap CV below the exponential's 1."""
        gen = AppFailureGenerator(
            rng,
            nodes=1200,
            node_mtbf_s=years(10),
            interarrival=WeibullInterarrivals(shape=3.0),
        )
        gaps = np.array([gen.next_interarrival() for _ in range(20_000)])
        cv = gaps.std() / gaps.mean()
        assert cv < 0.5  # Exp has CV 1; Weibull(3) ~ 0.36

    def test_lognormal_heavy_tail(self, rng):
        """Large sigma must overdisperse relative to the exponential."""
        gen = AppFailureGenerator(
            rng,
            nodes=1200,
            node_mtbf_s=years(10),
            interarrival=LognormalInterarrivals(sigma=1.5),
        )
        gaps = np.array([gen.next_interarrival() for _ in range(20_000)])
        assert gaps.std() / gaps.mean() > 1.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WeibullInterarrivals(shape=0.0)
        with pytest.raises(ValueError):
            LognormalInterarrivals(sigma=-1.0)
