"""Unit tests for technique-independent failure traces."""

import json

import pytest

from repro.failures.severity import SeverityModel
from repro.failures.trace import (
    TRACE_FORMAT,
    TRACE_FORMAT_VERSION,
    FailureTrace,
    TracedFailure,
    TraceFormatError,
    load_trace,
    record_trace,
    save_trace,
    trace_digest,
    trace_from_jsonl,
    trace_to_jsonl,
)
from repro.rng.streams import StreamFactory
from repro.units import years


class TestTracedFailure:
    def test_materialize_scales_location(self):
        traced = TracedFailure(time=10.0, location_u=0.5, severity=2)
        failure = traced.materialize(100)
        assert failure.node_id == 50
        assert failure.time == 10.0
        assert failure.severity == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TracedFailure(time=-1.0, location_u=0.5, severity=1)
        with pytest.raises(ValueError):
            TracedFailure(time=0.0, location_u=1.0, severity=1)
        with pytest.raises(ValueError):
            TracedFailure(time=0.0, location_u=0.5, severity=0)
        with pytest.raises(ValueError):
            TracedFailure(time=0.0, location_u=0.5, severity=1).materialize(0)


class TestRecordTrace:
    def _trace(self, rng, horizon=1e9):
        return record_trace(rng, node_mtbf_s=years(10), horizon_s=horizon)

    def test_times_sorted_within_horizon(self, rng):
        trace = self._trace(rng)
        times = [f.time for f in trace.failures]
        assert times == sorted(times)
        assert all(0 <= t < trace.horizon_s for t in times)

    def test_count_matches_rate(self, rng):
        horizon = 1e10  # unit-node seconds
        trace = self._trace(rng, horizon=horizon)
        expected = horizon / years(10)
        assert len(trace) == pytest.approx(expected, rel=0.3)

    def test_reproducible(self):
        a = record_trace(
            StreamFactory(1).fresh("t"), years(10), 1e10
        )
        b = record_trace(
            StreamFactory(1).fresh("t"), years(10), 1e10
        )
        assert a == b

    def test_severities_follow_model(self, rng):
        severity = SeverityModel.from_probabilities([0, 0, 1])
        trace = record_trace(rng, years(10), 1e10, severity=severity)
        assert len(trace) > 0
        assert all(f.severity == 3 for f in trace.failures)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            record_trace(rng, 0.0, 100.0)
        with pytest.raises(ValueError):
            record_trace(rng, years(10), 0.0)


class TestScaling:
    def test_time_compression(self, rng):
        trace = record_trace(rng, years(10), 1e10)
        unit_times = [f.time for f in trace.failures]
        scaled = list(trace.scaled(1000))
        assert [f.time for f in scaled] == pytest.approx(
            [t / 1000 for t in unit_times]
        )
        assert trace.scaled_horizon(1000) == pytest.approx(trace.horizon_s / 1000)

    def test_scaled_rate_matches_allocation(self, rng):
        """A 1000-node replay must exhibit ~1000x the unit rate."""
        trace = record_trace(rng, years(10), 1e10)
        scaled = list(trace.scaled(1000))
        span = trace.scaled_horizon(1000)
        observed_rate = len(scaled) / span
        expected = 1000 / years(10)
        assert observed_rate == pytest.approx(expected, rel=0.3)

    def test_locations_in_range(self, rng):
        trace = record_trace(rng, years(10), 1e10)
        assert all(0 <= f.node_id < 64 for f in trace.scaled(64))

    def test_same_trace_different_sizes_share_pattern(self, rng):
        """Scaling to different node counts preserves the realization
        (same relative failure times and severities)."""
        trace = record_trace(rng, years(10), 1e10)
        small = list(trace.scaled(10))
        large = list(trace.scaled(1000))
        assert [f.severity for f in small] == [f.severity for f in large]
        ratios = [a.time / b.time for a, b in zip(small, large)]
        assert all(r == pytest.approx(100.0) for r in ratios)

    def test_validation(self, rng):
        trace = record_trace(rng, years(10), 1e9)
        with pytest.raises(ValueError):
            list(trace.scaled(0))


class TestFailureTraceValidation:
    def test_unsorted_rejected(self):
        failures = (
            TracedFailure(time=5.0, location_u=0.1, severity=1),
            TracedFailure(time=1.0, location_u=0.1, severity=1),
        )
        with pytest.raises(ValueError):
            FailureTrace(unit_rate=1e-9, horizon_s=10.0, failures=failures)

    def test_beyond_horizon_rejected(self):
        failures = (TracedFailure(time=20.0, location_u=0.1, severity=1),)
        with pytest.raises(ValueError):
            FailureTrace(unit_rate=1e-9, horizon_s=10.0, failures=failures)


class TestJsonlPersistence:
    """Versioned JSONL save/load for recorded traces."""

    def _trace(self, seed=3):
        return record_trace(
            StreamFactory(seed).fresh("trace"), years(10), 1e10
        )

    def test_round_trip_is_identity(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_serialization_is_stable(self):
        """Same trace -> same bytes -> same digest (full-repr floats)."""
        a, b = self._trace(), self._trace()
        assert trace_to_jsonl(a) == trace_to_jsonl(b)
        assert trace_digest(a) == trace_digest(b)

    def test_header_declares_format_and_version(self):
        header = json.loads(trace_to_jsonl(self._trace()).splitlines()[0])
        assert header["format"] == TRACE_FORMAT
        assert header["version"] == TRACE_FORMAT_VERSION

    def test_rescaling_regression_across_node_counts(self, tmp_path):
        """A reloaded trace must materialize exactly like the original
        at every allocation size: times compressed by the node count,
        locations rescaled onto [0, nodes), severities untouched."""
        trace = self._trace()
        path = tmp_path / "t.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        for nodes in (10, 64, 1200, 120_000):
            original = list(trace.scaled(nodes))
            replayed = list(loaded.scaled(nodes))
            assert replayed == original
            assert [f.severity for f in replayed] == [
                f.severity for f in original
            ]
            assert all(0 <= f.node_id < nodes for f in replayed)

    def test_empty_text_rejected(self):
        with pytest.raises(TraceFormatError):
            trace_from_jsonl("")

    def test_wrong_format_marker_rejected(self):
        lines = trace_to_jsonl(self._trace()).splitlines()
        header = json.loads(lines[0])
        header["format"] = "something-else"
        bad = "\n".join([json.dumps(header)] + lines[1:])
        with pytest.raises(TraceFormatError, match="format"):
            trace_from_jsonl(bad)

    def test_unsupported_version_rejected(self):
        lines = trace_to_jsonl(self._trace()).splitlines()
        header = json.loads(lines[0])
        header["version"] = TRACE_FORMAT_VERSION + 1
        bad = "\n".join([json.dumps(header)] + lines[1:])
        with pytest.raises(TraceFormatError, match="version"):
            trace_from_jsonl(bad)

    def test_count_mismatch_rejected(self):
        lines = trace_to_jsonl(self._trace()).splitlines()
        with pytest.raises(TraceFormatError, match="truncated"):
            trace_from_jsonl("\n".join(lines[:-1]))

    def test_bad_line_reported_with_number(self):
        lines = trace_to_jsonl(self._trace()).splitlines()
        lines[1] = "{not json"
        with pytest.raises(TraceFormatError, match="line 2"):
            trace_from_jsonl("\n".join(lines))

    def test_missing_file_is_one_line_error(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_trace(tmp_path / "absent.jsonl")
