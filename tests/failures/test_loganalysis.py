"""Unit tests for failure-log analysis (Sec. III-E estimation)."""

import math

import pytest

from repro.failures.generator import AppFailureGenerator, Failure
from repro.failures.loganalysis import (
    FailureLogSummary,
    analyze_failure_log,
    interarrival_statistics,
)
from repro.failures.severity import SeverityModel
from repro.units import years


def _log(times_severities):
    return [
        Failure(time=t, node_id=0, severity=s) for t, s in times_severities
    ]


class TestAnalyzeFailureLog:
    def test_counts_and_rates(self):
        summary = analyze_failure_log(
            _log([(1.0, 1), (2.0, 2), (3.0, 1), (4.0, 3)]), duration_s=10.0
        )
        assert summary.count == 4
        assert summary.system_rate == pytest.approx(0.4)
        assert summary.system_mtbf_s == pytest.approx(2.5)
        assert summary.severity_counts == (2, 1, 1)

    def test_severity_ratios_match_paper_definition(self):
        # lambda_Lj / lambda_Lt exactly.
        summary = analyze_failure_log(
            _log([(1.0, 1)] * 0 + [(float(i), 1) for i in range(7)]
                 + [(10.0 + i, 2) for i in range(2)]
                 + [(20.0, 3)]),
            duration_s=30.0,
        )
        assert summary.severity_ratios() == pytest.approx((0.7, 0.2, 0.1))

    def test_severity_model_roundtrip(self):
        summary = analyze_failure_log(
            _log([(float(i), 1) for i in range(8)] + [(9.0, 3), (9.5, 3)]),
            duration_s=10.0,
        )
        model = summary.severity_model()
        assert isinstance(model, SeverityModel)
        assert model.probability(1) == pytest.approx(0.8)
        assert model.probability(3) == pytest.approx(0.2)

    def test_node_mtbf_needs_node_count(self):
        summary = analyze_failure_log(_log([(1.0, 1)]), duration_s=10.0)
        with pytest.raises(ValueError):
            _ = summary.node_mtbf_s

    def test_node_mtbf_inverts_eq2(self):
        summary = analyze_failure_log(
            _log([(float(i), 1) for i in range(10)]), duration_s=100.0, nodes=50
        )
        # System MTBF 10 s over 50 nodes => node MTBF 500 s.
        assert summary.node_mtbf_s == pytest.approx(500.0)

    def test_empty_log(self):
        summary = analyze_failure_log([], duration_s=100.0)
        assert summary.count == 0
        assert math.isinf(summary.system_mtbf_s)
        with pytest.raises(ValueError):
            summary.severity_ratios()

    def test_rate_ci_contains_truth_for_large_sample(self):
        summary = analyze_failure_log(
            _log([(float(i), 1) for i in range(1000)]), duration_s=1000.0
        )
        lo, hi = summary.rate_ci95()
        assert lo < 1.0 < hi

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_failure_log([], duration_s=0.0)
        with pytest.raises(ValueError):
            analyze_failure_log(_log([(11.0, 1)]), duration_s=10.0)
        with pytest.raises(ValueError):
            analyze_failure_log(_log([(1.0, 4)]), duration_s=10.0, levels=3)
        with pytest.raises(ValueError):
            analyze_failure_log([], duration_s=10.0, nodes=0)

    def test_str(self):
        summary = analyze_failure_log(
            _log([(1.0, 1)]), duration_s=10.0, nodes=4
        )
        text = str(summary)
        assert "1 failures" in text and "node MTBF" in text


class TestRoundTripEstimation:
    def test_recovers_generator_parameters(self, rng):
        """Generate a long log with known parameters; the estimator
        must recover MTBF and PMF within sampling tolerance."""
        truth_pmf = (0.6, 0.3, 0.1)
        generator = AppFailureGenerator(
            rng,
            nodes=100,
            node_mtbf_s=years(1),
            severity=SeverityModel.from_probabilities(truth_pmf),
        )
        failures = [generator.next_failure() for _ in range(5000)]
        duration = failures[-1].time + 1.0
        summary = analyze_failure_log(failures, duration_s=duration, nodes=100)
        assert summary.node_mtbf_s == pytest.approx(years(1), rel=0.05)
        for level, truth in enumerate(truth_pmf, start=1):
            assert summary.severity_model().probability(level) == pytest.approx(
                truth, abs=0.03
            )

    def test_interarrival_cv_near_one_for_poisson(self, rng):
        generator = AppFailureGenerator(rng, nodes=100, node_mtbf_s=years(1))
        failures = [generator.next_failure() for _ in range(5000)]
        stats = interarrival_statistics(failures)
        assert stats["cv"] == pytest.approx(1.0, abs=0.1)

    def test_interarrival_validation(self):
        with pytest.raises(ValueError):
            interarrival_statistics(_log([(1.0, 1)]))
        with pytest.raises(ValueError):
            interarrival_statistics(_log([(1.0, 1), (1.0, 1)]))
