"""Tests for burst delivery through the datacenter failure injector."""

from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.selection import FixedSelector
from repro.failures.burst import BurstModel
from repro.failures.injector import FailureInjector
from repro.platform.presets import exascale_system
from repro.resilience.redundancy import Redundancy
from repro.rm.fcfs import FCFS
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.units import years
from repro.workload.patterns import PatternGenerator


class _AlwaysBurst(BurstModel):
    """Deterministic burst width for testing."""

    def __init__(self, width: int) -> None:
        super().__init__(continue_probability=0.5, max_width=width)
        self._width = width

    def sample_width(self, rng) -> int:
        """Always the configured width."""
        return self._width


class TestInjectorBurstSplitting:
    def _setup(self, small_system, rng, width):
        hits = []
        injector = FailureInjector(
            Simulator(),
            small_system,
            1000.0,
            rng,
            lambda owner, f: hits.append((owner, f)),
            burst=_AlwaysBurst(width),
        )
        return injector, hits

    def test_burst_within_one_allocation(self, small_system, rng):
        small_system.allocate("a", 1200)  # whole machine
        injector, hits = self._setup(small_system, rng, width=4)
        injector.start()
        injector._sim.run(until=100.0)
        injector.stop()
        assert hits
        for owner, failure in hits:
            assert owner == "a"
            assert 1 <= failure.width <= 4

    def test_burst_straddles_two_allocations(self, small_system, rng):
        small_system.allocate("a", 600)  # nodes 0..599
        small_system.allocate("b", 600)  # nodes 600..1199
        injector, hits = self._setup(small_system, rng, width=1200)
        # Fire one synthetic burst starting inside "a".
        injector._fire_burst(start=598, severity=2, width=4)
        owners = {owner for owner, _ in hits}
        assert owners == {"a", "b"}
        by_owner = {owner: f for owner, f in hits}
        assert by_owner["a"].node_id == 598 and by_owner["a"].width == 2
        assert by_owner["b"].node_id == 600 and by_owner["b"].width == 2

    def test_burst_into_idle_region_truncated(self, small_system, rng):
        small_system.allocate("a", 100)  # nodes 0..99, rest idle
        injector, hits = self._setup(small_system, rng, width=8)
        injector._fire_burst(start=96, severity=1, width=8)
        assert len(hits) == 1
        owner, failure = hits[0]
        assert owner == "a"
        assert failure.node_id == 96 and failure.width == 4

    def test_burst_clamped_at_machine_end(self, small_system, rng):
        small_system.allocate("a", 1200)
        injector, hits = self._setup(small_system, rng, width=8)
        injector._fire_burst(start=1196, severity=1, width=8)
        assert len(hits) == 1
        assert hits[0][1].width == 4


class TestDatacenterBursts:
    def test_bursts_hurt_redundancy_in_datacenter(self):
        """End-to-end: the same pattern under full redundancy drops at
        least as many applications once failures arrive in bursts."""
        pattern = PatternGenerator(StreamFactory(9), 2400).generate(0, arrivals=12)
        results = {}
        for label, burst in (
            ("independent", None),
            ("bursty", BurstModel.with_mean_width(4.0)),
        ):
            results[label] = run_datacenter(
                pattern,
                FCFS(),
                FixedSelector(Redundancy.full()),
                exascale_system(2400),
                DatacenterConfig(node_mtbf_s=years(0.2), burst=burst),
            )
        indep, bursty = results["independent"], results["bursty"]
        def restarts(r):
            return sum(
                rec.stats.restarts for rec in r.records if rec.stats is not None
            )
        # Bursts convert absorbed replica failures into restarts.
        assert restarts(bursty) > restarts(indep)
        assert bursty.dropped_pct >= indep.dropped_pct - 1e-9
