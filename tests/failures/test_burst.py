"""Unit tests for the burst-failure extension."""

import numpy as np
import pytest

from repro.failures.burst import BurstModel
from repro.failures.generator import AppFailureGenerator, Failure
from repro.units import years


class TestBurstModel:
    def test_independent_width_one(self, rng):
        model = BurstModel.independent()
        assert all(model.sample_width(rng) == 1 for _ in range(100))
        assert model.mean_width == 1.0

    def test_mean_width(self, rng):
        model = BurstModel.with_mean_width(4.0)
        widths = [model.sample_width(rng) for _ in range(20_000)]
        assert np.mean(widths) == pytest.approx(4.0, rel=0.05)

    def test_cap_respected(self, rng):
        model = BurstModel(continue_probability=0.99, max_width=8)
        assert all(model.sample_width(rng) <= 8 for _ in range(200))

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstModel(continue_probability=1.0)
        with pytest.raises(ValueError):
            BurstModel(continue_probability=-0.1)
        with pytest.raises(ValueError):
            BurstModel(max_width=0)
        with pytest.raises(ValueError):
            BurstModel.with_mean_width(0.5)


class TestFailureWidth:
    def test_default_width_one(self):
        assert Failure(time=0.0, node_id=0, severity=1).width == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Failure(time=0.0, node_id=0, severity=1, width=0)

    def test_generator_emits_widths(self, rng):
        generator = AppFailureGenerator(
            rng,
            nodes=100,
            node_mtbf_s=years(1),
            burst=BurstModel.with_mean_width(3.0),
        )
        widths = [generator.next_failure().width for _ in range(2000)]
        assert max(widths) > 1
        assert np.mean(widths) == pytest.approx(3.0, rel=0.1)

    def test_generator_without_burst_width_one(self, rng):
        generator = AppFailureGenerator(rng, nodes=100, node_mtbf_s=years(1))
        assert all(generator.next_failure().width == 1 for _ in range(50))


class TestBurstVsReplicas:
    """The engine-level interaction: bursts defeat adjacent replicas."""

    def _red_stats(self, sim, width, node=0):
        from repro.core.execution import ResilientExecution
        from repro.resilience.base import CheckpointLevel, ExecutionPlan, ReplicaPlan
        from repro.workload.synthetic import make_application

        app = make_application("A32", nodes=4, time_steps=10)
        replicas = ReplicaPlan(degree=2.0, virtual_nodes=4, replicated=4)
        level = CheckpointLevel(
            index=1, recovers_severity=3, cost_s=10.0, restart_s=20.0, period_s=100.0
        )
        plan = ExecutionPlan(
            app=app,
            technique="t",
            work_rate=1.0,
            levels=(level,),
            nodes_required=8,
            replicas=replicas,
        )
        engine = ResilientExecution(sim, plan)
        proc = sim.process(engine.run())
        sim.schedule_at(
            50.0,
            lambda _e: proc.interrupt(
                Failure(time=sim.now, node_id=node, severity=1, width=width)
            ),
        )
        sim.run(until=1e8)
        return engine.stats

    def test_width_one_absorbed(self, sim):
        stats = self._red_stats(sim, width=1)
        assert stats.restarts == 0
        assert stats.replica_failures_absorbed == 1

    def test_width_two_kills_adjacent_pair(self, sim):
        # Physical nodes 0,1 back virtual 0: a width-2 burst at node 0
        # takes both replicas at once.
        stats = self._red_stats(sim, width=2, node=0)
        assert stats.restarts == 1

    def test_width_two_straddling_pairs_absorbed(self, sim):
        # Nodes 1,2 belong to virtuals 0 and 1: each keeps one live
        # replica, so the burst is absorbed (two degradations).
        stats = self._red_stats(sim, width=2, node=1)
        assert stats.restarts == 0
        assert stats.replica_failures_absorbed == 1

    def test_wide_burst_always_restarts(self, sim):
        stats = self._red_stats(sim, width=8, node=0)
        assert stats.restarts == 1

    def test_burst_clamped_at_allocation_end(self, sim):
        # Width 4 starting at node 7 (the last physical) strikes only
        # node 7 -> virtual 3 keeps its replica at node 6.
        stats = self._red_stats(sim, width=4, node=7)
        assert stats.restarts == 0
