"""Unit tests for Eq. 2 rate arithmetic."""

import pytest

from repro.failures.rates import (
    application_failure_rate,
    mtbf_from_rate,
    system_failure_rate,
)
from repro.units import YEAR, years


class TestEq2:
    def test_system_rate(self):
        # 120k nodes at 10-year MTBF: one failure every ~43.8 minutes.
        rate = system_failure_rate(120_000, years(10))
        assert 1.0 / rate == pytest.approx(10 * YEAR / 120_000)
        assert 2000 < 1.0 / rate < 3000  # seconds

    def test_zero_active_nodes_gives_zero_rate(self):
        assert system_failure_rate(0, years(10)) == 0.0

    def test_rate_linear_in_nodes(self):
        assert system_failure_rate(2000, years(10)) == pytest.approx(
            2 * system_failure_rate(1000, years(10))
        )

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError):
            system_failure_rate(-1, years(10))

    def test_bad_mtbf_rejected(self):
        with pytest.raises(ValueError):
            system_failure_rate(10, 0.0)


class TestApplicationRate:
    def test_matches_paper_formula(self):
        assert application_failure_rate(1200, years(10)) == pytest.approx(
            1200 / (10 * YEAR)
        )

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            application_failure_rate(0, years(10))


class TestMTBF:
    def test_inverse(self):
        assert mtbf_from_rate(0.5) == pytest.approx(2.0)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            mtbf_from_rate(0.0)
