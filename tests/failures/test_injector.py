"""Unit tests for the datacenter failure injector."""

import pytest

from repro.failures.injector import FailureInjector
from repro.units import years


def _make(sim, system, rng, mtbf_s=1000.0):
    hits = []

    def on_failure(owner, failure):
        hits.append((sim.now, owner, failure))

    injector = FailureInjector(sim, system, mtbf_s, rng, on_failure)
    return injector, hits


class TestRate:
    def test_rate_tracks_active_nodes(self, sim, small_system, rng):
        injector, _ = _make(sim, small_system, rng, mtbf_s=1200.0)
        assert injector.current_rate == 0.0
        small_system.allocate("a", 600)
        assert injector.current_rate == pytest.approx(0.5)

    def test_idle_system_never_fails(self, sim, small_system, rng):
        injector, hits = _make(sim, small_system, rng)
        injector.start()
        sim.schedule(10_000.0, lambda _e: None)  # keep the clock moving
        sim.run()
        assert hits == []

    def test_failures_fire_at_plausible_rate(self, sim, small_system, rng):
        injector, hits = _make(sim, small_system, rng, mtbf_s=1200.0)
        small_system.allocate("a", 1200)  # rate = 1/s
        injector.start()
        sim.schedule(1000.0, lambda _e: injector.stop())
        sim.run(until=1000.0)
        assert 800 < len(hits) < 1200

    def test_failures_target_the_owner(self, sim, small_system, rng):
        injector, hits = _make(sim, small_system, rng, mtbf_s=100.0)
        small_system.allocate("only", 100)
        injector.start()
        sim.run(until=50.0)
        injector.stop()
        assert hits
        assert all(owner == "only" for _, owner, _f in hits)

    def test_severities_sampled(self, sim, small_system, rng):
        injector, hits = _make(sim, small_system, rng, mtbf_s=10.0)
        small_system.allocate("a", 100)
        injector.start()
        sim.run(until=20.0)
        injector.stop()
        severities = {f.severity for _, _, f in hits}
        assert severities <= {1, 2, 3}
        assert len(severities) > 1  # plenty of samples, should vary


class TestLifecycle:
    def test_stop_cancels_pending(self, sim, small_system, rng):
        injector, hits = _make(sim, small_system, rng, mtbf_s=1e9)
        small_system.allocate("a", 100)
        injector.start()
        injector.stop()
        sim.run()
        assert hits == []
        assert sim.pending == 0

    def test_notify_before_start_is_noop(self, sim, small_system, rng):
        injector, _ = _make(sim, small_system, rng)
        small_system.allocate("a", 10)
        injector.notify_allocation_change()  # not started yet
        assert sim.pending == 0

    def test_notify_reschedules(self, sim, small_system, rng):
        injector, _ = _make(sim, small_system, rng, mtbf_s=years(10))
        injector.start()
        assert sim.pending == 0  # idle machine: suspended
        small_system.allocate("a", 100)
        injector.notify_allocation_change()
        assert sim.pending == 1

    def test_release_to_idle_suspends(self, sim, small_system, rng):
        injector, _ = _make(sim, small_system, rng, mtbf_s=years(10))
        small_system.allocate("a", 100)
        injector.start()
        small_system.release("a")
        injector.notify_allocation_change()
        assert sim.pending == 0

    def test_counts_injected(self, sim, small_system, rng):
        injector, hits = _make(sim, small_system, rng, mtbf_s=100.0)
        small_system.allocate("a", 100)
        injector.start()
        sim.run(until=30.0)
        injector.stop()
        assert injector.failures_injected == len(hits) > 0

    def test_bad_mtbf_rejected(self, sim, small_system, rng):
        with pytest.raises(ValueError):
            FailureInjector(sim, small_system, 0.0, rng, lambda o, f: None)
