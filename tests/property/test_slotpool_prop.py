"""Stateful property test: SlotPool accounting under arbitrary
request/release/abandon interleavings."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.sim.engine import Simulator
from repro.sim.resources import SlotPool

SLOTS = 3


class SlotPoolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.pool = SlotPool(self.sim, slots=SLOTS)
        self.held = []
        self.queued = []

    @rule()
    def request(self):
        ticket = self.pool.request()
        if ticket.state == "held":
            self.held.append(ticket)
        else:
            assert ticket.state == "queued"
            self.queued.append(ticket)

    @precondition(lambda self: self.held)
    @rule(data=st.data())
    def release(self, data):
        index = data.draw(st.integers(min_value=0, max_value=len(self.held) - 1))
        ticket = self.held.pop(index)
        ticket.release()
        self._promote_granted()

    @precondition(lambda self: self.queued)
    @rule(data=st.data())
    def abandon_queued(self, data):
        index = data.draw(st.integers(min_value=0, max_value=len(self.queued) - 1))
        ticket = self.queued.pop(index)
        ticket.abandon()
        self._promote_granted()

    @precondition(lambda self: self.held)
    @rule(data=st.data())
    def abandon_held(self, data):
        index = data.draw(st.integers(min_value=0, max_value=len(self.held) - 1))
        ticket = self.held.pop(index)
        ticket.abandon()
        self._promote_granted()

    def _promote_granted(self):
        """Queued tickets granted by a release become held (as a waiting
        process would experience after its signal fires)."""
        for ticket in list(self.queued):
            if ticket.state == "granted":
                self.queued.remove(ticket)
                ticket.state = "held"
                self.held.append(ticket)

    @invariant()
    def conservation(self):
        # Every slot is either free or held by exactly one ticket.
        assert self.pool.free + len(self.held) == SLOTS
        assert self.pool.in_use == len(self.held)
        assert 0 <= self.pool.free <= SLOTS

    @invariant()
    def queue_only_when_full(self):
        if self.pool.queued > 0:
            assert self.pool.free == 0

    @invariant()
    def queue_matches_model(self):
        assert self.pool.queued == len(self.queued)


TestSlotPoolStateMachine = SlotPoolMachine.TestCase
TestSlotPoolStateMachine.settings = settings(
    max_examples=50, stateful_step_count=50, deadline=None
)
