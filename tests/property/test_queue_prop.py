"""Property-based tests for the pending-event queue: it must behave as
a stable priority queue under arbitrary push/pop/cancel interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import Event
from repro.sim.queue import EventQueue


def _noop(_event):
    pass


@st.composite
def event_specs(draw):
    """(time, priority, cancel?) triples."""
    return (
        draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
        draw(st.integers(min_value=-10, max_value=10)),
        draw(st.booleans()),
    )


class TestQueueProperties:
    @given(specs=st.lists(event_specs(), max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_pop_order_matches_sorted_live_events(self, specs):
        queue = EventQueue()
        live = []
        for seq, (time, priority, cancel) in enumerate(specs):
            event = Event(time, _noop, priority=priority, seq=seq)
            queue.push(event)
            if cancel:
                event.cancel()
                queue.notify_cancelled()
            else:
                live.append(event)
        assert len(queue) == len(live)
        popped = []
        while queue:
            popped.append(queue.pop())
        assert popped == sorted(live, key=lambda e: e.sort_key)

    @given(specs=st.lists(event_specs(), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_peek_agrees_with_pop(self, specs):
        queue = EventQueue()
        for seq, (time, priority, _) in enumerate(specs):
            queue.push(Event(time, _noop, priority=priority, seq=seq))
        while queue:
            head = queue.peek()
            assert queue.pop() is head

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_equal_keys_pop_in_insertion_order(self, times):
        queue = EventQueue()
        events = [Event(5.0, _noop, seq=i) for i in range(len(times))]
        for event in events:
            queue.push(event)
        assert [queue.pop() for _ in events] == events
