"""Property-based tests for the simulation kernel: arbitrary event
programs must execute in non-decreasing time order, exactly once each.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


class TestKernelProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            max_size=50,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_every_event_fires_once_in_order(self, delays):
        sim = Simulator()
        fired = []
        for i, delay in enumerate(delays):
            sim.schedule(delay, lambda _e, i=i: fired.append((sim.now, i)))
        sim.run()
        assert len(fired) == len(delays)
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert {i for _, i in fired} == set(range(len(delays)))

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        horizon=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_run_until_splits_cleanly(self, delays, horizon):
        """Running to a horizon then to completion fires the same events
        as one uninterrupted run."""
        full_sim = Simulator()
        full = []
        for i, d in enumerate(delays):
            full_sim.schedule(d, lambda _e, i=i: full.append(i))
        full_sim.run()

        split_sim = Simulator()
        split = []
        for i, d in enumerate(delays):
            split_sim.schedule(d, lambda _e, i=i: split.append(i))
        split_sim.run(until=horizon)
        split_sim.run()
        assert split == full

    @given(
        spawn_delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_nested_process_spawning(self, spawn_delays):
        sim = Simulator()
        finished = []

        def worker(delay, tag):
            yield sim.timeout(delay)
            finished.append(tag)

        def spawner():
            for i, d in enumerate(spawn_delays):
                sim.process(worker(d, i))
                yield sim.timeout(1.0)

        sim.process(spawner())
        sim.run()
        assert sorted(finished) == list(range(len(spawn_delays)))
