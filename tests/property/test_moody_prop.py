"""Property-based tests for the multilevel schedule optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.moody_markov import (
    _boundary_fractions,
    expected_overhead,
    optimize_schedule,
)

costs3 = st.tuples(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.1, max_value=10.0),
    st.floats(min_value=10.0, max_value=2000.0),
)
rates3 = st.tuples(
    st.floats(min_value=1e-8, max_value=1e-4),
    st.floats(min_value=1e-8, max_value=1e-4),
    st.floats(min_value=1e-8, max_value=1e-4),
)


class TestOptimizerProperties:
    @given(costs=costs3, rates=rates3)
    @settings(max_examples=40, deadline=None)
    def test_schedule_well_formed(self, costs, rates):
        schedule = optimize_schedule(list(costs), list(costs), list(rates))
        assert schedule.base_interval_s > 0
        assert len(schedule.multipliers) == 2
        assert all(m >= 1 for m in schedule.multipliers)
        periods = schedule.periods_s
        assert periods[0] <= periods[1] <= periods[2]
        assert schedule.overhead > 0

    @given(costs=costs3, rates=rates3)
    @settings(max_examples=30, deadline=None)
    def test_optimum_beats_random_perturbations(self, costs, rates):
        schedule = optimize_schedule(list(costs), list(costs), list(rates))
        for factor in (0.2, 5.0):
            perturbed = expected_overhead(
                schedule.base_interval_s * factor,
                schedule.multipliers,
                list(costs),
                list(costs),
                list(rates),
            )
            assert perturbed >= schedule.overhead * 0.999

    @given(
        mults=st.tuples(
            st.integers(min_value=1, max_value=50),
            st.integers(min_value=1, max_value=50),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_boundary_fractions_sum_to_one(self, mults):
        fractions = _boundary_fractions(mults)
        assert sum(fractions) == pytest.approx(1.0)
        assert all(f >= 0 for f in fractions)
        # Exactly 1/(m2*m3) of boundaries are top level.
        assert fractions[-1] == pytest.approx(1.0 / (mults[0] * mults[1]))
