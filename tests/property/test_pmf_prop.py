"""Property-based tests for PMF/severity invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.failures.severity import SeverityModel
from repro.rng.distributions import DiscretePMF

probs3 = st.tuples(
    st.floats(min_value=0.01, max_value=10.0),
    st.floats(min_value=0.01, max_value=10.0),
    st.floats(min_value=0.01, max_value=10.0),
)


class TestPMFProperties:
    @given(raw=probs3)
    @settings(max_examples=100, deadline=None)
    def test_normalization(self, raw):
        pmf = DiscretePMF(raw)
        assert sum(pmf.probabilities) == pytest.approx(1.0)
        assert all(p >= 0 for p in pmf.probabilities)

    @given(raw=probs3)
    @settings(max_examples=100, deadline=None)
    def test_tail_monotone_decreasing(self, raw):
        pmf = DiscretePMF(raw)
        tails = [pmf.tail(k) for k in range(len(pmf))]
        assert tails[0] == pytest.approx(1.0)
        assert all(a >= b - 1e-12 for a, b in zip(tails, tails[1:]))

    @given(raw=probs3, scale=st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_scaling_invariance(self, raw, scale):
        a = DiscretePMF(raw)
        b = DiscretePMF(tuple(p * scale for p in raw))
        assert a.probabilities == pytest.approx(b.probabilities)


class TestSeverityProperties:
    @given(raw=probs3, total=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_level_rates_partition_total(self, raw, total):
        model = SeverityModel.from_probabilities(raw)
        parts = [model.level_rate(k, total) for k in (1, 2, 3)]
        assert sum(parts) == pytest.approx(total, abs=1e-12)

    @given(raw=probs3)
    @settings(max_examples=50, deadline=None)
    def test_samples_match_tail_probabilities(self, raw):
        model = SeverityModel.from_probabilities(raw)
        rng = np.random.default_rng(0)
        draws = np.array([model.sample(rng) for _ in range(4000)])
        observed_tail2 = np.mean(draws >= 2)
        assert observed_tail2 == pytest.approx(
            model.probability_at_least(2), abs=0.05
        )
