"""Property-based cross-validation: on randomly drawn configurations
the simulator and the closed-form model must agree within first-order
plus sampling tolerance.

This generalizes the fixed-configuration validation tests — any
(type, size, MTBF) cell the strategy can produce must validate, not
just the handful we thought to write down.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.analytic import predict
from repro.core.single_app import SingleAppConfig, run_trials
from repro.platform.presets import exascale_system
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.units import years
from repro.workload.synthetic import APP_TYPES, make_application

SYSTEM = exascale_system()
TECHNIQUES = {
    "checkpoint_restart": CheckpointRestart,
    "multilevel": MultilevelCheckpoint,
    "parallel_recovery": ParallelRecovery,
}


@given(
    app_type=st.sampled_from(sorted(APP_TYPES)),
    fraction=st.sampled_from([0.06, 0.12, 0.25]),
    mtbf_years=st.sampled_from([5.0, 10.0, 20.0]),
    technique=st.sampled_from(sorted(TECHNIQUES)),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_simulator_agrees_with_model(app_type, fraction, mtbf_years, technique, seed):
    app = make_application(app_type, nodes=SYSTEM.fraction_to_nodes(fraction))
    config = SingleAppConfig(node_mtbf_s=years(mtbf_years), seed=seed)
    factory = TECHNIQUES[technique]
    trial_set = run_trials(app, factory(), SYSTEM, trials=8, config=config)
    plan = factory().plan(
        app, SYSTEM, config.node_mtbf_s, severity=config.severity_model()
    )
    predicted = predict(
        plan, config.node_mtbf_s, config.severity_model()
    ).expected_efficiency
    simulated = trial_set.mean_efficiency
    # The renewal model is first-order in lambda * segment: its own
    # error grows like (lambda * (tau + C))^2 / 2, so the tolerance is
    # that bound plus a 5.5% floor for 8-trial sampling noise (an
    # 8-trial mean of a high-failure-rate cell can sit ~5% off the
    # asymptotic model; e.g. multilevel A32 at 25%/5y with seed 0).
    rate = plan.nodes_required / config.node_mtbf_s
    base_level = plan.levels[0]
    segment = base_level.period_s + base_level.cost_s
    tolerance = 0.055 + 0.5 * (rate * segment) ** 2
    assert abs(simulated - predicted) / predicted < tolerance, (
        app_type,
        fraction,
        mtbf_years,
        technique,
        simulated,
        predicted,
        tolerance,
    )
