"""Property-based tests for seed derivation and cache-key stability.

These lock in the two invariants the parallel executor rests on:

- :func:`repro.rng.streams.derive_seed` maps distinct (cell, trial)
  identities to distinct seeds and is a pure function of its inputs
  (stable across runs and processes), so work can be distributed in any
  order without perturbing any stream;
- :func:`repro.experiments.parallel.cache_key` is invariant to dict
  insertion and dataclass field order but changes when any config field
  value changes, so cache hits are always exact.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ScalingStudyConfig
from repro.experiments.parallel import cache_key
from repro.rng.streams import StreamFactory, derive_seed

cell_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=20
)
trials = st.integers(min_value=0, max_value=10_000)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestSeedDerivation:
    @given(seed=seeds, pairs=st.lists(st.tuples(cell_names, trials), min_size=2, max_size=30, unique=True))
    @settings(max_examples=200, deadline=None)
    def test_unique_across_cell_trial_pairs(self, seed, pairs):
        derived = [derive_seed(seed, "trial", cell, trial) for cell, trial in pairs]
        assert len(set(derived)) == len(derived)

    @given(seed=seeds, cell=cell_names, trial=trials)
    @settings(max_examples=200, deadline=None)
    def test_stable_across_calls(self, seed, cell, trial):
        assert derive_seed(seed, "trial", cell, trial) == derive_seed(
            seed, "trial", cell, trial
        )

    @given(seed=seeds, cell=cell_names, trial=trials)
    @settings(max_examples=100, deadline=None)
    def test_in_63_bit_numpy_seed_range(self, seed, cell, trial):
        value = derive_seed(seed, cell, trial)
        assert 0 <= value < 2**63

    @given(a=seeds, b=seeds, cell=cell_names, trial=trials)
    @settings(max_examples=100, deadline=None)
    def test_root_seed_separates_families(self, a, b, cell, trial):
        if a == b:
            return
        assert derive_seed(a, cell, trial) != derive_seed(b, cell, trial)

    @given(seed=seeds, cell=cell_names, trial=trials)
    @settings(max_examples=50, deadline=None)
    def test_for_trial_factory_matches_derive_seed(self, seed, cell, trial):
        factory = StreamFactory(seed).for_trial(cell, trial)
        assert factory.seed == derive_seed(seed, "trial", cell, trial)
        # Same derivation, same stream.
        again = StreamFactory(seed).for_trial(cell, trial)
        assert factory.stream("failures").random() == again.stream(
            "failures"
        ).random()

    @given(seed=seeds, cells=st.lists(cell_names, min_size=2, max_size=10, unique=True), trial=trials)
    @settings(max_examples=100, deadline=None)
    def test_for_trial_unique_across_cells_at_same_trial(self, seed, cells, trial):
        factories = [StreamFactory(seed).for_trial(c, trial) for c in cells]
        assert len({f.seed for f in factories}) == len(factories)


config_field_values = st.fixed_dictionaries(
    {},
    optional={
        "app_type": st.sampled_from(["A32", "B64", "C32", "D64"]),
        "trials": st.integers(min_value=1, max_value=500),
        "system_nodes": st.integers(min_value=100, max_value=200_000),
        "seed": st.integers(min_value=0, max_value=2**31 - 1),
        "node_mtbf_s": st.floats(min_value=1e4, max_value=1e9, allow_nan=False),
        "baseline_s": st.floats(min_value=60.0, max_value=1e6, allow_nan=False),
    },
)


class TestCacheKeyProperties:
    @given(overrides=config_field_values)
    @settings(max_examples=200, deadline=None)
    def test_stable_for_equal_configs(self, overrides):
        a = ScalingStudyConfig(**overrides)
        b = ScalingStudyConfig(**overrides)
        assert cache_key("scaling", a) == cache_key("scaling", b)

    @given(overrides=config_field_values)
    @settings(max_examples=200, deadline=None)
    def test_changes_when_any_field_changes(self, overrides):
        base = ScalingStudyConfig()
        changed = ScalingStudyConfig(**overrides)
        if changed == base:
            assert cache_key(base) == cache_key(changed)
        else:
            assert cache_key(base) != cache_key(changed)

    @given(
        items=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.integers(min_value=-1000, max_value=1000),
            min_size=2,
            max_size=8,
        ),
        shuffle_seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_dict_order_invariant(self, items, shuffle_seed):
        import random as _random

        keys = list(items)
        _random.Random(shuffle_seed).shuffle(keys)
        reordered = {k: items[k] for k in keys}
        assert cache_key(items) == cache_key(reordered)

    def test_field_order_invariant_across_dataclass_variants(self):
        # Two dataclasses with identical fields declared in different
        # orders canonicalise to the same sorted mapping.
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class AB:
            __qualname__ = "Probe"
            a: int = 1
            b: int = 2

        @dataclass(frozen=True)
        class BA:
            __qualname__ = "Probe"
            b: int = 2
            a: int = 1

        AB.__module__ = BA.__module__ = "probe"
        assert cache_key(AB()) == cache_key(BA())

    def test_replace_single_field_always_misses(self):
        base = ScalingStudyConfig()
        for override in (
            replace(base, trials=base.trials + 1),
            replace(base, seed=base.seed + 1),
            replace(base, app_type="C32"),
            replace(base, fractions=base.fractions[:-1]),
            replace(base, severity_pmf=(0.5, 0.3, 0.2)),
        ):
            assert cache_key(base) != cache_key(override)
