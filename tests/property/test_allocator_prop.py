"""Property-based tests for the contiguous allocator.

Arbitrary interleavings of allocate/release must preserve the free-list
invariants (sorted, disjoint, coalesced) and conservation of nodes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.platform.allocator import AllocationError, ContiguousAllocator

TOTAL = 64


class AllocatorMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.allocator = ContiguousAllocator(TOTAL)
        self.held = []

    @rule(size=st.integers(min_value=1, max_value=TOTAL))
    def allocate(self, size):
        if self.allocator.can_allocate(size):
            block = self.allocator.allocate(size)
            assert block.size == size
            self.held.append(block)
        else:
            with pytest.raises(AllocationError):
                self.allocator.allocate(size)

    @precondition(lambda self: self.held)
    @rule(data=st.data())
    def release(self, data):
        index = data.draw(st.integers(min_value=0, max_value=len(self.held) - 1))
        block = self.held.pop(index)
        self.allocator.release(block)

    @invariant()
    def conservation(self):
        held_nodes = sum(b.size for b in self.held)
        assert self.allocator.allocated_nodes == held_nodes
        assert self.allocator.free_nodes == TOTAL - held_nodes

    @invariant()
    def structural(self):
        self.allocator.check_invariants()

    @invariant()
    def held_blocks_disjoint(self):
        spans = sorted((b.start, b.stop) for b in self.held)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2


TestAllocatorStateMachine = AllocatorMachine.TestCase
TestAllocatorStateMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)


class TestAllocateReleaseRoundtrip:
    @given(sizes=st.lists(st.integers(min_value=1, max_value=16), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_release_all_restores_full_capacity(self, sizes):
        allocator = ContiguousAllocator(TOTAL)
        held = []
        for size in sizes:
            if allocator.can_allocate(size):
                held.append(allocator.allocate(size))
        for block in held:
            allocator.release(block)
        assert allocator.free_nodes == TOTAL
        assert allocator.largest_free_block == TOTAL
        allocator.check_invariants()

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=8)
    )
    @settings(max_examples=60, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        allocator = ContiguousAllocator(TOTAL)
        blocks = []
        for size in sizes:
            if allocator.can_allocate(size):
                blocks.append(allocator.allocate(size))
        seen = set()
        for block in blocks:
            span = set(range(block.start, block.stop))
            assert not span & seen
            seen |= span
