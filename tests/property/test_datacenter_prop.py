"""Property-based tests for the datacenter simulator: for arbitrary
small workloads and any policy combination, conservation properties
must hold (every job resolved exactly once, machine left clean,
accounting consistent)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.datacenter import (
    DatacenterConfig,
    DatacenterSimulator,
    JobStatus,
)
from repro.core.selection import FixedSelector
from repro.platform.presets import exascale_system
from repro.resilience.registry import datacenter_techniques
from repro.rm.registry import make_manager, manager_names
from repro.rng.streams import StreamFactory
from repro.units import years
from repro.workload.patterns import PatternGenerator

NODES = 1200
TECHNIQUES = {t.name: t for t in datacenter_techniques()}


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rm_name=st.sampled_from(manager_names()),
    technique=st.sampled_from(sorted(TECHNIQUES)),
    arrivals=st.integers(min_value=1, max_value=12),
    mtbf_years=st.sampled_from([0.2, 2.5, 10.0]),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_datacenter_conservation(seed, rm_name, technique, arrivals, mtbf_years):
    pattern = PatternGenerator(StreamFactory(seed), NODES).generate(
        0, arrivals=arrivals
    )
    system = exascale_system(NODES)
    simulator = DatacenterSimulator(
        pattern,
        make_manager(rm_name, StreamFactory(seed).fresh("rm")),
        FixedSelector(TECHNIQUES[technique]),
        system,
        DatacenterConfig(node_mtbf_s=years(mtbf_years), seed=seed),
    )
    result = simulator.run()

    # Every job appears exactly once and is resolved.
    assert len(result.records) == len(pattern.all_apps)
    assert {r.app.app_id for r in result.records} == {
        a.app_id for a in pattern.all_apps
    }
    assert all(
        r.status in (JobStatus.COMPLETED, JobStatus.DROPPED) for r in result.records
    )

    # Machine is left clean.
    assert system.active_nodes == 0
    system.check_invariants()

    # Completed jobs have consistent interval accounting.
    for record in result.records:
        if record.status is JobStatus.COMPLETED:
            assert record.start_time is not None
            assert record.end_time is not None
            assert record.end_time - record.start_time >= (
                record.app.baseline_time - 1e-6
            )
        if record.start_time is None:
            assert record.status is JobStatus.DROPPED

    # Dropped percentage is consistent with the records.
    arriving = result.arriving_records()
    assert result.dropped_pct == pytest.approx(
        100.0 * sum(r.dropped for r in arriving) / len(arriving)
    )
