"""Property-based tests for the resilient-execution engine.

For arbitrary plans and failure injections, completion must be
accompanied by conserved wall-time accounting and physically sensible
stats (elapsed >= effective work, rework only after failures, etc.).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.execution import ResilientExecution
from repro.failures.generator import Failure
from repro.resilience.base import CheckpointLevel, ExecutionPlan
from repro.sim.engine import Simulator
from repro.workload.synthetic import make_application


@st.composite
def plans(draw):
    time_steps = draw(st.integers(min_value=1, max_value=20))
    period = draw(st.floats(min_value=10.0, max_value=500.0))
    cost = draw(st.floats(min_value=0.0, max_value=30.0))
    restart = draw(st.floats(min_value=0.0, max_value=30.0))
    work_rate = draw(st.floats(min_value=1.0, max_value=2.0))
    sigma = draw(st.sampled_from([1.0, 2.0, 4.0]))
    app = make_application("B32", nodes=8, time_steps=time_steps)
    level = CheckpointLevel(
        index=1, recovers_severity=3, cost_s=cost, restart_s=restart, period_s=period
    )
    return ExecutionPlan(
        app=app,
        technique="prop",
        work_rate=work_rate,
        levels=(level,),
        nodes_required=8,
        recovery_speedup=sigma,
    )


@st.composite
def failure_times(draw):
    return draw(
        st.lists(
            st.floats(min_value=0.5, max_value=3000.0),
            max_size=6,
            unique=True,
        )
    )


class TestEngineProperties:
    @given(plan=plans(), times=failure_times())
    @settings(max_examples=80, deadline=None)
    def test_accounting_conservation(self, plan, times):
        sim = Simulator()
        engine = ResilientExecution(sim, plan)
        proc = sim.process(engine.run())
        for t in sorted(times):
            sim.schedule_at(
                t,
                lambda _e: proc.interrupt(
                    Failure(time=sim.now, node_id=0, severity=1)
                )
                if proc.alive
                else None,
            )
        sim.run(until=1e7)
        stats = engine.stats
        assert stats.completed
        # Wall time splits exactly into the four activities.
        total = (
            stats.work_time_s
            + stats.rework_time_s
            + stats.checkpoint_time_s
            + stats.restart_time_s
        )
        assert total == pytest.approx(stats.elapsed_s, rel=1e-9, abs=1e-6)
        # Forward progress work equals the effective baseline.
        assert stats.work_time_s == pytest.approx(
            plan.effective_work_s, rel=1e-9, abs=1e-6
        )
        # No failures => no rework/restarts.
        if stats.failures == 0:
            assert stats.rework_time_s == 0.0
            assert stats.restart_time_s == 0.0
        assert stats.restarts <= stats.failures
        assert 0 < stats.efficiency() <= 1.0 + 1e-9

    @given(plan=plans())
    @settings(max_examples=40, deadline=None)
    def test_failure_free_elapsed_formula(self, plan):
        """Without failures, elapsed = work + (#checkpoints * cost)."""
        sim = Simulator()
        engine = ResilientExecution(sim, plan)
        sim.process(engine.run())
        sim.run(until=1e7)
        stats = engine.stats
        assert stats.completed
        expected = plan.effective_work_s + stats.total_checkpoints * plan.levels[0].cost_s
        assert stats.elapsed_s == pytest.approx(expected, rel=1e-9, abs=1e-6)
        # Boundary count: floor(work / period), minus one if the work is
        # an exact multiple (the final boundary completes the app).
        import math

        work, period = plan.effective_work_s, plan.levels[0].period_s
        boundaries = math.floor(work / period + 1e-9)
        if abs(boundaries * period - work) < 1e-6 and boundaries > 0:
            boundaries -= 1
        assert stats.total_checkpoints == boundaries

    @given(plan=plans(), time=st.floats(min_value=1.0, max_value=2000.0))
    @settings(max_examples=60, deadline=None)
    def test_single_failure_rolls_back_at_most_one_period(self, plan, time):
        sim = Simulator()
        engine = ResilientExecution(sim, plan)
        proc = sim.process(engine.run())
        sim.schedule_at(
            time,
            lambda _e: proc.interrupt(Failure(time=sim.now, node_id=0, severity=1))
            if proc.alive
            else None,
        )
        sim.run(until=1e7)
        stats = engine.stats
        assert stats.completed
        if stats.restarts == 1:
            # Lost work bounded by one period plus one checkpoint cost
            # (a failure mid-checkpoint also loses the interval behind it).
            level = plan.levels[0]
            max_loss = level.period_s + level.cost_s
            assert stats.rework_time_s * plan.recovery_speedup <= max_loss + 1e-6
