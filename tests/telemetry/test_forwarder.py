"""EventForwarder / ForwardingTelemetry: the agent-side feed half."""

from repro.telemetry import EventForwarder, ForwardingTelemetry
from repro.telemetry.forwarder import MAX_BATCH


class FakeClient:
    def __init__(self, fail=False):
        self.fail = fail
        self.posts = []

    def post_site_events(self, site, events):
        if self.fail:
            raise ConnectionError("control plane unreachable")
        self.posts.append((site, list(events)))
        return {"accepted": len(events)}


class TestOffer:
    def test_offer_buffers_normalised_entries(self):
        fwd = EventForwarder(FakeClient(), "site-a")
        fwd.offer("sim.TrialStarted", {"trial": 0}, job_id="j1")
        fwd.offer("sim.Heartbeat")
        assert fwd.pending() == 2
        fwd.flush()
        _, batch = fwd.client.posts[0]
        assert batch == [
            {"kind": "sim.TrialStarted", "job_id": "j1", "data": {"trial": 0}},
            {"kind": "sim.Heartbeat"},
        ]

    def test_overflow_drops_oldest_and_counts(self):
        fwd = EventForwarder(FakeClient(), "site-a", capacity=3)
        for i in range(5):
            fwd.offer(f"k.{i}")
        assert fwd.pending() == 3
        assert fwd.dropped == 2
        fwd.flush()
        _, batch = fwd.client.posts[0]
        assert [e["kind"] for e in batch] == ["k.2", "k.3", "k.4"]

    def test_capacity_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            EventForwarder(FakeClient(), "s", capacity=0)


class TestFlush:
    def test_flush_batches_at_max_batch(self):
        fwd = EventForwarder(FakeClient(), "site-a", capacity=2 * MAX_BATCH)
        for i in range(MAX_BATCH + 10):
            fwd.offer(f"k.{i}")
        assert fwd.flush() == MAX_BATCH + 10
        sizes = [len(batch) for _, batch in fwd.client.posts]
        assert sizes == [MAX_BATCH, 10]
        assert fwd.forwarded == MAX_BATCH + 10
        assert fwd.pending() == 0

    def test_failed_post_drops_batch_and_returns(self):
        fwd = EventForwarder(FakeClient(fail=True), "site-a")
        for i in range(5):
            fwd.offer(f"k.{i}")
        assert fwd.flush() == 0
        assert fwd.dropped == 5
        assert fwd.pending() == 0  # never retried against a dead plane
        assert fwd.forwarded == 0

    def test_recovery_after_outage(self):
        client = FakeClient(fail=True)
        fwd = EventForwarder(client, "site-a")
        fwd.offer("lost")
        fwd.flush()
        client.fail = False
        fwd.offer("kept")
        assert fwd.flush() == 1
        assert [e["kind"] for _, b in client.posts for e in b] == ["kept"]

    def test_close_is_a_final_flush(self):
        fwd = EventForwarder(FakeClient(), "site-a")
        fwd.offer("k")
        fwd.close()
        assert fwd.pending() == 0
        assert fwd.forwarded == 1


class TestForwardingTelemetry:
    def test_job_sink_none_for_unwatched(self):
        fwd = EventForwarder(FakeClient(), "site-a")
        telemetry = ForwardingTelemetry(fwd, lambda job_id: False)
        assert telemetry.job_sink("j1") is None

    def test_watched_sink_offers_into_the_forwarder(self):
        fwd = EventForwarder(FakeClient(), "site-a")
        telemetry = ForwardingTelemetry(fwd, lambda job_id: job_id == "j1")
        sink = telemetry.job_sink("j1")
        assert sink is not None
        assert "ActivitySpan" in sink.skip
        sink.emit("sim.FailureInjected", {"node": 7})
        telemetry.flush()
        _, batch = fwd.client.posts[0]
        assert batch == [
            {
                "kind": "sim.FailureInjected",
                "job_id": "j1",
                "data": {"node": 7},
            }
        ]
