"""TelemetryHub: watch refcounting, sinks, ingest, stats."""

from repro.telemetry import SKIP_SIM_EVENTS, TelemetryHub


def kinds(hub):
    events, _ = hub.ring.read_since(0)
    return [e.kind for e in events]


class TestWatches:
    def test_unwatched_by_default(self):
        hub = TelemetryHub()
        assert not hub.is_watched("j1")
        assert hub.watched() == []

    def test_watch_unwatch_roundtrip(self):
        hub = TelemetryHub()
        hub.watch("j1")
        assert hub.is_watched("j1")
        assert hub.watched() == ["j1"]
        hub.unwatch("j1")
        assert not hub.is_watched("j1")

    def test_watches_are_refcounted(self):
        hub = TelemetryHub()
        hub.watch("j1")
        hub.watch("j1")
        hub.unwatch("j1")
        assert hub.is_watched("j1")
        hub.unwatch("j1")
        assert not hub.is_watched("j1")

    def test_excess_unwatch_is_harmless(self):
        hub = TelemetryHub()
        hub.unwatch("never-watched")
        hub.watch("j1")
        hub.unwatch("j1")
        hub.unwatch("j1")
        assert not hub.is_watched("j1")


class TestJobSink:
    def test_none_for_unwatched_jobs(self):
        # The fast-path guarantee: an unwatched job gets no sink, so
        # its simulation buses stay unobserved.
        hub = TelemetryHub()
        assert hub.job_sink("j1") is None

    def test_watched_sink_publishes_into_the_ring(self):
        hub = TelemetryHub()
        hub.watch("j1")
        sink = hub.job_sink("j1")
        assert sink is not None
        sink.emit("sim.FailureInjected", {"node": 3})
        events, _ = hub.ring.read_since(0)
        assert events[-1].kind == "sim.FailureInjected"
        assert events[-1].job_id == "j1"
        assert events[-1].data == {"node": 3}

    def test_sink_skips_high_frequency_kinds(self):
        hub = TelemetryHub()
        hub.watch("j1")
        assert hub.job_sink("j1").skip == frozenset(SKIP_SIM_EVENTS)
        assert "ActivitySpan" in SKIP_SIM_EVENTS


class TestPublishing:
    def test_ingest_tags_site_and_counts(self):
        hub = TelemetryHub()
        accepted = hub.ingest(
            "site-a",
            [
                {"kind": "sim.TrialStarted", "job_id": "j1"},
                {"kind": "sim.CheckpointTaken", "job_id": "j1",
                 "data": {"level": 1}},
            ],
        )
        assert accepted == 2
        events, _ = hub.ring.read_since(0)
        assert [e.site for e in events] == ["site-a", "site-a"]
        assert events[1].data == {"level": 1}

    def test_campaign_notify_scopes_by_campaign(self):
        hub = TelemetryHub()
        hub.campaign_notify("campaign.done", "c1", {"cells": 4})
        events, _ = hub.ring.read_since(0)
        assert events[0].campaign_id == "c1"
        assert kinds(hub) == ["campaign.done"]

    def test_flush_is_a_noop(self):
        TelemetryHub().flush()


class TestStats:
    def test_stats_shape(self):
        hub = TelemetryHub(capacity=4)
        for _ in range(6):
            hub.publish("k")
        hub.watch("j1")
        stats = hub.stats()
        assert stats == {
            "ring": {"capacity": 4, "size": 4, "dropped": 2, "last_seq": 6},
            "watched_jobs": 1,
        }

    def test_close_closes_the_ring(self):
        hub = TelemetryHub()
        hub.close()
        assert hub.ring.closed
