"""TelemetryRing: bounded append, sequencing, gaps, blocking reads."""

import threading

import pytest

from repro.telemetry import TelemetryRing


def fill(ring, n, kind="k"):
    return [ring.append(f"{kind}.{i}") for i in range(n)]


class TestAppend:
    def test_sequence_starts_at_one_and_is_strictly_increasing(self):
        ring = TelemetryRing(capacity=8)
        events = fill(ring, 5)
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]
        assert ring.last_seq == 5

    def test_empty_ring_stats(self):
        ring = TelemetryRing(capacity=8)
        assert ring.last_seq == 0
        assert ring.dropped == 0
        assert ring.occupancy() == 0
        assert ring.read_since(0) == ([], 0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryRing(capacity=0)

    def test_event_fields_and_payload(self):
        ring = TelemetryRing(capacity=4, clock=lambda: 123.5)
        event = ring.append(
            "job.done", job_id="j1", site="s1", data={"state": "done"}
        )
        assert event.ts == 123.5
        payload = event.to_payload()
        assert payload == {
            "seq": 1,
            "ts": 123.5,
            "kind": "job.done",
            "data": {"state": "done"},
            "job_id": "j1",
            "site": "s1",
        }
        # None scopes are omitted from the wire form.
        bare = ring.append("tick").to_payload()
        assert set(bare) == {"seq", "ts", "kind", "data"}

    def test_append_copies_data(self):
        ring = TelemetryRing(capacity=4)
        data = {"a": 1}
        event = ring.append("k", data=data)
        data["a"] = 2
        assert event.data == {"a": 1}


class TestOverflow:
    def test_eviction_is_oldest_first(self):
        ring = TelemetryRing(capacity=3)
        fill(ring, 5)
        events, _ = ring.read_since(0)
        assert [e.seq for e in events] == [3, 4, 5]
        assert [e.kind for e in events] == ["k.2", "k.3", "k.4"]

    def test_dropped_count_is_exact(self):
        ring = TelemetryRing(capacity=3)
        fill(ring, 10)
        assert ring.dropped == 7
        assert ring.occupancy() == 3
        assert ring.last_seq == 10

    def test_sequence_numbers_survive_eviction(self):
        ring = TelemetryRing(capacity=2)
        fill(ring, 100)
        events, _ = ring.read_since(0)
        assert [e.seq for e in events] == [99, 100]


class TestReadSince:
    def test_reads_everything_after_cursor(self):
        ring = TelemetryRing(capacity=8)
        fill(ring, 5)
        events, missed = ring.read_since(2)
        assert missed == 0
        assert [e.seq for e in events] == [3, 4, 5]

    def test_limit_bounds_the_batch(self):
        ring = TelemetryRing(capacity=8)
        fill(ring, 5)
        events, _ = ring.read_since(0, limit=2)
        assert [e.seq for e in events] == [1, 2]

    def test_gap_reported_when_cursor_precedes_oldest(self):
        ring = TelemetryRing(capacity=3)
        fill(ring, 10)  # retained: 8, 9, 10
        events, missed = ring.read_since(4)
        # Events 5, 6, 7 were requested but already evicted.
        assert missed == 3
        assert [e.seq for e in events] == [8, 9, 10]

    def test_no_gap_at_exact_boundary(self):
        ring = TelemetryRing(capacity=3)
        fill(ring, 10)  # oldest retained is 8
        _, missed = ring.read_since(7)
        assert missed == 0

    def test_cursor_at_head_reads_nothing(self):
        ring = TelemetryRing(capacity=8)
        fill(ring, 5)
        assert ring.read_since(5) == ([], 0)
        assert ring.read_since(99) == ([], 0)


class TestWaitFor:
    def test_returns_immediately_when_newer_exists(self):
        ring = TelemetryRing(capacity=4)
        fill(ring, 2)
        assert ring.wait_for(1, timeout=0.01) is True

    def test_times_out_without_new_events(self):
        ring = TelemetryRing(capacity=4)
        fill(ring, 2)
        assert ring.wait_for(2, timeout=0.01) is False

    def test_woken_by_append(self):
        ring = TelemetryRing(capacity=4)
        results = []

        def waiter():
            results.append(ring.wait_for(0, timeout=30.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        ring.append("k")
        thread.join(timeout=30.0)
        assert results == [True]

    def test_close_wakes_waiters_with_false(self):
        ring = TelemetryRing(capacity=4)
        results = []

        def waiter():
            results.append(ring.wait_for(0, timeout=30.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        ring.close()
        thread.join(timeout=30.0)
        assert results == [False]
        assert ring.closed

    def test_closed_ring_never_blocks(self):
        ring = TelemetryRing(capacity=4)
        ring.close()
        assert ring.wait_for(0, timeout=30.0) is False


class TestConcurrency:
    def test_parallel_appends_keep_sequencing_consistent(self):
        ring = TelemetryRing(capacity=64)
        threads = [
            threading.Thread(target=fill, args=(ring, 50, f"t{i}"))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ring.last_seq == 200
        assert ring.dropped == 200 - 64
        events, missed = ring.read_since(0)
        assert missed == 200 - 64
        assert [e.seq for e in events] == list(range(137, 201))
