"""Thread-local live activation: streaming without losing the fast path.

The load-bearing property of the telemetry design: only *watched*
jobs' simulations attach a live sink (and pay the observed-bus stepped
path); everything else keeps ``bus.observed == False`` and the
failure-horizon fast path.  Results stay bit-identical either way.
"""

import threading

from repro.core.single_app import SingleAppConfig, simulate_application
from repro.obs import live
from repro.obs.bus import EventBus
from repro.obs.sinks import LiveEventSink
from repro.resilience.registry import get_technique
from repro.units import HOUR
from repro.workload.synthetic import make_application


def run_trial(app_nodes=60, **config_overrides):
    app = make_application("A32", nodes=app_nodes, time_steps=30)
    technique = get_technique("checkpoint_restart")
    from repro.platform.presets import exascale_system

    system = exascale_system(total_nodes=1_200)
    config = SingleAppConfig(node_mtbf_s=50 * HOUR, seed=7,
                             **config_overrides)
    return simulate_application(app, technique, system, config, trial=0)


def stats_tuple(stats):
    return (
        stats.end_time,
        stats.completed,
        stats.failures,
        stats.restarts,
        stats.work_time_s,
        stats.rework_time_s,
        stats.checkpoint_time_s,
    )


class TestActivation:
    def test_no_activation_means_no_sinks(self):
        assert live.current_sinks() == ()
        bus = EventBus()
        live.attach_current(bus)
        assert not bus.observed

    def test_activation_is_scoped_to_the_context(self):
        sink = LiveEventSink(lambda kind, record: None)
        with live.activated(sink):
            assert live.current_sinks() == (sink,)
        assert live.current_sinks() == ()

    def test_none_entries_are_filtered(self):
        # The worker pool passes hub.job_sink(...) straight in; None
        # (unwatched) must leave the thread unobserved.
        with live.activated(None):
            assert live.current_sinks() == ()
            bus = EventBus()
            live.attach_current(bus)
            assert not bus.observed

    def test_nested_activation_stacks_and_restores(self):
        a = LiveEventSink(lambda k, r: None)
        b = LiveEventSink(lambda k, r: None)
        with live.activated(a):
            with live.activated(b):
                assert live.current_sinks() == (a, b)
            assert live.current_sinks() == (a,)

    def test_activation_is_thread_local(self):
        sink = LiveEventSink(lambda k, r: None)
        seen = []
        with live.activated(sink):
            thread = threading.Thread(
                target=lambda: seen.append(live.current_sinks())
            )
            thread.start()
            thread.join()
        assert seen == [()]


class TestSimulationIntegration:
    def test_activated_sink_receives_live_events(self):
        events = []
        sink = LiveEventSink(
            lambda kind, record: events.append((kind, record)),
            skip=("ActivitySpan",),
        )
        with live.activated(sink):
            stats = run_trial()
        kinds = {kind for kind, _ in events}
        assert "sim.TrialStarted" in kinds
        assert "sim.ExecutionStarted" in kinds
        assert "sim.ActivitySpan" not in kinds  # skip filter holds
        assert stats.completed
        # Records are JSON-safe plain data.
        for _, record in events:
            assert all(
                value is None or isinstance(value, (bool, int, float, str))
                for value in record.values()
            )

    def test_streaming_does_not_change_results(self):
        baseline = run_trial()
        with live.activated(LiveEventSink(lambda k, r: None)):
            observed = run_trial()
        assert stats_tuple(baseline) == stats_tuple(observed)

    def test_unwatched_run_after_watched_keeps_fast_path(self):
        with live.activated(LiveEventSink(lambda k, r: None)):
            run_trial()
        assert live.current_sinks() == ()
        bus = EventBus()
        live.attach_current(bus)
        assert not bus.observed
