"""TelemetryStore: one lifecycle event per committed transition.

Pins the wrapper's inlined state strings against the real
``repro.service.store`` constants (the wrapper cannot import them at
runtime without a cycle).
"""

import pytest

import repro.telemetry.store as telemetry_store
from repro.service.store import DepPolicy, JobState, create_store
from repro.telemetry import TelemetryHub, TelemetryStore

SPEC = {"experiment": "fig1", "quick": True}


@pytest.fixture
def hub():
    return TelemetryHub(capacity=256)


@pytest.fixture
def store(hub):
    delegate = create_store("sqlite://:memory:", max_attempts=2)
    return TelemetryStore(delegate, hub)


def kinds(hub):
    events, _ = hub.ring.read_since(0)
    return [e.kind for e in events]


def last(hub):
    events, _ = hub.ring.read_since(0)
    return events[-1]


class TestInlinedConstants:
    def test_wrapper_strings_match_store_constants(self):
        assert telemetry_store._CANCELLED == JobState.CANCELLED
        assert telemetry_store._QUEUED == JobState.QUEUED
        assert tuple(telemetry_store._TERMINAL) == tuple(JobState.TERMINAL)
        assert telemetry_store._CASCADE == DepPolicy.CASCADE


class TestLifecycleEvents:
    def test_submit_publishes_job_submitted(self, store, hub):
        job_id = store.submit(SPEC)
        event = last(hub)
        assert event.kind == "job.submitted"
        assert event.job_id == job_id
        assert event.data == {"state": JobState.QUEUED, "experiment": "fig1"}

    def test_claim_publishes_per_job_with_site(self, store, hub):
        a = store.submit(SPEC)
        b = store.submit(SPEC)
        store.register_site("site-a")
        batch = store.claim_batch("w1", lease_s=60, limit=2, site="site-a")
        assert {r.id for r in batch} == {a, b}
        claimed = [e for e in hub.ring.read_since(0)[0]
                   if e.kind == "job.claimed"]
        assert {e.job_id for e in claimed} == {a, b}
        assert all(e.site == "site-a" for e in claimed)
        assert claimed[0].data == {"worker": "w1", "attempts": 1}

    def test_complete_publishes_job_done(self, store, hub):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=60)
        assert store.complete(job_id, "w1", "{}")
        event = last(hub)
        assert event.kind == "job.done"
        assert event.data == {"state": JobState.DONE}

    def test_fail_publishes_job_failed_with_error_line(self, store, hub):
        # This backend's fail() is always terminal (retries happen via
        # lease expiry), so the wrapper's job.retrying branch stays
        # dormant here — it guards backends that requeue on fail.
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=60)
        assert store.fail(job_id, "w1", "boom\ntraceback...")
        event = last(hub)
        assert event.kind == "job.failed"
        assert event.data == {"state": JobState.FAILED, "error": "boom"}

    def test_expired_lease_reclaim_publishes_fresh_claim(self, hub):
        clock = [0.0]
        delegate = create_store(
            "sqlite://:memory:", max_attempts=3, clock=lambda: clock[0]
        )
        store = TelemetryStore(delegate, hub)
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=1)
        clock[0] = 10.0  # lease expired; the job is runnable again
        record = store.claim("w2", lease_s=1)
        assert record.id == job_id
        claimed = [e for e in hub.ring.read_since(0)[0]
                   if e.kind == "job.claimed"]
        assert [e.data["worker"] for e in claimed] == ["w1", "w2"]
        assert claimed[-1].data["attempts"] == 2

    def test_rejected_completion_publishes_nothing(self, store, hub):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=60)
        before = kinds(hub)
        assert not store.complete(job_id, "not-the-owner", "{}")
        assert not store.fail(job_id, "not-the-owner", "x")
        assert kinds(hub) == before

    def test_release_publishes_job_released(self, store, hub):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=60)
        assert store.release(job_id, "w1")
        event = last(hub)
        assert event.kind == "job.released"
        assert event.data == {"worker": "w1"}

    def test_cancel_queued_publishes_job_cancelled(self, store, hub):
        job_id = store.submit(SPEC)
        store.cancel(job_id)
        assert last(hub).kind == "job.cancelled"

    def test_cancel_running_publishes_cancel_requested(self, store, hub):
        job_id = store.submit(SPEC)
        store.claim("w1", lease_s=60)
        store.cancel(job_id)
        assert last(hub).kind == "job.cancel_requested"
        assert last(hub).data["state"] == JobState.RUNNING

    def test_site_registration_and_drain(self, store, hub):
        store.register_site("site-a")
        store.drain_site("site-a")
        assert kinds(hub)[-2:] == ["site.registered", "site.draining"]
        assert last(hub).site == "site-a"


class TestDelegation:
    def test_unwrapped_surface_delegates(self, store):
        job_id = store.submit(SPEC)
        assert store.queue_depth() == 1
        assert store.get(job_id).spec == SPEC
        assert store.counts()[JobState.QUEUED] == 1

    def test_error_line_bounds_and_strips(self):
        assert telemetry_store._error_line("  a\nb\nc ") == "a"
        assert telemetry_store._error_line("") == ""
        assert telemetry_store._error_line("x" * 500) == "x" * 200
