"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that environments whose setuptools predates native ``bdist_wheel``
support (and that cannot fetch the ``wheel`` package) can still do
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
