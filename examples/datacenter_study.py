#!/usr/bin/env python
"""Oversubscribed-datacenter study (Sec. VI of the paper).

Simulates the exascale machine serving arrival patterns of deadline-
constrained applications under every (resilience technique x resource
manager) combination plus the failure-free Ideal Baseline, and prints
the dropped-application percentages — Fig. 4 at reduced scale.

Run:  python examples/datacenter_study.py                   (~1 minute)
      python examples/datacenter_study.py --patterns 20     (closer to paper)
"""

import argparse

from repro.experiments import fig4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patterns", type=int, default=4)
    parser.add_argument("--arrivals", type=int, default=40)
    args = parser.parse_args()

    config = fig4.config(
        patterns=args.patterns, arrivals_per_pattern=args.arrivals
    )
    result = fig4.run(config, progress=lambda msg: print(f"  [{msg}]"))
    print()
    print(fig4.render(result))
    best = fig4.best_technique_per_rm(result)
    print(
        "best technique per RM: "
        + ", ".join(f"{rm}->{tech}" for rm, tech in best.items())
    )
    print(
        "\nEvery combination drops more applications than the Ideal\n"
        "Baseline — that gap is the real capacity cost of failures plus\n"
        "resilience overhead.  Note how the best technique depends on the\n"
        "resource manager (Sec. VI)."
    )


if __name__ == "__main__":
    main()
