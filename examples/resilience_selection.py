#!/usr/bin/env python
"""Resilience-aware resource management (Sec. VII of the paper).

Part 1 shows the selection oracle itself: for each Table I type and a
range of sizes, which technique the analytic model picks (and the
efficiency it predicts).

Part 2 runs the Fig. 5 experiment at reduced scale: Parallel Recovery
alone vs. per-application Resilience Selection on high-communication
arrival patterns, where selection helps most.

Run:  python examples/resilience_selection.py        (~1 minute)
"""

from repro.analysis.analytic import predict_efficiency
from repro.constants import DEFAULT_NODE_MTBF_S
from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.selection import FixedSelector, ResilienceSelection
from repro.platform.presets import exascale_system
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rm.slack import SlackBased
from repro.rng.streams import StreamFactory
from repro.workload.patterns import PatternBias, PatternGenerator
from repro.workload.synthetic import APP_TYPES, make_application


def show_selection_map() -> None:
    system = exascale_system()
    selector = ResilienceSelection(DEFAULT_NODE_MTBF_S)
    print("Selected technique per (application type, system fraction):")
    fractions = (0.01, 0.06, 0.25, 0.50, 1.00)
    header = "type   " + "".join(f"{100 * f:>7.0f}%" for f in fractions)
    print(header)
    for name in sorted(APP_TYPES):
        row = [f"{name:<6}"]
        for fraction in fractions:
            app = make_application(name, nodes=system.fraction_to_nodes(fraction))
            technique = selector.select(app, system)
            plan = technique.plan(app, system, DEFAULT_NODE_MTBF_S)
            eff = predict_efficiency(plan, DEFAULT_NODE_MTBF_S)
            tag = {"checkpoint_restart": "CR", "multilevel": "ML",
                   "parallel_recovery": "PR"}[technique.name]
            row.append(f"{tag}:{eff:.2f}".rjust(8))
        print(" ".join(row))
    print()


def run_selection_experiment() -> None:
    patterns = PatternGenerator(StreamFactory(2017), 120_000).generate_many(
        count=3, bias=PatternBias.HIGH_COMMUNICATION, arrivals=40
    )
    config = DatacenterConfig()
    for label, selector_factory in (
        ("parallel_recovery", lambda: FixedSelector(ParallelRecovery())),
        ("selection", lambda: ResilienceSelection(config.node_mtbf_s)),
    ):
        drops = []
        for pattern in patterns:
            result = run_datacenter(
                pattern,
                SlackBased(),
                selector_factory(),
                exascale_system(),
                config,
            )
            drops.append(result.dropped_pct)
        mean = sum(drops) / len(drops)
        print(
            f"{label:<20} dropped {mean:5.1f}% "
            f"(per pattern: {', '.join(f'{d:.0f}%' for d in drops)})"
        )
    print(
        "\nHigh-communication workloads are where technique optimality\n"
        "varies most between applications, so per-application selection\n"
        "recovers the most capacity (Sec. VII / Fig. 5)."
    )


if __name__ == "__main__":
    show_selection_map()
    run_selection_experiment()
