#!/usr/bin/env python
"""Quickstart: which resilience technique should my application use?

Simulates one application configuration (Table I type D64 on 12% of
the exascale machine) under all five techniques from the paper and
prints the efficiency comparison — a single vertical slice of Fig. 2.

Run:  python examples/quickstart.py
"""

from repro import compare_techniques


def main() -> None:
    result = compare_techniques(
        app_type="D64",  # 75% communication, 64 GB/node (Table I)
        fraction=0.12,  # 12% of the 120 000-node exascale machine
        trials=20,  # paper uses 200; 20 is plenty for a demo
    )
    print(result.summary())
    print()
    print(
        "At this size the multilevel scheme wins: the message-logging\n"
        "slowdown (mu = 1.075 for 75% communication) costs Parallel\n"
        "Recovery more than checkpointing costs Multilevel.  Re-run with\n"
        "fraction=0.5 to watch the crossover from Fig. 2."
    )


if __name__ == "__main__":
    main()
