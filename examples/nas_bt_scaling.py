#!/usr/bin/env python
"""From the NAS BT benchmark to Table I to a technique choice.

The paper's synthetic suite is grounded in Van der Wijngaart et al.'s
exascale extrapolation of the NAS BT benchmark (reference [6]): at
extreme scale, communication grows to dominate 22/50/80% of execution
depending on the input parameter set.  This example walks that chain:

1. model BT's communication fraction as the application scales;
2. map each (scale, parameter set) onto its nearest Table I type;
3. ask the Resilience Selection oracle which technique that type/size
   should run with.

Run:  python examples/nas_bt_scaling.py
"""

from repro.constants import DEFAULT_NODE_MTBF_S
from repro.core.selection import ResilienceSelection
from repro.platform.presets import exascale_system
from repro.workload.nas_bt import (
    EXASCALE_CORES,
    BTParameterSet,
    bt_comm_fraction,
    render_scaling_profile,
    table1_type_for,
)
from repro.workload.synthetic import make_application


def main() -> None:
    system = exascale_system()
    cores_per_node = 1028  # the exascale node of Sec. III-C
    scales = [1_233_600, 12_336_000, EXASCALE_CORES]  # ~1%, ~10%, 100%

    print(render_scaling_profile(scales))
    print()

    selector = ResilienceSelection(DEFAULT_NODE_MTBF_S)
    print(
        f"{'cores':>14} {'param set':>10} {'T_C':>6} {'Table I':>8} "
        f"{'selected technique':>20}"
    )
    for cores in scales:
        nodes = max(1, cores // cores_per_node)
        for param_set in BTParameterSet:
            type_name = table1_type_for(cores, param_set, 32.0)
            app = make_application(type_name, nodes=min(nodes, system.total_nodes))
            technique = selector.select(app, system)
            print(
                f"{cores:>14,d} {param_set.name:>10} "
                f"{bt_comm_fraction(cores, param_set):>6.2f} {type_name:>8} "
                f"{technique.name:>20}"
            )
    print(
        "\nThe same application migrates across Table I types as it\n"
        "scales (communication share grows), and with it the optimal\n"
        "resilience technique — the reason Sec. VII's per-application\n"
        "Resilience Selection exists."
    )


if __name__ == "__main__":
    main()
