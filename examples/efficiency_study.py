#!/usr/bin/env python
"""Application-scaling efficiency study (Sec. V of the paper).

Reproduces the structure of Figs. 1 and 2 at reduced statistical scale:
efficiency of all five resilience techniques as an application grows
from 1% of the exascale system to the full machine, for a
low-communication type (A32) and a high-communication type (D64).

Run:  python examples/efficiency_study.py          (~1 minute)
      python examples/efficiency_study.py --trials 50   (better stats)
"""

import argparse

from repro.experiments import fig1, fig2
from repro.experiments.config import ScalingStudyConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=10)
    args = parser.parse_args()

    for module, app_type in ((fig1, "A32"), (fig2, "D64")):
        config = ScalingStudyConfig(app_type=app_type, trials=args.trials)
        result = module.run(config)
        print(module.render(result))
        print()

    print(
        "Shapes to notice (Sec. V):\n"
        " - Parallel Recovery dominates A32 at every size (Fig. 1);\n"
        " - for D64, Multilevel wins small and Parallel Recovery wins at\n"
        "   ~25%+ of the machine (Fig. 2's crossover);\n"
        " - Checkpoint Restart always degrades fastest;\n"
        " - redundancy turns infeasible (---) when replicas no longer fit."
    )


if __name__ == "__main__":
    main()
