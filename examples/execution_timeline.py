#!/usr/bin/env python
"""Visualize one resilient execution as an ASCII timeline.

Runs a single application under each technique in an unreliable
environment (2.5-year node MTBF) with timeline recording enabled and
prints where the wall-clock time went: forward work, recovery
(re-execution of lost work), checkpointing, restarts.

Run:  python examples/execution_timeline.py
"""

from repro.core.execution import ResilientExecution
from repro.core.single_app import SingleAppConfig, failure_driver
from repro.core.timeline import render_timeline
from repro.failures.generator import AppFailureGenerator
from repro.platform.presets import exascale_system
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.units import years
from repro.workload.synthetic import make_application


def main() -> None:
    system = exascale_system()
    app = make_application("C32", nodes=system.fraction_to_nodes(0.5))
    config = SingleAppConfig(node_mtbf_s=years(2.5), seed=11)

    for technique in (CheckpointRestart(), MultilevelCheckpoint(), ParallelRecovery()):
        plan = technique.plan(
            app, system, config.node_mtbf_s, severity=config.severity_model()
        )
        sim = Simulator()
        engine = ResilientExecution(sim, plan, record_timeline=True)
        proc = sim.process(engine.run(), name="app")
        generator = AppFailureGenerator(
            StreamFactory(config.seed).stream("failures"),
            nodes=plan.nodes_required,
            node_mtbf_s=config.node_mtbf_s,
            severity=config.severity_model(),
        )
        sim.process(failure_driver(sim, proc, generator), name="failures")
        sim.run(until=config.max_time_factor * plan.effective_work_s)

        stats = engine.stats
        print(f"=== {technique.name} ===")
        print(
            f"failures {stats.failures}, restarts {stats.restarts}, "
            f"efficiency {stats.efficiency():.3f}"
        )
        print(render_timeline(engine.timeline))
        print()


if __name__ == "__main__":
    main()
