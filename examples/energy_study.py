#!/usr/bin/env python
"""Energy extension: quantify Sec. II-D's claim that message-logging
recovery saves energy because "only the failed system node needs to
perform re-computation, and the rest of the system can remain idle".

Runs Checkpoint Restart and Parallel Recovery on the same unreliable
configuration and compares joules spent per activity.

Run:  python examples/energy_study.py
"""

from repro.core.single_app import SingleAppConfig, simulate_application
from repro.energy.model import PowerModel, energy_of, energy_overhead_ratio
from repro.platform.presets import exascale_system
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.units import years
from repro.workload.synthetic import make_application


def main() -> None:
    system = exascale_system()
    app = make_application("B32", nodes=system.fraction_to_nodes(0.25))
    # A 2.5-year node MTBF makes failures frequent enough to matter.
    config = SingleAppConfig(node_mtbf_s=years(2.5), seed=7)
    power = PowerModel(busy_w=350.0, idle_w=120.0)

    print(
        f"Application {app.type_name} on {app.nodes} nodes, "
        f"baseline {app.baseline_time / 3600:.0f} h, node MTBF 2.5 y\n"
    )
    header = (
        f"{'technique':<22} {'elapsed h':>10} {'failures':>9} "
        f"{'rework GJ':>10} {'total GJ':>9} {'vs ideal':>9}"
    )
    print(header)
    print("-" * len(header))
    for technique in (CheckpointRestart(), MultilevelCheckpoint(), ParallelRecovery()):
        stats = simulate_application(app, technique, system, config)
        breakdown = energy_of(stats, power)
        ratio = energy_overhead_ratio(stats, power)
        print(
            f"{technique.name:<22} {stats.elapsed_s / 3600:>10.1f} "
            f"{stats.failures:>9d} {breakdown.rework_j / 1e9:>10.2f} "
            f"{breakdown.total_j / 1e9:>9.1f} {ratio:>8.3f}x"
        )

    print(
        "\nParallel Recovery's rework joules collapse because during\n"
        "recovery only the parallelized recovery cohort burns busy power\n"
        "while every other node idles; checkpoint/restart techniques\n"
        "re-execute lost work on all nodes."
    )


if __name__ == "__main__":
    main()
