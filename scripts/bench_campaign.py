"""Benchmark the adaptive campaign controller vs exhaustive execution.

Runs the same scenario twice through an in-process service:

- **exhaustive**: a plain campaign with ``run.trials = max_trials`` —
  every cell spends its full trial budget, results rendered as the
  JSON artifact.
- **adaptive**: the server-side controller submits the identical
  budget as dependency-chained batches, early-stops cells whose 95% CI
  half-width falls below the relative threshold, and cancels the
  unconsumed tail of each chain.

Because adaptive batches draw from per-(cell, trial-index) seed
streams, a converged cell's consumed trials are the exact prefix of
the exhaustive run — so both sides must pick the *same* winning
technique everywhere.  The script renders both selections through the
one shared table renderer
(:func:`repro.campaigns.controller.render_best_technique_table`) and
refuses to write results unless the two tables are byte-identical.
``--min-reduction`` additionally fails the run when the trial-count
reduction factor comes in below the floor (the repository artifact
``BENCH_campaign.json`` documents >= 3x).

Cells: a fig1-style fraction sweep across three techniques, and a
crossover-dense cell (fractions straddling the multilevel vs parallel
recovery boundary, with bisection refinement enabled).

Usage::

    PYTHONPATH=src python scripts/bench_campaign.py [--smoke]
        [--min-reduction X] [--workers N] [--out PATH]
"""

from __future__ import annotations

import argparse
import copy
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_common import write_results
from repro.campaigns.controller import (
    best_map_from_results,
    render_best_technique_table,
)
from repro.scenarios.compiler import scenario_cells
from repro.scenarios.schema import parse_scenario
from repro.service.app import ReproService, ServiceConfig
from repro.service.client import ServiceClient

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CELLS = {
    "fig1_sweep": {
        "scenario": {"name": "bench-fig1-sweep"},
        "platform": {"total_nodes": 100_000},
        "failures": {"regime": "poisson", "mtbf_years": 5.0},
        "workload": {
            "study": "scaling",
            "app_type": "A32",
            "fractions": [0.1, 0.5, 0.9],
        },
        "techniques": {
            "names": [
                "checkpoint_restart",
                "multilevel",
                "parallel_recovery",
            ]
        },
        "adaptive": {
            "max_trials": 60,
            "batch_size": 10,
            "ci_rel_threshold": 0.05,
            "refine_depth": 0,
        },
    },
    "crossover_dense": {
        "scenario": {"name": "bench-crossover-dense"},
        "platform": {"total_nodes": 100_000},
        "failures": {"regime": "poisson", "mtbf_years": 2.5},
        "workload": {
            "study": "scaling",
            "app_type": "D64",
            "fractions": [0.05, 0.2, 0.8, 0.95],
        },
        "techniques": {"names": ["multilevel", "parallel_recovery"]},
        "adaptive": {
            "max_trials": 60,
            "batch_size": 10,
            "ci_rel_threshold": 0.05,
            "refine_depth": 1,
        },
    },
}

SMOKE_CELLS = {
    "smoke_sweep": {
        "scenario": {"name": "bench-smoke-sweep"},
        "platform": {"total_nodes": 20_000},
        "failures": {"regime": "poisson", "mtbf_years": 5.0},
        "workload": {
            "study": "scaling",
            "app_type": "A32",
            "fractions": [0.1, 0.9],
        },
        "techniques": {"names": ["checkpoint_restart", "multilevel"]},
        "adaptive": {
            "max_trials": 12,
            "batch_size": 4,
            "ci_rel_threshold": 0.05,
            "refine_depth": 0,
        },
    },
}


def fresh_service(workers: int) -> ReproService:
    """An in-process service on an ephemeral port with a roomy queue
    (batch chains count toward the queue limit)."""
    svc = ReproService(
        ServiceConfig(
            host="127.0.0.1",
            port=0,
            workers=workers,
            db_path=":memory:",
            poll_interval_s=0.05,
            queue_limit=8192,
        )
    )
    svc.start()
    return svc


def run_adaptive(client: ServiceClient, doc: dict) -> dict:
    """Submit *doc* adaptively and wait; returns the final status plus
    wall time."""
    start = time.perf_counter()
    campaign = client.submit_campaign(spec=doc, cache=False)
    status = client.wait_campaign(campaign["id"], timeout=3600, poll_s=0.05)
    elapsed = time.perf_counter() - start
    status["_wall_s"] = elapsed
    return status


def run_exhaustive(client: ServiceClient, doc: dict) -> dict:
    """Run *doc* as a plain campaign at the full trial budget; returns
    the merged winning-technique map, trial count, and wall time."""
    exhaustive = copy.deepcopy(doc)
    max_trials = exhaustive.pop("adaptive")["max_trials"]
    exhaustive["run"] = {"trials": max_trials}
    start = time.perf_counter()
    campaign = client.submit_campaign(
        spec=exhaustive, adaptive=False, format="json", cache=False
    )
    best: dict = {}
    for unit in campaign["units"]:
        job_id = unit["job"]["id"]
        final = client.wait(job_id, timeout=3600)
        if final["state"] != "done":
            raise RuntimeError(
                f"exhaustive unit {unit['label']!r} ended {final['state']}"
            )
        best.update(best_map_from_results(json.loads(client.result(job_id))))
    elapsed = time.perf_counter() - start
    spec = parse_scenario(exhaustive, source="<bench>")
    cells = scenario_cells(spec)
    axis = spec.sweep.axis if spec.sweep is not None else None
    axis_values = list(dict.fromkeys(c.axis_value for c in cells))
    fractions = sorted(dict.fromkeys(c.fraction for c in cells))
    return {
        "table": render_best_technique_table(
            axis, axis_values, fractions, best
        ),
        "trials": max_trials * len(cells),
        "_wall_s": elapsed,
    }


def measure_cell(name: str, doc: dict, workers: int) -> dict:
    """One adaptive-vs-exhaustive pair on a fresh service."""
    svc = fresh_service(workers)
    try:
        client = ServiceClient(svc.url, timeout=60.0)
        adaptive = run_adaptive(client, doc)
        exhaustive = run_exhaustive(client, doc)
    finally:
        svc.shutdown(timeout=60)
    trials = adaptive["trials"]
    by_state = adaptive["jobs"]["by_state"]
    record = {
        "stepped_wall_s": exhaustive["_wall_s"],
        "fast_wall_s": adaptive["_wall_s"],
        "speedup": exhaustive["_wall_s"] / adaptive["_wall_s"],
        "bit_identical": adaptive["table"] == exhaustive["table"],
        "adaptive_trials": trials["executed"],
        "exhaustive_trials": exhaustive["trials"],
        "trial_reduction": exhaustive["trials"] / trials["executed"],
        "cells_converged": sum(
            1 for c in adaptive["cells"] if c["converged"]
        ),
        "cells_total": len(adaptive["cells"]),
        "jobs_submitted": adaptive["jobs"]["total"],
        "jobs_consumed": sum(c["jobs_consumed"] for c in adaptive["cells"]),
        "jobs_cancelled": by_state.get("cancelled", 0),
        "refinements": len(adaptive.get("refinements", [])),
    }
    print(
        f"{name}: {record['adaptive_trials']} vs "
        f"{record['exhaustive_trials']} trials "
        f"({record['trial_reduction']:.1f}x reduction), "
        f"wall {record['fast_wall_s']:.2f}s vs "
        f"{record['stepped_wall_s']:.2f}s, "
        f"tables {'match' if record['bit_identical'] else 'DIVERGED'}"
    )
    if not record["bit_identical"]:
        print("--- adaptive table ---")
        print(adaptive["table"])
        print("--- exhaustive table ---")
        print(exhaustive["table"])
    return record


def main() -> int:
    parser = argparse.ArgumentParser(
        description="adaptive campaign vs exhaustive benchmark"
    )
    parser.add_argument("--smoke", action="store_true", help="CI-sized cells")
    parser.add_argument(
        "--min-reduction",
        type=float,
        default=None,
        help="fail unless every cell reduces trials by at least this factor",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="result path (default BENCH_campaign.json at the repo root)",
    )
    args = parser.parse_args()
    cells_def = SMOKE_CELLS if args.smoke else CELLS
    out = args.out or REPO_ROOT / "BENCH_campaign.json"

    results = {
        name: measure_cell(name, doc, args.workers)
        for name, doc in cells_def.items()
    }
    if args.min_reduction is not None:
        slow = [
            name
            for name, cell in results.items()
            if cell["trial_reduction"] < args.min_reduction
        ]
        if slow:
            print(
                f"ERROR: trial reduction below {args.min_reduction}x in: "
                + ", ".join(slow)
            )
            return 1
    return write_results(
        out,
        "adaptive campaign controller vs exhaustive trial budget "
        "(byte-identical winning-technique tables)",
        results,
        extra={"smoke": args.smoke, "workers": args.workers},
    )


if __name__ == "__main__":
    sys.exit(main())
