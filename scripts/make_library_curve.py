#!/usr/bin/env python
"""Regenerate the pinned grid-tariff curve bundled with the scenario
library (``src/repro/scenarios/library/traces/pinned-tariff.jsonl``).

The curve is committed so the ``grid-trace-tariff`` scenario is fully
deterministic for every user; rerunning this script reproduces the
identical file (fixed seed, versioned JSONL with full-``repr``
floats).  The schedule is a 24-segment time-of-use day — off-peak
overnight, shoulder mornings/evenings, a hard afternoon peak — with a
small deterministic per-hour perturbation so no two segments are
exactly equal (the integral tests then exercise every boundary).
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.grid.curves import (  # noqa: E402
    DAY_S,
    UNIT_PRICE,
    TraceCurve,
    curve_digest,
    save_curve,
)

SEED = 20170 + 11

#: Base $/kWh per hour-of-day: off-peak 00-06, shoulder 07-15,
#: peak 16-20, shoulder 21-23.
BASE_BY_HOUR = (
    [0.08] * 7          # 00-06
    + [0.12] * 9        # 07-15
    + [0.24] * 5        # 16-20
    + [0.12] * 3        # 21-23
)

OUT = (
    pathlib.Path(__file__).resolve().parents[1]
    / "src"
    / "repro"
    / "scenarios"
    / "library"
    / "traces"
    / "pinned-tariff.jsonl"
)


def main() -> None:
    rng = np.random.default_rng(SEED)
    levels = [
        round(base * (1.0 + 0.05 * float(rng.uniform(-1.0, 1.0))), 6)
        for base in BASE_BY_HOUR
    ]
    times = [hour * 3600.0 for hour in range(24)]
    curve = TraceCurve(times, levels, period_s=DAY_S, unit=UNIT_PRICE)
    OUT.parent.mkdir(parents=True, exist_ok=True)
    save_curve(curve, OUT)
    print(f"{OUT}: {len(levels)} segments, sha256 {curve_digest(curve)}")


if __name__ == "__main__":
    main()
