#!/usr/bin/env python
"""End-to-end smoke test of the adaptive campaign controller, as run
by CI.

Starts ``repro serve`` with ZERO in-process workers plus one ``repro
agent`` subprocess, submits a small adaptive campaign through the real
CLI (``repro scenario submit --adaptive --wait``), and checks the
whole loop:

- the campaign converges (every cell settled, state ``done``);
- it executes strictly fewer trials than the exhaustive compile of the
  same spec would (early stopping actually saved work);
- ``repro campaign status`` serves the lifecycle over HTTP;
- the winning-technique table printed by the CLI byte-matches the one
  rendered from an exhaustive run of the same spec at the full trial
  budget — the determinism contract (per-(cell, trial-index) seed
  streams) makes adaptive results a prefix of exhaustive results, so
  both must agree on every winner.

Finishes with SIGTERM to the agent and the server and asserts both
exit 0.  Exits 0 on success; any failure raises (non-zero exit).
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.campaigns.controller import (  # noqa: E402
    best_map_from_results,
    render_best_technique_table,
)
from repro.scenarios.compiler import scenario_cells  # noqa: E402
from repro.scenarios.schema import parse_scenario  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

MAX_TRIALS = 12

SPEC_TOML = """\
[scenario]
name = "campaign-smoke"

[platform]
total_nodes = 20000

[failures]
regime = "poisson"
mtbf_years = 5.0

[workload]
study = "scaling"
app_type = "A32"
fractions = [0.1, 0.9]

[techniques]
names = ["checkpoint_restart", "multilevel"]

[adaptive]
max_trials = 12
batch_size = 4
ci_rel_threshold = 0.05
refine_depth = 0
"""

SPEC_DOC = {
    "scenario": {"name": "campaign-smoke"},
    "platform": {"total_nodes": 20000},
    "failures": {"regime": "poisson", "mtbf_years": 5.0},
    "workload": {
        "study": "scaling",
        "app_type": "A32",
        "fractions": [0.1, 0.9],
    },
    "techniques": {"names": ["checkpoint_restart", "multilevel"]},
    "run": {"trials": MAX_TRIALS},
}


def smoke_env(cache_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = cache_dir
    return env


def start_server(db_path: str, env: dict) -> "tuple[subprocess.Popen, str]":
    """Launch the workers=0 control plane and parse the bound URL."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "0",
            "--store", f"sqlite://{db_path}",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (http://\S+)", line)
    if not match:
        proc.kill()
        raise AssertionError(f"no listening line from server, got: {line!r}")
    return proc, match.group(1)


def start_agent(url: str, env: dict) -> subprocess.Popen:
    """Launch one worker agent."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "agent",
            "--url", url, "--site", "campaign-smoke",
            "--workers", "1", "--batch-size", "2", "--lease-s", "60",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    if "serving site campaign-smoke" not in line:
        proc.kill()
        raise AssertionError(f"no serving line from agent, got: {line!r}")
    return proc


def stop(proc: subprocess.Popen, name: str) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError(f"{name} did not exit after SIGTERM")
    assert code == 0, f"{name} exited {code} after SIGTERM"


def exhaustive_table(client: ServiceClient) -> str:
    """The winning-technique table of the same spec run exhaustively
    at the full trial budget, via the shared renderer."""
    campaign = client.submit_campaign(
        spec=SPEC_DOC, adaptive=False, format="json", cache=False
    )
    best: dict = {}
    for unit in campaign["units"]:
        job_id = unit["job"]["id"]
        final = client.wait(job_id, timeout=600.0, poll_s=0.2)
        assert final["state"] == "done", final
        best.update(best_map_from_results(json.loads(client.result(job_id))))
    spec = parse_scenario(SPEC_DOC, source="<smoke>")
    cells = scenario_cells(spec)
    axis = spec.sweep.axis if spec.sweep is not None else None
    axis_values = list(dict.fromkeys(c.axis_value for c in cells))
    fractions = sorted(dict.fromkeys(c.fraction for c in cells))
    return render_best_technique_table(axis, axis_values, fractions, best)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = os.path.join(tmp, "campaign-smoke.toml")
        with open(spec_path, "w") as handle:
            handle.write(SPEC_TOML)
        env = smoke_env(os.path.join(tmp, "cache-server"))
        server, url = start_server(os.path.join(tmp, "service.db"), env)
        agent = None
        try:
            client = ServiceClient(url, timeout=30.0)
            assert client.health()["workers"] == 0
            agent = start_agent(url, smoke_env(os.path.join(tmp, "cache-a")))
            print(f"[campaign-smoke] control plane at {url}, one agent")

            # Submit the adaptive campaign through the real CLI and
            # wait for convergence; the table lands on stdout.
            submit = subprocess.run(
                [
                    sys.executable, "-m", "repro", "scenario", "submit",
                    spec_path, "--url", url, "--adaptive", "--wait",
                    "--timeout", "600",
                ],
                capture_output=True,
                text=True,
                env=env,
            )
            print(submit.stderr, end="", file=sys.stderr)
            assert submit.returncode == 0, (
                f"scenario submit exited {submit.returncode}:\n"
                f"{submit.stdout}\n{submit.stderr}"
            )
            match = re.search(r"id ([0-9a-f]+),", submit.stderr)
            assert match, f"no campaign id in stderr: {submit.stderr!r}"
            campaign_id = match.group(1)
            adaptive_table = submit.stdout.rstrip("\n")
            assert adaptive_table, "no table on stdout"

            # The lifecycle endpoint, through the CLI status verb.
            status_run = subprocess.run(
                [
                    sys.executable, "-m", "repro", "campaign", "status",
                    campaign_id, "--url", url,
                ],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            status = json.loads(status_run.stdout)
            assert status["state"] == "done", status
            assert all(c["settled"] for c in status["cells"]), status
            trials = status["trials"]
            cells = scenario_cells(parse_scenario(SPEC_DOC, source="<smoke>"))
            exhaustive_budget = MAX_TRIALS * len(cells)
            assert trials["exhaustive"] == exhaustive_budget, trials
            assert trials["executed"] < exhaustive_budget, (
                f"adaptive executed {trials['executed']} trials, no fewer "
                f"than the exhaustive compile's {exhaustive_budget}"
            )
            print(
                f"[campaign-smoke] converged: {trials['executed']} trials "
                f"vs {exhaustive_budget} exhaustive "
                f"({trials['reduction']:.2f}x reduction)"
            )

            # Byte-match the adaptive table against an exhaustive run.
            expected = exhaustive_table(client)
            assert adaptive_table == expected, (
                "adaptive table differs from exhaustive run:\n"
                f"--- adaptive\n{adaptive_table}\n"
                f"--- exhaustive\n{expected}"
            )
            print("[campaign-smoke] winning-technique table byte-identical")
        finally:
            if agent is not None:
                stop(agent, "agent")
            stop(server, "server")
        print("[campaign-smoke] graceful SIGTERM shutdown")
    time.sleep(0.1)
    print("[campaign-smoke] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
