#!/usr/bin/env python
"""Load generator for the service API: concurrent submission storm.

Hammers ``POST /v1/jobs`` from N threads (paused server — the point is
API throughput and backpressure, not simulation speed), then reports
accepted vs rejected (429) counts, sustained request throughput, and
p50/p95/p99 submission latency.  Writes the report to
``benchmarks/results/service_load.txt`` (``--out`` to override).

By default the script spins up its own in-process control plane
(workers=0, in-memory store, queue bounded with ``--queue-limit`` so
both accepted and rejected submissions appear in the report); pass
``--url`` to aim at an already running server instead.

Usage::

    PYTHONPATH=src python scripts/load_service.py              # full run
    PYTHONPATH=src python scripts/load_service.py --smoke      # CI-sized
    PYTHONPATH=src python scripts/load_service.py --url http://host:8642
"""

import argparse
import pathlib
import statistics
import sys
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.service.client import NO_RETRY, ServiceClient, ServiceError  # noqa: E402

DEFAULT_OUT = REPO / "benchmarks" / "results" / "service_load.txt"


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url",
        default=None,
        help="target an already running service (default: spin one up)",
    )
    parser.add_argument(
        "--threads", type=int, default=8, help="concurrent submitters"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=5000,
        help="total submissions across all threads",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=1024,
        help="queue bound of the self-hosted server (sized so the storm "
        "overflows it and 429 backpressure shows up in the report)",
    )
    parser.add_argument(
        "--experiment",
        default="table1",
        help="experiment submitted by every request",
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        help="report path (default benchmarks/results/service_load.txt)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (400 requests, 4 threads); skips the report file",
    )
    return parser.parse_args(argv)


class Tally:
    """Thread-safe accept/reject/latency accumulator."""

    def __init__(self):
        self.lock = threading.Lock()
        self.accepted = 0
        self.rejected = 0
        self.errors = 0
        self.latencies = []

    def record(self, kind, latency_s):
        with self.lock:
            setattr(self, kind, getattr(self, kind) + 1)
            self.latencies.append(latency_s)


def submitter(url, spec, count, tally):
    client = ServiceClient(url, timeout=30.0, retry=NO_RETRY)
    for _ in range(count):
        started = time.perf_counter()
        try:
            client.submit(dict(spec))
            kind = "accepted"
        except ServiceError as exc:
            kind = "rejected" if exc.status == 429 else "errors"
        tally.record(kind, time.perf_counter() - started)


def percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_load(url, args):
    spec = {"experiment": args.experiment, "format": "table"}
    tally = Tally()
    per_thread = args.requests // args.threads
    threads = [
        threading.Thread(
            target=submitter, args=(url, spec, per_thread, tally)
        )
        for _ in range(args.threads)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    total = tally.accepted + tally.rejected + tally.errors
    lat = tally.latencies
    lines = [
        "service submission load test",
        "============================",
        f"target            {url}",
        f"threads           {args.threads}",
        f"requests          {total}",
        f"accepted          {tally.accepted}",
        f"rejected (429)    {tally.rejected}",
        f"transport errors  {tally.errors}",
        f"wall time         {wall_s:.2f} s",
        f"throughput        {total / wall_s:.0f} req/s",
        f"latency mean      {statistics.fmean(lat) * 1000:.2f} ms",
        f"latency p50       {percentile(lat, 0.50) * 1000:.2f} ms",
        f"latency p95       {percentile(lat, 0.95) * 1000:.2f} ms",
        f"latency p99       {percentile(lat, 0.99) * 1000:.2f} ms",
    ]
    return "\n".join(lines) + "\n", tally


def main(argv=None):
    args = parse_args(argv)
    if args.smoke:
        args.requests = min(args.requests, 400)
        args.threads = min(args.threads, 4)
        args.queue_limit = min(args.queue_limit, 256)

    service = None
    url = args.url
    if url is None:
        from repro.service.app import ReproService, ServiceConfig

        service = ReproService(
            ServiceConfig(
                host="127.0.0.1",
                port=0,
                workers=0,
                db_path=":memory:",
                queue_limit=args.queue_limit,
            )
        )
        service.start()
        url = service.url
    try:
        report, tally = run_load(url, args)
    finally:
        if service is not None:
            service.shutdown(timeout=30)
    print(report, end="")
    if tally.errors:
        print("FAIL: transport errors during the storm", file=sys.stderr)
        return 1
    if not tally.accepted:
        print("FAIL: no submission was accepted", file=sys.stderr)
        return 1
    if not args.smoke:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report, encoding="utf-8")
        print(f"[load] report written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
