"""Benchmark the datacenter fast path: batched closed-form vs stepped.

Runs fig4-scale datacenter cells (the full exascale machine under an
arrival pattern, FCFS/EASY mapping, multilevel or single-level
checkpointing, optionally a contended PFS slot pool) two ways:

- **stepped**: one independent :func:`repro.core.datacenter.run_datacenter`
  per pattern with the fast path disabled — a fresh system and fresh
  technique plans each time, every kernel event stepped through.
- **fast**: one :func:`repro.core.datacenter.run_datacenter_batch` over
  the same patterns with the fast path enabled — greedy closed-form
  jumps in every job engine, plus the batch's shared system and plan
  cache.

Per-job completion times, drop decisions, and execution stats must be
bit-identical between the two (the script refuses to write results
otherwise); wall-time ratios are recorded in ``BENCH_datacenter.json``
at the repository root.

Usage::

    PYTHONPATH=src python scripts/bench_datacenter.py [--repeats 3]
        [--min-speedup X] [--smoke]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import repro.core.execution as execution
from bench_common import measure_pair, write_results
from repro.core.datacenter import (
    DatacenterConfig,
    run_datacenter,
    run_datacenter_batch,
)
from repro.platform.presets import exascale_system
from repro.resilience.registry import get_technique
from repro.rng.streams import StreamFactory
from repro.workload.patterns import PatternGenerator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CELLS = {
    "fig4_fcfs_multilevel": dict(
        system_nodes=120_000,
        seed=7,
        patterns=3,
        rm="fcfs",
        technique="multilevel",
        pfs_slots=None,
    ),
    "fig4_fcfs_multilevel_pfs4": dict(
        system_nodes=120_000,
        seed=7,
        patterns=3,
        rm="fcfs",
        technique="multilevel",
        pfs_slots=4,
    ),
    "fig4_easy_checkpoint_restart": dict(
        system_nodes=120_000,
        seed=11,
        patterns=2,
        rm="easy",
        technique="checkpoint_restart",
        pfs_slots=None,
    ),
}

SMOKE_CELLS = {
    "smoke_fcfs_multilevel": dict(
        system_nodes=3_000,
        seed=7,
        patterns=2,
        rm="fcfs",
        technique="multilevel",
        pfs_slots=None,
    ),
    "smoke_fcfs_multilevel_pfs2": dict(
        system_nodes=3_000,
        seed=7,
        patterns=2,
        rm="fcfs",
        technique="multilevel",
        pfs_slots=2,
    ),
}


class _FixedSelector:
    """Selector that always picks one registered technique."""

    def __init__(self, name: str) -> None:
        self._technique = get_technique(name)

    def select(self, app, system):
        return self._technique


def _digest(results) -> tuple:
    """Equality-comparable summary of a batch's observable outputs."""
    rows = []
    for result in results:
        for record in sorted(result.records, key=lambda r: r.app.app_id):
            stats = record.stats
            rows.append(
                (
                    record.app.app_id,
                    record.status.name,
                    record.technique,
                    record.start_time,
                    record.end_time,
                    record.dropped,
                    None
                    if stats is None
                    else (
                        stats.work_time_s,
                        stats.rework_time_s,
                        stats.checkpoint_time_s,
                        stats.failed_checkpoints,
                        tuple(sorted(stats.checkpoints_taken.items())),
                    ),
                )
            )
    return tuple(rows)


def _cell_runner(cell: dict, fast: bool):
    """Closure running one cell end to end on one path."""
    nodes = cell["system_nodes"]
    patterns = PatternGenerator(StreamFactory(cell["seed"]), nodes).generate_many(
        count=cell["patterns"]
    )
    config = DatacenterConfig(seed=cell["seed"], pfs_slots=cell["pfs_slots"])
    rm_name, technique = cell["rm"], cell["technique"]

    def run():
        from repro.rm import make_manager

        execution.FAST_PATH_ENABLED = fast
        streams = StreamFactory(cell["seed"])

        def manager_factory(pattern):
            return make_manager(
                rm_name, streams.fresh(f"rm-{rm_name}-{pattern.index}")
            )

        def selector_factory():
            return _FixedSelector(technique)

        started = time.perf_counter()
        if fast:
            results = run_datacenter_batch(
                patterns,
                manager_factory,
                selector_factory,
                exascale_system(total_nodes=nodes),
                config,
            )
        else:
            results = [
                run_datacenter(
                    pattern,
                    manager_factory(pattern),
                    selector_factory(),
                    exascale_system(total_nodes=nodes),
                    config,
                )
                for pattern in patterns
            ]
        elapsed = time.perf_counter() - started
        execution.FAST_PATH_ENABLED = True
        extras = {
            "jobs": sum(len(result.records) for result in results),
            "patterns": len(results),
        }
        return elapsed, _digest(results), extras

    return run


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (and write nothing) when any cell lands below this",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny cells for CI: correctness + no-regression, not scale",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_datacenter.json",
    )
    args = parser.parse_args()

    cells = SMOKE_CELLS if args.smoke else CELLS
    records = {}
    for name, cell in cells.items():
        record = measure_pair(
            _cell_runner(cell, fast=False),
            _cell_runner(cell, fast=True),
            repeats=args.repeats,
            warmup=args.warmup,
        )
        record["cell"] = cell
        records[name] = record
        print(
            f"{name}: wall {record['stepped_wall_s'] * 1e3:.1f} ms -> "
            f"{record['fast_wall_s'] * 1e3:.1f} ms "
            f"({record['speedup']:.2f}x), identical={record['bit_identical']}"
        )
    return write_results(
        args.out,
        "datacenter mapping loop: batched fast path vs stepped execution",
        records,
        min_speedup=args.min_speedup,
        extra={"repeats": args.repeats, "smoke": args.smoke},
    )


if __name__ == "__main__":
    raise SystemExit(main())
