#!/usr/bin/env python
"""Run every paper artifact at full fidelity (paper trial counts) and
save the rendered outputs under ``results/full/``.

This is the long-form version of ``pytest benchmarks/`` — the paper's
200 trials per bar and 50 arrival patterns per bar.  Expect ~30-45
minutes on a laptop serially; ``--jobs N`` fans the cells out over N
worker processes (results are bit-identical for any value), and the
result cache makes re-runs nearly free unless ``--no-cache`` is given.
"""

import argparse
import pathlib
import time

from repro.experiments import fig1, fig2, fig3, fig4, fig5, tables
from repro.experiments.parallel import ExecutorMetrics, ExecutorOptions

OUT = pathlib.Path(__file__).resolve().parent.parent / "results" / "full"


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per study (default 1 = serial; "
        "results are bit-identical for any value)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of reusing results/.cache/",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    return args


def save(name: str, text: str) -> None:
    OUT.mkdir(parents=True, exist_ok=True)
    (OUT / f"{name}.txt").write_text(text + "\n")
    print(text)


def main(argv=None) -> None:
    args = parse_args(argv)
    metrics = ExecutorMetrics()
    options = ExecutorOptions(
        jobs=args.jobs, cache=not args.no_cache, metrics=metrics
    )
    started = time.time()
    save("table1", tables.render_table1())
    save("table2", tables.render_table2(fraction=1.0))

    for module, name in ((fig1, "fig1"), (fig2, "fig2"), (fig3, "fig3")):
        t0 = time.time()
        result = module.run(module.config(trials=200), options=options)
        text = module.render(result)
        if hasattr(module, "crossover_fraction"):
            cross = module.crossover_fraction(result)
            if cross is not None:
                text += f"\nML -> PR crossover at {100 * cross:.0f}% of the system"
        save(name, text)
        print(f"[{name}: {time.time() - t0:.0f}s]\n")

    for module, name in ((fig4, "fig4"), (fig5, "fig5")):
        t0 = time.time()
        result = module.run(module.config(patterns=50), options=options)
        text = module.render(result)
        if name == "fig4":
            best = fig4.best_technique_per_rm(result)
            text += "\nbest technique per RM: " + ", ".join(
                f"{rm}->{t}" for rm, t in best.items()
            )
        else:
            benefit = fig5.selection_benefit(result)
            lines = ["selection benefit (dropped-% reduction vs parallel recovery):"]
            for bias, per_rm in benefit.items():
                lines.append(
                    f"  {bias:<22} "
                    + ", ".join(f"{rm}: {v:+.1f}" for rm, v in per_rm.items())
                )
            text += "\n" + "\n".join(lines)
        save(name, text)
        print(f"[{name}: {time.time() - t0:.0f}s]\n")

    print(f"[executor: {metrics.render('all studies')}]")
    print(f"[total: {time.time() - started:.0f}s]")


if __name__ == "__main__":
    main()
