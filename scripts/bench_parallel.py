"""Benchmark the parallel trial executor: fig1 serial vs. --jobs N.

Runs the Fig. 1 driver at a CI-sized configuration with jobs=1 and
jobs=N (cache disabled for both so every cell computes), verifies the
results are bit-identical, and records wall times plus speedup under
``benchmarks/results/parallel_speedup.txt``.

Usage::

    PYTHONPATH=src python scripts/bench_parallel.py [--jobs 4] [--trials 20]
"""

from __future__ import annotations

import argparse
import os
import pathlib
import time

from repro.experiments import fig1
from repro.experiments.parallel import ExecutorMetrics, ExecutorOptions

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--trials", type=int, default=20)
    args = parser.parse_args()

    cfg = fig1.config(trials=args.trials)

    timings = {}
    results = {}
    for jobs in (1, args.jobs):
        metrics = ExecutorMetrics()
        options = ExecutorOptions(jobs=jobs, cache=False, metrics=metrics)
        started = time.perf_counter()
        results[jobs] = fig1.run(cfg, options=options)
        timings[jobs] = time.perf_counter() - started

    identical = [
        (a.fraction, a.technique, a.stats, a.infeasible)
        for a in results[1].cells
    ] == [
        (b.fraction, b.technique, b.stats, b.infeasible)
        for b in results[args.jobs].cells
    ]
    speedup = timings[1] / timings[args.jobs]

    lines = [
        "Parallel trial executor: fig1 serial vs. parallel",
        f"config: trials={cfg.trials}, fractions={len(cfg.fractions)}, "
        f"system_nodes={cfg.system_nodes}, cells={len(results[1].cells)}",
        f"host CPUs: {os.cpu_count()}",
        f"jobs=1:            {timings[1]:8.2f} s",
        f"jobs={args.jobs}:            {timings[args.jobs]:8.2f} s",
        f"speedup:           {speedup:8.2f} x",
        f"bit-identical:     {identical}",
    ]
    cpus = os.cpu_count() or 1
    if cpus == 1:
        lines.append(
            "SPEEDUP NOT MEASURABLE ON THIS HOST: single CPU — the "
            "jobs=1 vs jobs=N comparison only measures process overhead "
            "here; rerun on a multi-core host to record a real speedup."
        )
    elif cpus < args.jobs:
        lines.append(
            f"note: host has {cpus} CPU(s) < jobs={args.jobs}; cells are "
            "embarrassingly parallel, so speedup tracks core count on "
            "multi-core hosts — rerun this script there to record it."
        )
    text = "\n".join(lines) + "\n"
    print(text, end="")
    RESULTS.mkdir(parents=True, exist_ok=True)
    (RESULTS / "parallel_speedup.txt").write_text(text)
    if not identical:
        print("ERROR: parallel result diverged from serial")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
