#!/usr/bin/env python
"""End-to-end smoke test of the live telemetry surface, as run by CI.

Starts ``repro serve`` with ZERO in-process workers plus one ``repro
agent`` subprocess (the remote execution path), asserts ``GET /``
serves the status dashboard, then follows a watched job over SSE while
the agent runs it: the stream must open with a ``snapshot``, deliver
the lifecycle transitions in order (submitted before claimed before
done), interleave the job's *in-flight* simulation events forwarded
from the agent site, and close with an ``end`` frame.  The watch is
registered deterministically before the job becomes runnable by
parking it behind a dependency.  Finally SIGTERMs the agent and the
server and asserts both exit 0 (open streams must not wedge shutdown).

Exits 0 on success; any failure raises (non-zero exit).
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.service.client import ServiceClient  # noqa: E402

JOB = {"experiment": "fig1", "format": "json", "quick": True, "trials": 2}


def smoke_env(cache_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = cache_dir
    return env


def start_server(db_path: str, env: dict) -> "tuple[subprocess.Popen, str]":
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "0",
            "--store", f"sqlite://{db_path}",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (http://\S+)", line)
    if not match:
        proc.kill()
        raise AssertionError(f"no listening line from server, got: {line!r}")
    return proc, match.group(1)


def start_agent(url: str, site: str, env: dict) -> subprocess.Popen:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "agent",
            "--url", url, "--site", site,
            "--workers", "1", "--batch-size", "2", "--lease-s", "60",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    if f"serving site {site}" not in line:
        proc.kill()
        raise AssertionError(f"no serving line from agent, got: {line!r}")
    return proc


def stop(proc: subprocess.Popen, name: str) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError(f"{name} did not exit after SIGTERM")
    assert code == 0, f"{name} exited {code} after SIGTERM"


def check_dashboard(url: str) -> None:
    with urllib.request.urlopen(url + "/", timeout=30) as resp:
        assert resp.status == 200, resp.status
        ctype = resp.headers["Content-Type"]
        assert ctype.startswith("text/html"), ctype
        body = resp.read().decode("utf-8")
    for needle in (
        "repro fleet status",
        "/v1/metrics/stream",
        "/v1/events",
        # The grid cost/carbon ticker cards and their renderers.
        'id="c-cost"',
        'id="c-carbon"',
        "grid cost (USD)",
        "grid carbon (kg)",
        "m.grid",
    ):
        assert needle in body, f"dashboard page missing {needle!r}"
    print(f"[dash] GET / serves the status page ({len(body)} bytes)")


# A tiny priced scenario: one cell, three trials, flat curves — just
# enough for the remote agent to account dollars and grams and ship
# the grid.* counter deltas back with its completion push.
GRID_SPEC = {
    "scenario": {"name": "dash-grid-smoke"},
    "failures": {"regime": "poisson", "mtbf_years": 5.0},
    "workload": {"study": "scaling", "app_type": "A32", "fractions": [0.01]},
    "techniques": {"names": ["checkpoint_restart"]},
    "run": {"trials": 3},
    "grid": {
        "objective": "cost",
        "start_hour": 8.0,
        "price": {"kind": "flat", "level": 0.12},
        "carbon": {"kind": "flat", "level": 400.0},
    },
}


def check_grid_metrics(client: "ServiceClient") -> None:
    """A priced campaign run by the *remote* agent must surface
    fleet-cumulative dollars and grams in ``GET /v1/metrics`` — the
    counters only get there via the completion-push counter channel."""
    before = client.metrics()["grid"]
    campaign = client.submit_campaign(spec=GRID_SPEC, format="json")
    for unit in campaign["units"]:
        record = client.wait(unit["job"]["id"], timeout=120.0)
        assert record["state"] == "done", record
    after = client.metrics()["grid"]
    assert after["cells_accounted"] > before["cells_accounted"], after
    assert after["cost_usd"] > before["cost_usd"], after
    assert after["carbon_g"] > before["carbon_g"], after
    assert after["energy_kwh"] > before["energy_kwh"], after
    print(
        f"[dash] grid campaign accounted on the remote agent: "
        f"${after['cost_usd'] - before['cost_usd']:.2f}, "
        f"{after['carbon_g'] - before['carbon_g']:.0f} gCO2 "
        f"({after['cells_accounted'] - before['cells_accounted']} cell(s))"
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        server_env = smoke_env(os.path.join(tmp, "cache-server"))
        server, url = start_server(os.path.join(tmp, "service.db"), server_env)
        agent = None
        try:
            client = ServiceClient(url, timeout=60.0)
            assert client.health()["workers"] == 0
            check_dashboard(url)

            agent = start_agent(
                url, "dash-1", smoke_env(os.path.join(tmp, "cache-agent"))
            )
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                names = {s["name"] for s in client.list_sites()["sites"]}
                if "dash-1" in names:
                    break
                time.sleep(0.2)
            else:
                raise AssertionError(f"site never registered: {names}")
            print(f"[dash] agent registered at {url}")

            # Park the watched job behind a blocker so its SSE stream
            # (and therefore its watch) is open before it ever runs —
            # the claim response then tells the agent to forward the
            # job's live simulation events.
            blocker = client.submit(dict(JOB, trials=1))
            target = client.submit(dict(JOB, depends_on=[blocker["id"]]))
            print(f"[dash] submitted blocker {blocker['id'][:10]} "
                  f"and watched target {target['id'][:10]}")

            frames = list(
                client.iter_events(job_id=target["id"], last_event_id=0)
            )
            assert frames[0]["event"] == "snapshot", frames[0]
            assert frames[-1]["event"] == "end", frames[-1]
            kinds = [
                f["data"]["kind"] for f in frames if f["event"] == "event"
            ]
            for earlier, later in (
                ("job.submitted", "job.claimed"),
                ("job.claimed", "sim.TrialStarted"),
                ("sim.TrialStarted", "job.done"),
            ):
                assert earlier in kinds, (earlier, kinds)
                assert later in kinds, (later, kinds)
                assert kinds.index(earlier) < kinds.index(later), (
                    earlier, later, kinds
                )
            assert frames[-1]["data"]["kind"] == "job.done", frames[-1]
            sim_frames = [
                f for f in frames
                if f["event"] == "event"
                and f["data"]["kind"].startswith("sim.")
            ]
            assert sim_frames, "no live simulation events were forwarded"
            assert all(
                f["data"].get("site") == "dash-1" for f in sim_frames
            ), sim_frames[:3]
            print(
                f"[dash] SSE delivered {len(kinds)} events in order "
                f"({len(sim_frames)} live simulation events from dash-1)"
            )

            final = client.status(target["id"])
            assert final["state"] == "done", final
            telemetry = client.metrics()["telemetry"]
            assert telemetry["ring"]["last_seq"] >= len(kinds), telemetry
            assert telemetry["watched_jobs"] == 0, telemetry
            print(f"[dash] metrics telemetry block: {json.dumps(telemetry)}")

            check_grid_metrics(client)
        finally:
            if agent is not None:
                stop(agent, "agent")
            stop(server, "server")
        print("[dash] graceful SIGTERM shutdown with streams attached")
    time.sleep(0.1)
    print("[dash] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
