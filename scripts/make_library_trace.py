#!/usr/bin/env python
"""Regenerate the pinned failure trace bundled with the scenario
library (``src/repro/scenarios/library/traces/pinned-10y.jsonl``).

The trace is committed so the ``trace-replay`` scenario is fully
deterministic for every user; rerunning this script reproduces the
identical file (fixed seed, versioned JSONL with full-``repr``
floats).  The unit-time horizon is sized for the scenario's largest
allocation (25% of the exascale machine) at the walltime cap, with
ample slack.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.constants import DEFAULT_NODE_MTBF_S  # noqa: E402
from repro.failures.trace import record_trace, save_trace, trace_digest  # noqa: E402

SEED = 20170 + 10
UNIT_HORIZON_S = 1.0e11

OUT = (
    pathlib.Path(__file__).resolve().parents[1]
    / "src"
    / "repro"
    / "scenarios"
    / "library"
    / "traces"
    / "pinned-10y.jsonl"
)


def main() -> None:
    rng = np.random.default_rng(SEED)
    trace = record_trace(rng, DEFAULT_NODE_MTBF_S, UNIT_HORIZON_S)
    OUT.parent.mkdir(parents=True, exist_ok=True)
    save_trace(trace, OUT)
    print(f"{OUT}: {len(trace)} failures, sha256 {trace_digest(trace)}")


if __name__ == "__main__":
    main()
