"""Shared runner for the fast-path benchmark scripts.

Both ``bench_fastpath.py`` (single-application engine) and
``bench_datacenter.py`` (datacenter mapping loop) measure the same
shape of experiment: a stepped baseline against the closed-form fast
path, on identical inputs, where the two must agree bit for bit.  This
module holds the common machinery — warmup handling, best-of-repeats
timing, digest comparison, and the result-file writer — so the two
scripts share one timing discipline and one JSON schema:

.. code-block:: json

    {
      "benchmark": "<description>",
      "repeats": 3,
      "cells": {
        "<cell name>": {
          "stepped_wall_s": 1.0,
          "fast_wall_s": 0.1,
          "speedup": 10.0,
          "bit_identical": true,
          "...": "per-script extras, stepped_/fast_ prefixed"
        }
      }
    }

The writer refuses to produce a result file at all when any cell
diverged (``bit_identical`` false) or, with ``min_speedup``, when any
cell came in below the floor — a benchmark artifact in the repository
always describes a verified, non-regressing configuration.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Dict, Optional, Tuple

#: A single measured run: ``(elapsed_seconds, digest, extras)``.  The
#: digest is any equality-comparable value derived from the run's
#: observable results; extras are plain-data counters merged into the
#: cell record with a ``stepped_``/``fast_`` prefix.
RunResult = Tuple[float, object, Dict[str, object]]


def _best_of(run: Callable[[], RunResult], repeats: int) -> RunResult:
    """Best wall time over *repeats* invocations of *run*.

    The digest and extras come from the last invocation; runs are
    deterministic, so every repeat produces the same ones (the pair
    check in :func:`measure_pair` would expose a run that did not).
    """
    best = float("inf")
    digest: object = None
    extras: Dict[str, object] = {}
    for _ in range(max(repeats, 1)):
        elapsed, digest, extras = run()
        if elapsed < best:
            best = elapsed
    return best, digest, extras


def measure_pair(
    stepped: Callable[[], RunResult],
    fast: Callable[[], RunResult],
    repeats: int,
    warmup: int = 1,
) -> Dict[str, object]:
    """Measure one cell on both paths and compare their digests.

    *warmup* untimed invocations of each path run first so that
    process-global memos (the multilevel schedule memo above all) are
    equally warm for both sides — otherwise whichever path runs first
    pays the one-off optimization cost and the comparison measures
    cache state, not execution paths.
    """
    for _ in range(max(warmup, 0)):
        stepped()
        fast()
    stepped_s, stepped_digest, stepped_extras = _best_of(stepped, repeats)
    fast_s, fast_digest, fast_extras = _best_of(fast, repeats)
    record: Dict[str, object] = {
        "stepped_wall_s": stepped_s,
        "fast_wall_s": fast_s,
        "speedup": stepped_s / fast_s if fast_s else None,
        "bit_identical": stepped_digest == fast_digest,
    }
    for key, value in stepped_extras.items():
        record[f"stepped_{key}"] = value
    for key, value in fast_extras.items():
        record[f"fast_{key}"] = value
    return record


def write_results(
    path: pathlib.Path,
    benchmark: str,
    cells: Dict[str, Dict[str, object]],
    min_speedup: Optional[float] = None,
    extra: Optional[Dict[str, object]] = None,
) -> int:
    """Validate *cells* and write the result file; returns an exit code.

    Divergent cells (or, when *min_speedup* is set, cells below the
    speedup floor) fail the run *before* anything is written.
    """
    diverged = [name for name, cell in cells.items() if not cell["bit_identical"]]
    if diverged:
        print(
            "ERROR: fast path diverged from stepped execution in: "
            + ", ".join(diverged)
        )
        return 1
    if min_speedup is not None:
        slow = [
            name
            for name, cell in cells.items()
            if cell["speedup"] is None or cell["speedup"] < min_speedup
        ]
        if slow:
            print(f"ERROR: speedup below {min_speedup}x in: " + ", ".join(slow))
            return 1
    payload: Dict[str, object] = {"benchmark": benchmark}
    payload.update(extra or {})
    payload["cells"] = cells
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    return 0
