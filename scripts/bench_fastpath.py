"""Benchmark the failure-horizon fast path: stepped vs. closed-form.

Runs the acceptance cell (C32 at 25% of the exascale machine, 2.5-year
node MTBF, multilevel checkpointing) plus a failure-heavy small cell on
both execution paths, verifies the stats are bit-identical, and records
wall times, kernel event counts, and their ratios in
``BENCH_fastpath.json`` at the repository root.  Timing discipline and
result schema come from :mod:`bench_common`, shared with
``bench_datacenter.py``.

Usage::

    PYTHONPATH=src python scripts/bench_fastpath.py [--trials 5]
        [--repeats 3] [--min-speedup X] [--smoke]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import repro.core.execution as execution
from bench_common import measure_pair, write_results
from repro.core.execution import ResilientExecution
from repro.core.single_app import FailureDriver, SingleAppConfig
from repro.failures.generator import AppFailureGenerator
from repro.platform.presets import exascale_system
from repro.resilience.registry import get_technique
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.units import HOUR, years
from repro.workload.synthetic import make_application

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CELLS = {
    "fig1_C32_mtbf2.5y": dict(
        system_nodes=120_000,
        app_nodes=30_000,
        time_steps=1440,
        app_type="C32",
        mtbf_s=years(2.5),
        technique="multilevel",
    ),
    "small_A32_failure_heavy": dict(
        system_nodes=1_200,
        app_nodes=120,
        time_steps=60,
        app_type="A32",
        mtbf_s=20 * HOUR,
        technique="multilevel",
    ),
}

SMOKE_CELLS = {
    "smoke_A32_failure_heavy": dict(
        system_nodes=1_200,
        app_nodes=120,
        time_steps=60,
        app_type="A32",
        mtbf_s=20 * HOUR,
        technique="multilevel",
    ),
}


def _trial(cell: dict, trial: int, fast: bool):
    """One wired single-app trial; returns (seconds, digest, extras)."""
    execution.FAST_PATH_ENABLED = fast
    system = exascale_system(total_nodes=cell["system_nodes"])
    app = make_application(
        cell["app_type"], nodes=cell["app_nodes"], time_steps=cell["time_steps"]
    )
    config = SingleAppConfig(node_mtbf_s=cell["mtbf_s"], seed=99)
    technique = get_technique(cell["technique"])
    plan = technique.plan(
        app, system, config.node_mtbf_s, severity=config.severity_model()
    )
    sim = Simulator()
    cap = config.max_time_factor * plan.effective_work_s
    engine = ResilientExecution(sim, plan, until=cap)
    proc = sim.process(engine.run(), name="app")
    generator = AppFailureGenerator(
        StreamFactory(config.seed).spawn_indexed(trial).stream("failures"),
        nodes=plan.nodes_required,
        node_mtbf_s=config.node_mtbf_s,
        severity=config.severity_model(),
    )
    driver = FailureDriver(sim, proc, generator)
    engine.set_failure_horizon(driver.next_fire_time)
    started = time.perf_counter()
    sim.run(until=cap)
    elapsed = time.perf_counter() - started
    execution.FAST_PATH_ENABLED = True
    stats = engine.stats
    digest = (
        stats.end_time,
        stats.completed,
        stats.failures,
        stats.restarts,
        sorted(stats.checkpoints_taken.items()),
        stats.failed_checkpoints,
        stats.work_time_s,
        stats.rework_time_s,
        stats.checkpoint_time_s,
        stats.restart_time_s,
    )
    extras = {"events": sim.event_count, "jumps": engine.fast_jumps}
    return elapsed, digest, extras


def _bench_cell(name: str, cell: dict, trials: int, repeats: int) -> dict:
    """Aggregate per-trial paired measurements into one cell record."""
    result = {
        "cell": cell,
        "trials": trials,
        "stepped_wall_s": 0.0,
        "fast_wall_s": 0.0,
        "stepped_events": 0,
        "fast_events": 0,
        "fast_jumps": 0,
        "bit_identical": True,
    }
    for trial in range(trials):
        record = measure_pair(
            lambda trial=trial: _trial(cell, trial, fast=False),
            lambda trial=trial: _trial(cell, trial, fast=True),
            repeats=repeats,
        )
        result["stepped_wall_s"] += record["stepped_wall_s"]
        result["fast_wall_s"] += record["fast_wall_s"]
        result["stepped_events"] += record["stepped_events"]
        result["fast_events"] += record["fast_events"]
        result["fast_jumps"] += record["fast_jumps"]
        result["bit_identical"] = result["bit_identical"] and record["bit_identical"]
    result["event_ratio"] = (
        result["stepped_events"] / result["fast_events"]
        if result["fast_events"]
        else None
    )
    result["speedup"] = (
        result["stepped_wall_s"] / result["fast_wall_s"]
        if result["fast_wall_s"]
        else None
    )
    print(
        f"{name}: events {result['stepped_events']} -> {result['fast_events']} "
        f"({result['event_ratio']:.1f}x), "
        f"wall {result['stepped_wall_s'] * 1e3:.1f} ms -> "
        f"{result['fast_wall_s'] * 1e3:.1f} ms ({result['speedup']:.2f}x), "
        f"identical={result['bit_identical']}"
    )
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (and write nothing) when any cell lands below this",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny cells for CI: correctness + no-regression, not scale",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_fastpath.json",
    )
    args = parser.parse_args()

    cells = SMOKE_CELLS if args.smoke else CELLS
    records = {
        name: _bench_cell(name, cell, args.trials, args.repeats)
        for name, cell in cells.items()
    }
    return write_results(
        args.out,
        "failure-horizon fast path vs stepped execution",
        records,
        min_speedup=args.min_speedup,
        extra={
            "trials_per_cell": args.trials,
            "repeats": args.repeats,
            "smoke": args.smoke,
        },
    )


if __name__ == "__main__":
    raise SystemExit(main())
