"""Benchmark the failure-horizon fast path: stepped vs. closed-form.

Runs the acceptance cell (C32 at 25% of the exascale machine, 2.5-year
node MTBF, multilevel checkpointing) plus a failure-heavy small cell on
both execution paths, verifies the stats are bit-identical, and records
wall times, kernel event counts, and their ratios in
``BENCH_fastpath.json`` at the repository root.

Usage::

    PYTHONPATH=src python scripts/bench_fastpath.py [--trials 5] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import repro.core.execution as execution
from repro.core.execution import ResilientExecution
from repro.core.single_app import FailureDriver, SingleAppConfig
from repro.failures.generator import AppFailureGenerator
from repro.platform.presets import exascale_system
from repro.resilience.registry import get_technique
from repro.rng.streams import StreamFactory
from repro.sim.engine import Simulator
from repro.units import HOUR, years
from repro.workload.synthetic import make_application

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

CELLS = {
    "fig1_C32_mtbf2.5y": dict(
        system_nodes=120_000,
        app_nodes=30_000,
        time_steps=1440,
        app_type="C32",
        mtbf_s=years(2.5),
        technique="multilevel",
    ),
    "small_A32_failure_heavy": dict(
        system_nodes=1_200,
        app_nodes=120,
        time_steps=60,
        app_type="A32",
        mtbf_s=20 * HOUR,
        technique="multilevel",
    ),
}


def _trial(cell: dict, trial: int, fast: bool):
    """One wired single-app trial; returns (seconds, events, digest)."""
    execution.FAST_PATH_ENABLED = fast
    system = exascale_system(total_nodes=cell["system_nodes"])
    app = make_application(
        cell["app_type"], nodes=cell["app_nodes"], time_steps=cell["time_steps"]
    )
    config = SingleAppConfig(node_mtbf_s=cell["mtbf_s"], seed=99)
    technique = get_technique(cell["technique"])
    plan = technique.plan(
        app, system, config.node_mtbf_s, severity=config.severity_model()
    )
    sim = Simulator()
    cap = config.max_time_factor * plan.effective_work_s
    engine = ResilientExecution(sim, plan, until=cap)
    proc = sim.process(engine.run(), name="app")
    generator = AppFailureGenerator(
        StreamFactory(config.seed).spawn_indexed(trial).stream("failures"),
        nodes=plan.nodes_required,
        node_mtbf_s=config.node_mtbf_s,
        severity=config.severity_model(),
    )
    driver = FailureDriver(sim, proc, generator)
    engine.set_failure_horizon(driver.next_fire_time)
    started = time.perf_counter()
    sim.run(until=cap)
    elapsed = time.perf_counter() - started
    stats = engine.stats
    digest = (
        stats.end_time,
        stats.completed,
        stats.failures,
        stats.restarts,
        sorted(stats.checkpoints_taken.items()),
        stats.failed_checkpoints,
        stats.work_time_s,
        stats.rework_time_s,
        stats.checkpoint_time_s,
        stats.restart_time_s,
    )
    return elapsed, sim.event_count, digest, engine.fast_jumps


def _bench_cell(name: str, cell: dict, trials: int, repeats: int) -> dict:
    stepped_s = fast_s = 0.0
    stepped_events = fast_events = 0
    jumps = 0
    identical = True
    for trial in range(trials):
        best_slow = min(
            _trial(cell, trial, fast=False)[0] for _ in range(repeats)
        )
        best_fast = min(
            _trial(cell, trial, fast=True)[0] for _ in range(repeats)
        )
        _, ev_slow, dig_slow, _ = _trial(cell, trial, fast=False)
        _, ev_fast, dig_fast, trial_jumps = _trial(cell, trial, fast=True)
        identical = identical and dig_slow == dig_fast
        stepped_s += best_slow
        fast_s += best_fast
        stepped_events += ev_slow
        fast_events += ev_fast
        jumps += trial_jumps
    result = {
        "cell": cell,
        "trials": trials,
        "stepped_wall_s": stepped_s,
        "fast_wall_s": fast_s,
        "stepped_events": stepped_events,
        "fast_events": fast_events,
        "event_ratio": stepped_events / fast_events if fast_events else None,
        "speedup": stepped_s / fast_s if fast_s else None,
        "fast_jumps": jumps,
        "bit_identical": identical,
    }
    print(
        f"{name}: events {stepped_events} -> {fast_events} "
        f"({result['event_ratio']:.1f}x), wall {stepped_s * 1e3:.1f} ms -> "
        f"{fast_s * 1e3:.1f} ms ({result['speedup']:.2f}x), "
        f"identical={identical}"
    )
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()

    payload = {
        "benchmark": "failure-horizon fast path vs stepped execution",
        "trials_per_cell": args.trials,
        "repeats": args.repeats,
        "cells": {
            name: _bench_cell(name, cell, args.trials, args.repeats)
            for name, cell in CELLS.items()
        },
    }
    ok = all(c["bit_identical"] for c in payload["cells"].values())
    out = REPO_ROOT / "BENCH_fastpath.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    if not ok:
        print("ERROR: fast path diverged from stepped execution")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
