#!/usr/bin/env python
"""End-to-end smoke test of the job service, as run by CI.

Starts ``repro serve`` as a real subprocess on an ephemeral port,
submits a quick fig1 job through the client SDK, polls it to
completion, and byte-diffs the fetched JSON artifact against a direct
``repro fig1 --quick`` invocation in a separate process — proving the
service path and the CLI path produce identical bytes.  Also submits a
scenario campaign (``POST /v1/campaigns``) and checks its artifact
carries the provenance stamp.  Finally sends SIGTERM and checks the
server exits cleanly (graceful drain).

Exits 0 on success; any failure raises (non-zero exit).
"""

import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.service.client import ServiceClient  # noqa: E402

JOB_PAYLOAD = {
    "experiment": "fig1",
    "format": "json",
    "quick": True,
    "trials": 4,
}


def env_with_cache(cache_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = cache_dir
    return env


def start_server(db_path: str, env: dict) -> "tuple[subprocess.Popen, str]":
    """Launch ``repro serve --port 0`` and parse the bound URL."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "1", "--db", db_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (http://\S+)", line)
    if not match:
        proc.kill()
        raise AssertionError(f"no listening line from server, got: {line!r}")
    return proc, match.group(1)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = os.path.join(tmp, "cache")
        env = env_with_cache(cache_dir)
        server, url = start_server(os.path.join(tmp, "service.db"), env)
        try:
            client = ServiceClient(url, timeout=30.0)
            health = client.health()
            assert health["status"] == "ok", health
            print(f"[smoke] server healthy at {url} (v{health['version']})")

            job = client.submit(JOB_PAYLOAD)
            print(f"[smoke] submitted job {job['id']}")
            final = client.wait(job["id"], timeout=600.0, poll_s=0.5)
            assert final["state"] == "done", final
            fetched = client.result(job["id"])

            direct = subprocess.run(
                [
                    sys.executable, "-m", "repro", "fig1",
                    "--quick", "--trials", "4", "--format", "json",
                    "--no-cache",
                ],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            ).stdout
            # The CLI appends one newline when printing the artifact.
            assert fetched + "\n" == direct, (
                "service artifact differs from direct CLI run:\n"
                f"--- service ({len(fetched)} bytes)\n{fetched[:400]}\n"
                f"--- direct ({len(direct)} bytes)\n{direct[:400]}"
            )
            print(f"[smoke] artifact byte-identical ({len(fetched)} bytes)")

            metrics = client.metrics()
            assert metrics["jobs"]["accepted"] >= 1, metrics
            assert metrics["jobs"]["completed"] >= 1, metrics
            assert metrics["queue"]["depth"] == 0, metrics
            print(f"[smoke] metrics ok: {metrics['jobs']}")

            # Scenario campaign: compile server-side, run to completion,
            # and check the provenance stamp in the exported artifact.
            campaign = client.submit_campaign(
                scenario="weibull-aging", quick=True, format="csv"
            )
            assert len(campaign["spec_sha256"]) == 64, campaign
            [unit] = campaign["units"]
            print(
                f"[smoke] campaign '{campaign['scenario']}' -> "
                f"job {unit['job']['id']}"
            )
            final = client.wait(unit["job"]["id"], timeout=600.0, poll_s=0.5)
            assert final["state"] == "done", final
            artifact = client.result(unit["job"]["id"])
            header = artifact.splitlines()[0]
            assert "scenario=weibull-aging" in header, header
            assert campaign["spec_sha256"] in header, header
            print("[smoke] campaign artifact carries its provenance stamp")
        finally:
            server.send_signal(signal.SIGTERM)
            try:
                code = server.wait(timeout=60)
            except subprocess.TimeoutExpired:
                server.kill()
                raise AssertionError("server did not exit after SIGTERM")
        assert code == 0, f"server exited {code} after SIGTERM"
        print("[smoke] graceful SIGTERM shutdown, exit 0")
    # Let the last server output through for the CI log.
    time.sleep(0.1)
    print("[smoke] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
