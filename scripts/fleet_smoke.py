#!/usr/bin/env python
"""End-to-end smoke test of the control-plane/agent split, as run by CI.

Starts ``repro serve`` with ZERO in-process workers (the pure control
plane), launches two ``repro agent`` subprocesses registered as
different sites (each with its own result cache, emulating separate
hosts), submits a scenario campaign plus a plain job through the
client SDK, waits for the fleet to drain everything, and byte-diffs
one artifact against a direct CLI run in a separate process — proving
a job executed by a remote agent produces the exact bytes of the CLI
path.  Checks the per-site metrics ledger adds up, then SIGTERMs the
agents and the server and asserts every process exits 0 (graceful
drain).

Exits 0 on success; any failure raises (non-zero exit).
"""

import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.service.client import ServiceClient  # noqa: E402

JOB_PAYLOAD = {
    "experiment": "fig1",
    "format": "json",
    "quick": True,
    "trials": 4,
}


def fleet_env(cache_dir: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = cache_dir
    return env


def start_server(db_path: str, env: dict) -> "tuple[subprocess.Popen, str]":
    """Launch the workers=0 control plane and parse the bound URL."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", "0",
            "--store", f"sqlite://{db_path}",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (http://\S+)", line)
    if not match:
        proc.kill()
        raise AssertionError(f"no listening line from server, got: {line!r}")
    return proc, match.group(1)


def start_agent(url: str, site: str, env: dict) -> subprocess.Popen:
    """Launch one worker agent registered as *site*."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "agent",
            "--url", url, "--site", site,
            "--workers", "1", "--batch-size", "2", "--lease-s", "60",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    if f"serving site {site}" not in line:
        proc.kill()
        raise AssertionError(f"no serving line from agent, got: {line!r}")
    return proc


def stop(proc: subprocess.Popen, name: str) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError(f"{name} did not exit after SIGTERM")
    assert code == 0, f"{name} exited {code} after SIGTERM"


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        server_env = fleet_env(os.path.join(tmp, "cache-server"))
        server, url = start_server(os.path.join(tmp, "service.db"), server_env)
        agents = []
        try:
            client = ServiceClient(url, timeout=30.0)
            health = client.health()
            assert health["workers"] == 0, health
            print(f"[fleet] control plane at {url} (0 in-process workers)")

            # Two agents on "different hosts" (separate caches).
            for site in ("fleet-a", "fleet-b"):
                agent_env = fleet_env(os.path.join(tmp, f"cache-{site}"))
                agents.append(start_agent(url, site, agent_env))
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                names = {s["name"] for s in client.list_sites()["sites"]}
                if names >= {"fleet-a", "fleet-b"}:
                    break
                time.sleep(0.2)
            else:
                raise AssertionError(f"sites never registered: {names}")
            print(f"[fleet] agents registered: {sorted(names)}")

            # A campaign plus a plain job — enough work for both sites.
            campaign = client.submit_campaign(
                scenario="weibull-aging", quick=True, format="csv"
            )
            job = client.submit(JOB_PAYLOAD)
            waiting = [u["job"]["id"] for u in campaign["units"]] + [job["id"]]
            print(f"[fleet] submitted {len(waiting)} jobs")
            finals = [
                client.wait(job_id, timeout=600.0, poll_s=0.5)
                for job_id in waiting
            ]
            assert all(f["state"] == "done" for f in finals), finals
            sites_used = {f["site"] for f in finals}
            assert sites_used <= {"fleet-a", "fleet-b"}, finals
            print(f"[fleet] all jobs done (executed by {sorted(sites_used)})")

            # Byte-diff the agent-produced artifact against a direct
            # CLI run in yet another process.
            fetched = client.result(job["id"])
            direct = subprocess.run(
                [
                    sys.executable, "-m", "repro", "fig1",
                    "--quick", "--trials", "4", "--format", "json",
                    "--no-cache",
                ],
                capture_output=True,
                text=True,
                env=fleet_env(os.path.join(tmp, "cache-direct")),
                check=True,
            ).stdout
            # The CLI appends one newline when printing the artifact.
            assert fetched + "\n" == direct, (
                "agent artifact differs from direct CLI run:\n"
                f"--- agent ({len(fetched)} bytes)\n{fetched[:400]}\n"
                f"--- direct ({len(direct)} bytes)\n{direct[:400]}"
            )
            print(f"[fleet] artifact byte-identical ({len(fetched)} bytes)")

            # The per-site ledger accounts for every completion.
            sites = client.metrics()["sites"]
            completed = sum(s.get("completed", 0) for s in sites.values())
            assert completed == len(waiting), sites
            for name in ("fleet-a", "fleet-b"):
                assert sites[name]["state"] == "active", sites
                assert sites[name]["last_heartbeat_age_s"] < 120, sites
            print(f"[fleet] per-site metrics add up: {sites}")
        finally:
            for index, agent in enumerate(agents):
                stop(agent, f"agent-{index}")
            stop(server, "server")
        print("[fleet] graceful SIGTERM shutdown of fleet and server")
    time.sleep(0.1)
    print("[fleet] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
