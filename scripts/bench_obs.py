"""Benchmark the instrumentation bus: kernel overhead of observation.

Three questions, answered with wall-clock measurements:

1. What does the *empty* bus cost the kernel hot loop?  The refactor
   added one attribute access plus a truthiness test per executed
   event (``taps = self.bus.kernel_taps; if taps: ...``); this is
   measured against an otherwise identical kernel with that check
   removed.  The acceptance bar is < 5%.
2. What does a kernel tap (TraceSink) cost when attached?
3. What do the full domain-event sinks cost a real single-application
   simulation (TraceSink + MetricsSink + TimelineSink +
   JsonlExportSink attached vs. none)?

Results are printed and recorded under
``benchmarks/results/obs_overhead.txt``.

Usage::

    PYTHONPATH=src python scripts/bench_obs.py [--events 200000] [--repeats 5]
"""

from __future__ import annotations

import argparse
import pathlib
import time

from repro.core.single_app import SingleAppConfig, simulate_application
from repro.obs.sinks import JsonlExportSink, MetricsSink, TimelineSink, TraceSink
from repro.platform.presets import exascale_system
from repro.resilience.registry import get_technique
from repro.sim.engine import Simulator
from repro.units import HOUR
from repro.workload.synthetic import make_application

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "results"


class _NoBusSimulator(Simulator):
    """The pre-instrumentation kernel, for baseline comparison: the
    fused ``run`` loop without the kernel-tap check (otherwise
    byte-for-byte the same)."""

    def run(self, until=None, max_events=None) -> float:
        from repro.sim.errors import SchedulingError

        if self._running:
            raise SchedulingError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                event = queue.pop_due(until)
                if event is None:
                    if until is not None and queue:
                        self._now = max(self._now, until)
                    break
                self._now = event.time
                self._event_count += 1
                event.callback(event)
                executed += 1
        finally:
            self._running = False
        return self._now


def _kernel_run(sim_factory, n_events: int, attach=None) -> float:
    """Seconds to execute *n_events* no-op kernel events."""
    sim = sim_factory()
    if attach is not None:
        attach(sim)
    for i in range(n_events):
        sim.schedule(float(i), lambda _e: None)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    assert sim.event_count == n_events
    return elapsed


def _best_of(fn, repeats: int) -> float:
    """Minimum over *repeats* runs (least-noise estimator)."""
    return min(fn() for _ in range(repeats))


def _trial_run(sinks) -> float:
    """Seconds for one failure-heavy single-app trial."""
    system = exascale_system(total_nodes=1_200)
    app = make_application("A32", nodes=120, time_steps=60)
    technique = get_technique("multilevel")
    config = SingleAppConfig(node_mtbf_s=200 * HOUR, seed=99)
    started = time.perf_counter()
    simulate_application(app, technique, system, config, sinks=sinks)
    return time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=200_000)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args()

    n = args.events
    r = args.repeats

    no_check = _best_of(lambda: _kernel_run(_NoBusSimulator, n), r)
    empty_bus = _best_of(lambda: _kernel_run(Simulator, n), r)
    tapped = _best_of(
        lambda: _kernel_run(
            Simulator, n, attach=lambda sim: TraceSink(capacity=1_000).attach(sim.bus)
        ),
        r,
    )

    def full_sinks():
        return (TraceSink(), MetricsSink(), TimelineSink(), JsonlExportSink())

    bare_trial = _best_of(lambda: _trial_run(None), r)
    sunk_trial = _best_of(lambda: _trial_run(full_sinks()), r)

    empty_overhead = 100.0 * (empty_bus - no_check) / no_check
    tap_overhead = 100.0 * (tapped - no_check) / no_check
    trial_overhead = 100.0 * (sunk_trial - bare_trial) / bare_trial

    lines = [
        "Instrumentation bus: kernel and sink overhead",
        f"kernel loop: {n} no-op events, best of {r}",
        f"  no tap check (baseline): {1e9 * no_check / n:8.1f} ns/event",
        f"  empty bus:               {1e9 * empty_bus / n:8.1f} ns/event  "
        f"({empty_overhead:+.1f}%)",
        f"  TraceSink attached:      {1e9 * tapped / n:8.1f} ns/event  "
        f"({tap_overhead:+.1f}%)",
        f"single-app trial (multilevel, failure-heavy), best of {r}",
        f"  no sinks:                {1e3 * bare_trial:8.2f} ms",
        f"  all four sinks:          {1e3 * sunk_trial:8.2f} ms  "
        f"({trial_overhead:+.1f}%)",
        f"empty-bus kernel overhead: {empty_overhead:.2f}% (bar: < 5%)",
    ]
    text = "\n".join(lines) + "\n"
    print(text, end="")
    RESULTS.mkdir(parents=True, exist_ok=True)
    (RESULTS / "obs_overhead.txt").write_text(text)

    if empty_overhead >= 5.0:
        print("ERROR: empty-bus kernel overhead exceeds the 5% bar")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
