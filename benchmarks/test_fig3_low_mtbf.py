"""Regenerates Fig. 3: efficiency vs. application size for D64 with
node MTBF reduced to 2.5 years.

Asserts the sensitivity-study findings: every technique decays faster
than at ten years, Parallel Recovery still maintains efficiency best,
and Checkpoint Restart collapses at exascale ("unable to even complete
execution").
"""

from conftest import run_once

from repro.experiments import fig2, fig3

TRIALS = 8


def test_fig3_low_mtbf(benchmark, save_result):
    cfg = fig3.config(trials=TRIALS)
    result = run_once(benchmark, lambda: fig3.run(cfg))
    text = fig3.render(result)
    save_result("fig3_low_mtbf", text)

    def eff(fraction, name):
        return result.cell(fraction, name).mean_efficiency

    # CR collapse at exascale: pinned at the walltime-cap floor.
    assert eff(1.0, "checkpoint_restart") < 0.10
    # PR maintains efficiency best at every size.
    for fraction in (0.25, 0.50, 1.00):
        assert result.best_technique(fraction) == "parallel_recovery"

    # Faster decay than the 10-year environment (compare to a small
    # Fig. 2 run on the shared seed).
    ten_year = fig2.run(fig2.config(trials=TRIALS))
    for name in ("checkpoint_restart", "multilevel"):
        assert eff(0.50, name) < ten_year.cell(0.50, name).mean_efficiency, name


def test_fig3_renders_all_sizes(benchmark, save_result):
    """Cheap structural check (runs a tiny two-point grid)."""
    cfg = fig3.config(trials=2, fractions=(0.01, 1.0))
    result = run_once(benchmark, lambda: fig3.run(cfg))
    assert len(result.cells) == 10
