"""Regenerates Fig. 1: efficiency vs. application size for A32
(low memory, low communication) at a ten-year node MTBF.

Reduced scale: 12 trials per bar instead of the paper's 200; full
fraction grid and machine size.  Asserts the paper's qualitative shape:
Parallel Recovery dominates everywhere, Checkpoint Restart degrades
fastest, redundancy infeasible at 100%.
"""

from conftest import run_once

from repro.experiments import fig1

TRIALS = 12


def test_fig1_efficiency_a32(benchmark, save_result):
    cfg = fig1.config(trials=TRIALS)
    result = run_once(benchmark, lambda: fig1.run(cfg))
    text = fig1.render(result)
    save_result("fig1_efficiency_a32", text)

    for fraction in cfg.fractions:
        assert result.best_technique(fraction) == "parallel_recovery"

    def eff(fraction, name):
        return result.cell(fraction, name).mean_efficiency

    drop_cr = eff(0.01, "checkpoint_restart") - eff(0.50, "checkpoint_restart")
    drop_ml = eff(0.01, "multilevel") - eff(0.50, "multilevel")
    drop_pr = eff(0.01, "parallel_recovery") - eff(0.50, "parallel_recovery")
    assert drop_cr > drop_ml > drop_pr

    assert result.cell(1.0, "redundancy_r1_5").infeasible
    assert result.cell(1.0, "redundancy_r2").infeasible
