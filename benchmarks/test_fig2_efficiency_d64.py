"""Regenerates Fig. 2: efficiency vs. application size for D64
(high memory, high communication) at a ten-year node MTBF.

Asserts the paper's trade-off: Multilevel optimal for small
applications with a crossover to Parallel Recovery around 25% of the
system, and the communication penalty on PR/redundancy.
"""

from conftest import run_once

from repro.experiments import fig2

TRIALS = 12


def test_fig2_efficiency_d64(benchmark, save_result):
    cfg = fig2.config(trials=TRIALS)
    result = run_once(benchmark, lambda: fig2.run(cfg))
    text = fig2.render(result)
    cross = fig2.crossover_fraction(result)
    if cross is not None:
        text += f"\nML -> PR crossover at {100 * cross:.0f}% of the system"
    save_result("fig2_efficiency_d64", text)

    # Multilevel optimal at small sizes.
    for fraction in (0.01, 0.02, 0.03, 0.06, 0.12):
        assert result.best_technique(fraction) == "multilevel", fraction
    # Parallel Recovery optimal at exascale.
    assert result.best_technique(1.0) == "parallel_recovery"
    # The crossover falls around the paper's 25% (between 12% and 100%).
    assert cross is not None and 0.12 < cross <= 1.0

    # mu caps PR efficiency below 1/1.075.
    for fraction in cfg.fractions:
        assert (
            result.cell(fraction, "parallel_recovery").mean_efficiency
            <= 1 / 1.075 + 0.01
        )

    # Redundancy pays the duplicated-communication penalty everywhere.
    assert result.cell(0.01, "redundancy_r2").mean_efficiency < 0.60
