"""Extension bench: dropped percentage vs. offered load.

The paper fixes the arrival process at a two-hour mean inter-arrival;
this sweep varies the load (1 h / 2 h / 4 h means) under the best
combination from Fig. 4 (slack + Parallel Recovery) to show how
oversubscription interacts with resilience: drops fall monotonically as
the load lightens, and the resilience-attributable gap (vs. the Ideal
Baseline at the same load) persists at every load level.
"""

from conftest import run_once

from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.selection import FixedSelector
from repro.experiments.stats import SummaryStats
from repro.platform.presets import exascale_system
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rm.slack import SlackBased
from repro.rng.streams import StreamFactory
from repro.units import hours
from repro.workload.patterns import PatternGenerator

MEANS_H = (1.0, 2.0, 4.0)
PATTERNS = 4
ARRIVALS = 40
SYSTEM_NODES = 120_000


def _dropped(mean_h: float, ideal: bool) -> SummaryStats:
    generator = PatternGenerator(StreamFactory(2017), SYSTEM_NODES)
    samples = []
    for index in range(PATTERNS):
        pattern = generator.generate(
            index, arrivals=ARRIVALS, mean_interarrival_s=hours(mean_h)
        )
        result = run_datacenter(
            pattern,
            SlackBased(),
            FixedSelector(ParallelRecovery()),
            exascale_system(SYSTEM_NODES),
            DatacenterConfig(ideal=ideal),
        )
        samples.append(result.dropped_pct)
    return SummaryStats.from_samples(samples)


def test_extension_load_sweep(benchmark, save_result):
    def sweep():
        return {
            mean_h: (_dropped(mean_h, ideal=False), _dropped(mean_h, ideal=True))
            for mean_h in MEANS_H
        }

    rows = run_once(benchmark, sweep)

    lines = [
        "Extension — dropped % vs offered load (slack + Parallel Recovery, "
        f"{PATTERNS} patterns x {ARRIVALS} arrivals)",
        f"{'mean inter-arrival':<20} {'with failures':>15} {'ideal':>15}",
        "-" * 52,
    ]
    for mean_h, (real, ideal) in rows.items():
        lines.append(
            f"{mean_h:>6.0f} h             {real.mean:>13.1f}%  {ideal.mean:>13.1f}%"
        )
    save_result("extension_load_sweep", "\n".join(lines))

    reals = [rows[m][0].mean for m in MEANS_H]
    # Lighter load => fewer drops (monotone within noise).
    assert reals[0] >= reals[1] - 3.0 >= reals[2] - 6.0
    # Failures + overhead cost capacity at every load level.
    for mean_h in MEANS_H:
        real, ideal = rows[mean_h]
        assert real.mean >= ideal.mean - 3.0
