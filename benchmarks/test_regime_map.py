"""Analytic regime map: the continuous version of the paper's Sec. V
conclusions and the lookup behind Sec. VII's Resilience Selection.

Computes the winning technique per (application type, system fraction)
cell from the closed-form models and the analytic Multilevel-to-
Parallel-Recovery crossover for every type, then asserts the paper's
qualitative orderings.
"""

from conftest import run_once

from repro.analysis.regimes import (
    crossover_fraction,
    render_selection_map,
    selection_map,
)
from repro.constants import DEFAULT_NODE_MTBF_S, SCALING_STUDY_FRACTIONS
from repro.platform.presets import exascale_system
from repro.units import years


def test_regime_map(benchmark, save_result):
    system = exascale_system()

    def build():
        mapping = selection_map(
            system, DEFAULT_NODE_MTBF_S, SCALING_STUDY_FRACTIONS
        )
        crossings = {
            t: crossover_fraction(t, system, DEFAULT_NODE_MTBF_S)
            for t in ("A32", "A64", "B32", "B64", "C32", "C64", "D32", "D64")
        }
        return mapping, crossings

    mapping, crossings = run_once(benchmark, build)

    text = render_selection_map(mapping, SCALING_STUDY_FRACTIONS)
    text += "\n\nanalytic ML -> PR crossover per type (fraction of system):\n"
    for type_name, cross in sorted(crossings.items()):
        label = f"{100 * cross:.2f}%" if cross is not None else "never"
        text += f"  {type_name}: {label}\n"
    low = crossover_fraction("D64", system, years(2.5))
    text += f"\nD64 crossover at 2.5-year MTBF: {100 * low:.2f}%"
    save_result("regime_map", text.rstrip())

    # A-types: Parallel Recovery everywhere.
    for fraction in SCALING_STUDY_FRACTIONS:
        assert mapping[("A32", fraction)] == "parallel_recovery"
        assert mapping[("A64", fraction)] == "parallel_recovery"
    # D64: the paper's ~25% crossover.
    assert 0.1 < crossings["D64"] < 0.5
    # Crossover moves later with communication intensity.
    assert crossings["B64"] < crossings["C64"] < crossings["D64"]
    # ...and earlier when the machine is less reliable (Fig. 3).
    assert low < crossings["D64"]
