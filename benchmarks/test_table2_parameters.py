"""Regenerates Table II: resilience technique parameters with the
modeled values evaluated on the exascale preset."""

from conftest import run_once

from repro.experiments.tables import render_table2


def test_table2_parameters(benchmark, save_result):
    text = run_once(benchmark, lambda: render_table2(fraction=1.0))
    save_result("table2_parameters", text)
    # Sec. IV-B: full-system PFS checkpoint of 8.9/17.8 min one way
    # (17-35 min checkpoint+restart).
    assert "8.9 min" in text
    assert "17.8 min" in text
    assert "1.000 / 1.025 / 1.050 / 1.075" in text
