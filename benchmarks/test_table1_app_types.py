"""Regenerates Table I: characteristics of application types."""

from conftest import run_once

from repro.experiments.tables import render_table1


def test_table1_app_types(benchmark, save_result):
    text = run_once(benchmark, render_table1)
    save_result("table1_app_types", text)
    for name in ("A32", "A64", "B32", "B64", "C32", "C64", "D32", "D64"):
        assert name in text
