"""Ablation: sensitivity of Parallel Recovery to the recovery
parallelism sigma (DESIGN.md substitution #2).

Meneses et al.'s exact constants are not in the paper; our default is
sigma = 4 (lost work recomputed 4x faster across helpers).  This bench
sweeps sigma from 1 (plain message logging) to 16 and checks that the
headline conclusion — Parallel Recovery dominates for low-communication
applications at every size — holds even with *no* recovery parallelism
at all, because in-memory checkpoints dominate the win.
"""

from conftest import run_once

from repro.core.single_app import SingleAppConfig, run_trials
from repro.experiments.sweep import recovery_parallelism_sweep_sim, render_sweep
from repro.platform.presets import exascale_system
from repro.resilience.multilevel import MultilevelCheckpoint
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.workload.synthetic import make_application

SIGMAS = [1.0, 2.0, 4.0, 8.0, 16.0]
TRIALS = 8
FRACTION = 0.50


def test_ablation_recovery_parallelism(benchmark, save_result):
    rows = run_once(
        benchmark,
        lambda: recovery_parallelism_sweep_sim(
            SIGMAS, app_type="D64", fraction=FRACTION, trials=TRIALS
        ),
    )
    text = render_sweep(
        rows,
        "Ablation — Parallel Recovery efficiency vs. recovery parallelism "
        f"(D64, {100 * FRACTION:.0f}% of system, MTBF 10 y)",
    )
    save_result("ablation_recovery_parallelism", text)

    means = [r.stats.mean for r in rows]
    # More parallel recovery never hurts.
    assert all(b >= a - 0.01 for a, b in zip(means, means[1:]))
    # Diminishing returns: sigma's whole effect is bounded by the
    # rework fraction, which in-memory checkpoints already keep small.
    assert means[-1] - means[0] < 0.05


def test_sigma_one_still_wins_low_comm(benchmark, save_result):
    """Even sigma = 1 keeps Parallel Recovery ahead of Multilevel for
    the A32 exascale configuration (Fig. 1's headline)."""
    system = exascale_system()
    app = make_application("A32", nodes=system.fraction_to_nodes(1.0))
    config = SingleAppConfig(seed=2017)

    def run_pair():
        pr = run_trials(
            app, ParallelRecovery(recovery_parallelism=1.0), system, 6, config
        )
        ml = run_trials(app, MultilevelCheckpoint(), system, 6, config)
        return pr, ml

    pr, ml = run_once(benchmark, run_pair)
    save_result(
        "ablation_sigma_one_exascale",
        "sigma=1 Parallel Recovery vs Multilevel at 100% A32:\n"
        f"  parallel_recovery(sigma=1): {pr.mean_efficiency:.4f}\n"
        f"  multilevel:                 {ml.mean_efficiency:.4f}",
    )
    assert pr.mean_efficiency > ml.mean_efficiency
