"""Ablation: is Eq. 4's checkpoint period actually optimal in-sim?

Sweeps the Checkpoint Restart period across scale factors of the Daly
optimum in a failure-heavy environment and checks the U-shape: the
unscaled optimum (x1) beats strong perturbations in both directions.
This validates the analytical interval derivation against the
discrete-event simulator rather than against its own algebra.
"""

from conftest import run_once

from repro.experiments.sweep import checkpoint_interval_sweep_sim, render_sweep
from repro.units import years

FACTORS = [0.05, 0.2, 1.0, 5.0, 20.0]
TRIALS = 10


def test_ablation_checkpoint_interval(benchmark, save_result):
    rows = run_once(
        benchmark,
        lambda: checkpoint_interval_sweep_sim(
            FACTORS,
            app_type="C32",
            fraction=0.25,
            trials=TRIALS,
            node_mtbf_s=years(2.5),
        ),
    )
    text = render_sweep(
        rows,
        "Ablation — Checkpoint Restart efficiency vs. period scale "
        "(C32, 25% of system, MTBF 2.5 y; x1 = Eq. 4 optimum)",
    )
    save_result("ablation_checkpoint_interval", text)

    by_label = {r.label: r.stats.mean for r in rows}
    optimum = by_label["tau x 1"]
    for label, mean in by_label.items():
        assert optimum >= mean - 0.02, (label, mean, optimum)
    # The extremes must be clearly worse (the sweep has real signal).
    assert optimum > by_label["tau x 0.05"] + 0.05
    assert optimum > by_label["tau x 20"] + 0.05
