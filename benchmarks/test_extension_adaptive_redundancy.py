"""Extension bench: adaptive (per-application) redundancy degree
selection, after Hukerikar et al. [24] from the paper's related work.

Compares fixed r = 1.5 / r = 2.0 redundancy against the adaptive
policy across application types at 12% of the machine, in simulation.
The adaptive policy must match or beat the best fixed degree for every
type — high-communication types collapse to r = 1 (no duplicated
communication), low-communication types earn full duplication.
"""

from conftest import run_once

from repro.core.single_app import SingleAppConfig, run_trials
from repro.platform.presets import exascale_system
from repro.resilience.adaptive import AdaptiveRedundancy
from repro.resilience.redundancy import Redundancy
from repro.workload.synthetic import make_application

TRIALS = 6
FRACTION = 0.12
TYPES = ("A32", "B32", "C64", "D64")


def test_extension_adaptive_redundancy(benchmark, save_result):
    system = exascale_system()
    config = SingleAppConfig(seed=2017)

    def sweep():
        rows = {}
        for type_name in TYPES:
            app = make_application(
                type_name, nodes=system.fraction_to_nodes(FRACTION)
            )
            adaptive = AdaptiveRedundancy()
            rows[type_name] = {
                "r1.5": run_trials(
                    app, Redundancy.partial(), system, TRIALS, config
                ).mean_efficiency,
                "r2.0": run_trials(
                    app, Redundancy.full(), system, TRIALS, config
                ).mean_efficiency,
                "adaptive": run_trials(
                    app, adaptive, system, TRIALS, config
                ).mean_efficiency,
                "chosen_r": adaptive.choose_degree(
                    app, system, config.node_mtbf_s
                ),
            }
        return rows

    rows = run_once(benchmark, sweep)

    lines = [
        "Extension — adaptive redundancy vs fixed degrees "
        f"({100 * FRACTION:.0f}% of system, MTBF 10 y)",
        f"{'type':<6} {'r=1.5':>8} {'r=2.0':>8} {'adaptive':>9} {'chosen r':>9}",
        "-" * 45,
    ]
    for type_name, row in rows.items():
        lines.append(
            f"{type_name:<6} {row['r1.5']:>8.4f} {row['r2.0']:>8.4f} "
            f"{row['adaptive']:>9.4f} {row['chosen_r']:>9g}"
        )
    save_result("extension_adaptive_redundancy", "\n".join(lines))

    for type_name, row in rows.items():
        best_fixed = max(row["r1.5"], row["r2.0"])
        assert row["adaptive"] >= best_fixed - 0.02, type_name
    # The policy actually adapts: different degrees across types.
    assert len({row["chosen_r"] for row in rows.values()}) >= 2
