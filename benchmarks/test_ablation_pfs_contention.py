"""Ablation (extension): parallel-file-system contention.

The paper's model lets every application checkpoint to the PFS in
isolation (Eq. 3).  This ablation caps the number of concurrent PFS
checkpoint/restart streams and re-runs the datacenter: Checkpoint
Restart jobs queue for the file system and drop more applications,
while Parallel Recovery — which never touches the PFS — is untouched,
*amplifying* the paper's Sec. VII observation that PFS independence is
Parallel Recovery's structural advantage.
"""

import pytest
from conftest import run_once

from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.selection import FixedSelector
from repro.experiments.stats import SummaryStats
from repro.platform.presets import exascale_system
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rm.slack import SlackBased
from repro.rng.streams import StreamFactory
from repro.units import years
from repro.workload.patterns import PatternGenerator

SLOT_SETTINGS = (None, 4, 1)  # None = the paper's unlimited model
PATTERNS = 4
ARRIVALS = 40
SYSTEM_NODES = 120_000
MTBF = years(2.5)  # failure-rich: PFS traffic is frequent


def _patterns():
    generator = PatternGenerator(StreamFactory(2017), SYSTEM_NODES)
    return [generator.generate(i, arrivals=ARRIVALS) for i in range(PATTERNS)]


def test_ablation_pfs_contention(benchmark, save_result):
    patterns = _patterns()

    def sweep():
        rows = {}
        for slots in SLOT_SETTINGS:
            for technique in (CheckpointRestart(), ParallelRecovery()):
                samples, waits = [], 0.0
                for pattern in patterns:
                    result = run_datacenter(
                        pattern,
                        SlackBased(),
                        FixedSelector(technique),
                        exascale_system(SYSTEM_NODES),
                        DatacenterConfig(node_mtbf_s=MTBF, pfs_slots=slots),
                    )
                    samples.append(result.dropped_pct)
                    waits += sum(
                        r.stats.resource_wait_s
                        for r in result.records
                        if r.stats is not None
                    )
                rows[(slots, technique.name)] = (
                    SummaryStats.from_samples(samples),
                    waits / PATTERNS,
                )
        return rows

    rows = run_once(benchmark, sweep)

    lines = [
        "Ablation — PFS contention (slack RM, MTBF 2.5 y, "
        f"{PATTERNS} patterns x {ARRIVALS} arrivals)",
        f"{'pfs slots':<12} {'technique':<20} {'dropped %':>10} {'wait h/pattern':>15}",
        "-" * 62,
    ]
    for (slots, name), (stats, wait) in rows.items():
        label = "unlimited" if slots is None else str(slots)
        lines.append(
            f"{label:<12} {name:<20} {stats.mean:>9.1f}% {wait / 3600:>14.1f}"
        )
    save_result("ablation_pfs_contention", "\n".join(lines))

    # CR suffers under contention: queueing time appears and drops rise.
    cr_free = rows[(None, "checkpoint_restart")]
    cr_tight = rows[(1, "checkpoint_restart")]
    assert cr_free[1] == 0.0
    assert cr_tight[1] > 0.0
    assert cr_tight[0].mean >= cr_free[0].mean
    # Parallel Recovery never touches the PFS: identical results.
    pr_free = rows[(None, "parallel_recovery")]
    pr_tight = rows[(1, "parallel_recovery")]
    assert pr_tight[1] == 0.0
    assert pr_tight[0].mean == pytest.approx(pr_free[0].mean)

