"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact — these track the cost of the kernel primitives
that every experiment is built on, so regressions in the DES show up
here rather than as mysterious slowdowns of the figure benches.
"""

import numpy as np

import repro.core.execution as execution
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.queue import EventQueue

N_EVENTS = 20_000


def test_event_queue_throughput(benchmark):
    rng = np.random.default_rng(0)
    times = rng.random(N_EVENTS) * 1e6

    def churn():
        queue = EventQueue()
        for i, t in enumerate(times):
            queue.push(Event(float(t), lambda _e: None, seq=i))
        count = 0
        while queue:
            queue.pop()
            count += 1
        return count

    assert benchmark(churn) == N_EVENTS


def test_simulator_callback_throughput(benchmark):
    def run_events():
        sim = Simulator()
        for i in range(N_EVENTS):
            sim.schedule(float(i), lambda _e: None)
        sim.run()
        return sim.event_count

    assert benchmark(run_events) == N_EVENTS


def test_process_switch_throughput(benchmark):
    def ping():
        sim = Simulator()

        def worker():
            for _ in range(5_000):
                yield sim.timeout(1.0)

        sim.process(worker())
        sim.run()
        return sim.event_count

    assert benchmark(ping) > 5_000


def test_interrupt_throughput(benchmark):
    def interrupts():
        sim = Simulator()
        from repro.sim.errors import Interrupt

        def victim():
            count = 0
            while count < 2_000:
                try:
                    yield sim.timeout(1e9)
                except Interrupt:
                    count += 1
            return count

        proc = sim.process(victim())

        def hammer(_event):
            if proc.alive:
                proc.interrupt("hit")
                sim.schedule(1.0, hammer)

        sim.schedule(1.0, hammer)
        sim.run()
        return proc.value

    assert benchmark(interrupts) == 2_000


def _fastpath_trial(fast):
    """One single-app trial; returns (kernel events, stats tuple)."""
    from repro.core.execution import ResilientExecution
    from repro.core.single_app import FailureDriver, SingleAppConfig
    from repro.failures.generator import AppFailureGenerator
    from repro.platform.presets import exascale_system
    from repro.resilience import get_technique
    from repro.rng.streams import StreamFactory
    from repro.workload.synthetic import make_application

    execution.FAST_PATH_ENABLED = fast
    try:
        system = exascale_system(total_nodes=120_000)
        app = make_application("C32", nodes=30_000, time_steps=1440)
        cfg = SingleAppConfig(node_mtbf_s=2.5 * 365.25 * 24 * 3600.0, seed=99)
        technique = get_technique("multilevel")
        plan = technique.plan(
            app, system, cfg.node_mtbf_s, severity=cfg.severity_model()
        )
        sim = Simulator()
        cap = cfg.max_time_factor * plan.effective_work_s
        engine = ResilientExecution(sim, plan, until=cap)
        proc = sim.process(engine.run(), name="app")
        generator = AppFailureGenerator(
            StreamFactory(cfg.seed).spawn_indexed(0).stream("failures"),
            nodes=plan.nodes_required,
            node_mtbf_s=cfg.node_mtbf_s,
            severity=cfg.severity_model(),
        )
        driver = FailureDriver(sim, proc, generator)
        engine.set_failure_horizon(driver.next_fire_time)
        sim.run(until=cap)
        stats = engine.stats
        digest = (
            stats.end_time,
            stats.completed,
            stats.failures,
            stats.restarts,
            dict(stats.checkpoints_taken),
            stats.failed_checkpoints,
            stats.work_time_s,
            stats.rework_time_s,
            stats.checkpoint_time_s,
            stats.restart_time_s,
        )
        return sim.event_count, digest
    finally:
        execution.FAST_PATH_ENABLED = True


def test_fastpath_vs_stepped(benchmark):
    """The failure-horizon fast path must produce bit-identical stats
    on far fewer kernel events; the benchmarked quantity is the fast
    run, with the ratio attached as extra info."""
    stepped_events, stepped_digest = _fastpath_trial(fast=False)

    def fast_trial():
        return _fastpath_trial(fast=True)

    fast_events, fast_digest = benchmark(fast_trial)
    assert fast_digest == stepped_digest
    assert stepped_events >= 5 * fast_events
    benchmark.extra_info["stepped_events"] = stepped_events
    benchmark.extra_info["fast_events"] = fast_events
    benchmark.extra_info["event_ratio"] = stepped_events / fast_events
