"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact — these track the cost of the kernel primitives
that every experiment is built on, so regressions in the DES show up
here rather than as mysterious slowdowns of the figure benches.
"""

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.queue import EventQueue

N_EVENTS = 20_000


def test_event_queue_throughput(benchmark):
    rng = np.random.default_rng(0)
    times = rng.random(N_EVENTS) * 1e6

    def churn():
        queue = EventQueue()
        for i, t in enumerate(times):
            queue.push(Event(float(t), lambda _e: None, seq=i))
        count = 0
        while queue:
            queue.pop()
            count += 1
        return count

    assert benchmark(churn) == N_EVENTS


def test_simulator_callback_throughput(benchmark):
    def run_events():
        sim = Simulator()
        for i in range(N_EVENTS):
            sim.schedule(float(i), lambda _e: None)
        sim.run()
        return sim.event_count

    assert benchmark(run_events) == N_EVENTS


def test_process_switch_throughput(benchmark):
    def ping():
        sim = Simulator()

        def worker():
            for _ in range(5_000):
                yield sim.timeout(1.0)

        sim.process(worker())
        sim.run()
        return sim.event_count

    assert benchmark(ping) > 5_000


def test_interrupt_throughput(benchmark):
    def interrupts():
        sim = Simulator()
        from repro.sim.errors import Interrupt

        def victim():
            count = 0
            while count < 2_000:
                try:
                    yield sim.timeout(1e9)
                except Interrupt:
                    count += 1
            return count

        proc = sim.process(victim())

        def hammer(_event):
            if proc.alive:
                proc.interrupt("hit")
                sim.schedule(1.0, hammer)

        sim.schedule(1.0, hammer)
        sim.run()
        return proc.value

    assert benchmark(interrupts) == 2_000
