"""Ablation (extension): how far would semi-blocking checkpointing
(Ni et al. [12], discussed in the paper's related work) move the
Checkpoint Restart curves of Figs. 1-3?

Sweeps the blocking fraction from fully blocking (the paper's model)
down to 10% on the exascale configuration where CR suffers most, and
checks that semi-blocking monotonically recovers efficiency — but not
enough to overturn the paper's conclusion that Parallel Recovery wins.
"""

from conftest import run_once

from repro.core.single_app import SingleAppConfig, run_trials
from repro.platform.presets import exascale_system
from repro.resilience.checkpoint_restart import (
    CheckpointRestart,
    SemiBlockingCheckpointRestart,
)
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.workload.synthetic import make_application

FRACTIONS = [1.0, 0.5, 0.25, 0.1]
TRIALS = 8


def test_ablation_semi_blocking(benchmark, save_result):
    system = exascale_system()
    app = make_application("A32", nodes=system.fraction_to_nodes(0.5))
    config = SingleAppConfig(seed=2017)

    def sweep():
        rows = []
        for fraction in FRACTIONS:
            technique = (
                CheckpointRestart()
                if fraction == 1.0
                else SemiBlockingCheckpointRestart(fraction)
            )
            trial_set = run_trials(app, technique, system, TRIALS, config)
            rows.append((fraction, trial_set.mean_efficiency))
        pr = run_trials(app, ParallelRecovery(), system, TRIALS, config)
        return rows, pr.mean_efficiency

    rows, pr_eff = run_once(benchmark, sweep)

    lines = [
        "Ablation — semi-blocking Checkpoint Restart "
        "(A32, 50% of system, MTBF 10 y)",
        "-" * 60,
    ]
    for fraction, eff in rows:
        label = "blocking (paper)" if fraction == 1.0 else f"blocking x {fraction:g}"
        lines.append(f"{label:<20} efficiency {eff:.4f}")
    lines.append(f"{'parallel_recovery':<20} efficiency {pr_eff:.4f}")
    save_result("ablation_semi_blocking", "\n".join(lines))

    effs = [eff for _, eff in rows]
    # Less blocking never hurts.
    assert all(b >= a - 0.01 for a, b in zip(effs, effs[1:]))
    # ...but even 10% blocking does not overturn Parallel Recovery.
    assert effs[-1] < pr_eff
