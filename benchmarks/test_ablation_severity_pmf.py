"""Ablation: sensitivity of Multilevel Checkpointing to the severity
PMF (DESIGN.md substitution #1).

The paper takes the per-level failure fractions from BlueGene/L logs
via Moody et al.; our default is (0.65, 0.20, 0.15).  This bench sweeps
PMFs from nearly-all-mild to mostly-severe and checks the monotone
story: multilevel's advantage shrinks as failures get more severe (more
PFS recoveries), but it keeps beating single-level Checkpoint Restart
for every PMF — i.e. the paper's qualitative conclusion does not hinge
on the substituted numbers.
"""

from conftest import run_once

from repro.core.single_app import SingleAppConfig, run_trials
from repro.experiments.sweep import render_sweep, severity_pmf_sweep_sim
from repro.platform.presets import exascale_system
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.workload.synthetic import make_application

PMFS = [
    (0.90, 0.08, 0.02),
    (0.80, 0.15, 0.05),
    (0.65, 0.20, 0.15),  # the reproduction default
    (0.50, 0.25, 0.25),
    (0.30, 0.30, 0.40),
]
TRIALS = 8
FRACTION = 0.25


def test_ablation_severity_pmf(benchmark, save_result):
    rows = run_once(
        benchmark,
        lambda: severity_pmf_sweep_sim(PMFS, fraction=FRACTION, trials=TRIALS),
    )
    text = render_sweep(
        rows,
        "Ablation — multilevel efficiency vs. severity PMF "
        f"(D64, {100 * FRACTION:.0f}% of system, MTBF 10 y)",
    )

    # Reference: Checkpoint Restart on the same configuration.
    system = exascale_system()
    app = make_application("D64", nodes=system.fraction_to_nodes(FRACTION))
    cr = run_trials(
        app, CheckpointRestart(), system, TRIALS, SingleAppConfig(seed=2017)
    )
    text += f"\ncheckpoint_restart reference: {cr.mean_efficiency:.4f}"
    save_result("ablation_severity_pmf", text)

    means = [r.stats.mean for r in rows]
    # Monotone: milder PMFs give higher multilevel efficiency.
    assert all(a >= b - 0.02 for a, b in zip(means, means[1:]))
    # Multilevel beats CR under every severity assumption.
    assert all(m > cr.mean_efficiency for m in means)
