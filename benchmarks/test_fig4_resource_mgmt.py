"""Regenerates Fig. 4: dropped-application percentage per (resilience
technique x resource manager) plus the Ideal Baseline.

Reduced scale: 6 arrival patterns of 40 applications instead of the
paper's 50x100 (the machine and per-application parameters keep their
paper values).  Asserts Sec. VI's claims: failures + resilience
overhead increase drops relative to the Ideal Baseline, and the slack
policy dominates FCFS.
"""

from conftest import run_once

from repro.experiments import fig4
from repro.workload.patterns import PatternBias

PATTERNS = 6
ARRIVALS = 40


def test_fig4_resource_mgmt(benchmark, save_result):
    cfg = fig4.config(patterns=PATTERNS, arrivals_per_pattern=ARRIVALS)
    result = run_once(benchmark, lambda: fig4.run(cfg))
    text = fig4.render(result)
    best = fig4.best_technique_per_rm(result)
    text += "\nbest technique per RM: " + ", ".join(
        f"{rm}->{tech}" for rm, tech in best.items()
    )
    save_result("fig4_resource_mgmt", text)

    unbiased = PatternBias.UNBIASED

    def dropped(rm, selector):
        return result.cell(rm, selector, unbiased).stats.mean

    # Failures + overhead hurt: each technique drops at least as much
    # as the Ideal Baseline (small tolerance for pattern noise).
    for rm in ("fcfs", "random", "slack"):
        ideal = dropped(rm, "ideal")
        for tech in ("checkpoint_restart", "multilevel", "parallel_recovery"):
            assert dropped(rm, tech) >= ideal - 3.0, (rm, tech)

    # The slack policy beats FCFS for every technique.
    for tech in ("checkpoint_restart", "multilevel", "parallel_recovery"):
        assert dropped("slack", tech) < dropped("fcfs", tech), tech

    # Checkpoint Restart is never strictly the best technique.
    assert all(tech != "checkpoint_restart" for tech in best.values())
