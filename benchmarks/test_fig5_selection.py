"""Regenerates Fig. 5: Parallel Recovery vs. Resilience Selection per
resource manager across the four arrival-pattern families.

Reduced scale: 5 patterns of 40 applications per bias.  Asserts
Sec. VII's claims: selection is competitive with (and usually slightly
better than) Parallel Recovery, and large-application patterns drop the
most.
"""

from conftest import run_once

from repro.experiments import fig5
from repro.workload.patterns import PatternBias

PATTERNS = 5
ARRIVALS = 40


def test_fig5_selection(benchmark, save_result):
    cfg = fig5.config(patterns=PATTERNS, arrivals_per_pattern=ARRIVALS)
    result = run_once(benchmark, lambda: fig5.run(cfg))
    text = fig5.render(result)
    benefit = fig5.selection_benefit(result)
    lines = ["selection benefit (dropped-% reduction vs parallel recovery):"]
    for bias, per_rm in benefit.items():
        lines.append(
            f"  {bias:<22} "
            + ", ".join(f"{rm}: {v:+.1f}" for rm, v in per_rm.items())
        )
    text += "\n" + "\n".join(lines)
    save_result("fig5_selection", text)

    # Selection is competitive with PR everywhere (paper: a small
    # benefit "in all but one circumstance"); allow pattern noise.
    for bias_values in benefit.values():
        for rm, value in bias_values.items():
            assert value > -5.0, (rm, value)

    # At least half the (bias, rm) combinations show a non-negative
    # benefit at this reduced scale.
    values = [v for per_rm in benefit.values() for v in per_rm.values()]
    assert sum(v >= 0.0 for v in values) >= len(values) / 2

    # Large-application patterns drop the most (paper: "arrival
    # patterns biased toward large applications perform worse").
    for rm in ("fcfs", "random", "slack"):
        large = result.cell(rm, "parallel_recovery", PatternBias.LARGE).stats.mean
        unbiased = result.cell(
            rm, "parallel_recovery", PatternBias.UNBIASED
        ).stats.mean
        assert large > unbiased - 2.0, rm
