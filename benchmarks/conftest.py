"""Benchmark-harness fixtures.

Every benchmark regenerates one paper artifact (table/figure) at a
statistically reduced but structurally identical scale, measures its
runtime with pytest-benchmark, and saves the rendered rows under
``benchmarks/results/`` so the reproduction output is inspectable after
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Persist one artifact's rendered rows (and echo to stdout)."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def run_once(benchmark, func):
    """Run *func* exactly once under the benchmark timer (these are
    minutes-scale simulations; repeated rounds are wasteful)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
