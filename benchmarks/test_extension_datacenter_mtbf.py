"""Extension bench: datacenter drops vs. machine reliability.

Sweeps the node MTBF from the Fig. 3 pessimistic 2.5 years through the
paper's 10 years to an optimistic 40 years, under slack + Checkpoint
Restart (the technique most sensitive to reliability).  As the machine
becomes more reliable the dropped percentage must fall monotonically
toward the failure-free Ideal Baseline — i.e. the resilience-
attributable loss vanishes in the limit, validating that the simulator
attributes drops to failures and overhead rather than to artifacts.
"""

from conftest import run_once

from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.selection import FixedSelector
from repro.experiments.stats import SummaryStats
from repro.platform.presets import exascale_system
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.rm.slack import SlackBased
from repro.rng.streams import StreamFactory
from repro.units import years
from repro.workload.patterns import PatternGenerator

MTBF_YEARS = (2.5, 10.0, 40.0)
PATTERNS = 4
ARRIVALS = 40
SYSTEM_NODES = 120_000


def _patterns():
    generator = PatternGenerator(StreamFactory(2017), SYSTEM_NODES)
    return [generator.generate(i, arrivals=ARRIVALS) for i in range(PATTERNS)]


def _dropped(patterns, config: DatacenterConfig) -> SummaryStats:
    samples = []
    for pattern in patterns:
        result = run_datacenter(
            pattern,
            SlackBased(),
            FixedSelector(CheckpointRestart()),
            exascale_system(SYSTEM_NODES),
            config,
        )
        samples.append(result.dropped_pct)
    return SummaryStats.from_samples(samples)


def test_extension_datacenter_mtbf(benchmark, save_result):
    patterns = _patterns()

    def sweep():
        rows = {
            mtbf: _dropped(patterns, DatacenterConfig(node_mtbf_s=years(mtbf)))
            for mtbf in MTBF_YEARS
        }
        rows["ideal"] = _dropped(patterns, DatacenterConfig(ideal=True))
        return rows

    rows = run_once(benchmark, sweep)

    lines = [
        "Extension — dropped % vs node MTBF (slack + Checkpoint Restart, "
        f"{PATTERNS} patterns x {ARRIVALS} arrivals)",
        f"{'node MTBF':<14} {'dropped %':>12}",
        "-" * 28,
    ]
    for mtbf in MTBF_YEARS:
        lines.append(f"{mtbf:>8.1f} y    {rows[mtbf].mean:>10.1f}%")
    lines.append(f"{'ideal':<14} {rows['ideal'].mean:>10.1f}%")
    save_result("extension_datacenter_mtbf", "\n".join(lines))

    drops = [rows[m].mean for m in MTBF_YEARS]
    ideal = rows["ideal"].mean
    # Monotone improvement with reliability (within pattern noise).
    assert drops[0] >= drops[1] - 2.0 >= drops[2] - 4.0
    # The most reliable machine approaches the ideal baseline...
    assert drops[2] - ideal < 8.0
    # ...while the least reliable one is clearly worse than ideal.
    assert drops[0] > ideal
