"""Extension bench: common-random-numbers technique comparison.

Replays identical failure traces through every technique (the Sec. V
methodology with paired instead of independent realizations), which
resolves the Fig. 2 technique ordering with far fewer trials and yields
paired-t significance for each gap.
"""

from conftest import run_once

from repro.core.paired import paired_compare
from repro.core.single_app import SingleAppConfig
from repro.platform.presets import exascale_system
from repro.resilience.registry import datacenter_techniques
from repro.workload.synthetic import make_application

TRIALS = 10
FRACTION = 0.25


def test_extension_paired_comparison(benchmark, save_result):
    system = exascale_system()
    app = make_application("D64", nodes=system.fraction_to_nodes(FRACTION))
    config = SingleAppConfig(seed=2017)

    comparison = run_once(
        benchmark,
        lambda: paired_compare(
            app, datacenter_techniques(), system, trials=TRIALS, config=config
        ),
    )

    lines = [
        "Extension — paired comparison on shared failure traces "
        f"(D64, {100 * FRACTION:.0f}% of system, MTBF 10 y, {TRIALS} trials)",
        "-" * 64,
    ]
    for name, stats in comparison.efficiencies.items():
        lines.append(f"{name:<22} {stats}")
    ml_cr = comparison.difference("multilevel", "checkpoint_restart")
    ml_pr = comparison.difference("multilevel", "parallel_recovery")
    lines.append(f"ML - CR: {ml_cr}")
    lines.append(f"ML - PR: {ml_pr}")
    save_result("extension_paired_comparison", "\n".join(lines))

    # Pairing resolves the clear ML > CR gap with only 10 trials.
    assert ml_cr.diff.mean > 0
    assert ml_cr.significant
    # At 25% ML and PR are nearly tied (the Fig. 2 crossover) — the
    # paired difference must be small either way.
    assert abs(ml_pr.diff.mean) < 0.05
