"""Extension bench: EASY backfilling as a fourth resource manager.

Re-runs the Fig. 4 grid with the EASY policy added.  Expected shape:
backfilling closes most of FCFS's head-of-line-blocking gap (production
schedulers' raison d'etre) while slack-based mapping — which exploits
deadline knowledge EASY does not have — remains at least as good.
"""

from conftest import run_once

from repro.core.datacenter import DatacenterConfig, run_datacenter
from repro.core.selection import FixedSelector
from repro.experiments.stats import SummaryStats
from repro.platform.presets import exascale_system
from repro.resilience.parallel_recovery import ParallelRecovery
from repro.rm.registry import extended_manager_names, make_manager
from repro.rng.streams import StreamFactory
from repro.workload.patterns import PatternGenerator

PATTERNS = 6
ARRIVALS = 40
SYSTEM_NODES = 120_000


def test_extension_easy_backfill(benchmark, save_result):
    generator = PatternGenerator(StreamFactory(2017), SYSTEM_NODES)
    patterns = [generator.generate(i, arrivals=ARRIVALS) for i in range(PATTERNS)]

    def sweep():
        rows = {}
        for rm_name in extended_manager_names():
            samples = []
            for pattern in patterns:
                result = run_datacenter(
                    pattern,
                    make_manager(
                        rm_name, StreamFactory(2017).fresh(f"{rm_name}-{pattern.index}")
                    ),
                    FixedSelector(ParallelRecovery()),
                    exascale_system(SYSTEM_NODES),
                    DatacenterConfig(),
                )
                samples.append(result.dropped_pct)
            rows[rm_name] = SummaryStats.from_samples(samples)
        return rows

    rows = run_once(benchmark, sweep)

    lines = [
        "Extension — EASY backfilling vs the paper's three policies "
        f"(Parallel Recovery, {PATTERNS} patterns x {ARRIVALS} arrivals)",
        f"{'policy':<10} {'dropped %':>12}",
        "-" * 24,
    ]
    for rm_name, stats in rows.items():
        lines.append(f"{rm_name:<10} {stats.mean:>10.1f}%")
    save_result("extension_easy_backfill", "\n".join(lines))

    # Backfilling beats plain FCFS decisively.
    assert rows["easy"].mean < rows["fcfs"].mean - 3.0
    # Deadline-aware slack mapping stays at least competitive with EASY.
    assert rows["slack"].mean <= rows["easy"].mean + 3.0
