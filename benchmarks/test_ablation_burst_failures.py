"""Ablation (extension): spatially correlated failures vs. the paper's
independent single-node model.

The paper assumes independent failures; this ablation widens each
failure into a geometric burst of adjacent nodes and measures the
damage per technique.  Expected shape: checkpointing techniques are
nearly indifferent to burst width (any failure already rolls them
back), but full redundancy — whose replicas sit on *adjacent* nodes —
loses its restart-avoidance rapidly as bursts widen, eroding the very
property it spends 2x nodes to buy.
"""

from conftest import run_once

from repro.core.single_app import SingleAppConfig, run_trials
from repro.failures.burst import BurstModel
from repro.platform.presets import exascale_system
from repro.resilience.checkpoint_restart import CheckpointRestart
from repro.resilience.redundancy import Redundancy
from repro.units import years
from repro.workload.synthetic import make_application

MEAN_WIDTHS = (1.0, 2.0, 4.0)
TRIALS = 10
FRACTION = 0.25
MTBF = years(2.5)  # failure-rich so restart counts are resolvable


def test_ablation_burst_failures(benchmark, save_result):
    system = exascale_system()
    app = make_application("A32", nodes=system.fraction_to_nodes(FRACTION))

    def sweep():
        rows = {}
        for mean_width in MEAN_WIDTHS:
            burst = (
                None
                if mean_width == 1.0
                else BurstModel.with_mean_width(mean_width)
            )
            config = SingleAppConfig(node_mtbf_s=MTBF, seed=2017, burst=burst)
            red = run_trials(
                app, Redundancy.full(), system, TRIALS, config, keep_stats=True
            )
            cr = run_trials(app, CheckpointRestart(), system, TRIALS, config)
            restarts = sum(s.restarts for s in red.stats)
            failures = sum(s.failures for s in red.stats)
            rows[mean_width] = {
                "red_eff": red.mean_efficiency,
                "cr_eff": cr.mean_efficiency,
                "red_restart_frac": restarts / max(1, failures),
            }
        return rows

    rows = run_once(benchmark, sweep)

    lines = [
        "Ablation — burst failures vs redundancy's adjacent replicas "
        f"(A32, {100 * FRACTION:.0f}% of system, MTBF 2.5 y)",
        f"{'mean width':<12} {'r=2 eff':>9} {'CR eff':>9} {'r=2 restart frac':>18}",
        "-" * 52,
    ]
    for mean_width, row in rows.items():
        lines.append(
            f"{mean_width:>6.0f}      {row['red_eff']:>9.4f} {row['cr_eff']:>9.4f} "
            f"{row['red_restart_frac']:>18.3f}"
        )
    save_result("ablation_burst_failures", "\n".join(lines))

    # With independent failures, redundancy absorbs nearly everything.
    assert rows[1.0]["red_restart_frac"] < 0.10
    # Wider bursts defeat adjacent replicas: the restart fraction climbs
    # steeply and monotonically...
    fracs = [rows[w]["red_restart_frac"] for w in MEAN_WIDTHS]
    assert fracs[0] < fracs[1] < fracs[2]
    assert fracs[2] > 0.3
    # ...and redundancy's efficiency advantage over CR shrinks.
    gaps = [rows[w]["red_eff"] - rows[w]["cr_eff"] for w in MEAN_WIDTHS]
    assert gaps[0] > gaps[2]
