"""Unit conversions.

The simulator uses **seconds** as its base time unit, **GB** for memory
sizes, and **GB/s** for bandwidths.  These helpers keep unit conversions
explicit at module boundaries so that no magic constants leak into model
code.
"""

from __future__ import annotations

#: Seconds in one minute.
MINUTE = 60.0
#: Seconds in one hour.
HOUR = 60.0 * MINUTE
#: Seconds in one day.
DAY = 24.0 * HOUR
#: Seconds in one (Julian) year.  Used to express node MTBFs such as
#: "ten year MTBF" (Sec. V of the paper).
YEAR = 365.25 * DAY

#: One microsecond, e.g. the network latency L = 0.5 us (Sec. III-F).
MICROSECOND = 1e-6


def minutes(value: float) -> float:
    """Convert *value* minutes to seconds."""
    return value * MINUTE


def hours(value: float) -> float:
    """Convert *value* hours to seconds."""
    return value * HOUR


def days(value: float) -> float:
    """Convert *value* days to seconds."""
    return value * DAY


def years(value: float) -> float:
    """Convert *value* years to seconds."""
    return value * YEAR


def to_minutes(seconds: float) -> float:
    """Convert *seconds* to minutes."""
    return seconds / MINUTE


def to_hours(seconds: float) -> float:
    """Convert *seconds* to hours."""
    return seconds / HOUR


def to_days(seconds: float) -> float:
    """Convert *seconds* to days."""
    return seconds / DAY


def to_years(seconds: float) -> float:
    """Convert *seconds* to years."""
    return seconds / YEAR
