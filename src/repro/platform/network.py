"""Interconnect and parallel-file-system transfer model (Sec. III-F).

The paper's communication model is characterized by three parameters:
latency ``L``, bandwidth ``B_N``, and the maximum number of simultaneous
connections at each switch ``N_S``.  The parallel-file-system checkpoint
time of Eq. 3 falls out of this model: an application of ``N_a`` nodes,
each holding ``N_m`` GB, funnels its state through ``N_S``-way switches,
so the transfer takes ``(N_m / B_N) * (N_a / N_S)`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Interconnect parameters ("NDR InfiniBand", Sec. III-F).

    Attributes
    ----------
    latency_s:
        Per-message latency L, seconds.
    bandwidth_gbs:
        Link bandwidth B_N, GB/s.
    switch_connections:
        Simultaneous connections per switch, N_S.
    """

    latency_s: float
    bandwidth_gbs: float
    switch_connections: int

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.bandwidth_gbs <= 0:
            raise ValueError(f"bandwidth_gbs must be > 0, got {self.bandwidth_gbs}")
        if self.switch_connections <= 0:
            raise ValueError(
                f"switch_connections must be > 0, got {self.switch_connections}"
            )

    def pfs_transfer_time(self, memory_gb: float, nodes: int) -> float:
        """Eq. 3: time to move a checkpoint of ``memory_gb`` GB/node from
        ``nodes`` nodes to (or from) the parallel file system, seconds.
        """
        if memory_gb < 0:
            raise ValueError(f"memory_gb must be >= 0, got {memory_gb}")
        if nodes <= 0:
            raise ValueError(f"nodes must be > 0, got {nodes}")
        return (memory_gb / self.bandwidth_gbs) * (nodes / self.switch_connections)

    def point_to_point_time(self, data_gb: float) -> float:
        """Latency + bandwidth time for one message of *data_gb* GB."""
        if data_gb < 0:
            raise ValueError(f"data_gb must be >= 0, got {data_gb}")
        return self.latency_s + data_gb / self.bandwidth_gbs
