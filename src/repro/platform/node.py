"""Node model for the simulated homogeneous system (Sec. III-C)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one system node.

    Attributes
    ----------
    cores:
        CPU cores per node.
    tflops:
        Peak compute throughput, TFLOP/s.
    memory_gb:
        RAM capacity, GB.
    memory_bandwidth_gbs:
        Aggregate memory bandwidth B_M, GB/s (used by level-1/level-2
        checkpoint costs, Eqs. 5-6).
    """

    cores: int
    tflops: float
    memory_gb: float
    memory_bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be > 0, got {self.cores}")
        if self.tflops <= 0:
            raise ValueError(f"tflops must be > 0, got {self.tflops}")
        if self.memory_gb <= 0:
            raise ValueError(f"memory_gb must be > 0, got {self.memory_gb}")
        if self.memory_bandwidth_gbs <= 0:
            raise ValueError(
                f"memory_bandwidth_gbs must be > 0, got {self.memory_bandwidth_gbs}"
            )

    def memory_write_time(self, data_gb: float) -> float:
        """Seconds to write *data_gb* GB to local memory (Eq. 5 term)."""
        if data_gb < 0:
            raise ValueError(f"data_gb must be >= 0, got {data_gb}")
        return data_gb / self.memory_bandwidth_gbs
