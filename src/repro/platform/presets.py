"""Factory functions for the paper's simulated machines (Sec. III-C/F).

The exascale system is "inspired by the architecture used to develop
China's Sunway TaihuLight supercomputer": nodes with 4x the TaihuLight's
core count (1028 cores, ~12 TFLOPs) and 4x its memory (128 GB) with
hybrid-memory-cube bandwidth (320 GB/s), 120 000 of which reach an
exaflop.  The interconnect is the "NDR InfiniBand" model of Sec. III-F.
"""

from __future__ import annotations

from repro import constants
from repro.platform.network import NetworkModel
from repro.platform.node import NodeSpec
from repro.platform.system import HPCSystem


def sunway_taihulight_node() -> NodeSpec:
    """Today's reference node: one Sunway TaihuLight node (260 cores,
    ~3.1 TFLOPs, 32 GB DDR3)."""
    return NodeSpec(
        cores=260,
        tflops=3.1,
        memory_gb=32.0,
        memory_bandwidth_gbs=136.0,  # 4 clusters x 34 GB/s DDR3 channels
    )


def exascale_node() -> NodeSpec:
    """The projected exascale node (Sec. III-C)."""
    return NodeSpec(
        cores=constants.CORES_PER_NODE,
        tflops=constants.TFLOPS_PER_NODE,
        memory_gb=constants.MEMORY_PER_NODE_GB,
        memory_bandwidth_gbs=constants.MEMORY_BANDWIDTH_GBS,
    )


def ndr_infiniband() -> NetworkModel:
    """The projected interconnect (Sec. III-F)."""
    return NetworkModel(
        latency_s=constants.NETWORK_LATENCY_S,
        bandwidth_gbs=constants.NETWORK_BANDWIDTH_GBS,
        switch_connections=constants.SWITCH_CONNECTIONS,
    )


def exascale_system(total_nodes: int = constants.EXASCALE_NODES) -> HPCSystem:
    """The full simulated exascale machine.

    ``total_nodes`` may be overridden for scaled-down tests; all
    per-node and network parameters keep their paper values.
    """
    return HPCSystem(exascale_node(), ndr_infiniband(), total_nodes)
