"""The simulated machine: nodes + network + allocation state.

:class:`HPCSystem` is the shared substrate of both simulators.  It
tracks which contiguous node blocks are allocated to which owner (an
application, in practice), exposes the *active* node count that drives
the system failure rate (Eq. 2: ``lambda_s = N_s / M_n`` counts only
nodes that are not idle), and supports sampling a uniformly random
active node as the failure location (Sec. III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.platform.allocator import AllocationError, Block, ContiguousAllocator
from repro.platform.network import NetworkModel
from repro.platform.node import NodeSpec


@dataclass(frozen=True)
class Allocation:
    """A block of nodes held by an owner."""

    owner: Hashable
    block: Block

    @property
    def nodes(self) -> int:
        """Number of nodes in the allocation."""
        return self.block.size


class HPCSystem:
    """A homogeneous system of ``total_nodes`` identical nodes.

    Parameters
    ----------
    node:
        Hardware spec shared by every node.
    network:
        Interconnect model.
    total_nodes:
        Machine size (120 000 for the exascale preset).
    """

    def __init__(self, node: NodeSpec, network: NetworkModel, total_nodes: int) -> None:
        if total_nodes <= 0:
            raise ValueError(f"total_nodes must be > 0, got {total_nodes}")
        self.node = node
        self.network = network
        self.total_nodes = total_nodes
        self._allocator = ContiguousAllocator(total_nodes)
        self._allocations: Dict[Hashable, Allocation] = {}
        self._active_nodes = 0

    # -- capacity ----------------------------------------------------------

    @property
    def total_tflops(self) -> float:
        """Aggregate peak throughput, TFLOP/s."""
        return self.node.tflops * self.total_nodes

    @property
    def active_nodes(self) -> int:
        """Nodes currently executing an application (N_s in Eq. 2)."""
        return self._active_nodes

    @property
    def idle_nodes(self) -> int:
        """Nodes not executing any application."""
        return self.total_nodes - self._active_nodes

    def fraction_to_nodes(self, fraction: float) -> int:
        """Node count for a system *fraction* (Figs. 1-3 x-axis)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        return max(1, round(fraction * self.total_nodes))

    # -- allocation ----------------------------------------------------------

    def can_allocate(self, nodes: int) -> bool:
        """Whether a contiguous block of *nodes* is available."""
        return self._allocator.can_allocate(nodes)

    def allocate(self, owner: Hashable, nodes: int) -> Allocation:
        """Allocate a contiguous block of *nodes* to *owner*.

        Raises :class:`AllocationError` when the machine cannot fit the
        request and :class:`ValueError` if *owner* already holds one.
        """
        if owner in self._allocations:
            raise ValueError(f"owner {owner!r} already holds an allocation")
        block = self._allocator.allocate(nodes)
        allocation = Allocation(owner, block)
        self._allocations[owner] = allocation
        self._active_nodes += nodes
        return allocation

    def release(self, owner: Hashable) -> None:
        """Release the allocation held by *owner*."""
        allocation = self._allocations.pop(owner, None)
        if allocation is None:
            raise KeyError(f"owner {owner!r} holds no allocation")
        self._allocator.release(allocation.block)
        self._active_nodes -= allocation.nodes

    def reset(self) -> None:
        """Return the machine to its just-constructed state (no
        allocations, zero active nodes).

        The batch runner (:func:`repro.core.datacenter.run_datacenter_batch`)
        reuses one system across a cell's patterns; a reset system is
        indistinguishable from a fresh one, so batched results stay
        bit-identical to independent runs."""
        self._allocator = ContiguousAllocator(self.total_nodes)
        self._allocations = {}
        self._active_nodes = 0

    def allocation_of(self, owner: Hashable) -> Optional[Allocation]:
        """The allocation held by *owner*, or None."""
        return self._allocations.get(owner)

    def allocations(self) -> List[Allocation]:
        """Snapshot of live allocations."""
        return list(self._allocations.values())

    def owner_of_node(self, node_id: int) -> Optional[Hashable]:
        """Owner of *node_id*, or None if the node is idle."""
        for allocation in self._allocations.values():
            if node_id in allocation.block:
                return allocation.owner
        return None

    # -- failure-location sampling ------------------------------------------

    def sample_active_node(self, rng: np.random.Generator) -> Tuple[Hashable, int]:
        """Pick a uniformly random *active* node (Sec. III-E).

        Returns ``(owner, node_id)``.  Raises :class:`RuntimeError` when
        no nodes are active (callers should suspend the failure process
        instead — :class:`repro.rng.VariableRatePoisson` with rate 0).
        """
        if self._active_nodes == 0:
            raise RuntimeError("no active nodes to fail")
        target = int(rng.integers(0, self._active_nodes))
        for allocation in self._allocations.values():
            if target < allocation.nodes:
                return allocation.owner, allocation.block.start + target
            target -= allocation.nodes
        raise AssertionError("active node accounting out of sync")  # pragma: no cover

    def check_invariants(self) -> None:
        """Assert allocation bookkeeping is self-consistent (tests)."""
        self._allocator.check_invariants()
        allocated = sum(a.nodes for a in self._allocations.values())
        assert allocated == self._active_nodes, (allocated, self._active_nodes)
        assert allocated == self._allocator.allocated_nodes


__all__ = ["Allocation", "AllocationError", "HPCSystem"]
