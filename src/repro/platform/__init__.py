"""Simulated exascale machine: nodes, network, contiguous allocation."""

from repro.platform.allocator import AllocationError, Block, ContiguousAllocator
from repro.platform.network import NetworkModel
from repro.platform.node import NodeSpec
from repro.platform.presets import (
    exascale_node,
    exascale_system,
    ndr_infiniband,
    sunway_taihulight_node,
)
from repro.platform.system import Allocation, HPCSystem

__all__ = [
    "Allocation",
    "AllocationError",
    "Block",
    "ContiguousAllocator",
    "HPCSystem",
    "NetworkModel",
    "NodeSpec",
    "exascale_node",
    "exascale_system",
    "ndr_infiniband",
    "sunway_taihulight_node",
]
