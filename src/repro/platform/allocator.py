"""Contiguous node allocation.

The paper's level-2 (partner-node) checkpoints assume "application nodes
are ... contiguous allowing for minimum latency between checkpoints sent
between nodes" (Sec. IV-C), so the system hands out contiguous blocks of
node ids.  :class:`ContiguousAllocator` keeps a sorted free list of
half-open intervals and allocates first-fit; release coalesces adjacent
intervals, so fragmentation only arises from genuinely interleaved
lifetimes (as on a real machine).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class AllocationError(RuntimeError):
    """No contiguous block large enough is available."""


@dataclass(frozen=True)
class Block:
    """A half-open interval of node ids ``[start, stop)``."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError(f"empty or inverted block [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        """Number of nodes in the block."""
        return self.stop - self.start

    def __contains__(self, node: int) -> bool:
        return self.start <= node < self.stop

    def __repr__(self) -> str:
        return f"Block[{self.start}:{self.stop}]"


@dataclass
class ContiguousAllocator:
    """First-fit contiguous allocator over ``total`` node ids."""

    total: int
    _free: List[Tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ValueError(f"total must be > 0, got {self.total}")
        self._free = [(0, self.total)]
        self._allocated: dict[int, int] = {}

    @property
    def free_nodes(self) -> int:
        """Total free node count (may be fragmented)."""
        return sum(stop - start for start, stop in self._free)

    @property
    def allocated_nodes(self) -> int:
        """Total nodes currently allocated."""
        return self.total - self.free_nodes

    @property
    def largest_free_block(self) -> int:
        """Size of the largest contiguous free block."""
        if not self._free:
            return 0
        return max(stop - start for start, stop in self._free)

    def can_allocate(self, size: int) -> bool:
        """Whether a contiguous block of *size* nodes is available."""
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        return any(stop - start >= size for start, stop in self._free)

    def allocate(self, size: int) -> Block:
        """Allocate the first contiguous block of *size* nodes.

        Raises :class:`AllocationError` if no block fits.
        """
        if size <= 0:
            raise ValueError(f"size must be > 0, got {size}")
        for index, (start, stop) in enumerate(self._free):
            if stop - start >= size:
                if stop - start == size:
                    del self._free[index]
                else:
                    self._free[index] = (start + size, stop)
                self._allocated[start] = start + size
                return Block(start, start + size)
        raise AllocationError(
            f"no contiguous block of {size} nodes "
            f"(free={self.free_nodes}, largest={self.largest_free_block})"
        )

    def release(self, block: Block) -> None:
        """Return *block* to the free list, coalescing neighbours.

        Only blocks previously returned by :meth:`allocate` may be
        released, exactly once and in full; raises :class:`ValueError`
        otherwise (double-free, partial free, made-up block).
        """
        if block.stop > self.total or block.start < 0:
            raise ValueError(f"{block} outside [0, {self.total})")
        if self._allocated.get(block.start) != block.stop:
            raise ValueError(f"{block} is not an outstanding allocation")
        del self._allocated[block.start]
        starts = [s for s, _ in self._free]
        index = bisect.bisect_left(starts, block.start)
        # Overlap checks against both neighbours.
        if index > 0 and self._free[index - 1][1] > block.start:
            raise ValueError(f"double free / overlap releasing {block}")
        if index < len(self._free) and self._free[index][0] < block.stop:
            raise ValueError(f"double free / overlap releasing {block}")
        start, stop = block.start, block.stop
        # Coalesce with successor then predecessor.
        if index < len(self._free) and self._free[index][0] == stop:
            stop = self._free[index][1]
            del self._free[index]
        if index > 0 and self._free[index - 1][1] == start:
            start = self._free[index - 1][0]
            del self._free[index - 1]
            index -= 1
        self._free.insert(index, (start, stop))

    def free_blocks(self) -> List[Block]:
        """Snapshot of the free list as :class:`Block` objects."""
        return [Block(start, stop) for start, stop in self._free]

    def check_invariants(self) -> None:
        """Assert the free list is sorted, disjoint, and in range.

        Used by tests (including property-based tests) after arbitrary
        allocate/release interleavings.
        """
        prev_stop: Optional[int] = None
        for start, stop in self._free:
            assert 0 <= start < stop <= self.total, (start, stop)
            if prev_stop is not None:
                # Strictly greater: equal would mean a missed coalesce.
                assert start > prev_stop, (prev_stop, start)
            prev_stop = stop
        allocated = sum(stop - start for start, stop in self._allocated.items())
        assert allocated == self.allocated_nodes, (allocated, self.allocated_nodes)
