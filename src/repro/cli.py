"""Command-line interface: regenerate any table or figure, run the
analysis utilities, and operate the job service.

Examples::

    repro table1
    repro table2 --fraction 0.5
    repro fig1 --trials 200
    repro fig2 --quick --format barchart
    repro fig4 --patterns 50 --format csv
    repro regime-map
    repro sweep --sweep checkpoint_interval
    repro validate --app-type C32 --fraction 0.12
    repro timeline --app-type C32 --fraction 0.5 --mtbf-years 2.5
    repro all --quick

    repro scenario list                      # bundled scenario library
    repro scenario show weibull-aging
    repro scenario validate my-study.toml
    repro scenario run fig1 --quick
    repro scenario run burst-storm --jobs 4 --export results/storm
    repro scenario submit trace-replay --wait  # campaign over HTTP
    repro scenario submit sweep.toml --adaptive --wait
    repro campaign status <campaign-id>      # adaptive lifecycle

    repro serve --port 8642 --workers 2      # start the job service
    repro submit fig1 --quick --format json  # enqueue over HTTP
    repro status <job-id>
    repro result <job-id>
    repro watch <job-id>                     # live SSE event stream
    repro cache stats
    repro cache prune --max-mb 256

Experiment subcommands render their artifact on stdout; progress,
executor metrics, and timing chatter go to stderr so ``--format
csv``/``json`` stdout stays machine-readable.  Figure runs dispatch
through :mod:`repro.experiments.entry` — the same code path the job
service uses — so both produce byte-identical artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro import __version__
from repro.experiments.entry import RequestError, StudyRequest, run_request
from repro.experiments.parallel import (
    CellProgress,
    ExecutorMetrics,
    ExecutorOptions,
    ResultCache,
)

#: Default service URL for the client verbs (matches ``repro serve``).
DEFAULT_SERVICE_URL = "http://127.0.0.1:8642"


def _positive_int(text: str) -> int:
    """Argparse type for ``--jobs``: an integer >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _print_cell_progress(progress: CellProgress) -> None:
    """``--progress`` reporter: one line per cell on stderr."""
    print(progress.render(), file=sys.stderr)


def _executor_options(args: argparse.Namespace) -> ExecutorOptions:
    """Executor settings for one figure run: worker count and cache
    from the flags, a fresh metrics sink, and (with ``--progress``)
    per-cell reporting on stderr."""
    on_cell: Optional[Callable[[CellProgress], None]] = None
    if args.progress:
        on_cell = _print_cell_progress
    return ExecutorOptions(
        jobs=args.jobs,
        cache=not args.no_cache,
        metrics=ExecutorMetrics(),
        on_cell=on_cell,
    )


def _observe_requested(args: argparse.Namespace) -> bool:
    """Whether ``--trace-out`` / ``--metrics-out`` ask for observation."""
    return bool(args.trace_out or args.metrics_out)


def _write_observability(result, args: argparse.Namespace) -> None:
    """Write the study's event stream / metrics to the requested files."""
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            for line in result.trace_lines or ():
                fh.write(line)
                fh.write("\n")
        print(
            f"[wrote {len(result.trace_lines or ())} events to {args.trace_out}]",
            file=sys.stderr,
        )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(result.metrics or {}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[wrote metrics to {args.metrics_out}]", file=sys.stderr)


def _request_from_args(name: str, args: argparse.Namespace) -> StudyRequest:
    """The :class:`StudyRequest` equivalent of one CLI invocation."""
    return StudyRequest(
        experiment=name,
        format=args.format or "table",
        trials=args.trials,
        patterns=args.patterns,
        quick=args.quick,
        fraction=args.fraction,
        mtbf_years=args.mtbf_years,
        sweep=args.sweep,
    )


def _run_figure(name: str, args: argparse.Namespace) -> str:
    """Run a figure through the shared entrypoint (service-identical)."""
    options = _executor_options(args)
    observe = _observe_requested(args)
    outcome = run_request(
        _request_from_args(name, args), options=options, observe=observe
    )
    if observe and outcome.result is not None:
        _write_observability(outcome.result, args)
    # Metrics go to stderr so csv/json stdout stays machine-readable.
    print(options.metrics.render(name), file=sys.stderr)
    return outcome.text


def _run_entry(name: str, args: argparse.Namespace) -> str:
    """Run a non-figure artifact (tables, regime map, sweeps)."""
    return run_request(
        _request_from_args(name, args), options=_executor_options(args)
    ).text


def _run_validate(args: argparse.Namespace) -> str:
    from repro.analysis.validation import validate_plan
    from repro.core.single_app import SingleAppConfig
    from repro.platform.presets import exascale_system
    from repro.resilience.registry import scaling_study_techniques
    from repro.units import years
    from repro.workload.synthetic import make_application

    system = exascale_system()
    app = make_application(
        args.app_type, nodes=system.fraction_to_nodes(args.fraction)
    )
    config = SingleAppConfig(node_mtbf_s=years(args.mtbf_years))
    lines = [
        f"Simulator vs. closed-form model ({args.app_type}, "
        f"{100 * args.fraction:.0f}% of system, MTBF {args.mtbf_years:g} y):"
    ]
    for technique in scaling_study_techniques():
        if not technique.fits(app, system):
            lines.append(f"{technique.name:<22} infeasible on this machine")
            continue
        report = validate_plan(
            app, technique, system, trials=args.trials, config=config
        )
        lines.append(str(report))
    return "\n".join(lines)


def _run_timeline(args: argparse.Namespace) -> str:
    from repro.core.execution import ResilientExecution
    from repro.core.single_app import SingleAppConfig, failure_driver
    from repro.core.timeline import render_timeline
    from repro.failures.generator import AppFailureGenerator
    from repro.platform.presets import exascale_system
    from repro.resilience.registry import datacenter_techniques
    from repro.rng.streams import StreamFactory
    from repro.sim.engine import Simulator
    from repro.units import years
    from repro.workload.synthetic import make_application

    system = exascale_system()
    app = make_application(
        args.app_type, nodes=system.fraction_to_nodes(args.fraction)
    )
    config = SingleAppConfig(node_mtbf_s=years(args.mtbf_years))
    blocks: List[str] = []
    for technique in datacenter_techniques():
        plan = technique.plan(
            app, system, config.node_mtbf_s, severity=config.severity_model()
        )
        sim = Simulator()
        engine = ResilientExecution(sim, plan, record_timeline=True)
        proc = sim.process(engine.run(), name="app")
        generator = AppFailureGenerator(
            StreamFactory(config.seed).stream("failures"),
            nodes=plan.nodes_required,
            node_mtbf_s=config.node_mtbf_s,
            severity=config.severity_model(),
        )
        sim.process(failure_driver(sim, proc, generator), name="failures")
        sim.run(until=config.max_time_factor * plan.effective_work_s)
        stats = engine.stats
        blocks.append(
            f"=== {technique.name} ===\n"
            f"failures {stats.failures}, restarts {stats.restarts}, "
            f"efficiency {stats.efficiency():.3f}\n"
            + render_timeline(engine.timeline)
        )
    return "\n\n".join(blocks)


_EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": lambda a: _run_entry("table1", a),
    "table2": lambda a: _run_entry("table2", a),
    "fig1": lambda a: _run_figure("fig1", a),
    "fig2": lambda a: _run_figure("fig2", a),
    "fig3": lambda a: _run_figure("fig3", a),
    "fig4": lambda a: _run_figure("fig4", a),
    "fig5": lambda a: _run_figure("fig5", a),
    "regime-map": lambda a: _run_entry("regime-map", a),
    "sweep": lambda a: _run_entry("sweep", a),
    "validate": _run_validate,
    "timeline": _run_timeline,
}

#: Subcommands run by ``repro all`` (the utilities run too; figures in
#: quick mode unless overridden).
_ALL_ORDER = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "regime-map",
]


# ---------------------------------------------------------------------------
# Service verbs
# ---------------------------------------------------------------------------


def _require_target(args: argparse.Namespace, what: str) -> str:
    """The second positional argument, or a one-line usage error."""
    if not args.target:
        raise RequestError(
            f"'repro {args.experiment}' needs {what} "
            f"(e.g. 'repro {args.experiment} <{what.split()[-1]}>')"
        )
    return args.target


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import ReproService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        db_path=args.db,
        store_url=args.store,
        queue_limit=args.queue_limit,
        cache_max_mb=args.max_mb,
        cache_prune_interval_s=args.prune_interval_s,
        log_requests=args.progress,
    )
    service = ReproService(config)
    service.start()
    print(
        f"repro service listening on {service.url} "
        f"(db {config.store_url or config.db_path}, "
        f"{config.workers} workers)",
        flush=True,
    )
    service.serve_forever()
    print("repro service stopped (queue drained and persisted)", file=sys.stderr)
    return 0


def _default_site_name() -> str:
    """A site name derived from the host (sanitized for URL paths)."""
    import re
    import socket

    name = re.sub(r"[^A-Za-z0-9._-]", "-", socket.gethostname()).strip("-.")
    return name or "site"


def _cmd_agent(args: argparse.Namespace) -> int:
    """``repro agent``: run a remote worker agent against a control
    plane — register the site, pull batches of leased jobs over the
    API, execute them, push results, drain gracefully on SIGTERM."""
    from repro.service.agent import RemoteJobSource, WorkerAgent
    from repro.service.client import ServiceClient

    from repro.telemetry import EventForwarder, ForwardingTelemetry

    site = args.site or _default_site_name()
    workers = max(args.workers, 1)
    client = ServiceClient(args.url, timeout=args.timeout)
    source = RemoteJobSource(client, site)
    # Forward watched jobs' live simulation events back to the control
    # plane (batched, best-effort) so `repro watch` sees remote runs.
    forwarder = EventForwarder(client, site)
    agent = WorkerAgent(
        source,
        workers=workers,
        batch_size=args.batch_size,
        lease_s=args.lease_s,
        cache=ResultCache(enabled=True),
        telemetry=ForwardingTelemetry(forwarder, source.is_watched),
    )
    agent.start()
    print(
        f"repro agent {agent.identity} serving site {site} "
        f"against {args.url} ({workers} workers)",
        flush=True,
    )
    agent.run_forever()
    print(
        f"repro agent {agent.identity} stopped "
        "(leases released or completed)",
        file=sys.stderr,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    experiment = _require_target(args, "an experiment name")
    payload = {
        "experiment": experiment,
        "format": args.format or "table",
        "trials": args.trials,
        "patterns": args.patterns,
        "quick": args.quick,
        "fraction": args.fraction,
        "mtbf_years": args.mtbf_years,
        "sweep": args.sweep,
        "jobs": args.jobs,
        "cache": not args.no_cache,
    }
    client = ServiceClient(args.url)
    record = client.submit(payload)
    if not args.wait:
        print(record["id"])
        return 0
    print(f"[submitted {record['id']}; waiting]", file=sys.stderr)
    final = client.wait(record["id"], timeout=args.timeout)
    if final["state"] != "done":
        print(
            f"repro: job {record['id']} ended {final['state']}: "
            f"{final.get('error') or 'no result'}",
            file=sys.stderr,
        )
        return 1
    print(client.result(record["id"]))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    job_id = _require_target(args, "a job id")
    record = ServiceClient(args.url).status(job_id)
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    job_id = _require_target(args, "a job id")
    print(ServiceClient(args.url).result(job_id))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    action = args.target or "stats"
    cache = ResultCache()
    if action == "stats":
        print(cache.stats().render())
        return 0
    if action == "prune":
        if args.max_mb is None:
            raise RequestError(
                "'repro cache prune' needs --max-mb N (target size in MiB)"
            )
        removed, removed_bytes = cache.prune(int(args.max_mb * 1024 * 1024))
        print(
            f"pruned {removed} entries ({removed_bytes / (1024 * 1024):.1f} MiB); "
            + cache.stats().render()
        )
        return 0
    raise RequestError(
        f"unknown cache action {action!r} (choose from stats, prune)"
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    """``repro campaign status <id>``: poll one campaign's lifecycle
    (``--wait`` blocks until done; ``--format table`` renders the
    convergence summary instead of the raw JSON)."""
    from repro.service.client import ServiceClient

    action = args.target or "status"
    if action != "status":
        raise RequestError(
            f"unknown campaign action {action!r} (choose from: status)"
        )
    campaign_id = args.extra
    if not campaign_id:
        raise RequestError(
            "'repro campaign status' needs a campaign id "
            "(printed by 'repro scenario submit --adaptive')"
        )
    client = ServiceClient(args.url)
    if args.wait:
        status = client.wait_campaign(campaign_id, timeout=args.timeout)
    else:
        status = client.campaign_status(campaign_id)
    if args.format == "table" and status.get("adaptive"):
        _print_campaign_summary(status)
    else:
        print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _print_event_frame(frame: Dict[str, Any]) -> None:
    """One line per SSE frame (the ``repro watch`` output format)."""
    name = frame["event"]
    data = frame["data"]
    if name == "event":
        kind = data.get("kind", "?")
        scope = (
            data.get("job_id")
            or data.get("campaign_id")
            or data.get("site")
            or ""
        )
        detail = json.dumps(data.get("data", {}), sort_keys=True)
        print(f"{kind:<24} {scope}  {detail}", flush=True)
    elif name == "snapshot":
        print(f"{'snapshot':<24} state={data.get('state')}", flush=True)
    elif name == "gap":
        print(
            f"[gap: {data.get('missed')} events evicted before resume]",
            file=sys.stderr,
            flush=True,
        )
    elif name == "end":
        print(
            f"{'end':<24} {json.dumps(data, sort_keys=True)}", flush=True
        )


def _cmd_watch(args: argparse.Namespace) -> int:
    """``repro watch <job-id|campaign-id>``: follow the live event
    stream of one job (lifecycle + in-flight simulation events) or
    campaign (controller progress) until it finishes.

    Exit status mirrors the outcome: 0 when the job/campaign ends
    ``done``, 1 on a failed or cancelled job.
    """
    from repro.service.client import ServiceClient, ServiceError

    target = _require_target(args, "a job or campaign id")
    client = ServiceClient(args.url, timeout=args.timeout)
    campaign = None
    try:
        client.status(target)
    except ServiceError as exc:
        if exc.status != 404:
            raise
        try:
            campaign = client.campaign_status(target)
        except ServiceError as exc2:
            if exc2.status == 404:
                raise RequestError(
                    f"no job or campaign {target!r} at {args.url}"
                )
            raise

    if campaign is None:
        outcome = None
        for frame in client.iter_events(job_id=target):
            _print_event_frame(frame)
            if frame["event"] == "end":
                outcome = frame["data"].get("kind") or frame["data"].get(
                    "state"
                )
        return 0 if outcome in ("job.done", "done", None) else 1

    if campaign["state"] == "done":
        print(f"campaign {target} already done", flush=True)
        return 0
    for frame in client.iter_events():
        if frame["event"] == "gap":
            _print_event_frame(frame)
            continue
        if frame["event"] != "event":
            continue
        if frame["data"].get("campaign_id") != target:
            continue
        _print_event_frame(frame)
        if frame["data"].get("kind") == "campaign.done":
            return 0
    return 0


_SERVICE_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "serve": _cmd_serve,
    "agent": _cmd_agent,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "result": _cmd_result,
    "cache": _cmd_cache,
    "campaign": _cmd_campaign,
    "watch": _cmd_watch,
}


# ---------------------------------------------------------------------------
# Scenario verbs
# ---------------------------------------------------------------------------


_SCENARIO_ACTIONS = ("list", "show", "validate", "run", "submit")


def _scenario_spec_path(name: str) -> bool:
    """Whether the scenario argument is a file path (vs a bundled name)."""
    import os

    return (
        os.sep in name
        or "/" in name
        or name.endswith((".toml", ".json"))
    )


def _scenario_export(
    directory: str, label: str, fmt: str, text: str, campaign
) -> None:
    """``--export DIR``: write one unit's artifact plus its provenance
    sidecar (scenario name, canonical-spec SHA-256, package version)."""
    import os

    os.makedirs(directory, exist_ok=True)
    ext = {"csv": "csv", "json": "json"}.get(fmt, "txt")
    artifact = os.path.join(directory, f"{label}.{ext}")
    with open(artifact, "w", encoding="utf-8") as fh:
        fh.write(text if text.endswith("\n") else text + "\n")
    sidecar = os.path.join(directory, f"{label}.provenance.json")
    with open(sidecar, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "scenario": campaign.spec.scenario.name,
                "spec_sha256": campaign.sha256,
                "version": __version__,
                "label": label,
                "format": fmt,
                "notes": list(campaign.notes),
                "analytic_bypass": campaign.analytic_bypass,
            },
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")
    print(f"[exported {artifact} (+ provenance sidecar)]", file=sys.stderr)


def _scenario_list(args: argparse.Namespace) -> int:
    from repro.scenarios import list_scenarios, load_named

    for name in list_scenarios():
        spec = load_named(name)
        print(f"{name:<24} {spec.scenario.title}")
    return 0


def _scenario_show(args: argparse.Namespace, name: str) -> int:
    from repro.scenarios import load_scenario, resolve, spec_sha256
    from repro.scenarios.compiler import compile_scenario

    path = resolve(name)
    spec = load_scenario(path)
    campaign = compile_scenario(spec)
    lines = [
        f"scenario    {spec.scenario.name}",
        f"source      {path}",
        f"sha256      {spec_sha256(spec)}",
    ]
    if spec.scenario.title:
        lines.append(f"title       {spec.scenario.title}")
    if spec.scenario.description:
        lines.append(f"description {spec.scenario.description}")
    for unit in campaign.units:
        lines.append(
            f"unit        {unit.label} -> experiment "
            f"'{unit.request.experiment}', format {unit.request.format}"
        )
    for note in campaign.notes:
        lines.append(f"note        {note}")
    print("\n".join(lines))
    return 0


def _scenario_validate(args: argparse.Namespace, name: str) -> int:
    from repro.scenarios import load_scenario, resolve
    from repro.scenarios.compiler import compile_scenario

    path = resolve(name)
    spec = load_scenario(path)
    campaign = compile_scenario(spec)
    print(
        f"{path}: OK — scenario '{spec.scenario.name}', "
        f"sha256 {campaign.sha256[:12]}…, {len(campaign.units)} unit(s)"
    )
    return 0


def _scenario_run(args: argparse.Namespace, name: str) -> int:
    from dataclasses import replace

    from repro.scenarios import load_scenario, resolve
    from repro.scenarios.compiler import compile_scenario

    spec = load_scenario(resolve(name))
    campaign = compile_scenario(spec, quick=args.quick)
    for note in campaign.notes:
        print(f"[{note}]", file=sys.stderr)
    options = _executor_options(args)
    for unit in campaign.units:
        request = unit.request
        if args.format is not None:
            request = replace(request, format=args.format)
        outcome = run_request(request, options=options)
        print(outcome.text)
        if args.export:
            _scenario_export(
                args.export, unit.label, request.format, outcome.text, campaign
            )
    print(
        options.metrics.render(f"scenario {spec.scenario.name}"),
        file=sys.stderr,
    )
    return 0


def _adaptive_field(args: argparse.Namespace) -> Optional[object]:
    """The ``adaptive`` field of a campaign submission from the CLI
    flags: ``False`` for ``--no-adaptive``, a config object when any
    knob was given, ``True`` for a bare ``--adaptive``, ``None`` to
    let the spec's own ``[adaptive]`` section decide."""
    if args.no_adaptive:
        return False
    overrides: Dict[str, object] = {}
    if args.max_trials is not None:
        overrides["max_trials"] = args.max_trials
    if args.batch_size is not None:
        overrides["batch_size"] = args.batch_size
    if args.ci_threshold is not None:
        overrides["ci_rel_threshold"] = args.ci_threshold
    if args.refine_depth is not None:
        overrides["refine_depth"] = args.refine_depth
    if overrides:
        return overrides
    return True if args.adaptive else None


def _print_campaign_summary(status: Dict[str, object]) -> None:
    """Render one adaptive campaign's convergence summary on stderr
    and (when done) its winning-technique table on stdout."""
    trials = status.get("trials") or {}
    cells = status.get("cells") or []
    settled = sum(1 for c in cells if c["settled"])
    converged = sum(1 for c in cells if c["converged"])
    reduction = trials.get("reduction")
    print(
        f"[campaign {status['state']}: {settled}/{len(cells)} cells "
        f"settled ({converged} converged), "
        f"{trials.get('executed', 0)} trials executed vs "
        f"{trials.get('exhaustive', 0)} exhaustive"
        + (f" ({reduction:.2f}x reduction)" if reduction else "")
        + "]",
        file=sys.stderr,
    )
    if status.get("table"):
        print(status["table"])


def _scenario_submit(args: argparse.Namespace, name: str) -> int:
    from repro.service.client import ServiceClient

    payload: Dict[str, object] = {
        "quick": args.quick,
        "jobs": args.jobs,
        "cache": not args.no_cache,
    }
    adaptive = _adaptive_field(args)
    if adaptive is not None:
        payload["adaptive"] = adaptive
        if adaptive is not False:
            payload["quick"] = False
    if args.format is not None:
        payload["format"] = args.format
    if _scenario_spec_path(name):
        # A local spec file: ship the parsed document inline (a trace
        # regime's relative trace_file then resolves on the service
        # host, against the service's working directory).
        from repro.scenarios import load_scenario, resolve
        from repro.scenarios.spec import spec_to_dict

        payload["spec"] = spec_to_dict(load_scenario(resolve(name)))
    else:
        payload["scenario"] = name
    client = ServiceClient(args.url)
    campaign = client.submit_campaign(payload)
    if campaign.get("adaptive"):
        print(
            f"[adaptive campaign '{campaign['scenario']}' "
            f"sha256 {campaign['spec_sha256'][:12]}…: id {campaign['id']}, "
            f"{campaign['cells']} cell(s), {campaign['jobs']} batch job(s)]",
            file=sys.stderr,
        )
        if not args.wait:
            print(campaign["id"])
            return 0
        final = client.wait_campaign(campaign["id"], timeout=args.timeout)
        _print_campaign_summary(final)
        failed = [
            c
            for c in final.get("cells", [])
            if c["settled"] and str(c["stop_reason"] or "").startswith(
                ("failed", "cancelled", "error")
            )
        ]
        return 1 if failed else 0
    print(
        f"[campaign '{campaign['scenario']}' "
        f"sha256 {campaign['spec_sha256'][:12]}…: "
        f"{len(campaign['units'])} job(s)]",
        file=sys.stderr,
    )
    if not args.wait:
        for unit in campaign["units"]:
            print(unit["job"]["id"])
        return 0
    exit_code = 0
    for unit in campaign["units"]:
        job_id = unit["job"]["id"]
        final = client.wait(job_id, timeout=args.timeout)
        if final["state"] != "done":
            print(
                f"repro: job {job_id} ({unit['label']}) ended "
                f"{final['state']}: {final.get('error') or 'no result'}",
                file=sys.stderr,
            )
            exit_code = 1
            continue
        print(client.result(job_id))
    return exit_code


# ---------------------------------------------------------------------------
# Grid / energy verbs
# ---------------------------------------------------------------------------


_GRID_ACTIONS = ("show", "quote")
_ENERGY_ACTIONS = ("report",)


def _analytic_cells(spec):
    """The (system, node_mtbf_s, severity, fractions, techniques,
    make_app) ingredients for the analytic grid/energy reports of one
    scaling scenario; rejects specs the closed-form model cannot price."""
    from repro.constants import (
        EXASCALE_NODES,
        SCALING_STUDY_BASELINE_S,
        SCALING_STUDY_FRACTIONS,
    )
    from repro.failures.severity import SeverityModel
    from repro.platform.presets import exascale_system
    from repro.resilience.registry import (
        get_technique,
        scaling_study_techniques,
    )
    from repro.scenarios.compiler import scenario_analytic_reason
    from repro.units import MINUTE, years
    from repro.workload.synthetic import make_application

    if spec.workload.study != "scaling":
        raise RequestError(
            "grid/energy reports quote scaling studies (the datacenter "
            "study has no fixed per-technique execution to price)"
        )
    if spec.sweep is not None:
        raise RequestError(
            "grid/energy reports quote one grid point; drop the [sweep] "
            "section (or quote a single-value scenario per axis point)"
        )
    reason = scenario_analytic_reason(spec)
    if reason is not None:
        raise RequestError(f"analytic quotes unavailable: {reason}")
    system = exascale_system(
        spec.platform.total_nodes
        if spec.platform.total_nodes is not None
        else EXASCALE_NODES
    )
    node_mtbf_s = years(spec.failures.mtbf_years)
    severity = (
        SeverityModel.from_probabilities(spec.failures.severity_pmf)
        if spec.failures.severity_pmf is not None
        else None
    )
    fractions = (
        spec.workload.fractions
        if spec.workload.fractions is not None
        else SCALING_STUDY_FRACTIONS
    )
    techniques = (
        [get_technique(name) for name in spec.techniques]
        if spec.techniques is not None
        else list(scaling_study_techniques())
    )

    def make_app(fraction: float):
        return make_application(
            spec.workload.app_type,
            nodes=system.fraction_to_nodes(fraction),
            time_steps=max(1, round(SCALING_STUDY_BASELINE_S / MINUTE)),
        )

    return system, node_mtbf_s, severity, fractions, techniques, make_app


def _load_grid_scenario(name: str):
    """Load a scenario and its materialized grid context (requiring a
    ``[grid]`` section for the grid verbs)."""
    from repro.scenarios import load_scenario, resolve
    from repro.scenarios.compiler import _load_grid_traces
    from repro.scenarios.runtime import grid_context

    spec = load_scenario(resolve(name))
    if spec.grid is None:
        raise RequestError(
            f"scenario '{spec.scenario.name}' has no [grid] section"
        )
    return spec, grid_context(spec, _load_grid_traces(spec))


def _cmd_grid(args: argparse.Namespace) -> int:
    """``repro grid show|quote <scenario>``: the grid curves on their
    daily clock, or the analytic $-and-gCO2 quote of every candidate
    technique (the closed-form twin of a grid scenario run)."""
    action = args.target
    if action not in _GRID_ACTIONS:
        raise RequestError(
            f"unknown grid action {action!r} "
            f"(choose from {', '.join(_GRID_ACTIONS)})"
        )
    if not args.extra:
        raise RequestError(
            f"'repro grid {action}' needs a bundled scenario name or a "
            "spec path with a [grid] section"
        )
    spec, ctx = _load_grid_scenario(args.extra)
    if action == "show":
        return _grid_show(spec, ctx)
    return _grid_quote(spec, ctx)


def _grid_show(spec, ctx) -> int:
    """Curve summaries plus exact hourly means over one day."""
    from repro.scenarios.runtime import _HOUR_S

    print(f"scenario    {spec.scenario.name}")
    print(f"objective   {ctx.objective}")
    print(f"start_hour  {ctx.offset_s / _HOUR_S:g}")
    print(
        f"power       busy {ctx.power.busy_w:g} W, "
        f"idle {ctx.power.idle_w:g} W per node"
    )
    for role, curve in (("price", ctx.price), ("carbon", ctx.carbon)):
        if curve is None:
            continue
        desc = ", ".join(
            f"{k}={v}" for k, v in sorted(curve.to_dict().items())
        )
        print(f"\n{role}: {desc}")
        print("hour   " + " ".join(f"{h:>7d}" for h in range(0, 24, 3)))
        print(
            "mean   "
            + " ".join(
                f"{curve.mean(h * _HOUR_S, (h + 3) * _HOUR_S):>7.4g}"
                for h in range(0, 24, 3)
            )
        )
    return 0


def _grid_quote(spec, ctx) -> int:
    """Analytic per-technique quotes, per fraction, with the
    efficiency-vs-objective pick (flips marked)."""
    from repro.resilience.grid_aware import quote

    system, node_mtbf_s, severity, fractions, techniques, make_app = (
        _analytic_cells(spec)
    )
    header = (
        f"{'size%':>6} {'technique':<22} {'nodes':>9} {'E[eff]':>8} "
        f"{'kWh':>14} {'USD':>14} {'gCO2':>16}"
    )
    print(
        f"Analytic grid quote — scenario {spec.scenario.name}, "
        f"objective={ctx.objective}"
    )
    print(header)
    print("-" * len(header))
    for fraction in fractions:
        app = make_app(fraction)
        rows = []
        for technique in techniques:
            if not technique.fits(app, system):
                print(
                    f"{100 * fraction:>6.0f} {technique.name:<22} "
                    f"{'---':>9} {'---':>8} {'---':>14} {'---':>14} "
                    f"{'---':>16}"
                )
                continue
            q = quote(
                technique,
                app,
                system,
                node_mtbf_s,
                severity=severity,
                power=ctx.power,
                price=ctx.price,
                carbon=ctx.carbon,
                start_s=ctx.offset_s,
            )
            rows.append(q)
            print(
                f"{100 * fraction:>6.0f} {q.technique:<22} "
                f"{q.nodes:>9,d} {q.expected_efficiency:>8.3f} "
                f"{q.cost.energy_kwh:>14,.1f} "
                f"{q.cost.total_usd:>14,.2f} {q.cost.total_g:>16,.0f}"
            )
        if not rows:
            continue
        best_eff = max(rows, key=lambda q: q.expected_efficiency).technique
        best_obj = min(
            rows, key=lambda q: q.objective_value(ctx.objective)
        ).technique
        line = (
            f"{100 * fraction:>5.0f}%: best by efficiency = {best_eff}, "
            f"best by {ctx.objective} = {best_obj}"
        )
        if best_obj != best_eff:
            line += "  [flip]"
        print(line)
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    """``repro energy report <scenario>``: expected per-technique joule
    breakdown (work / rework / checkpoint) per fraction.  Works with or
    without a ``[grid]`` section; with one, its power model applies."""
    from repro.energy.model import PowerModel
    from repro.grid.curves import J_PER_KWH
    from repro.resilience.grid_aware import expected_energy
    from repro.scenarios import load_scenario, resolve
    from repro.scenarios.runtime import grid_context

    action = args.target
    if action not in _ENERGY_ACTIONS:
        raise RequestError(
            f"unknown energy action {action!r} "
            f"(choose from {', '.join(_ENERGY_ACTIONS)})"
        )
    if not args.extra:
        raise RequestError(
            "'repro energy report' needs a bundled scenario name or a "
            "spec path"
        )
    spec = load_scenario(resolve(args.extra))
    power = (
        grid_context(spec).power if spec.grid is not None else PowerModel()
    )
    system, node_mtbf_s, severity, fractions, techniques, make_app = (
        _analytic_cells(spec)
    )
    header = (
        f"{'size%':>6} {'technique':<22} {'work kWh':>14} "
        f"{'rework kWh':>14} {'ckpt kWh':>14} {'total kWh':>14} "
        f"{'overhead x':>11}"
    )
    print(
        f"Expected energy — scenario {spec.scenario.name}, "
        f"busy {power.busy_w:g} W / idle {power.idle_w:g} W per node"
    )
    print(header)
    print("-" * len(header))
    for fraction in fractions:
        app = make_app(fraction)
        for technique in techniques:
            if not technique.fits(app, system):
                print(
                    f"{100 * fraction:>6.0f} {technique.name:<22} "
                    f"{'---':>14} {'---':>14} {'---':>14} {'---':>14} "
                    f"{'---':>11}"
                )
                continue
            plan = technique.plan(app, system, node_mtbf_s, severity)
            energy = expected_energy(
                plan, node_mtbf_s, severity=severity, power=power
            )
            print(
                f"{100 * fraction:>6.0f} {technique.name:<22} "
                f"{energy.work_j / J_PER_KWH:>14,.1f} "
                f"{energy.rework_j / J_PER_KWH:>14,.1f} "
                f"{energy.checkpoint_j / J_PER_KWH:>14,.1f} "
                f"{energy.total_j / J_PER_KWH:>14,.1f} "
                f"{energy.total_j / energy.work_j:>11.3f}"
            )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    """Dispatch ``repro scenario <action> [name-or-path]``."""
    action = args.target or "list"
    if action not in _SCENARIO_ACTIONS:
        raise RequestError(
            f"unknown scenario action {action!r} "
            f"(choose from {', '.join(_SCENARIO_ACTIONS)})"
        )
    if action == "list":
        return _scenario_list(args)
    name = args.extra
    if not name:
        raise RequestError(
            f"'repro scenario {action}' needs a bundled scenario name or "
            f"a spec path (e.g. 'repro scenario {action} fig1'; "
            "'repro scenario list' shows the bundled ones)"
        )
    handler = {
        "show": _scenario_show,
        "validate": _scenario_validate,
        "run": _scenario_run,
        "submit": _scenario_submit,
    }[action]
    return handler(args, name)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of Dauwe et al., 'An Analysis "
            "of Resilience Techniques for Exascale Computing Platforms' "
            "(IPDPSW 2017), run the analysis utilities, and operate the "
            "persistent job service (serve/submit/status/result/cache)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS)
        + ["all", "scenario", "grid", "energy"]
        + sorted(_SERVICE_COMMANDS),
        help=(
            "which artifact to regenerate ('all' runs everything), "
            "'scenario list|show|validate|run|submit' for declarative "
            "scenario specs, 'grid show|quote <scenario>' / 'energy "
            "report <scenario>' for the analytic cost-and-carbon views, "
            "or a service verb: serve, agent, submit "
            "<experiment>, status <job-id>, result <job-id>, "
            "watch <job-or-campaign-id>, campaign status <campaign-id>, "
            "cache stats|prune"
        ),
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help=(
            "argument of the scenario/service verbs: the scenario action "
            "(list|show|validate|run|submit), the experiment to submit, "
            "the job id for status/result, or the cache action "
            "(stats|prune)"
        ),
    )
    parser.add_argument(
        "extra",
        nargs="?",
        default=None,
        help=(
            "second argument of the scenario verbs: a bundled scenario "
            "name ('repro scenario list') or a path to a .toml/.json spec"
        ),
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=200,
        help="trials per bar for figs 1-3 and validate (paper: 200)",
    )
    parser.add_argument(
        "--patterns",
        type=int,
        default=50,
        help="arrival patterns for figs 4-5 (paper: 50)",
    )
    parser.add_argument(
        "--fraction",
        type=float,
        default=1.0,
        help="system fraction for table2 / validate / timeline",
    )
    parser.add_argument(
        "--app-type",
        default="C32",
        help="Table I type for validate / timeline (default C32)",
    )
    parser.add_argument(
        "--mtbf-years",
        type=float,
        default=10.0,
        help="node MTBF in years for regime-map / validate / timeline",
    )
    parser.add_argument(
        "--format",
        choices=("table", "barchart", "csv", "json"),
        default=None,
        help=(
            "output format for the figure drivers (default table; for "
            "'scenario run' the spec's run.format wins unless this flag "
            "is given)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="statistically coarse but fast run (CI-sized)",
    )
    parser.add_argument(
        "--sweep",
        choices=("severity_pmf", "recovery_parallelism", "checkpoint_interval"),
        default="checkpoint_interval",
        help="which parameter sweep 'repro sweep' runs",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help=(
            "worker processes for the figure drivers (default 1 = serial; "
            "results are bit-identical for any value)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "recompute every cell instead of reusing results/.cache/ "
            "(the cache is keyed by config+technique+seed, so hits are "
            "always exact)"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "report per-cell progress (wall time, trials/s, cache hits) on "
            "stderr; for 'serve', log HTTP requests"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help=(
            "write the figure run's domain-event stream as JSON Lines "
            "(one event per line; figs 1-5 only; disables the result cache "
            "for the run)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help=(
            "write aggregated event counts and activity seconds as JSON "
            "(figs 1-5 only; disables the result cache for the run)"
        ),
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help=(
            "with 'scenario run': also write each unit's artifact and a "
            "<label>.provenance.json sidecar (scenario name, canonical "
            "spec SHA-256, package version, compiler notes) into DIR"
        ),
    )
    parser.add_argument(
        "--no-fast-path",
        action="store_true",
        help=(
            "disable the failure-horizon fast path and run every "
            "simulation on the stepped event-by-event path (results are "
            "bit-identical either way; see docs/PERFORMANCE.md)"
        ),
    )
    service = parser.add_argument_group("service options")
    service.add_argument(
        "--host", default="127.0.0.1", help="bind address for 'repro serve'"
    )
    service.add_argument(
        "--port",
        type=int,
        default=8642,
        help="API port for 'repro serve' (0 picks an ephemeral port)",
    )
    service.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker threads draining the job queue (0 = accept only)",
    )
    service.add_argument(
        "--db",
        default="results/service.db",
        metavar="PATH",
        help="SQLite job-store path (survives restarts)",
    )
    service.add_argument(
        "--queue-limit",
        type=_positive_int,
        default=256,
        help="queued-job bound; submissions beyond it get HTTP 429",
    )
    service.add_argument(
        "--url",
        default=DEFAULT_SERVICE_URL,
        help="service URL for submit/status/result",
    )
    service.add_argument(
        "--wait",
        action="store_true",
        help="with 'submit': poll until the job finishes and print its result",
    )
    service.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="with 'submit --wait': polling timeout in seconds",
    )
    service.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help=(
            "cache size target in MiB for 'repro cache prune' and the "
            "service's periodic pruning"
        ),
    )
    service.add_argument(
        "--prune-interval-s",
        type=float,
        default=300.0,
        help="seconds between the service's cache-prune checks",
    )
    service.add_argument(
        "--store",
        default=None,
        metavar="URL",
        help=(
            "job-store backend URL for 'repro serve' "
            "(e.g. sqlite://results/service.db; wins over --db)"
        ),
    )
    service.add_argument(
        "--site",
        default=None,
        metavar="NAME",
        help=(
            "site name 'repro agent' registers with the control plane "
            "(default: derived from the hostname)"
        ),
    )
    service.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "jobs 'repro agent' leases per claim (default: its worker "
            "count); for 'scenario submit --adaptive', trials per batch "
            "job"
        ),
    )
    adaptive = parser.add_argument_group("adaptive campaign options")
    adaptive.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "with 'scenario submit': run the campaign under the "
            "server-side adaptive controller (CI-based early stopping "
            "plus crossover refinement over dependency-chained batches)"
        ),
    )
    adaptive.add_argument(
        "--no-adaptive",
        action="store_true",
        help=(
            "with 'scenario submit': force a plain exhaustive campaign "
            "even when the spec carries an [adaptive] section"
        ),
    )
    adaptive.add_argument(
        "--max-trials",
        type=_positive_int,
        default=None,
        metavar="N",
        help="adaptive per-cell trial budget (default from the spec or 200)",
    )
    adaptive.add_argument(
        "--ci-threshold",
        type=float,
        default=None,
        metavar="REL",
        help=(
            "adaptive convergence threshold: stop a cell once its 95%% "
            "CI half-width falls below REL of the mean (default 0.02)"
        ),
    )
    adaptive.add_argument(
        "--refine-depth",
        type=int,
        default=None,
        metavar="D",
        help=(
            "adaptive crossover-bisection rounds between adjacent "
            "fractions whose best technique differs (0 disables; "
            "default 1)"
        ),
    )
    service.add_argument(
        "--lease-s",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help=(
            "lease duration 'repro agent' requests; its jobs are "
            "re-claimable this long after the agent dies"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.no_fast_path:
        import os

        from repro.core import execution

        # The module flag covers this process (and fork-started
        # workers); the environment variable covers spawn-started ones.
        execution.FAST_PATH_ENABLED = False
        os.environ["REPRO_FAST_PATH"] = "0"
    try:
        if args.experiment == "scenario":
            return _cmd_scenario(args)
        if args.experiment == "grid":
            return _cmd_grid(args)
        if args.experiment == "energy":
            return _cmd_energy(args)
        if args.experiment in _SERVICE_COMMANDS:
            return _SERVICE_COMMANDS[args.experiment](args)
        if args.experiment == "all":
            names = _ALL_ORDER
            # Utilities get sensible defaults; figures honour --quick.
            args.trials = min(args.trials, 30)
        else:
            names = [args.experiment]
        for name in names:
            started = time.time()
            output = _EXPERIMENTS[name](args)
            print(output)
            print(
                f"[{name} completed in {time.time() - started:.1f}s]\n",
                file=sys.stderr,
            )
        return 0
    except ValueError as exc:
        # RequestError, ValidationError, bad parameter combinations:
        # one line on stderr, non-zero exit, no traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pipe (e.g. `repro status ... | head`) closed early;
        # exit quietly like any well-behaved filter.
        sys.stderr.close()
        return 0
    except OSError as exc:
        # Unreachable service, write failures, wait timeouts.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        from repro.service.client import ServiceError
        from repro.service.store import QueueFull

        if isinstance(exc, (ServiceError, QueueFull)):
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
