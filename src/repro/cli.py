"""Command-line interface: regenerate any table or figure, plus the
analysis utilities.

Examples::

    repro table1
    repro table2 --fraction 0.5
    repro fig1 --trials 200
    repro fig2 --quick --format barchart
    repro fig4 --patterns 50 --format csv
    repro regime-map
    repro validate --app-type C32 --fraction 0.12
    repro timeline --app-type C32 --fraction 0.5 --mtbf-years 2.5
    repro all --quick
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.experiments import fig1, fig2, fig3, fig4, fig5, tables
from repro.experiments.parallel import CellProgress, ExecutorMetrics, ExecutorOptions


def _positive_int(text: str) -> int:
    """Argparse type for ``--jobs``: an integer >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _print_cell_progress(progress: CellProgress) -> None:
    """``--progress`` reporter: one line per cell on stderr."""
    print(progress.render(), file=sys.stderr)


def _executor_options(args: argparse.Namespace) -> ExecutorOptions:
    """Executor settings for one figure run: worker count and cache
    from the flags, a fresh metrics sink, and (with ``--progress``)
    per-cell reporting on stderr."""
    on_cell: Optional[Callable[[CellProgress], None]] = None
    if args.progress:
        on_cell = _print_cell_progress
    return ExecutorOptions(
        jobs=args.jobs,
        cache=not args.no_cache,
        metrics=ExecutorMetrics(),
        on_cell=on_cell,
    )


def _observe_requested(args: argparse.Namespace) -> bool:
    """Whether ``--trace-out`` / ``--metrics-out`` ask for observation."""
    return bool(args.trace_out or args.metrics_out)


def _write_observability(result, args: argparse.Namespace) -> None:
    """Write the study's event stream / metrics to the requested files."""
    import json

    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            for line in result.trace_lines or ():
                fh.write(line)
                fh.write("\n")
        print(
            f"[wrote {len(result.trace_lines or ())} events to {args.trace_out}]",
            file=sys.stderr,
        )
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(result.metrics or {}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[wrote metrics to {args.metrics_out}]", file=sys.stderr)


def _scaling_output(module, result, fmt: str) -> str:
    from repro.experiments.barchart import scaling_barchart
    from repro.experiments.export import scaling_to_csv, scaling_to_json

    if fmt == "table":
        return module.render(result)
    if fmt == "barchart":
        return scaling_barchart(result, title=module.TITLE)
    if fmt == "csv":
        return scaling_to_csv(result)
    return scaling_to_json(result)


def _datacenter_output(module, result, fmt: str) -> str:
    from repro.experiments.export import datacenter_to_csv, datacenter_to_json

    if fmt == "table":
        return module.render(result)
    if fmt == "barchart":
        from repro.experiments.barchart import datacenter_barchart
        from repro.rm.registry import manager_names

        return datacenter_barchart(
            result,
            rm_names=manager_names(),
            selector_names=module.SELECTOR_ORDER,
            title=module.TITLE,
        )
    if fmt == "csv":
        return datacenter_to_csv(result)
    return datacenter_to_json(result)


def _run_scaling_fig(module, args: argparse.Namespace) -> str:
    cfg = module.config(trials=args.trials)
    if args.quick:
        cfg = cfg.quick(trials=min(args.trials, 10))
    options = _executor_options(args)
    observe = _observe_requested(args)
    result = module.run(cfg, options=options, observe=observe)
    output = _scaling_output(module, result, args.format)
    if observe:
        _write_observability(result, args)
    # Metrics go to stderr so csv/json stdout stays machine-readable.
    print(options.metrics.render(module.__name__.split(".")[-1]), file=sys.stderr)
    return output


def _run_datacenter_fig(module, args: argparse.Namespace) -> str:
    cfg = module.config(patterns=args.patterns)
    if args.quick:
        cfg = cfg.quick()
    options = _executor_options(args)
    observe = _observe_requested(args)
    result = module.run(cfg, options=options, observe=observe)
    output = _datacenter_output(module, result, args.format)
    if observe:
        _write_observability(result, args)
    print(options.metrics.render(module.__name__.split(".")[-1]), file=sys.stderr)
    return output


def _run_table1(args: argparse.Namespace) -> str:
    return tables.render_table1()


def _run_table2(args: argparse.Namespace) -> str:
    return tables.render_table2(fraction=args.fraction)


def _run_regime_map(args: argparse.Namespace) -> str:
    from repro.analysis.regimes import (
        crossover_fraction,
        render_selection_map,
        selection_map,
    )
    from repro.constants import SCALING_STUDY_FRACTIONS
    from repro.platform.presets import exascale_system
    from repro.units import years
    from repro.workload.synthetic import APP_TYPES

    system = exascale_system()
    mtbf = years(args.mtbf_years)
    mapping = selection_map(system, mtbf, SCALING_STUDY_FRACTIONS)
    lines = [
        f"Analytic technique-selection map (node MTBF {args.mtbf_years:g} y):",
        render_selection_map(mapping, SCALING_STUDY_FRACTIONS),
        "",
        "ML -> PR crossover per type (fraction of system):",
    ]
    for type_name in sorted(APP_TYPES):
        cross = crossover_fraction(type_name, system, mtbf)
        label = f"{100 * cross:.2f}%" if cross is not None else "never"
        lines.append(f"  {type_name}: {label}")
    return "\n".join(lines)


def _run_validate(args: argparse.Namespace) -> str:
    from repro.analysis.validation import validate_plan
    from repro.core.single_app import SingleAppConfig
    from repro.platform.presets import exascale_system
    from repro.resilience.registry import scaling_study_techniques
    from repro.units import years
    from repro.workload.synthetic import make_application

    system = exascale_system()
    app = make_application(
        args.app_type, nodes=system.fraction_to_nodes(args.fraction)
    )
    config = SingleAppConfig(node_mtbf_s=years(args.mtbf_years))
    lines = [
        f"Simulator vs. closed-form model ({args.app_type}, "
        f"{100 * args.fraction:.0f}% of system, MTBF {args.mtbf_years:g} y):"
    ]
    for technique in scaling_study_techniques():
        if not technique.fits(app, system):
            lines.append(f"{technique.name:<22} infeasible on this machine")
            continue
        report = validate_plan(
            app, technique, system, trials=args.trials, config=config
        )
        lines.append(str(report))
    return "\n".join(lines)


def _run_timeline(args: argparse.Namespace) -> str:
    from repro.core.execution import ResilientExecution
    from repro.core.single_app import SingleAppConfig, failure_driver
    from repro.core.timeline import render_timeline
    from repro.failures.generator import AppFailureGenerator
    from repro.platform.presets import exascale_system
    from repro.resilience.registry import datacenter_techniques
    from repro.rng.streams import StreamFactory
    from repro.sim.engine import Simulator
    from repro.units import years
    from repro.workload.synthetic import make_application

    system = exascale_system()
    app = make_application(
        args.app_type, nodes=system.fraction_to_nodes(args.fraction)
    )
    config = SingleAppConfig(node_mtbf_s=years(args.mtbf_years))
    blocks: List[str] = []
    for technique in datacenter_techniques():
        plan = technique.plan(
            app, system, config.node_mtbf_s, severity=config.severity_model()
        )
        sim = Simulator()
        engine = ResilientExecution(sim, plan, record_timeline=True)
        proc = sim.process(engine.run(), name="app")
        generator = AppFailureGenerator(
            StreamFactory(config.seed).stream("failures"),
            nodes=plan.nodes_required,
            node_mtbf_s=config.node_mtbf_s,
            severity=config.severity_model(),
        )
        sim.process(failure_driver(sim, proc, generator), name="failures")
        sim.run(until=config.max_time_factor * plan.effective_work_s)
        stats = engine.stats
        blocks.append(
            f"=== {technique.name} ===\n"
            f"failures {stats.failures}, restarts {stats.restarts}, "
            f"efficiency {stats.efficiency():.3f}\n"
            + render_timeline(engine.timeline)
        )
    return "\n\n".join(blocks)


_EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": _run_table1,
    "table2": _run_table2,
    "fig1": lambda a: _run_scaling_fig(fig1, a),
    "fig2": lambda a: _run_scaling_fig(fig2, a),
    "fig3": lambda a: _run_scaling_fig(fig3, a),
    "fig4": lambda a: _run_datacenter_fig(fig4, a),
    "fig5": lambda a: _run_datacenter_fig(fig5, a),
    "regime-map": _run_regime_map,
    "validate": _run_validate,
    "timeline": _run_timeline,
}

#: Subcommands run by ``repro all`` (the utilities run too; figures in
#: quick mode unless overridden).
_ALL_ORDER = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "regime-map",
]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of Dauwe et al., 'An Analysis "
            "of Resilience Techniques for Exascale Computing Platforms' "
            "(IPDPSW 2017), and run the analysis utilities."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which artifact to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=200,
        help="trials per bar for figs 1-3 and validate (paper: 200)",
    )
    parser.add_argument(
        "--patterns",
        type=int,
        default=50,
        help="arrival patterns for figs 4-5 (paper: 50)",
    )
    parser.add_argument(
        "--fraction",
        type=float,
        default=1.0,
        help="system fraction for table2 / validate / timeline",
    )
    parser.add_argument(
        "--app-type",
        default="C32",
        help="Table I type for validate / timeline (default C32)",
    )
    parser.add_argument(
        "--mtbf-years",
        type=float,
        default=10.0,
        help="node MTBF in years for regime-map / validate / timeline",
    )
    parser.add_argument(
        "--format",
        choices=("table", "barchart", "csv", "json"),
        default="table",
        help="output format for the figure drivers",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="statistically coarse but fast run (CI-sized)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help=(
            "worker processes for the figure drivers (default 1 = serial; "
            "results are bit-identical for any value)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "recompute every cell instead of reusing results/.cache/ "
            "(the cache is keyed by config+technique+seed, so hits are "
            "always exact)"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="report per-cell progress (wall time, trials/s, cache hits) on stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help=(
            "write the figure run's domain-event stream as JSON Lines "
            "(one event per line; figs 1-5 only; disables the result cache "
            "for the run)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help=(
            "write aggregated event counts and activity seconds as JSON "
            "(figs 1-5 only; disables the result cache for the run)"
        ),
    )
    parser.add_argument(
        "--no-fast-path",
        action="store_true",
        help=(
            "disable the failure-horizon fast path and run every "
            "simulation on the stepped event-by-event path (results are "
            "bit-identical either way; see docs/PERFORMANCE.md)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.no_fast_path:
        import os

        from repro.core import execution

        # The module flag covers this process (and fork-started
        # workers); the environment variable covers spawn-started ones.
        execution.FAST_PATH_ENABLED = False
        os.environ["REPRO_FAST_PATH"] = "0"
    if args.experiment == "all":
        names = _ALL_ORDER
        # Utilities get sensible defaults; figures honour --quick.
        args.trials = min(args.trials, 30)
    else:
        names = [args.experiment]
    for name in names:
        started = time.time()
        output = _EXPERIMENTS[name](args)
        print(output)
        print(f"[{name} completed in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
