"""Execution of generic (non-paper-exact) scenarios.

:func:`run_scenario_request` is the ``experiment="scenario"`` body of
:func:`repro.experiments.entry.run_request`.  It re-hydrates the
canonical spec (and embedded trace) from the request, expands the
study grid — sweep-axis value x system fraction x technique — into
:class:`~repro.experiments.parallel.CellTask`\\ s, and runs them
through :func:`~repro.experiments.parallel.run_cells`, so scenarios
inherit the executor's parallelism, caching, metrics, and the
engine's failure-horizon fast path unchanged.

Cache keys are rooted in the spec's SHA-256 (plus the per-cell axis
value, fraction, technique, and trial count), and every cache entry
and export carries the provenance stamp — scenario name, spec digest,
package version.

Non-Poisson regimes never receive analytic predictions: the
compile-time bypass reason (see
:func:`repro.scenarios.compiler.scenario_analytic_reason`) is rendered
into the artifact instead of a silently wrong number.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import repro
from repro.constants import (
    EXASCALE_NODES,
    SCALING_STUDY_BASELINE_S,
    SCALING_STUDY_FRACTIONS,
)
from repro.core.paired import simulate_with_trace
from repro.core.single_app import SingleAppConfig
from repro.experiments.barchart import scaling_barchart
from repro.experiments.config import ScalingStudyConfig
from repro.experiments.entry import StudyOutcome, StudyRequest
from repro.experiments.parallel import (
    CellTask,
    ExecutorOptions,
    run_cells,
    technique_fingerprint,
)
from repro.experiments.reporting import render_scaling_study
from repro.experiments.runner import (
    ScalingCell,
    ScalingStudyResult,
    _scaling_cell_body,
)
from repro.experiments.stats import SummaryStats
from repro.failures.burst import BurstModel
from repro.failures.generator import (
    InterarrivalModel,
    LognormalInterarrivals,
    WeibullInterarrivals,
)
from repro.failures.trace import FailureTrace, trace_digest, trace_from_jsonl
from repro.platform.presets import exascale_system
from repro.resilience.registry import get_technique, scaling_study_techniques
from repro.scenarios.compiler import scenario_analytic_reason
from repro.scenarios.schema import scenario_from_json
from repro.scenarios.spec import ScenarioSpec, spec_sha256, spec_to_dict
from repro.units import MINUTE, years
from repro.workload.synthetic import make_application


def scenario_provenance(spec: ScenarioSpec) -> Dict[str, str]:
    """The provenance stamp recorded on every scenario artifact."""
    return {
        "scenario": spec.scenario.name,
        "spec_sha256": spec_sha256(spec),
        "version": repro.__version__,
    }


def provenance_comment(stamp: Dict[str, str]) -> str:
    """The ``#``-comment form of a provenance stamp (CSV header line)."""
    return (
        f"# scenario={stamp['scenario']} "
        f"spec_sha256={stamp['spec_sha256']} "
        f"version={stamp['version']}"
    )


def _interarrival_for(
    spec: ScenarioSpec, axis: Optional[str], value: Optional[float]
) -> Optional[InterarrivalModel]:
    """The interarrival model of one grid point (None = Poisson)."""
    regime = spec.failures.regime
    if regime == "weibull":
        shape = value if axis == "shape" else spec.failures.shape
        return WeibullInterarrivals(shape=shape)
    if regime == "lognormal":
        sigma = value if axis == "sigma" else spec.failures.sigma
        return LognormalInterarrivals(sigma=sigma)
    return None


def _burst_for(
    spec: ScenarioSpec, axis: Optional[str], value: Optional[float]
) -> Optional[BurstModel]:
    """The burst model of one grid point (None = width-1 failures)."""
    mean = (
        value if axis == "burst_mean_width" else spec.failures.burst_mean_width
    )
    if mean is None or mean <= 1.0:
        return None
    max_width = (
        spec.failures.burst_max_width
        if spec.failures.burst_max_width is not None
        else 64
    )
    return BurstModel.with_mean_width(mean, max_width=max_width)


def _mtbf_years_for(
    spec: ScenarioSpec, axis: Optional[str], value: Optional[float]
) -> float:
    return value if axis == "mtbf_years" else spec.failures.mtbf_years


def _trace_cell_body(app, technique, system, trace, app_config):
    """One trace-replay cell: a single deterministic replay."""
    if not technique.fits(app, system):
        return True, ()
    stats = simulate_with_trace(app, technique, system, trace, app_config)
    return False, (stats.efficiency(),)


def run_scenario(
    spec: ScenarioSpec,
    trials: int,
    quick: bool = False,
    trace: Optional[FailureTrace] = None,
    options: Optional[ExecutorOptions] = None,
    trial_offset: int = 0,
) -> List[Tuple[Optional[float], ScalingStudyResult]]:
    """Execute *spec*'s grid; one study result per sweep-axis value
    (a single ``(None, result)`` entry without a sweep).

    Results are bit-identical for any ``options.jobs`` — every cell
    derives its randomness from the scenario seed and trial index, the
    same discipline as the figure drivers.  *trial_offset* shifts every
    cell's trial indices to ``[offset, offset + trials)`` so a batch is
    exactly that slice of an exhaustive run (the adaptive campaign
    controller's determinism contract); offset batches get their own
    cache keys.
    """
    workload = spec.workload
    if workload.study != "scaling":  # pragma: no cover - schema prevents it
        raise ValueError("the generic runtime only executes scaling studies")
    if spec.failures.regime == "trace" and trace is None:
        raise ValueError("trace-replay scenarios need the recorded trace")
    if trial_offset < 0:
        raise ValueError(f"trial_offset must be >= 0, got {trial_offset}")
    if trial_offset and spec.failures.regime == "trace":
        raise ValueError("trace replay is deterministic; trial_offset is meaningless")

    sha = spec_sha256(spec)
    system_nodes = (
        spec.platform.total_nodes
        if spec.platform.total_nodes is not None
        else EXASCALE_NODES
    )
    fractions = (
        workload.fractions
        if workload.fractions is not None
        else SCALING_STUDY_FRACTIONS
    )
    techniques = (
        [get_technique(name) for name in spec.techniques]
        if spec.techniques is not None
        else scaling_study_techniques()
    )
    eff_trials = min(trials, 10) if quick else trials
    if spec.failures.regime == "trace":
        eff_trials = 1
    axis = spec.sweep.axis if spec.sweep is not None else None
    axis_values: Tuple[Optional[float], ...] = (
        spec.sweep.values if spec.sweep is not None else (None,)
    )
    digest = trace_digest(trace) if trace is not None else None

    system = exascale_system(system_nodes)
    options = options if options is not None else ExecutorOptions()
    options = replace(options, provenance=scenario_provenance(spec))

    tasks: List[CellTask] = []
    meta: List[Tuple[Optional[float], float, str]] = []
    for value in axis_values:
        mtbf_s = years(_mtbf_years_for(spec, axis, value))
        app_config = SingleAppConfig(
            node_mtbf_s=mtbf_s,
            severity_pmf=spec.failures.severity_pmf,
            seed=spec.run.seed,
            burst=_burst_for(spec, axis, value),
            interarrival=_interarrival_for(spec, axis, value),
        )
        for fraction in fractions:
            nodes = system.fraction_to_nodes(fraction)
            app = make_application(
                workload.app_type,
                nodes=nodes,
                time_steps=max(1, round(SCALING_STUDY_BASELINE_S / MINUTE)),
            )
            for technique in techniques:
                if trace is not None:
                    fn = (
                        lambda app=app, technique=technique, cfg=app_config: _trace_cell_body(
                            app, technique, system, trace, cfg
                        )
                    )
                else:
                    fn = (
                        lambda app=app, technique=technique, cfg=app_config: _scaling_cell_body(
                            app,
                            technique,
                            system,
                            eff_trials,
                            cfg,
                            first_trial=trial_offset,
                        )
                    )
                tasks.append(
                    CellTask(
                        fn=fn,
                        key_parts=(
                            "scenario",
                            sha,
                            digest,
                            value,
                            fraction,
                            technique_fingerprint(technique),
                            eff_trials,
                        )
                        + ((trial_offset,) if trial_offset else ()),
                        trials=eff_trials,
                        label=(
                            f"{spec.scenario.name}"
                            + (f" {axis}={value:g}" if value is not None else "")
                            + f" {100 * fraction:g}% {technique.name}"
                        ),
                    )
                )
                meta.append((value, fraction, technique.name))

    outcomes = run_cells(tasks, options)

    results: List[Tuple[Optional[float], ScalingStudyResult]] = []
    by_value: Dict[Optional[float], ScalingStudyResult] = {}
    for value in axis_values:
        cfg = ScalingStudyConfig(
            app_type=workload.app_type,
            node_mtbf_s=years(_mtbf_years_for(spec, axis, value)),
            fractions=tuple(fractions),
            trials=eff_trials,
            system_nodes=system_nodes,
            seed=spec.run.seed,
            severity_pmf=spec.failures.severity_pmf,
        )
        result = ScalingStudyResult(config=cfg)
        by_value[value] = result
        results.append((value, result))
    for (value, fraction, technique_name), outcome in zip(meta, outcomes):
        infeasible, efficiencies = outcome[0], outcome[1]
        by_value[value].cells.append(
            ScalingCell(
                fraction,
                technique_name,
                None if infeasible else SummaryStats.from_samples(efficiencies),
                infeasible,
            )
        )
    return results


def _scenario_title(spec: ScenarioSpec) -> str:
    if spec.scenario.title:
        return f"Scenario {spec.scenario.name} — {spec.scenario.title}"
    return f"Scenario {spec.scenario.name}"


def _render_table(
    spec: ScenarioSpec,
    results: List[Tuple[Optional[float], ScalingStudyResult]],
    reason: Optional[str],
    chart: bool = False,
) -> str:
    axis = spec.sweep.axis if spec.sweep is not None else None
    blocks: List[str] = []
    for value, result in results:
        title = _scenario_title(spec)
        if value is not None:
            title += f" [{axis} = {value:g}]"
        if chart:
            blocks.append(scaling_barchart(result, title=title))
        else:
            blocks.append(render_scaling_study(result, title))
    text = "\n\n".join(blocks)
    if reason is not None:
        text += f"\n\nanalytic model bypassed: {reason}"
    return text


def _render_csv(
    spec: ScenarioSpec,
    results: List[Tuple[Optional[float], ScalingStudyResult]],
    stamp: Dict[str, str],
) -> str:
    axis = spec.sweep.axis if spec.sweep is not None else ""
    lines = [
        provenance_comment(stamp),
        "axis,axis_value,app_type,fraction,technique,"
        "mean_efficiency,std_efficiency,trials,infeasible",
    ]
    for value, result in results:
        for cell in result.cells:
            lines.append(
                ",".join(
                    [
                        axis,
                        f"{value:g}" if value is not None else "",
                        result.config.app_type,
                        repr(cell.fraction),
                        cell.technique,
                        repr(cell.mean_efficiency),
                        repr(cell.stats.std if cell.stats else 0.0),
                        str(cell.stats.n if cell.stats else 0),
                        str(cell.infeasible),
                    ]
                )
            )
    return "\n".join(lines) + "\n"


def _render_json(
    spec: ScenarioSpec,
    results: List[Tuple[Optional[float], ScalingStudyResult]],
    stamp: Dict[str, str],
    reason: Optional[str],
) -> str:
    import json

    axis = spec.sweep.axis if spec.sweep is not None else None
    payload = {
        "provenance": stamp,
        "scenario": spec_to_dict(spec),
        "analytic_bypass": reason,
        "results": [
            {
                "axis": axis,
                "axis_value": value,
                "cells": [
                    {
                        "app_type": result.config.app_type,
                        "fraction": cell.fraction,
                        "technique": cell.technique,
                        "mean_efficiency": cell.mean_efficiency,
                        "std_efficiency": cell.stats.std if cell.stats else 0.0,
                        "trials": cell.stats.n if cell.stats else 0,
                        "infeasible": cell.infeasible,
                    }
                    for cell in result.cells
                ],
            }
            for value, result in results
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def run_scenario_request(
    request: StudyRequest,
    options: Optional[ExecutorOptions] = None,
) -> StudyOutcome:
    """Entry body for ``experiment="scenario"`` requests.

    The request is self-contained (canonical spec JSON plus any
    embedded trace), so this runs identically from the CLI and from a
    service worker — same seeds, same cache keys, same rendered bytes.
    """
    spec = scenario_from_json(request.scenario)
    trace = (
        trace_from_jsonl(request.trace, source="<request>")
        if request.trace is not None
        else None
    )
    reason = scenario_analytic_reason(spec)
    stamp = scenario_provenance(spec)
    results = run_scenario(
        spec,
        trials=request.trials,
        quick=request.quick,
        trace=trace,
        options=options,
        trial_offset=request.trial_offset,
    )
    if request.format == "csv":
        text = _render_csv(spec, results, stamp)
    elif request.format == "json":
        text = _render_json(spec, results, stamp, reason)
    elif request.format == "barchart":
        text = _render_table(spec, results, reason, chart=True)
    else:
        text = _render_table(spec, results, reason)
    notes: Dict[str, object] = dict(stamp)
    if reason is not None:
        notes["analytic_bypass"] = reason
    return StudyOutcome(text=text, result=results, notes=notes)
