"""Execution of generic (non-paper-exact) scenarios.

:func:`run_scenario_request` is the ``experiment="scenario"`` body of
:func:`repro.experiments.entry.run_request`.  It re-hydrates the
canonical spec (and embedded trace) from the request, expands the
study grid — sweep-axis value x system fraction x technique — into
:class:`~repro.experiments.parallel.CellTask`\\ s, and runs them
through :func:`~repro.experiments.parallel.run_cells`, so scenarios
inherit the executor's parallelism, caching, metrics, and the
engine's failure-horizon fast path unchanged.

Cache keys are rooted in the spec's SHA-256 (plus the per-cell axis
value, fraction, technique, and trial count), and every cache entry
and export carries the provenance stamp — scenario name, spec digest,
package version.

Non-Poisson regimes never receive analytic predictions: the
compile-time bypass reason (see
:func:`repro.scenarios.compiler.scenario_analytic_reason`) is rendered
into the artifact instead of a silently wrong number.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import repro
from repro.constants import (
    EXASCALE_NODES,
    SCALING_STUDY_BASELINE_S,
    SCALING_STUDY_FRACTIONS,
)
from repro.core.paired import simulate_with_trace
from repro.core.single_app import SingleAppConfig, run_trials
from repro.energy.model import PowerModel
from repro.grid.accountant import account_execution
from repro.grid.curves import (
    J_PER_KWH,
    UNIT_CARBON,
    UNIT_PRICE,
    Curve,
    FlatCurve,
    PiecewiseCurve,
    SinusoidalCurve,
    TraceCurve,
    curve_digest,
    curve_from_jsonl,
)
from repro.experiments.barchart import scaling_barchart
from repro.experiments.config import ScalingStudyConfig
from repro.experiments.entry import StudyOutcome, StudyRequest
from repro.experiments.parallel import (
    CellTask,
    ExecutorOptions,
    run_cells,
    technique_fingerprint,
)
from repro.experiments.reporting import _row, _rule, render_scaling_study
from repro.experiments.runner import (
    ScalingCell,
    ScalingStudyResult,
    _scaling_cell_body,
)
from repro.experiments.stats import SummaryStats
from repro.failures.burst import BurstModel
from repro.failures.generator import (
    InterarrivalModel,
    LognormalInterarrivals,
    WeibullInterarrivals,
)
from repro.failures.trace import FailureTrace, trace_digest, trace_from_jsonl
from repro.obs import counters as obs_counters
from repro.platform.presets import exascale_system
from repro.resilience.registry import get_technique, scaling_study_techniques
from repro.scenarios.compiler import scenario_analytic_reason
from repro.scenarios.schema import scenario_from_json
from repro.scenarios.spec import ScenarioSpec, spec_sha256, spec_to_dict
from repro.units import MINUTE, years
from repro.workload.synthetic import make_application


def scenario_provenance(spec: ScenarioSpec) -> Dict[str, str]:
    """The provenance stamp recorded on every scenario artifact."""
    return {
        "scenario": spec.scenario.name,
        "spec_sha256": spec_sha256(spec),
        "version": repro.__version__,
    }


def provenance_comment(stamp: Dict[str, str]) -> str:
    """The ``#``-comment form of a provenance stamp (CSV header line)."""
    return (
        f"# scenario={stamp['scenario']} "
        f"spec_sha256={stamp['spec_sha256']} "
        f"version={stamp['version']}"
    )


def _interarrival_for(
    spec: ScenarioSpec, axis: Optional[str], value: Optional[float]
) -> Optional[InterarrivalModel]:
    """The interarrival model of one grid point (None = Poisson)."""
    regime = spec.failures.regime
    if regime == "weibull":
        shape = value if axis == "shape" else spec.failures.shape
        return WeibullInterarrivals(shape=shape)
    if regime == "lognormal":
        sigma = value if axis == "sigma" else spec.failures.sigma
        return LognormalInterarrivals(sigma=sigma)
    return None


def _burst_for(
    spec: ScenarioSpec, axis: Optional[str], value: Optional[float]
) -> Optional[BurstModel]:
    """The burst model of one grid point (None = width-1 failures)."""
    mean = (
        value if axis == "burst_mean_width" else spec.failures.burst_mean_width
    )
    if mean is None or mean <= 1.0:
        return None
    max_width = (
        spec.failures.burst_max_width
        if spec.failures.burst_max_width is not None
        else 64
    )
    return BurstModel.with_mean_width(mean, max_width=max_width)


def _mtbf_years_for(
    spec: ScenarioSpec, axis: Optional[str], value: Optional[float]
) -> float:
    return value if axis == "mtbf_years" else spec.failures.mtbf_years


def _trace_cell_body(app, technique, system, trace, app_config):
    """One trace-replay cell: a single deterministic replay."""
    if not technique.fits(app, system):
        return True, ()
    stats = simulate_with_trace(app, technique, system, trace, app_config)
    return False, (stats.efficiency(),)


# ---------------------------------------------------------------------------
# Grid accounting (the [grid] section)
# ---------------------------------------------------------------------------

#: Document curve times are in hours; the engine clock is seconds.
_HOUR_S = 3600.0


@dataclass(frozen=True)
class GridContext:
    """A spec's ``[grid]`` block materialized for the runtime: actual
    :class:`~repro.grid.curves.Curve` objects (document hours converted
    to engine seconds), the power model, and the clock anchor."""

    objective: str
    power: PowerModel
    price: Optional[Curve]
    carbon: Optional[Curve]
    offset_s: float

    def fingerprint(self) -> Optional[str]:
        """Cache-key component for curve content the spec digest cannot
        see: trace curves name a *file* in the spec, so their replayed
        contents must be pinned by digest (None when no trace curves)."""
        parts = [
            f"{role}:{curve_digest(curve)}"
            for role, curve in (("price", self.price), ("carbon", self.carbon))
            if isinstance(curve, TraceCurve)
        ]
        return ";".join(parts) if parts else None


def _grid_curve(cspec, unit: str, traces: Optional[Dict[str, str]], role: str):
    """Build the runtime curve for one ``CurveSpec`` (or None)."""
    if cspec is None:
        return None
    if cspec.kind == "flat":
        return FlatCurve(cspec.level, unit=unit)
    period_h = cspec.period_hours if cspec.period_hours is not None else 24.0
    if cspec.kind == "piecewise":
        return PiecewiseCurve(
            [h * _HOUR_S for h in cspec.hours],
            cspec.levels,
            period_s=period_h * _HOUR_S,
            unit=unit,
        )
    if cspec.kind == "sinusoidal":
        return SinusoidalCurve(
            base=cspec.base,
            amplitude=cspec.amplitude,
            period_s=period_h * _HOUR_S,
            peak_s=(cspec.peak_hour or 0.0) * _HOUR_S,
            amplitude2=cspec.amplitude2 or 0.0,
            peak2_s=(cspec.peak2_hour or 0.0) * _HOUR_S,
            unit=unit,
        )
    # kind == "trace": the compiler embedded the file's canonical JSONL
    # so the request is self-contained on a service worker.
    if traces is None or role not in traces:
        raise ValueError(
            f"scenario grid.{role} replays a trace curve but no "
            f"embedded grid_traces entry was provided for it"
        )
    return curve_from_jsonl(traces[role], source=f"<grid_traces:{role}>")


def grid_context(
    spec: ScenarioSpec, grid_traces: Optional[str] = None
) -> GridContext:
    """Materialize *spec*'s ``[grid]`` block (which must be present).

    *grid_traces* is the compiler's embedded JSON object mapping curve
    role to canonical JSONL, required exactly when a curve has kind
    ``"trace"``.
    """
    import json

    grid = spec.grid
    if grid is None:
        raise ValueError("scenario has no [grid] section")
    traces = json.loads(grid_traces) if grid_traces is not None else None
    default = PowerModel()
    busy_w = grid.busy_w if grid.busy_w is not None else default.busy_w
    # An explicit busy_w below the default idle draw would otherwise
    # make the default idle_w invalid; scale it under the ceiling.
    idle_w = (
        grid.idle_w if grid.idle_w is not None else min(default.idle_w, busy_w)
    )
    return GridContext(
        objective=grid.objective,
        power=PowerModel(busy_w=busy_w, idle_w=idle_w),
        price=_grid_curve(grid.price, UNIT_PRICE, traces, "price"),
        carbon=_grid_curve(grid.carbon, UNIT_CARBON, traces, "carbon"),
        offset_s=grid.start_hour * _HOUR_S,
    )


@dataclass(frozen=True)
class GridCellAccount:
    """Aggregated grid accounting of one feasible cell: per-trial means
    and across-trial totals of dollars, grams CO2, and kilowatt-hours."""

    mean_usd: float
    mean_g: float
    mean_kwh: float
    total_usd: float
    total_g: float
    total_kwh: float


def _grid_cell_body(app, technique, system, trials, app_config, ctx, first_trial=0):
    """One grid-accounted scaling cell.

    Returns ``(infeasible, efficiencies, samples)`` where *samples*
    holds one ``(usd, gco2, kwh)`` triple per trial — plain data, so
    the payload caches and crosses worker processes like any other
    cell.  Accounting is a pure fold over each trial's final
    :class:`ExecutionStats`, so the efficiencies (and their bytes) are
    identical to the un-accounted cell body's.
    """
    if not technique.fits(app, system):
        return True, (), ()
    trial_set = run_trials(
        app,
        technique,
        system,
        trials,
        app_config,
        keep_stats=True,
        first_trial=first_trial,
    )
    samples = []
    for stats in trial_set.stats:
        cost = account_execution(
            stats,
            power=ctx.power,
            price=ctx.price,
            carbon=ctx.carbon,
            offset_s=ctx.offset_s,
        )
        samples.append((cost.total_usd, cost.total_g, cost.energy_kwh))
    return False, tuple(trial_set.efficiencies), tuple(samples)


def _account_from_samples(samples) -> GridCellAccount:
    usd = [s[0] for s in samples]
    g = [s[1] for s in samples]
    kwh = [s[2] for s in samples]
    n = len(samples)
    return GridCellAccount(
        mean_usd=sum(usd) / n,
        mean_g=sum(g) / n,
        mean_kwh=sum(kwh) / n,
        total_usd=sum(usd),
        total_g=sum(g),
        total_kwh=sum(kwh),
    )


def run_scenario(
    spec: ScenarioSpec,
    trials: int,
    quick: bool = False,
    trace: Optional[FailureTrace] = None,
    options: Optional[ExecutorOptions] = None,
    trial_offset: int = 0,
    grid_traces: Optional[str] = None,
    grid_out: Optional[
        Dict[Tuple[Optional[float], float, str], Optional[GridCellAccount]]
    ] = None,
) -> List[Tuple[Optional[float], ScalingStudyResult]]:
    """Execute *spec*'s grid; one study result per sweep-axis value
    (a single ``(None, result)`` entry without a sweep).

    Results are bit-identical for any ``options.jobs`` — every cell
    derives its randomness from the scenario seed and trial index, the
    same discipline as the figure drivers.  *trial_offset* shifts every
    cell's trial indices to ``[offset, offset + trials)`` so a batch is
    exactly that slice of an exhaustive run (the adaptive campaign
    controller's determinism contract); offset batches get their own
    cache keys.

    Specs with a ``[grid]`` section additionally price every trial
    against the grid curves; pass *grid_out* (an empty dict) to receive
    the per-cell :class:`GridCellAccount` keyed ``(axis_value,
    fraction, technique)`` (None for infeasible cells).  Grid cells use
    a distinct cache namespace, so an accounted and an un-accounted run
    of the same spec never exchange payloads.
    """
    workload = spec.workload
    if workload.study != "scaling":  # pragma: no cover - schema prevents it
        raise ValueError("the generic runtime only executes scaling studies")
    if spec.failures.regime == "trace" and trace is None:
        raise ValueError("trace-replay scenarios need the recorded trace")
    if trial_offset < 0:
        raise ValueError(f"trial_offset must be >= 0, got {trial_offset}")
    if trial_offset and spec.failures.regime == "trace":
        raise ValueError("trace replay is deterministic; trial_offset is meaningless")

    sha = spec_sha256(spec)
    system_nodes = (
        spec.platform.total_nodes
        if spec.platform.total_nodes is not None
        else EXASCALE_NODES
    )
    fractions = (
        workload.fractions
        if workload.fractions is not None
        else SCALING_STUDY_FRACTIONS
    )
    techniques = (
        [get_technique(name) for name in spec.techniques]
        if spec.techniques is not None
        else scaling_study_techniques()
    )
    eff_trials = min(trials, 10) if quick else trials
    if spec.failures.regime == "trace":
        eff_trials = 1
    axis = spec.sweep.axis if spec.sweep is not None else None
    axis_values: Tuple[Optional[float], ...] = (
        spec.sweep.values if spec.sweep is not None else (None,)
    )
    digest = trace_digest(trace) if trace is not None else None
    grid_ctx = grid_context(spec, grid_traces) if spec.grid is not None else None
    grid_fp = grid_ctx.fingerprint() if grid_ctx is not None else None

    system = exascale_system(system_nodes)
    options = options if options is not None else ExecutorOptions()
    options = replace(options, provenance=scenario_provenance(spec))

    tasks: List[CellTask] = []
    meta: List[Tuple[Optional[float], float, str]] = []
    for value in axis_values:
        mtbf_s = years(_mtbf_years_for(spec, axis, value))
        app_config = SingleAppConfig(
            node_mtbf_s=mtbf_s,
            severity_pmf=spec.failures.severity_pmf,
            seed=spec.run.seed,
            burst=_burst_for(spec, axis, value),
            interarrival=_interarrival_for(spec, axis, value),
        )
        for fraction in fractions:
            nodes = system.fraction_to_nodes(fraction)
            app = make_application(
                workload.app_type,
                nodes=nodes,
                time_steps=max(1, round(SCALING_STUDY_BASELINE_S / MINUTE)),
            )
            for technique in techniques:
                if trace is not None:
                    fn = (
                        lambda app=app, technique=technique, cfg=app_config: _trace_cell_body(
                            app, technique, system, trace, cfg
                        )
                    )
                elif grid_ctx is not None:
                    fn = (
                        lambda app=app, technique=technique, cfg=app_config: _grid_cell_body(
                            app,
                            technique,
                            system,
                            eff_trials,
                            cfg,
                            grid_ctx,
                            first_trial=trial_offset,
                        )
                    )
                else:
                    fn = (
                        lambda app=app, technique=technique, cfg=app_config: _scaling_cell_body(
                            app,
                            technique,
                            system,
                            eff_trials,
                            cfg,
                            first_trial=trial_offset,
                        )
                    )
                tasks.append(
                    CellTask(
                        fn=fn,
                        key_parts=(
                            # Grid cells get their own namespace: the
                            # payload shape differs, and trace-curve
                            # contents ride in via the fingerprint.
                            "scenario-grid" if grid_ctx is not None else "scenario",
                            sha,
                            grid_fp if grid_ctx is not None else digest,
                            value,
                            fraction,
                            technique_fingerprint(technique),
                            eff_trials,
                        )
                        + ((trial_offset,) if trial_offset else ()),
                        trials=eff_trials,
                        label=(
                            f"{spec.scenario.name}"
                            + (f" {axis}={value:g}" if value is not None else "")
                            + f" {100 * fraction:g}% {technique.name}"
                        ),
                    )
                )
                meta.append((value, fraction, technique.name))

    outcomes = run_cells(tasks, options)

    results: List[Tuple[Optional[float], ScalingStudyResult]] = []
    by_value: Dict[Optional[float], ScalingStudyResult] = {}
    for value in axis_values:
        cfg = ScalingStudyConfig(
            app_type=workload.app_type,
            node_mtbf_s=years(_mtbf_years_for(spec, axis, value)),
            fractions=tuple(fractions),
            trials=eff_trials,
            system_nodes=system_nodes,
            seed=spec.run.seed,
            severity_pmf=spec.failures.severity_pmf,
        )
        result = ScalingStudyResult(config=cfg)
        by_value[value] = result
        results.append((value, result))
    for (value, fraction, technique_name), outcome in zip(meta, outcomes):
        infeasible, efficiencies = outcome[0], outcome[1]
        by_value[value].cells.append(
            ScalingCell(
                fraction,
                technique_name,
                None if infeasible else SummaryStats.from_samples(efficiencies),
                infeasible,
            )
        )
        if grid_ctx is not None:
            samples = outcome[2]
            account = (
                _account_from_samples(samples)
                if not infeasible and samples
                else None
            )
            if account is not None:
                # Fleet-wide cumulative telemetry: counters are ints,
                # so dollars ride as micro-USD, grams as milligrams,
                # kilowatt-hours as joules.  Incremented here (not in
                # the cell body) so cache hits still count.
                obs_counters.increment(
                    "grid.cost_microusd", int(round(account.total_usd * 1e6))
                )
                obs_counters.increment(
                    "grid.carbon_mg", int(round(account.total_g * 1e3))
                )
                obs_counters.increment(
                    "grid.energy_j", int(round(account.total_kwh * J_PER_KWH))
                )
                obs_counters.increment("grid.cells_accounted")
            if grid_out is not None:
                grid_out[(value, fraction, technique_name)] = account
    return results


def _scenario_title(spec: ScenarioSpec) -> str:
    if spec.scenario.title:
        return f"Scenario {spec.scenario.name} — {spec.scenario.title}"
    return f"Scenario {spec.scenario.name}"


#: Per-cell grid accounts keyed (axis_value, fraction, technique).
GridAccounts = Dict[Tuple[Optional[float], float, str], Optional[GridCellAccount]]


def _objective_key(account: GridCellAccount, objective: str) -> float:
    return account.mean_g if objective == "carbon" else account.mean_usd


def grid_selection(
    value: Optional[float],
    result: ScalingStudyResult,
    grid: GridAccounts,
    objective: str,
) -> List[Dict[str, object]]:
    """Per-fraction winners of one study: the technique the paper's
    metric picks (highest mean efficiency) next to the one the grid
    objective picks (lowest mean $ or gCO2 per run; every run completes
    the same work, so per-run cost ranks cost per completed work).
    ``flip`` marks fractions where the two disagree — the scheduling
    decision the efficiency-only view gets wrong.  Ties keep the
    first-listed technique, matching ``ScalingStudyResult.best_technique``.
    """
    rows: List[Dict[str, object]] = []
    for fraction in result.config.fractions:
        feasible = [
            c
            for c in result.cells
            if c.fraction == fraction and not c.infeasible
        ]
        if not feasible:
            rows.append(
                {
                    "fraction": fraction,
                    "best_efficiency": None,
                    "best_objective": None,
                    "flip": False,
                }
            )
            continue
        best_eff = max(feasible, key=lambda c: c.mean_efficiency).technique
        if objective == "efficiency":
            best_obj = best_eff
        else:
            best, best_key = None, None
            for c in feasible:
                account = grid.get((value, c.fraction, c.technique))
                if account is None:
                    continue
                key = _objective_key(account, objective)
                if best_key is None or key < best_key:
                    best, best_key = c.technique, key
            best_obj = best if best is not None else best_eff
        rows.append(
            {
                "fraction": fraction,
                "best_efficiency": best_eff,
                "best_objective": best_obj,
                "flip": best_obj != best_eff,
            }
        )
    return rows


def _curve_label(curve: Optional[Curve]) -> str:
    return f"{curve.kind} ({curve.unit})" if curve is not None else "---"


def _render_grid_block(
    value: Optional[float],
    result: ScalingStudyResult,
    grid: GridAccounts,
    ctx: GridContext,
) -> str:
    """The plain-text grid-accounting table appended to one study."""
    techniques = result.techniques()
    header = ["size%", "technique", "$/run", "gCO2/run", "kWh/run"]
    widths = [6, max(20, max(len(t) for t in techniques) + 2), 14, 14, 14]
    lines = [
        (
            f"Grid accounting — objective={ctx.objective}, "
            f"start_hour={ctx.offset_s / _HOUR_S:g}, "
            f"busy_w={ctx.power.busy_w:g}, idle_w={ctx.power.idle_w:g}"
        ),
        f"price: {_curve_label(ctx.price)}   carbon: {_curve_label(ctx.carbon)}",
        _row(header, widths),
        _rule(widths),
    ]
    for fraction in result.config.fractions:
        for name in techniques:
            account = grid.get((value, fraction, name))
            if account is None:
                row = [f"{100 * fraction:.0f}", name, "---", "---", "---"]
            else:
                row = [
                    f"{100 * fraction:.0f}",
                    name,
                    f"{account.mean_usd:,.2f}",
                    f"{account.mean_g:,.0f}",
                    f"{account.mean_kwh:,.1f}",
                ]
            lines.append(_row(row, widths))
    lines.append(_rule(widths))
    for sel in grid_selection(value, result, grid, ctx.objective):
        if sel["best_efficiency"] is None:
            continue
        line = (
            f"{100 * sel['fraction']:.0f}%: best by efficiency = "
            f"{sel['best_efficiency']}, best by {ctx.objective} = "
            f"{sel['best_objective']}"
        )
        if sel["flip"]:
            line += "  [flip]"
        lines.append(line)
    return "\n".join(lines)


def _render_table(
    spec: ScenarioSpec,
    results: List[Tuple[Optional[float], ScalingStudyResult]],
    reason: Optional[str],
    chart: bool = False,
    grid: Optional[GridAccounts] = None,
    grid_ctx: Optional[GridContext] = None,
) -> str:
    axis = spec.sweep.axis if spec.sweep is not None else None
    blocks: List[str] = []
    for value, result in results:
        title = _scenario_title(spec)
        if value is not None:
            title += f" [{axis} = {value:g}]"
        if chart:
            blocks.append(scaling_barchart(result, title=title))
        else:
            blocks.append(render_scaling_study(result, title))
        if grid is not None and grid_ctx is not None:
            blocks.append(_render_grid_block(value, result, grid, grid_ctx))
    text = "\n\n".join(blocks)
    if reason is not None:
        text += f"\n\nanalytic model bypassed: {reason}"
    return text


def _render_csv(
    spec: ScenarioSpec,
    results: List[Tuple[Optional[float], ScalingStudyResult]],
    stamp: Dict[str, str],
    grid: Optional[GridAccounts] = None,
) -> str:
    axis = spec.sweep.axis if spec.sweep is not None else ""
    header = (
        "axis,axis_value,app_type,fraction,technique,"
        "mean_efficiency,std_efficiency,trials,infeasible"
    )
    if grid is not None:
        # Appended only for grid scenarios, so every pre-grid export
        # stays byte-identical.
        header += ",mean_energy_kwh,mean_cost_usd,mean_carbon_g"
    lines = [provenance_comment(stamp), header]
    for value, result in results:
        for cell in result.cells:
            fields = [
                axis,
                f"{value:g}" if value is not None else "",
                result.config.app_type,
                repr(cell.fraction),
                cell.technique,
                repr(cell.mean_efficiency),
                repr(cell.stats.std if cell.stats else 0.0),
                str(cell.stats.n if cell.stats else 0),
                str(cell.infeasible),
            ]
            if grid is not None:
                account = grid.get((value, cell.fraction, cell.technique))
                fields.extend(
                    [
                        repr(account.mean_kwh if account else 0.0),
                        repr(account.mean_usd if account else 0.0),
                        repr(account.mean_g if account else 0.0),
                    ]
                )
            lines.append(",".join(fields))
    return "\n".join(lines) + "\n"


def _render_json(
    spec: ScenarioSpec,
    results: List[Tuple[Optional[float], ScalingStudyResult]],
    stamp: Dict[str, str],
    reason: Optional[str],
    grid: Optional[GridAccounts] = None,
    grid_ctx: Optional[GridContext] = None,
) -> str:
    import json

    axis = spec.sweep.axis if spec.sweep is not None else None

    def cell_doc(value, result, cell):
        doc = {
            "app_type": result.config.app_type,
            "fraction": cell.fraction,
            "technique": cell.technique,
            "mean_efficiency": cell.mean_efficiency,
            "std_efficiency": cell.stats.std if cell.stats else 0.0,
            "trials": cell.stats.n if cell.stats else 0,
            "infeasible": cell.infeasible,
        }
        if grid is not None:
            account = grid.get((value, cell.fraction, cell.technique))
            doc["mean_energy_kwh"] = account.mean_kwh if account else 0.0
            doc["mean_cost_usd"] = account.mean_usd if account else 0.0
            doc["mean_carbon_g"] = account.mean_g if account else 0.0
        return doc

    payload = {
        "provenance": stamp,
        "scenario": spec_to_dict(spec),
        "analytic_bypass": reason,
        "results": [
            {
                "axis": axis,
                "axis_value": value,
                "cells": [
                    cell_doc(value, result, cell) for cell in result.cells
                ],
            }
            for value, result in results
        ],
    }
    if grid is not None and grid_ctx is not None:
        accounts = [a for a in grid.values() if a is not None]
        payload["grid"] = {
            "objective": grid_ctx.objective,
            "start_hour": grid_ctx.offset_s / _HOUR_S,
            "power": {
                "busy_w": grid_ctx.power.busy_w,
                "idle_w": grid_ctx.power.idle_w,
            },
            "curves": {
                "price": grid_ctx.price.to_dict()
                if grid_ctx.price is not None
                else None,
                "carbon": grid_ctx.carbon.to_dict()
                if grid_ctx.carbon is not None
                else None,
            },
            "totals": {
                "cost_usd": sum(a.total_usd for a in accounts),
                "carbon_g": sum(a.total_g for a in accounts),
                "energy_kwh": sum(a.total_kwh for a in accounts),
                "cells_accounted": len(accounts),
            },
            "selection": [
                {
                    "axis_value": value,
                    **sel,
                }
                for value, result in results
                for sel in grid_selection(
                    value, result, grid, grid_ctx.objective
                )
            ],
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def run_scenario_request(
    request: StudyRequest,
    options: Optional[ExecutorOptions] = None,
) -> StudyOutcome:
    """Entry body for ``experiment="scenario"`` requests.

    The request is self-contained (canonical spec JSON plus any
    embedded trace), so this runs identically from the CLI and from a
    service worker — same seeds, same cache keys, same rendered bytes.
    """
    spec = scenario_from_json(request.scenario)
    trace = (
        trace_from_jsonl(request.trace, source="<request>")
        if request.trace is not None
        else None
    )
    reason = scenario_analytic_reason(spec)
    stamp = scenario_provenance(spec)
    grid: Optional[GridAccounts] = {} if spec.grid is not None else None
    grid_ctx = (
        grid_context(spec, request.grid_traces)
        if spec.grid is not None
        else None
    )
    results = run_scenario(
        spec,
        trials=request.trials,
        quick=request.quick,
        trace=trace,
        options=options,
        trial_offset=request.trial_offset,
        grid_traces=request.grid_traces,
        grid_out=grid,
    )
    if request.format == "csv":
        text = _render_csv(spec, results, stamp, grid=grid)
    elif request.format == "json":
        text = _render_json(
            spec, results, stamp, reason, grid=grid, grid_ctx=grid_ctx
        )
    elif request.format == "barchart":
        text = _render_table(
            spec, results, reason, chart=True, grid=grid, grid_ctx=grid_ctx
        )
    else:
        text = _render_table(
            spec, results, reason, grid=grid, grid_ctx=grid_ctx
        )
    notes: Dict[str, object] = dict(stamp)
    if reason is not None:
        notes["analytic_bypass"] = reason
    if spec.grid is not None:
        notes["grid_objective"] = spec.grid.objective
    return StudyOutcome(text=text, result=results, notes=notes)
