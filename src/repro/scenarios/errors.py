"""Scenario validation errors: one line, field-path qualified.

Every schema violation raises :class:`ScenarioError` carrying the
dotted path of the offending field (``failures.regime``) and a
human-readable reason; ``str(exc)`` is the single line the CLI prints
(exit 2, no traceback) and the HTTP API returns as a 400 body,
matching the service's error conventions.
"""

from __future__ import annotations

from typing import Optional


class ScenarioError(ValueError):
    """A structurally invalid scenario spec.

    Parameters
    ----------
    path:
        Dotted field path of the offending value (``""`` for document-
        level problems such as a non-table top level).
    message:
        Why the value is invalid, including what was expected.
    source:
        The file (or other origin) being parsed, prepended when known.
    """

    def __init__(
        self, path: str, message: str, source: Optional[str] = None
    ) -> None:
        self.path = path
        self.reason = message
        self.source = source
        where = f"field '{path}': " if path else ""
        prefix = f"{source}: " if source else ""
        super().__init__(f"{prefix}{where}{message}")

    def with_source(self, source: str) -> "ScenarioError":
        """The same error, annotated with its originating file."""
        if self.source is not None:
            return self
        return ScenarioError(self.path, self.reason, source=source)
