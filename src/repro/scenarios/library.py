"""The bundled scenario library.

The package ships a curated set of ``.toml`` scenarios under
``repro/scenarios/library/``: the five paper figures re-expressed as
scenario documents (each lowers to exactly the corresponding
``repro figN`` run) plus extension studies over the new failure-regime
axes (Weibull aging, lognormal heavy tails, burst storms, trace
replay, a heterogeneous-MTBF sweep).

:func:`resolve` is the single name-or-path entry used by the CLI and
the campaign API: a bare name (``fig1``, ``weibull-aging``) finds the
bundled file; anything with a path separator or an extension is a
user file.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List

from repro.scenarios.errors import ScenarioError
from repro.scenarios.schema import load_scenario
from repro.scenarios.spec import ScenarioSpec


def library_dir() -> Path:
    """Directory holding the bundled scenario files."""
    return Path(__file__).resolve().parent / "library"


def list_scenarios() -> List[str]:
    """Bundled scenario names, sorted (the stem of each ``.toml``)."""
    return sorted(p.stem for p in library_dir().glob("*.toml"))


def resolve(name_or_path: str) -> Path:
    """The scenario file behind a bundled name or an explicit path.

    Raises :class:`ScenarioError` when a bare name is not in the
    library (listing what is).
    """
    looks_like_path = (
        os.sep in name_or_path
        or "/" in name_or_path
        or name_or_path.endswith((".toml", ".json"))
    )
    if looks_like_path:
        return Path(name_or_path)
    candidate = library_dir() / f"{name_or_path}.toml"
    if not candidate.is_file():
        raise ScenarioError(
            "",
            f"unknown scenario {name_or_path!r} "
            f"(bundled: {', '.join(list_scenarios())}; "
            "or pass a .toml/.json file path)",
        )
    return candidate


def load_named(name_or_path: str) -> ScenarioSpec:
    """Resolve and parse in one step."""
    return load_scenario(resolve(name_or_path))
