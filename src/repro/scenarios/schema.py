"""Scenario schema: strict parsing of TOML/JSON scenario documents.

:func:`load_scenario` reads a file (TOML by default, JSON for
``.json``); :func:`parse_scenario` validates a plain mapping.  The
schema is *closed*: every unknown section or key is an error naming
the full field path, so a typo like ``[failurs]`` or
``burst_mean_witdh`` fails loudly instead of silently running the
default.  Cross-field rules (a Weibull ``shape`` under a Poisson
regime, a sweep over a trace replay, a datacenter study outside the
paper's failure environment) are enforced here too — the compiler and
runtime may assume a parsed spec is coherent.

Error style follows the service conventions: a single
:class:`~repro.scenarios.errors.ScenarioError` line, qualified with
the dotted field path and the accepted values.
"""

from __future__ import annotations

import json
import os
import re
import tomllib
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.scenarios.errors import ScenarioError
from repro.scenarios.spec import (
    CURVE_KINDS,
    DATACENTER_MODES,
    GRID_OBJECTIVES,
    REGIMES,
    STUDIES,
    SWEEP_AXES,
    AdaptiveSpec,
    CurveSpec,
    FailureSpec,
    GridSpec,
    PlatformSpec,
    RunSpec,
    ScenarioMeta,
    ScenarioSpec,
    SweepSpec,
    WorkloadSpec,
)

#: Output formats a scenario can request (mirrors the study entrypoint).
SCENARIO_FORMATS = ("table", "barchart", "csv", "json")

#: Platform presets a scenario can name.
PLATFORM_PRESETS = ("exascale",)

_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*")


class _Section:
    """A cursor over one table that tracks consumed keys.

    ``take`` pops one typed value; ``finish`` rejects whatever is
    left — the mechanism behind the closed-schema guarantee.
    """

    def __init__(self, mapping: Dict[str, Any], path: str) -> None:
        self._data = dict(mapping)
        self._path = path

    def _at(self, key: str) -> str:
        return f"{self._path}.{key}" if self._path else key

    def take(
        self,
        key: str,
        kind: str,
        default: Any = None,
        required: bool = False,
    ) -> Any:
        if key not in self._data:
            if required:
                raise ScenarioError(
                    self._at(key), f"missing required {kind} value"
                )
            return default
        value = self._data.pop(key)
        return _coerce(value, kind, self._at(key))

    def finish(self) -> None:
        if self._data:
            key = sorted(self._data)[0]
            raise ScenarioError(self._at(key), "unknown key")


def _coerce(value: Any, kind: str, path: str) -> Any:
    if kind == "str":
        if not isinstance(value, str):
            raise ScenarioError(path, f"expected a string, got {_describe(value)}")
        return value
    if kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioError(
                path, f"expected an integer, got {_describe(value)}"
            )
        return value
    if kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioError(path, f"expected a number, got {_describe(value)}")
        return float(value)
    if kind == "list[float]":
        if not isinstance(value, (list, tuple)):
            raise ScenarioError(
                path, f"expected an array of numbers, got {_describe(value)}"
            )
        out: List[float] = []
        for i, item in enumerate(value):
            if isinstance(item, bool) or not isinstance(item, (int, float)):
                raise ScenarioError(
                    f"{path}[{i}]", f"expected a number, got {_describe(item)}"
                )
            out.append(float(item))
        return out
    if kind == "list[str]":
        if not isinstance(value, (list, tuple)):
            raise ScenarioError(
                path, f"expected an array of strings, got {_describe(value)}"
            )
        for i, item in enumerate(value):
            if not isinstance(item, str):
                raise ScenarioError(
                    f"{path}[{i}]", f"expected a string, got {_describe(item)}"
                )
        return list(value)
    raise AssertionError(f"unknown kind {kind!r}")  # pragma: no cover


def _describe(value: Any) -> str:
    if isinstance(value, bool):
        return f"boolean {value}"
    if isinstance(value, (int, float)):
        return f"number {value!r}"
    if isinstance(value, str):
        return f"string {value!r}"
    if isinstance(value, (list, tuple)):
        return "an array"
    if isinstance(value, dict):
        return "a table"
    return type(value).__name__


def _table(data: Dict[str, Any], key: str, required: bool = False) -> Optional[Dict]:
    if key not in data:
        if required:
            raise ScenarioError(key, "missing required section")
        return None
    value = data[key]
    if not isinstance(value, dict):
        raise ScenarioError(key, f"expected a table, got {_describe(value)}")
    return value


def _choice(value: str, allowed: Tuple[str, ...], path: str, noun: str) -> str:
    if value not in allowed:
        raise ScenarioError(
            path,
            f"unknown {noun} {value!r} (choose from {', '.join(allowed)})",
        )
    return value


def _parse_meta(data: Dict[str, Any]) -> ScenarioMeta:
    section = _Section(data, "scenario")
    name = section.take("name", "str", required=True)
    if not _NAME_RE.fullmatch(name):
        raise ScenarioError(
            "scenario.name",
            f"invalid name {name!r} (letters, digits, '.', '_', '-';"
            " must start with a letter or digit)",
        )
    meta = ScenarioMeta(
        name=name,
        title=section.take("title", "str", default=""),
        description=section.take("description", "str", default=""),
    )
    section.finish()
    return meta


def _parse_platform(data: Optional[Dict[str, Any]]) -> PlatformSpec:
    if data is None:
        return PlatformSpec()
    section = _Section(data, "platform")
    preset = _choice(
        section.take("preset", "str", default="exascale"),
        PLATFORM_PRESETS,
        "platform.preset",
        "platform preset",
    )
    total_nodes = section.take("total_nodes", "int")
    if total_nodes is not None and total_nodes < 2:
        raise ScenarioError(
            "platform.total_nodes", f"must be >= 2, got {total_nodes}"
        )
    section.finish()
    return PlatformSpec(preset=preset, total_nodes=total_nodes)


def _parse_failures(data: Optional[Dict[str, Any]]) -> FailureSpec:
    if data is None:
        return FailureSpec()
    section = _Section(data, "failures")
    regime = _choice(
        section.take("regime", "str", default="poisson"),
        REGIMES,
        "failures.regime",
        "regime",
    )
    mtbf_years = section.take("mtbf_years", "float", default=10.0)
    if mtbf_years <= 0:
        raise ScenarioError(
            "failures.mtbf_years", f"must be > 0, got {mtbf_years:g}"
        )
    shape = section.take("shape", "float")
    if shape is not None:
        if regime != "weibull":
            raise ScenarioError(
                "failures.shape",
                f"only valid for regime 'weibull' (regime is {regime!r})",
            )
        if shape <= 0:
            raise ScenarioError("failures.shape", f"must be > 0, got {shape:g}")
    sigma = section.take("sigma", "float")
    if sigma is not None:
        if regime != "lognormal":
            raise ScenarioError(
                "failures.sigma",
                f"only valid for regime 'lognormal' (regime is {regime!r})",
            )
        if sigma <= 0:
            raise ScenarioError("failures.sigma", f"must be > 0, got {sigma:g}")
    burst_mean_width = section.take("burst_mean_width", "float")
    burst_max_width = section.take("burst_max_width", "int")
    if burst_mean_width is not None:
        if regime == "trace":
            raise ScenarioError(
                "failures.burst_mean_width",
                "burst storms cannot compose with trace replay "
                "(the trace already fixes every failure)",
            )
        if burst_mean_width < 1.0:
            raise ScenarioError(
                "failures.burst_mean_width",
                f"must be >= 1, got {burst_mean_width:g}",
            )
    if burst_max_width is not None:
        if burst_mean_width is None:
            raise ScenarioError(
                "failures.burst_max_width",
                "requires burst_mean_width to be set",
            )
        if burst_max_width < 1:
            raise ScenarioError(
                "failures.burst_max_width", f"must be >= 1, got {burst_max_width}"
            )
    trace_file = section.take("trace_file", "str")
    if regime == "trace" and trace_file is None:
        raise ScenarioError(
            "failures.trace_file", "required when regime is 'trace'"
        )
    if regime != "trace" and trace_file is not None:
        raise ScenarioError(
            "failures.trace_file",
            f"only valid for regime 'trace' (regime is {regime!r})",
        )
    pmf = section.take("severity_pmf", "list[float]")
    severity_pmf: Optional[Tuple[float, float, float]] = None
    if pmf is not None:
        if len(pmf) != 3:
            raise ScenarioError(
                "failures.severity_pmf",
                f"expected 3 probabilities, got {len(pmf)}",
            )
        if any(p < 0 for p in pmf) or abs(sum(pmf) - 1.0) > 1e-9:
            raise ScenarioError(
                "failures.severity_pmf",
                "probabilities must be >= 0 and sum to 1",
            )
        severity_pmf = (pmf[0], pmf[1], pmf[2])
    section.finish()
    return FailureSpec(
        regime=regime,
        mtbf_years=mtbf_years,
        shape=shape,
        sigma=sigma,
        burst_mean_width=burst_mean_width,
        burst_max_width=burst_max_width,
        trace_file=trace_file,
        severity_pmf=severity_pmf,
    )


def _parse_workload(data: Optional[Dict[str, Any]]) -> WorkloadSpec:
    if data is None:
        return WorkloadSpec()
    section = _Section(data, "workload")
    study = _choice(
        section.take("study", "str", default="scaling"),
        STUDIES,
        "workload.study",
        "study",
    )
    app_type = section.take("app_type", "str")
    fractions_raw = section.take("fractions", "list[float]")
    mode = section.take("mode", "str")
    patterns = section.take("patterns", "int")
    section.finish()

    if study == "scaling":
        if mode is not None:
            raise ScenarioError(
                "workload.mode", "only valid for study 'datacenter'"
            )
        if patterns is not None:
            raise ScenarioError(
                "workload.patterns", "only valid for study 'datacenter'"
            )
        from repro.workload.synthetic import APP_TYPES

        app_type = app_type if app_type is not None else "A32"
        if app_type not in APP_TYPES:
            raise ScenarioError(
                "workload.app_type",
                f"unknown application type {app_type!r} "
                f"(choose from {', '.join(sorted(APP_TYPES))})",
            )
        fractions: Optional[Tuple[float, ...]] = None
        if fractions_raw is not None:
            if not fractions_raw:
                raise ScenarioError(
                    "workload.fractions", "need at least one fraction"
                )
            for i, f in enumerate(fractions_raw):
                if not 0.0 < f <= 1.0:
                    raise ScenarioError(
                        f"workload.fractions[{i}]",
                        f"must be in (0, 1], got {f:g}",
                    )
            fractions = tuple(fractions_raw)
        return WorkloadSpec(study="scaling", app_type=app_type, fractions=fractions)

    # datacenter
    if app_type is not None:
        raise ScenarioError(
            "workload.app_type",
            "only valid for study 'scaling' (the datacenter study draws "
            "its own arrival mix)",
        )
    if fractions_raw is not None:
        raise ScenarioError(
            "workload.fractions", "only valid for study 'scaling'"
        )
    mode = _choice(
        mode if mode is not None else "techniques",
        DATACENTER_MODES,
        "workload.mode",
        "datacenter mode",
    )
    if patterns is not None and patterns < 1:
        raise ScenarioError("workload.patterns", f"must be >= 1, got {patterns}")
    return WorkloadSpec(study="datacenter", mode=mode, patterns=patterns)


def _parse_techniques(data: Optional[Dict[str, Any]]) -> Optional[Tuple[str, ...]]:
    if data is None:
        return None
    section = _Section(data, "techniques")
    names = section.take("names", "list[str]", required=True)
    section.finish()
    if not names:
        raise ScenarioError("techniques.names", "need at least one technique")
    from repro.resilience.registry import by_name

    known = by_name()
    for i, name in enumerate(names):
        if name not in known:
            raise ScenarioError(
                f"techniques.names[{i}]",
                f"unknown technique {name!r} "
                f"(choose from {', '.join(sorted(known))})",
            )
    if len(set(names)) != len(names):
        raise ScenarioError("techniques.names", "technique names must be unique")
    return tuple(names)


def _parse_sweep(data: Optional[Dict[str, Any]]) -> Optional[SweepSpec]:
    if data is None:
        return None
    section = _Section(data, "sweep")
    axis = _choice(
        section.take("axis", "str", required=True),
        SWEEP_AXES,
        "sweep.axis",
        "sweep axis",
    )
    values = section.take("values", "list[float]", required=True)
    section.finish()
    if not values:
        raise ScenarioError("sweep.values", "need at least one value")
    for i, v in enumerate(values):
        if axis == "burst_mean_width":
            if v < 1.0:
                raise ScenarioError(
                    f"sweep.values[{i}]",
                    f"must be >= 1 for axis 'burst_mean_width', got {v:g}",
                )
        elif v <= 0.0:
            raise ScenarioError(
                f"sweep.values[{i}]", f"must be > 0 for axis {axis!r}, got {v:g}"
            )
    if len(set(values)) != len(values):
        raise ScenarioError("sweep.values", "sweep values must be unique")
    return SweepSpec(axis=axis, values=tuple(values))


def _parse_run(data: Optional[Dict[str, Any]]) -> RunSpec:
    if data is None:
        return RunSpec()
    section = _Section(data, "run")
    trials = section.take("trials", "int")
    if trials is not None and trials < 1:
        raise ScenarioError("run.trials", f"must be >= 1, got {trials}")
    seed = section.take("seed", "int", default=2017)
    fmt = _choice(
        section.take("format", "str", default="table"),
        SCENARIO_FORMATS,
        "run.format",
        "format",
    )
    section.finish()
    return RunSpec(trials=trials, seed=seed, format=fmt)


def _parse_adaptive(data: Optional[Dict[str, Any]]) -> Optional[AdaptiveSpec]:
    if data is None:
        return None
    section = _Section(data, "adaptive")
    max_trials = section.take("max_trials", "int", default=200)
    if max_trials < 2:
        raise ScenarioError(
            "adaptive.max_trials", f"must be >= 2, got {max_trials}"
        )
    batch_size = section.take("batch_size", "int", default=25)
    if batch_size < 2:
        raise ScenarioError(
            "adaptive.batch_size", f"must be >= 2, got {batch_size}"
        )
    if batch_size > max_trials:
        raise ScenarioError(
            "adaptive.batch_size",
            f"must be <= max_trials ({max_trials}), got {batch_size}",
        )
    ci_rel_threshold = section.take("ci_rel_threshold", "float", default=0.02)
    if not 0.0 < ci_rel_threshold < 1.0:
        raise ScenarioError(
            "adaptive.ci_rel_threshold",
            f"must be in (0, 1), got {ci_rel_threshold:g}",
        )
    refine_depth = section.take("refine_depth", "int", default=1)
    if refine_depth < 0:
        raise ScenarioError(
            "adaptive.refine_depth", f"must be >= 0, got {refine_depth}"
        )
    section.finish()
    return AdaptiveSpec(
        max_trials=max_trials,
        batch_size=batch_size,
        ci_rel_threshold=ci_rel_threshold,
        refine_depth=refine_depth,
    )


def _parse_curve(data: Any, path: str) -> CurveSpec:
    """One ``[grid.price]`` / ``[grid.carbon]`` table.

    Validates every kind's parameters with the same rules the curve
    classes enforce, so a spec that parses always builds."""
    if not isinstance(data, dict):
        raise ScenarioError(path, f"expected a table, got {_describe(data)}")
    section = _Section(data, path)
    kind = _choice(
        section.take("kind", "str", required=True),
        CURVE_KINDS,
        f"{path}.kind",
        "curve kind",
    )
    level = section.take("level", "float")
    hours = section.take("hours", "list[float]")
    levels = section.take("levels", "list[float]")
    period_hours = section.take("period_hours", "float")
    base = section.take("base", "float")
    amplitude = section.take("amplitude", "float")
    peak_hour = section.take("peak_hour", "float")
    amplitude2 = section.take("amplitude2", "float")
    peak2_hour = section.take("peak2_hour", "float")
    trace_file = section.take("trace_file", "str")
    section.finish()

    by_kind = {
        "flat": ("level",),
        "piecewise": ("hours", "levels", "period_hours"),
        "sinusoidal": (
            "base",
            "amplitude",
            "peak_hour",
            "amplitude2",
            "peak2_hour",
            "period_hours",
        ),
        "trace": ("trace_file",),
    }
    present = {
        "level": level,
        "hours": hours,
        "levels": levels,
        "period_hours": period_hours,
        "base": base,
        "amplitude": amplitude,
        "peak_hour": peak_hour,
        "amplitude2": amplitude2,
        "peak2_hour": peak2_hour,
        "trace_file": trace_file,
    }
    for key, value in present.items():
        if value is not None and key not in by_kind[kind]:
            raise ScenarioError(
                f"{path}.{key}", f"not valid for curve kind {kind!r}"
            )

    if kind == "flat":
        if level is None:
            raise ScenarioError(
                f"{path}.level", "required for curve kind 'flat'"
            )
        if level < 0:
            raise ScenarioError(f"{path}.level", f"must be >= 0, got {level:g}")
        return CurveSpec(kind="flat", level=level)

    if kind == "piecewise":
        if hours is None:
            raise ScenarioError(
                f"{path}.hours", "required for curve kind 'piecewise'"
            )
        if levels is None:
            raise ScenarioError(
                f"{path}.levels", "required for curve kind 'piecewise'"
            )
        if not hours:
            raise ScenarioError(f"{path}.hours", "need at least one segment")
        if len(hours) != len(levels):
            raise ScenarioError(
                f"{path}.levels",
                f"must pair up with hours "
                f"({len(hours)} hours, {len(levels)} levels)",
            )
        if hours[0] != 0.0:
            raise ScenarioError(
                f"{path}.hours", f"the first segment must start at 0, got {hours[0]:g}"
            )
        for i, (a, b) in enumerate(zip(hours, hours[1:]), start=1):
            if b <= a:
                raise ScenarioError(
                    f"{path}.hours[{i}]",
                    f"segment starts must be strictly increasing, "
                    f"got {a:g} then {b:g}",
                )
        for i, v in enumerate(levels):
            if v < 0:
                raise ScenarioError(
                    f"{path}.levels[{i}]", f"must be >= 0, got {v:g}"
                )
        period = period_hours if period_hours is not None else 24.0
        if period <= 0:
            raise ScenarioError(
                f"{path}.period_hours", f"must be > 0, got {period:g}"
            )
        if hours[-1] >= period:
            raise ScenarioError(
                f"{path}.hours[{len(hours) - 1}]",
                f"segment starts must fall inside the period, "
                f"got {hours[-1]:g} >= {period:g}",
            )
        return CurveSpec(
            kind="piecewise",
            hours=tuple(hours),
            levels=tuple(levels),
            period_hours=period,
        )

    if kind == "sinusoidal":
        if base is None:
            raise ScenarioError(
                f"{path}.base", "required for curve kind 'sinusoidal'"
            )
        if amplitude is None:
            raise ScenarioError(
                f"{path}.amplitude", "required for curve kind 'sinusoidal'"
            )
        if amplitude < 0:
            raise ScenarioError(
                f"{path}.amplitude", f"must be >= 0, got {amplitude:g}"
            )
        amp2 = amplitude2 if amplitude2 is not None else 0.0
        if amp2 < 0:
            raise ScenarioError(
                f"{path}.amplitude2", f"must be >= 0, got {amp2:g}"
            )
        if base < amplitude + amp2:
            raise ScenarioError(
                f"{path}.base",
                f"must be >= amplitude + amplitude2 so the curve stays "
                f"nonnegative, got {base:g} < {amplitude + amp2:g}",
            )
        period = period_hours if period_hours is not None else 24.0
        if period <= 0:
            raise ScenarioError(
                f"{path}.period_hours", f"must be > 0, got {period:g}"
            )
        return CurveSpec(
            kind="sinusoidal",
            base=base,
            amplitude=amplitude,
            peak_hour=peak_hour if peak_hour is not None else 0.0,
            amplitude2=amp2,
            peak2_hour=peak2_hour if peak2_hour is not None else 0.0,
            period_hours=period,
        )

    # trace
    if trace_file is None:
        raise ScenarioError(
            f"{path}.trace_file", "required for curve kind 'trace'"
        )
    return CurveSpec(kind="trace", trace_file=trace_file)


def _parse_grid(data: Optional[Dict[str, Any]]) -> Optional[GridSpec]:
    if data is None:
        return None
    section = _Section(data, "grid")
    objective = _choice(
        section.take("objective", "str", default="efficiency"),
        GRID_OBJECTIVES,
        "grid.objective",
        "objective",
    )
    start_hour = section.take("start_hour", "float", default=0.0)
    if not 0.0 <= start_hour < 24.0:
        raise ScenarioError(
            "grid.start_hour", f"must be in [0, 24), got {start_hour:g}"
        )
    busy_w = section.take("busy_w", "float")
    if busy_w is not None and busy_w <= 0:
        raise ScenarioError("grid.busy_w", f"must be > 0, got {busy_w:g}")
    idle_w = section.take("idle_w", "float")
    if idle_w is not None:
        if idle_w < 0:
            raise ScenarioError("grid.idle_w", f"must be >= 0, got {idle_w:g}")
        ceiling = busy_w if busy_w is not None else 350.0
        if idle_w > ceiling:
            raise ScenarioError(
                "grid.idle_w",
                f"must be <= busy_w ({ceiling:g}), got {idle_w:g}",
            )
    # The nested curve tables come off the same cursor so finish()
    # still rejects unknown [grid] keys.
    raw_price = section._data.pop("price", None)
    raw_carbon = section._data.pop("carbon", None)
    section.finish()
    price = _parse_curve(raw_price, "grid.price") if raw_price is not None else None
    carbon = (
        _parse_curve(raw_carbon, "grid.carbon") if raw_carbon is not None else None
    )
    if price is None and carbon is None:
        raise ScenarioError(
            "grid", "need at least one curve table ([grid.price] or [grid.carbon])"
        )
    if objective == "cost" and price is None:
        raise ScenarioError(
            "grid.objective", "objective 'cost' requires a [grid.price] curve"
        )
    if objective == "carbon" and carbon is None:
        raise ScenarioError(
            "grid.objective",
            "objective 'carbon' requires a [grid.carbon] curve",
        )
    return GridSpec(
        objective=objective,
        start_hour=start_hour,
        busy_w=busy_w,
        idle_w=idle_w,
        price=price,
        carbon=carbon,
    )


def _cross_validate(spec: ScenarioSpec) -> None:
    """Rules spanning sections; assumes per-section parsing passed."""
    failures, workload, sweep = spec.failures, spec.workload, spec.sweep

    if workload.study == "datacenter":
        # The datacenter injector redraws gaps on every rate change,
        # which is only valid for memoryless (exponential) gaps, and
        # the Fig. 4-5 drivers fix the paper's environment; anything
        # else must be expressed as a scaling study.
        if failures.regime != "poisson":
            raise ScenarioError(
                "failures.regime",
                f"regime {failures.regime!r} is not supported by the "
                "datacenter study: its failure injector redraws "
                "interarrivals on allocation changes, which requires the "
                "memoryless (poisson) regime",
            )
        if failures.burst_mean_width is not None:
            raise ScenarioError(
                "failures.burst_mean_width",
                "burst storms are not supported by the datacenter study",
            )
        if failures.mtbf_years != 10.0:
            raise ScenarioError(
                "failures.mtbf_years",
                "the datacenter study runs the paper's environment "
                "(mtbf_years = 10); vary MTBF with a scaling study",
            )
        if failures.severity_pmf is not None:
            raise ScenarioError(
                "failures.severity_pmf",
                "custom severity PMFs are not supported by the "
                "datacenter study",
            )
        if spec.techniques is not None:
            raise ScenarioError(
                "techniques.names",
                "the datacenter study fixes its technique line-up "
                "(choose workload.mode instead)",
            )
        if sweep is not None:
            raise ScenarioError(
                "sweep.axis", "sweeps are only supported for scaling studies"
            )
        if spec.run.trials is not None:
            raise ScenarioError(
                "run.trials",
                "the datacenter study repeats over arrival patterns; "
                "set workload.patterns instead",
            )
        if spec.run.seed != 2017:
            raise ScenarioError(
                "run.seed",
                "the datacenter study runs the paper's seed (2017)",
            )

    if failures.regime == "weibull" and failures.shape is None:
        if sweep is None or sweep.axis != "shape":
            raise ScenarioError(
                "failures.shape",
                "required for regime 'weibull' (or sweep over axis 'shape')",
            )
    if failures.regime == "lognormal" and failures.sigma is None:
        if sweep is None or sweep.axis != "sigma":
            raise ScenarioError(
                "failures.sigma",
                "required for regime 'lognormal' (or sweep over axis 'sigma')",
            )

    if failures.regime == "trace":
        trials = spec.run.trials
        if trials is not None and trials != 1:
            raise ScenarioError(
                "run.trials",
                f"trace replay is a single recorded realization; trials "
                f"must be 1, got {trials}",
            )
        if sweep is not None:
            raise ScenarioError(
                "sweep.axis", "sweeps cannot compose with trace replay"
            )
        if spec.adaptive is not None:
            raise ScenarioError(
                "adaptive.max_trials",
                "adaptive campaigns cannot compose with trace replay "
                "(replay forces trials = 1; there is nothing to adapt)",
            )

    if spec.adaptive is not None and workload.study == "datacenter":
        raise ScenarioError(
            "adaptive.max_trials",
            "adaptive campaigns are only supported for scaling studies",
        )

    if spec.grid is not None:
        if workload.study != "scaling":
            raise ScenarioError(
                "grid.objective",
                "grid accounting is only supported for scaling studies",
            )
        if failures.regime == "trace":
            raise ScenarioError(
                "grid.objective",
                "grid accounting cannot compose with failure-trace replay "
                "(a single recorded realization has no technique ensemble "
                "to rank; use a sampled regime)",
            )

    if sweep is not None:
        if sweep.axis == "shape" and failures.regime != "weibull":
            raise ScenarioError(
                "sweep.axis",
                f"axis 'shape' requires regime 'weibull' "
                f"(regime is {failures.regime!r})",
            )
        if sweep.axis == "sigma" and failures.regime != "lognormal":
            raise ScenarioError(
                "sweep.axis",
                f"axis 'sigma' requires regime 'lognormal' "
                f"(regime is {failures.regime!r})",
            )
        fixed = {
            "shape": failures.shape,
            "sigma": failures.sigma,
            "burst_mean_width": failures.burst_mean_width,
        }.get(sweep.axis)
        if fixed is not None:
            raise ScenarioError(
                "sweep.axis",
                f"axis {sweep.axis!r} is already fixed in [failures]; "
                "remove one",
            )
        if sweep.axis == "mtbf_years" and failures.mtbf_years != 10.0:
            raise ScenarioError(
                "sweep.axis",
                "axis 'mtbf_years' is already fixed in [failures]; "
                "remove one",
            )


def parse_scenario(
    data: Any,
    source: Optional[str] = None,
    base_dir: Optional[str] = None,
) -> ScenarioSpec:
    """Validate a plain mapping into a :class:`ScenarioSpec`.

    Raises :class:`ScenarioError` (one line, field-path qualified,
    prefixed with *source* when given) on any schema violation.
    """
    try:
        if not isinstance(data, dict):
            raise ScenarioError(
                "", f"scenario document must be a table, got {_describe(data)}"
            )
        known = {
            "scenario",
            "platform",
            "failures",
            "workload",
            "techniques",
            "sweep",
            "run",
            "adaptive",
            "grid",
        }
        for key in sorted(data):
            if key not in known:
                raise ScenarioError(key, "unknown section")
        spec = ScenarioSpec(
            scenario=_parse_meta(_table(data, "scenario", required=True)),
            platform=_parse_platform(_table(data, "platform")),
            failures=_parse_failures(_table(data, "failures")),
            workload=_parse_workload(_table(data, "workload")),
            techniques=_parse_techniques(_table(data, "techniques")),
            sweep=_parse_sweep(_table(data, "sweep")),
            run=_parse_run(_table(data, "run")),
            adaptive=_parse_adaptive(_table(data, "adaptive")),
            grid=_parse_grid(_table(data, "grid")),
            base_dir=base_dir,
        )
        _cross_validate(spec)
        return spec
    except ScenarioError as exc:
        raise exc.with_source(source) from None


def scenario_from_json(text: str, source: Optional[str] = None) -> ScenarioSpec:
    """Parse a scenario from its canonical JSON text (the embedded form
    carried by ``StudyRequest.scenario``)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError("", f"invalid JSON: {exc}", source=source) from None
    return parse_scenario(data, source=source)


def load_scenario(path: Union[str, "os.PathLike"]) -> ScenarioSpec:
    """Read and validate one scenario file.

    ``.json`` files parse as JSON; everything else as TOML.  All
    failures — unreadable file, syntax error, schema violation — raise
    :class:`ScenarioError` with the file name in the message.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise ScenarioError(
            "", f"cannot read scenario file: {exc}", source=path
        ) from None
    if path.endswith(".json"):
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ScenarioError(
                "", f"invalid JSON: {exc}", source=path
            ) from None
    else:
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise ScenarioError(
                "", f"invalid TOML: {exc}", source=path
            ) from None
    return parse_scenario(
        data, source=os.path.basename(path), base_dir=os.path.dirname(path) or "."
    )
