"""The validated scenario document, as frozen dataclasses.

A :class:`ScenarioSpec` is the in-memory form of one scenario file:
what platform to simulate, under which failure regime, running which
workload with which techniques, swept over which axis, at which trial
count and seed.  Instances are produced by
:func:`repro.scenarios.schema.parse_scenario` (which enforces the
schema) and consumed by :func:`repro.scenarios.compiler.compile_scenario`.

Identity is textual: :func:`canonical_json` renders a spec to one
deterministic compact JSON document (sorted keys, no ambient state),
and :func:`spec_sha256` hashes it.  That digest is the scenario's
fingerprint everywhere — result-cache keys, provenance stamps on
exports, campaign responses — so two specs compare equal exactly when
their canonical JSON bytes do.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Failure-interarrival regimes a scenario can select.
REGIMES = ("poisson", "weibull", "lognormal", "trace")

#: Workload studies a scenario can run.
STUDIES = ("scaling", "datacenter")

#: Datacenter modes: fixed-technique columns (Fig. 4) or the adaptive
#: selection study (Fig. 5).
DATACENTER_MODES = ("techniques", "selection")

#: Sweepable failure-axis names.
SWEEP_AXES = ("mtbf_years", "shape", "sigma", "burst_mean_width")

#: Objectives a ``[grid]`` block can rank techniques by.
GRID_OBJECTIVES = ("efficiency", "cost", "carbon")

#: Curve kinds a ``[grid.price]`` / ``[grid.carbon]`` table can select.
CURVE_KINDS = ("flat", "piecewise", "sinusoidal", "trace")


@dataclass(frozen=True)
class ScenarioMeta:
    """The ``[scenario]`` section: naming and intent."""

    name: str
    title: str = ""
    description: str = ""


@dataclass(frozen=True)
class PlatformSpec:
    """The ``[platform]`` section.

    ``preset`` names a platform builder (only ``"exascale"`` today);
    ``total_nodes`` overrides the preset's machine size.
    """

    preset: str = "exascale"
    total_nodes: Optional[int] = None


@dataclass(frozen=True)
class FailureSpec:
    """The ``[failures]`` section: the failure environment.

    ``regime`` picks the interarrival model; ``shape`` (Weibull) and
    ``sigma`` (lognormal) are that regime's parameter.  ``trace_file``
    (regime ``"trace"``) replays a recorded realization instead of
    sampling; it is resolved relative to the spec file.  Burst storms
    (``burst_mean_width`` > 1) compose with any sampled regime.
    """

    regime: str = "poisson"
    mtbf_years: float = 10.0
    shape: Optional[float] = None
    sigma: Optional[float] = None
    burst_mean_width: Optional[float] = None
    burst_max_width: Optional[int] = None
    trace_file: Optional[str] = None
    severity_pmf: Optional[Tuple[float, float, float]] = None


@dataclass(frozen=True)
class WorkloadSpec:
    """The ``[workload]`` section: what runs on the machine."""

    study: str = "scaling"
    app_type: str = "A32"
    fractions: Optional[Tuple[float, ...]] = None
    mode: str = "techniques"
    patterns: Optional[int] = None


@dataclass(frozen=True)
class SweepSpec:
    """The ``[sweep]`` section: one failure axis crossed with the grid."""

    axis: str
    values: Tuple[float, ...]


@dataclass(frozen=True)
class RunSpec:
    """The ``[run]`` section: statistical effort and rendering."""

    trials: Optional[int] = None
    seed: int = 2017
    format: str = "table"


@dataclass(frozen=True)
class AdaptiveSpec:
    """The ``[adaptive]`` section: campaign-controller knobs.

    ``max_trials`` caps each cell's trial budget, submitted in
    ``batch_size`` waves; a cell stops early once its 95% CI half-width
    falls below ``ci_rel_threshold`` of the mean, and up to
    ``refine_depth`` rounds of bisection probe technique-crossover
    boundaries between adjacent fractions.  Meaningful only when the
    campaign is submitted adaptively (``repro scenario submit
    --adaptive`` / the ``adaptive`` key of ``POST /v1/campaigns``).
    """

    max_trials: int = 200
    batch_size: int = 25
    ci_rel_threshold: float = 0.02
    refine_depth: int = 1


@dataclass(frozen=True)
class CurveSpec:
    """One curve table (``[grid.price]`` / ``[grid.carbon]``).

    ``kind`` selects the model; the other fields are that kind's
    parameters (times in **hours** in the document, converted to
    seconds when the runtime builds the actual
    :class:`repro.grid.curves.Curve`).  ``trace_file`` (kind
    ``"trace"``) replays a recorded curve, resolved relative to the
    spec file like ``failures.trace_file``.
    """

    kind: str
    level: Optional[float] = None
    hours: Optional[Tuple[float, ...]] = None
    levels: Optional[Tuple[float, ...]] = None
    period_hours: Optional[float] = None
    base: Optional[float] = None
    amplitude: Optional[float] = None
    peak_hour: Optional[float] = None
    amplitude2: Optional[float] = None
    peak2_hour: Optional[float] = None
    trace_file: Optional[str] = None


@dataclass(frozen=True)
class GridSpec:
    """The ``[grid]`` section: curves, objective, and anchoring.

    ``objective`` picks what the grid report ranks techniques by
    (``cost`` needs a price curve, ``carbon`` a carbon curve;
    ``efficiency`` reports costs but ranks by the paper's metric).
    ``start_hour`` anchors simulation time 0 on the curves' daily
    clock; ``busy_w``/``idle_w`` override the default power model.
    """

    objective: str = "efficiency"
    start_hour: float = 0.0
    busy_w: Optional[float] = None
    idle_w: Optional[float] = None
    price: Optional[CurveSpec] = None
    carbon: Optional[CurveSpec] = None


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully parsed scenario document."""

    scenario: ScenarioMeta
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    failures: FailureSpec = field(default_factory=FailureSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    techniques: Optional[Tuple[str, ...]] = None
    sweep: Optional[SweepSpec] = None
    run: RunSpec = field(default_factory=RunSpec)
    adaptive: Optional[AdaptiveSpec] = None
    grid: Optional[GridSpec] = None
    #: Directory of the source file, for resolving ``trace_file``;
    #: *not* part of the canonical form (two copies of one spec in
    #: different directories are the same scenario).
    base_dir: Optional[str] = None


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """The canonical plain-dict form of *spec*.

    Only semantically meaningful fields appear — ``base_dir`` and
    unset optionals are dropped — so the dict (and everything derived
    from it) is a pure function of the scenario's meaning.
    """

    def prune(mapping: Dict[str, Any]) -> Dict[str, Any]:
        return {k: v for k, v in mapping.items() if v is not None}

    doc: Dict[str, Any] = {
        "scenario": prune(
            {
                "name": spec.scenario.name,
                "title": spec.scenario.title or None,
                "description": spec.scenario.description or None,
            }
        ),
        "platform": prune(
            {
                "preset": spec.platform.preset,
                "total_nodes": spec.platform.total_nodes,
            }
        ),
        "failures": prune(
            {
                "regime": spec.failures.regime,
                "mtbf_years": spec.failures.mtbf_years,
                "shape": spec.failures.shape,
                "sigma": spec.failures.sigma,
                "burst_mean_width": spec.failures.burst_mean_width,
                "burst_max_width": spec.failures.burst_max_width,
                "trace_file": spec.failures.trace_file,
                "severity_pmf": list(spec.failures.severity_pmf)
                if spec.failures.severity_pmf is not None
                else None,
            }
        ),
        "workload": prune(
            {
                "study": spec.workload.study,
                "app_type": spec.workload.app_type
                if spec.workload.study == "scaling"
                else None,
                "fractions": list(spec.workload.fractions)
                if spec.workload.fractions is not None
                else None,
                "mode": spec.workload.mode
                if spec.workload.study == "datacenter"
                else None,
                "patterns": spec.workload.patterns,
            }
        ),
        "run": prune(
            {
                "trials": spec.run.trials,
                "seed": spec.run.seed,
                "format": spec.run.format,
            }
        ),
    }
    if spec.techniques is not None:
        doc["techniques"] = {"names": list(spec.techniques)}
    if spec.sweep is not None:
        doc["sweep"] = {
            "axis": spec.sweep.axis,
            "values": list(spec.sweep.values),
        }
    if spec.adaptive is not None:
        doc["adaptive"] = {
            "max_trials": spec.adaptive.max_trials,
            "batch_size": spec.adaptive.batch_size,
            "ci_rel_threshold": spec.adaptive.ci_rel_threshold,
            "refine_depth": spec.adaptive.refine_depth,
        }
    if spec.grid is not None:
        # Emitted only when the section is present, so the canonical
        # JSON (and spec_sha256) of every pre-grid scenario is unchanged.
        def curve_doc(curve: Optional[CurveSpec]) -> Optional[Dict[str, Any]]:
            if curve is None:
                return None
            return prune(
                {
                    "kind": curve.kind,
                    "level": curve.level,
                    "hours": list(curve.hours)
                    if curve.hours is not None
                    else None,
                    "levels": list(curve.levels)
                    if curve.levels is not None
                    else None,
                    "period_hours": curve.period_hours,
                    "base": curve.base,
                    "amplitude": curve.amplitude,
                    "peak_hour": curve.peak_hour,
                    "amplitude2": curve.amplitude2,
                    "peak2_hour": curve.peak2_hour,
                    "trace_file": curve.trace_file,
                }
            )

        doc["grid"] = prune(
            {
                "objective": spec.grid.objective,
                "start_hour": spec.grid.start_hour,
                "busy_w": spec.grid.busy_w,
                "idle_w": spec.grid.idle_w,
                "price": curve_doc(spec.grid.price),
                "carbon": curve_doc(spec.grid.carbon),
            }
        )
    return doc


def canonical_json(spec: ScenarioSpec) -> str:
    """Deterministic compact JSON text of *spec* (sorted keys)."""
    return json.dumps(
        spec_to_dict(spec), sort_keys=True, separators=(",", ":")
    )


def spec_sha256(spec: ScenarioSpec) -> str:
    """SHA-256 of :func:`canonical_json` — the scenario's identity for
    cache keys, provenance stamps, and campaign responses."""
    return hashlib.sha256(canonical_json(spec).encode("utf-8")).hexdigest()
