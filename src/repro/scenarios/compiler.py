"""Scenario -> study-request lowering.

:func:`compile_scenario` turns one validated :class:`ScenarioSpec`
into a :class:`CompiledCampaign`: a list of
:class:`~repro.experiments.entry.StudyRequest` units plus notes about
the lowering.  Two paths exist:

- **Paper-exact lowering.**  A scenario whose parameters coincide with
  one of the five paper figures compiles to that figure's plain
  request (``StudyRequest("fig1", ...)``), so running the scenario
  goes through *exactly* the figure code path — the rendered artifact
  is byte-identical to ``repro fig1`` at the same trials/format, which
  the parity test enforces.
- **Generic lowering.**  Anything else (custom MTBF or fractions,
  Weibull/lognormal/burst/trace regimes, sweeps) compiles to one
  self-contained ``experiment="scenario"`` request embedding the
  canonical spec JSON (and, for trace replay, the trace JSONL), which
  :mod:`repro.scenarios.runtime` executes through the cell executor.

Compilation also resolves and validates the trace file for trace
scenarios and names the analytic-model bypass reason for non-Poisson
regimes, so ``repro scenario validate`` catches everything before any
simulation runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.constants import SCALING_STUDY_FRACTIONS, SCALING_STUDY_TRIALS
from repro.experiments.entry import StudyRequest
from repro.failures.trace import TraceFormatError, load_trace, trace_to_jsonl
from repro.scenarios.errors import ScenarioError
from repro.scenarios.spec import (
    ScenarioSpec,
    SweepSpec,
    canonical_json,
    spec_sha256,
)

#: (app_type, mtbf_years) pairs that are one of the paper's scaling
#: figures when every other knob is at its paper default.
_PAPER_SCALING_FIGS = {
    ("A32", 10.0): "fig1",
    ("D64", 10.0): "fig2",
    ("D64", 2.5): "fig3",
}

#: Datacenter modes -> their paper figure.
_PAPER_DATACENTER_FIGS = {"techniques": "fig4", "selection": "fig5"}


@dataclass(frozen=True)
class CampaignUnit:
    """One runnable study of a campaign."""

    label: str
    request: StudyRequest


@dataclass(frozen=True)
class CompiledCampaign:
    """The executable form of one scenario."""

    spec: ScenarioSpec
    sha256: str
    units: Tuple[CampaignUnit, ...]
    #: Human-readable lowering facts: which figure a unit lowered to,
    #: why the analytic model is bypassed, etc.
    notes: Tuple[str, ...]
    #: The analytic-model bypass reason (None when the paper's Poisson
    #: assumptions hold and analytic prediction stays valid).
    analytic_bypass: Optional[str] = None


def scenario_analytic_reason(spec: ScenarioSpec) -> Optional[str]:
    """Why the first-order analytic model cannot predict *spec*
    (None when it can).  Mirrors
    :func:`repro.analysis.validation.analytic_inapplicability` at the
    scenario level, before any simulation objects exist."""
    failures = spec.failures
    if failures.regime == "trace":
        return (
            "trace replay drives the simulation with one recorded failure "
            "realization, not a Poisson ensemble; only simulation-backed "
            "estimates are meaningful"
        )
    if failures.regime in ("weibull", "lognormal"):
        return (
            f"{failures.regime} failure interarrivals are not exponential, "
            "so the renewal-reward model's memorylessness assumption "
            "fails; falling back to simulation-backed prediction"
        )
    if failures.burst_mean_width is not None and failures.burst_mean_width > 1.0:
        return (
            "burst failures violate the independent single-node failure "
            "assumption of the analytic model; falling back to "
            "simulation-backed prediction"
        )
    if spec.sweep is not None and spec.sweep.axis == "burst_mean_width":
        return (
            "burst failures violate the independent single-node failure "
            "assumption of the analytic model; falling back to "
            "simulation-backed prediction"
        )
    return None


def _paper_scaling_fig(spec: ScenarioSpec) -> Optional[str]:
    """The scaling figure *spec* coincides with, or None."""
    if spec.workload.study != "scaling":
        return None
    if spec.failures.regime != "poisson":
        return None
    f = spec.failures
    if (
        f.burst_mean_width is not None
        or f.severity_pmf is not None
        or spec.workload.fractions is not None
        or spec.techniques is not None
        or spec.sweep is not None
        or spec.platform.total_nodes is not None
        or spec.run.seed != 2017
        or spec.grid is not None  # figures carry no cost columns
    ):
        return None
    return _PAPER_SCALING_FIGS.get((spec.workload.app_type, f.mtbf_years))


def _load_grid_traces(spec: ScenarioSpec) -> Optional[str]:
    """Load and embed the grid's trace-curve files, if any.

    Returns a JSON object mapping curve role (``price`` / ``carbon``)
    to the curve's canonical JSONL text, so the request stays
    self-contained (no path resolution on a service worker); None when
    no grid curve replays a trace.  Raises :class:`ScenarioError`
    field-qualified on unreadable or malformed curve files.
    """
    import json

    from repro.grid.curves import CurveFormatError, curve_to_jsonl, load_curve

    assert spec.grid is not None
    out = {}
    base = spec.base_dir if spec.base_dir is not None else "."
    for role, curve in (("price", spec.grid.price), ("carbon", spec.grid.carbon)):
        if curve is None or curve.kind != "trace":
            continue
        path = os.path.join(base, curve.trace_file)
        try:
            out[role] = curve_to_jsonl(load_curve(path))
        except CurveFormatError as exc:
            raise ScenarioError(f"grid.{role}.trace_file", str(exc)) from None
    if not out:
        return None
    return json.dumps(out, sort_keys=True, separators=(",", ":"))


def compile_scenario(
    spec: ScenarioSpec, quick: bool = False
) -> CompiledCampaign:
    """Lower *spec* to runnable study requests.

    Raises :class:`ScenarioError` for problems only visible at compile
    time (an unreadable or malformed trace file).
    """
    sha = spec_sha256(spec)
    notes = []
    reason = scenario_analytic_reason(spec)
    if reason is not None:
        notes.append(f"analytic model bypassed: {reason}")

    if spec.workload.study == "datacenter":
        fig = _PAPER_DATACENTER_FIGS[spec.workload.mode]
        request = StudyRequest(
            experiment=fig,
            format=spec.run.format,
            patterns=spec.workload.patterns
            if spec.workload.patterns is not None
            else 50,
            quick=quick,
        )
        notes.append(
            f"lowered to {fig} (the datacenter study runs the paper's "
            "environment)"
        )
        return CompiledCampaign(
            spec=spec,
            sha256=sha,
            units=(CampaignUnit(label=spec.scenario.name, request=request),),
            notes=tuple(notes),
            analytic_bypass=reason,
        )

    fig = _paper_scaling_fig(spec)
    if fig is not None:
        request = StudyRequest(
            experiment=fig,
            format=spec.run.format,
            trials=spec.run.trials
            if spec.run.trials is not None
            else SCALING_STUDY_TRIALS,
            quick=quick,
        )
        notes.append(f"lowered to {fig} (paper-exact parameters)")
        return CompiledCampaign(
            spec=spec,
            sha256=sha,
            units=(CampaignUnit(label=spec.scenario.name, request=request),),
            notes=tuple(notes),
            analytic_bypass=reason,
        )

    trace_text: Optional[str] = None
    if spec.failures.regime == "trace":
        base = spec.base_dir if spec.base_dir is not None else "."
        path = os.path.join(base, spec.failures.trace_file)
        try:
            trace = load_trace(path)
        except TraceFormatError as exc:
            raise ScenarioError("failures.trace_file", str(exc)) from None
        trace_text = trace_to_jsonl(trace)
        notes.append(
            f"trace replay: {len(trace)} recorded failures "
            f"from {spec.failures.trace_file}"
        )

    grid_traces_text: Optional[str] = None
    if spec.grid is not None:
        grid_traces_text = _load_grid_traces(spec)
        objective = spec.grid.objective
        curves = ", ".join(
            f"{role} {curve.kind}"
            for role, curve in (
                ("price", spec.grid.price),
                ("carbon", spec.grid.carbon),
            )
            if curve is not None
        )
        notes.append(f"grid accounting: objective={objective} ({curves})")

    if spec.failures.regime == "trace":
        default_trials = 1
    else:
        default_trials = SCALING_STUDY_TRIALS
    request = StudyRequest(
        experiment="scenario",
        format=spec.run.format,
        trials=spec.run.trials
        if spec.run.trials is not None
        else default_trials,
        quick=quick,
        scenario=canonical_json(spec),
        trace=trace_text,
        grid_traces=grid_traces_text,
    )
    notes.append("lowered to the generic scenario runtime")
    return CompiledCampaign(
        spec=spec,
        sha256=sha,
        units=(CampaignUnit(label=spec.scenario.name, request=request),),
        notes=tuple(notes),
        analytic_bypass=reason,
    )


# ---------------------------------------------------------------------------
# Adaptive wave planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignCell:
    """One grid point of an adaptive campaign: a (sweep-axis value,
    system fraction, technique) triple whose trial budget the
    controller manages independently."""

    axis_value: Optional[float]
    fraction: float
    technique: str


def scenario_cells(spec: ScenarioSpec) -> Tuple[CampaignCell, ...]:
    """*spec*'s study grid as :class:`CampaignCell` triples, in the
    same order the generic runtime enumerates them (axis value
    outermost, technique innermost)."""
    from repro.resilience.registry import scaling_study_techniques

    if spec.workload.study != "scaling":
        raise ScenarioError(
            "workload.study",
            "adaptive campaigns are only supported for scaling studies",
        )
    axis_values: Tuple[Optional[float], ...] = (
        spec.sweep.values if spec.sweep is not None else (None,)
    )
    fractions = (
        spec.workload.fractions
        if spec.workload.fractions is not None
        else SCALING_STUDY_FRACTIONS
    )
    techniques = (
        spec.techniques
        if spec.techniques is not None
        else tuple(t.name for t in scaling_study_techniques())
    )
    return tuple(
        CampaignCell(axis_value=value, fraction=fraction, technique=technique)
        for value in axis_values
        for fraction in fractions
        for technique in techniques
    )


def cell_scenario(spec: ScenarioSpec, cell: CampaignCell) -> ScenarioSpec:
    """The single-cell scenario derived from *spec* for *cell*.

    Narrowing the grid to one (axis value, fraction, technique) — and
    dropping the trial count and adaptive section, which ride the
    request instead — leaves per-trial randomness untouched: trial
    ``i`` of a cell is a function of the run seed and ``i`` only, so a
    cell job computes exactly the cells of a full grid run.
    """
    sweep = (
        SweepSpec(axis=spec.sweep.axis, values=(cell.axis_value,))
        if spec.sweep is not None
        else None
    )
    return replace(
        spec,
        workload=replace(spec.workload, fractions=(cell.fraction,)),
        techniques=(cell.technique,),
        sweep=sweep,
        run=replace(spec.run, trials=None),
        adaptive=None,
    )


def compile_cell_request(
    spec: ScenarioSpec,
    cell: CampaignCell,
    trials: int,
    trial_offset: int = 0,
) -> StudyRequest:
    """One batch job of an adaptive campaign: trials ``[trial_offset,
    trial_offset + trials)`` of *cell*, rendered as JSON for the
    controller to parse.  Always lowers to the generic scenario
    runtime (a single-cell grid is never a paper figure)."""
    narrowed = cell_scenario(spec, cell)
    return StudyRequest(
        experiment="scenario",
        format="json",
        trials=trials,
        scenario=canonical_json(narrowed),
        trial_offset=trial_offset,
        grid_traces=_load_grid_traces(narrowed)
        if narrowed.grid is not None
        else None,
    )
