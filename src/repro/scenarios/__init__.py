"""Declarative scenario engine.

A *scenario* is a schema-validated TOML/JSON document describing one
study — platform, failure regime, workload, technique set, sweep axis,
trials and seed — which a compiler lowers onto the existing experiment
machinery (:class:`repro.experiments.entry.StudyRequest` and the
parallel cell executor), so scenarios inherit parallelism, caching,
the failure-horizon fast path, and observability for free.

Layers:

- :mod:`repro.scenarios.schema` — strict parsing with field-path errors;
- :mod:`repro.scenarios.spec` — the frozen spec tree and its canonical
  JSON / SHA-256 identity;
- :mod:`repro.scenarios.compiler` — lowering to study requests;
- :mod:`repro.scenarios.runtime` — execution of generic (non-paper)
  scenarios through the cell executor;
- :mod:`repro.scenarios.library` — the bundled ``.toml`` scenarios.
"""

from repro.scenarios.errors import ScenarioError
from repro.scenarios.library import list_scenarios, load_named, resolve
from repro.scenarios.schema import load_scenario, parse_scenario, scenario_from_json
from repro.scenarios.spec import ScenarioSpec, canonical_json, spec_sha256

__all__ = [
    "ScenarioError",
    "ScenarioSpec",
    "canonical_json",
    "list_scenarios",
    "load_named",
    "load_scenario",
    "parse_scenario",
    "resolve",
    "scenario_from_json",
    "spec_sha256",
]
