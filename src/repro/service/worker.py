"""The in-process worker pool: a local agent inside ``repro serve``.

Since the control-plane/agent split, all execution machinery lives in
:class:`repro.service.agent.WorkerAgent`; this module keeps the
historical :class:`WorkerPool` surface by wiring that engine to a
:class:`repro.service.agent.LocalJobSource` — direct calls on the
:class:`repro.service.store.JobStore` interface, no HTTP.  ``repro
serve`` with in-process workers therefore behaves exactly as it did
before the split, while remote ``repro agent`` processes drive the
very same engine over the API.

The pool adds one thing the generic agent doesn't have: periodic
result-cache pruning, hung on the agent's per-tick hook.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any, Callable, Optional

from repro.experiments.parallel import ExecutorMetrics, ResultCache
from repro.obs import counters as obs_counters
from repro.service.agent import LocalJobSource, WorkerAgent
from repro.service.store import JobStore


class WorkerPool(WorkerAgent):
    """Runs jobs claimed from a :class:`JobStore` in-process.

    ``workers=0`` is a valid paused pool (jobs queue up but never
    run — used by tests and by operators staging work).  *cache* and
    *prune_max_bytes* wire the periodic cache pruning; *on_idle* is an
    optional test hook called when the puller finds nothing to claim.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int = 1,
        lease_s: float = 60.0,
        poll_interval_s: float = 0.05,
        metrics: Optional[ExecutorMetrics] = None,
        cache: Optional[ResultCache] = None,
        prune_max_bytes: Optional[int] = None,
        prune_interval_s: float = 300.0,
        telemetry: Optional[Any] = None,
        on_idle: Optional[Callable[[], None]] = None,
    ) -> None:
        self.store = store
        self.prune_max_bytes = prune_max_bytes
        self.prune_interval_s = prune_interval_s
        self._prune_due = threading.Event()
        self._last_prune = time.monotonic()
        super().__init__(
            LocalJobSource(store),
            workers=workers,
            batch_size=max(workers, 1),
            lease_s=lease_s,
            poll_interval_s=poll_interval_s,
            metrics=metrics,
            cache=cache,
            identity=f"local-{uuid.uuid4().hex[:8]}",
            telemetry=telemetry,
            on_idle=on_idle,
            on_tick=self._maybe_prune,
        )

    def prune_now(self) -> None:
        """Ask the puller to prune the cache on its next tick."""
        self._prune_due.set()

    def _maybe_prune(self) -> None:
        if self.cache is None or self.prune_max_bytes is None:
            return
        now = time.monotonic()
        if (
            not self._prune_due.is_set()
            and now - self._last_prune < self.prune_interval_s
        ):
            return
        self._prune_due.clear()
        self._last_prune = now
        removed, removed_bytes = self.cache.prune(self.prune_max_bytes)
        if removed:
            obs_counters.increment("service.cache_pruned", removed)
            obs_counters.increment(
                "service.cache_pruned_bytes", removed_bytes
            )
